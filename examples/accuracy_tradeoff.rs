//! The performance/accuracy trade-off on the order-10 IIR: sweep the
//! constraint and watch the joint flow trade noise budget for SIMD
//! cycles — the curve behind figure 4 of the paper.
//!
//! Run with: `cargo run --release --example accuracy_tradeoff`

use slpwlo::kernels::iir10;
use slpwlo::targets::{st240, xentium};
use slpwlo::{FlowKind, Optimizer};

fn main() -> Result<(), slpwlo::Error> {
    let n = 2048u64;
    let constraints: Vec<f64> = (1..=19).map(|i| -5.0 * i as f64).collect();
    for target in [xentium(), st240()] {
        let optimizer = Optimizer::for_kernel(iir10())?
            .target(target)
            .activations(n)
            .flow(FlowKind::WloSlp);
        let reports = optimizer.sweep(&constraints)?;
        println!("\nIIR-10 on {} (N = {n})", reports[0].target);
        println!(
            "{:>8} {:>12} {:>12} {:>8}",
            "dB", "SIMD cycles", "noise dB", "groups"
        );
        let mut last_cycles = 0u64;
        for report in &reports {
            let marker = if report.cycles_simd != last_cycles {
                " <-"
            } else {
                ""
            };
            println!(
                "{:>8.0} {:>12} {:>12.1} {:>8}{marker}",
                report.constraint_db.expect("sweep sets the constraint"),
                report.cycles_simd,
                report.noise_db.expect("fixed-point flow predicts noise"),
                report.group_count
            );
            last_cycles = report.cycles_simd;
        }
    }
    Ok(())
}
