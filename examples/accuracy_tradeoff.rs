//! The performance/accuracy trade-off on the order-10 IIR: sweep the
//! constraint and watch the joint flow trade noise budget for SIMD
//! cycles — the curve behind figure 4 of the paper.
//!
//! Run with: `cargo run --release --example accuracy_tradeoff`

use slpwlo::core::{prepare, wlo_slp_flow};
use slpwlo::kernels::iir10;
use slpwlo::sim::total_cycles;
use slpwlo::targets::{st240, xentium};

fn main() {
    let prep = prepare(iir10());
    let n = 2048u64;
    for target in [xentium(), st240()] {
        println!("\nIIR-10 on {target} (N = {n})");
        println!("{:>8} {:>12} {:>12} {:>8}", "dB", "SIMD cycles", "noise dB", "groups");
        let mut last_cycles = 0u64;
        for i in 1..=19 {
            let db = -5.0 * i as f64;
            let flow = wlo_slp_flow(&prep, &target, db);
            let cycles = total_cycles(&target, &flow.simd, n);
            let marker = if cycles != last_cycles { " <-" } else { "" };
            println!(
                "{:>8.0} {:>12} {:>12.1} {:>8}{marker}",
                db, cycles, flow.noise_db, flow.group_count
            );
            last_cycles = cycles;
        }
    }
}
