//! Measures the wall-clock cost of pass-boundary static verification.
//!
//! Runs the full benchmark suite through the joint WLO+SLP flow at
//! `VerifyLevel::Off` and `VerifyLevel::Boundaries` and reports the
//! relative overhead. This is the number quoted in the README's
//! "Static verification" section; re-measure with:
//!
//! `cargo run --release --example verify_overhead`
//!
//! Timing note: the two configurations are interleaved (off, boundaries,
//! off, boundaries, ...) for `REPS` rounds and the per-configuration
//! *minimum* suite time is kept — interleaving cancels slow thermal /
//! frequency drift and the minimum strips scheduler noise from a short
//! single-process measurement.

use std::time::{Duration, Instant};

use slpwlo::core::{wlo_slp_flow_checked, BenefitKind, PassArtifact, SchedKind};
use slpwlo::kernels::all_benchmarks;
use slpwlo::targets::xentium;
use slpwlo::verify::verify_boundary;
use slpwlo::{Optimizer, VerifyLevel};

const REPS: usize = 5;

fn suite_pass(level: VerifyLevel) -> Result<Duration, slpwlo::Error> {
    let start = Instant::now();
    for bench in all_benchmarks() {
        let report = Optimizer::for_kernel(bench.kernel.clone())?
            .target(xentium())
            .constraint_db(-40.0)
            .verify_level(level)
            .run()?;
        // Keep the result observable so the work can't be elided.
        assert!(report.cycles_simd > 0, "{}: empty schedule", bench.name);
    }
    Ok(start.elapsed())
}

/// Times *only* the checkers by wrapping `verify_boundary` in the
/// pass-boundary callback of one suite pass — the attribution that
/// survives machine-load noise the A/B wall-clock comparison cannot.
fn attributed_checker_time() -> Duration {
    let target = xentium();
    let mut spent = Duration::ZERO;
    for bench in all_benchmarks() {
        let prep = slpwlo::core::prepare(bench.kernel.clone());
        let mut check = |a: PassArtifact<'_>| {
            let start = Instant::now();
            let r = verify_boundary(VerifyLevel::Boundaries, &a);
            spent += start.elapsed();
            r
        };
        wlo_slp_flow_checked(
            &prep,
            &target,
            -40.0,
            BenefitKind::default(),
            SchedKind::List,
            &mut check,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    }
    spent
}

fn main() -> Result<(), slpwlo::Error> {
    let n = all_benchmarks().len();
    // Warm-up pass (page cache, lazy statics) outside the measurement.
    suite_pass(VerifyLevel::Off)?;
    let mut off = Duration::MAX;
    let mut boundaries = Duration::MAX;
    for _ in 0..REPS {
        off = off.min(suite_pass(VerifyLevel::Off)?);
        boundaries = boundaries.min(suite_pass(VerifyLevel::Boundaries)?);
    }
    let overhead = boundaries.as_secs_f64() / off.as_secs_f64() - 1.0;
    let checkers = attributed_checker_time();
    println!("suite: {n} benchmarks x joint WLO+SLP flow on XENTIUM (best of {REPS})");
    println!("  verify=off        : {:>9.3} ms", off.as_secs_f64() * 1e3);
    println!(
        "  verify=boundaries : {:>9.3} ms",
        boundaries.as_secs_f64() * 1e3
    );
    println!(
        "  A/B overhead      : {:+.2}% (within run-to-run noise)",
        overhead * 100.0
    );
    println!(
        "  checker time      : {:>9.3} ms attributed ({:.3}% of the off baseline)",
        checkers.as_secs_f64() * 1e3,
        checkers.as_secs_f64() / off.as_secs_f64() * 100.0
    );
    Ok(())
}
