//! Quickstart: joint word-length optimization + SLP extraction on a tiny
//! kernel written in the textual DSL.
//!
//! Run with: `cargo run --release --example quickstart`

use slpwlo::core::{prepare, wlo_first_flow, wlo_slp_flow, TabuOptions};
use slpwlo::ir::parser::parse_kernel;
use slpwlo::sim::{speedup, total_cycles};
use slpwlo::targets::xentium;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-tap FIR in the kernel DSL; the paper's pragmas become `range`
    // annotations, and the tap loop carries its unroll factor.
    let kernel = parse_kernel(
        r#"
kernel demo {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#,
    )?;

    // Front end: range analysis + analytical accuracy model (once).
    let prep = prepare(kernel);
    let target = xentium();
    let constraint_db = -40.0; // max tolerable output noise power

    // The paper's joint flow vs the WLO-First baseline.
    let joint = wlo_slp_flow(&prep, &target, constraint_db);
    let first = wlo_first_flow(&prep, &target, constraint_db, &TabuOptions::default());

    let n = 2048; // activations (input samples)
    let base = total_cycles(&target, &first.scalar, n);
    println!("target            : {target}");
    println!("constraint        : {constraint_db} dB");
    println!("baseline (scalar) : {base} cycles");
    println!(
        "WLO-First SIMD    : {} cycles (speedup {:.2}, {} groups, noise {:.1} dB)",
        total_cycles(&target, &first.simd, n),
        speedup(base, total_cycles(&target, &first.simd, n)),
        first.group_count,
        first.noise_db
    );
    println!(
        "WLO-SLP   SIMD    : {} cycles (speedup {:.2}, {} groups, noise {:.1} dB)",
        total_cycles(&target, &joint.simd, n),
        speedup(base, total_cycles(&target, &joint.simd, n)),
        joint.group_count,
        joint.noise_db
    );
    Ok(())
}
