//! Quickstart: joint word-length optimization + SLP extraction on a tiny
//! kernel written in the textual DSL, through the unified `Optimizer`
//! driver.
//!
//! Run with: `cargo run --release --example quickstart`

use slpwlo::targets::xentium;
use slpwlo::{FlowKind, Optimizer};

fn main() -> Result<(), slpwlo::Error> {
    // An 8-tap FIR in the kernel DSL; the paper's pragmas become `range`
    // annotations, and the tap loop carries its unroll factor.
    let src = r#"
kernel demo {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    // One Optimizer = one kernel with its analyses; flows are strategies
    // selected per run. `?` propagates structured errors (bad DSL,
    // unsatisfiable constraint, ...) instead of panicking.
    let optimizer = Optimizer::for_source(src)?
        .target(xentium())
        .constraint_db(-40.0);

    // The paper's joint flow vs the WLO-First baseline.
    let joint = optimizer.run()?;
    let optimizer = optimizer.flow(FlowKind::WloFirst);
    let first = optimizer.run()?;

    // Equation (2): speedups against WLO-First's scalar fixed-point code.
    let base = first.cycles_scalar;
    println!("target            : {}", joint.target);
    println!(
        "constraint        : {} dB",
        joint.constraint_db.expect("configured above")
    );
    println!("baseline (scalar) : {base} cycles");
    for report in [&first, &joint] {
        println!(
            "{:<10} SIMD    : {} cycles (speedup {:.2}, {} groups, noise {:.1} dB)",
            report.flow,
            report.cycles_simd,
            report.speedup_over(base),
            report.group_count,
            report.noise_db.expect("fixed-point flows predict noise"),
        );
    }
    Ok(())
}
