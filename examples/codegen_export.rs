//! Generates the paper's final artifacts for the 3x3 convolution on
//! VEX-4: scalar fixed-point C, SIMD C over the abstract macro API, and
//! the target's macro-implementation header.
//!
//! Run with: `cargo run --release --example codegen_export [out_dir]`

use slpwlo::codegen::{emit_fixed_c, emit_intrinsics_header, emit_simd_c};
use slpwlo::core::{prepare, wlo_slp_flow};
use slpwlo::kernels::conv3x3;
use slpwlo::targets::vex;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/generated"));
    fs::create_dir_all(&out_dir)?;

    let target = vex(4);
    let prep = prepare(conv3x3());
    let flow = wlo_slp_flow(&prep, &target, -40.0);

    let fixed = emit_fixed_c(&prep.kernel, &flow.spec);
    let simd = emit_simd_c(&flow.simd, &target.name);
    let header = emit_intrinsics_header(&target);

    let fixed_path = out_dir.join("conv3x3_fixed.c");
    let simd_path = out_dir.join("conv3x3_simd.c");
    let header_path = out_dir.join("slpwlo_simd_vex_4.h");
    fs::write(&fixed_path, &fixed)?;
    fs::write(&simd_path, &simd)?;
    fs::write(&header_path, &header)?;

    println!("spec noise   : {:.1} dB ({} SIMD groups)", flow.noise_db, flow.group_count);
    println!("fixed-point C: {} ({} bytes)", fixed_path.display(), fixed.len());
    println!("SIMD C       : {} ({} bytes)", simd_path.display(), simd.len());
    println!("intrinsics   : {} ({} bytes)", header_path.display(), header.len());
    println!("\n--- fixed-point C preview ---");
    for line in fixed.lines().take(12) {
        println!("{line}");
    }
    println!("\n--- SIMD C preview ---");
    for line in simd.lines().take(12) {
        println!("{line}");
    }
    Ok(())
}
