//! Generates the paper's final artifacts for the 3x3 convolution on
//! VEX-4: scalar fixed-point C, SIMD C over the abstract macro API, and
//! the target's macro-implementation header — all through
//! `Report::export_c`, which returns a structured error on I/O failure.
//!
//! Run with: `cargo run --release --example codegen_export [out_dir]`

use slpwlo::kernels::conv3x3;
use slpwlo::targets::vex;
use slpwlo::{FlowKind, Optimizer};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/generated"));

    let report = Optimizer::for_kernel(conv3x3())?
        .target(vex(4))
        .constraint_db(-40.0)
        .flow(FlowKind::WloSlp)
        .run()?;
    let exported = report.export_c(&out_dir)?;

    println!(
        "spec noise   : {:.1} dB ({} SIMD groups)",
        report.noise_db.expect("fixed-point flow predicts noise"),
        report.group_count
    );
    for (label, path) in [
        ("fixed-point C", &exported.fixed_c),
        ("SIMD C", &exported.simd_c),
        ("intrinsics", &exported.intrinsics_h),
    ] {
        let bytes = std::fs::metadata(path)?.len();
        println!("{label:<13}: {} ({bytes} bytes)", path.display());
    }
    for (label, path) in [
        ("fixed-point C", &exported.fixed_c),
        ("SIMD C", &exported.simd_c),
    ] {
        println!("\n--- {label} preview ---");
        for line in std::fs::read_to_string(path)?.lines().take(12) {
            println!("{line}");
        }
    }
    Ok(())
}
