//! End-to-end walkthrough on the paper's FIR-64 benchmark: sweep both
//! flows across constraints with the driver API, then *validate* the
//! produced fixed-point specification with the bit-accurate simulator
//! against the double-precision reference.
//!
//! Run with: `cargo run --release --example fir_pipeline`

use slpwlo::accuracy::measure_noise;
use slpwlo::kernels::{fir64, Workload};
use slpwlo::targets::xentium;
use slpwlo::{FlowKind, Optimizer};

fn main() -> Result<(), slpwlo::Error> {
    let n = 2048u64;
    let workload = Workload::white(1, n as usize, 0xF1B);
    let constraints = [-20.0, -40.0, -60.0, -80.0];

    // One Optimizer, both flows: `sweep` amortizes the range analysis
    // and noise-gain measurement across all constraint points, and
    // switching `.flow(...)` keeps the same prepared kernel.
    let mut opt = Optimizer::for_kernel(fir64())?
        .target(xentium())
        .activations(n)
        .flow(FlowKind::WloSlp);
    let joints = opt.sweep(&constraints)?;
    opt = opt.flow(FlowKind::WloFirst);
    let firsts = opt.sweep(&constraints)?;

    println!("FIR-64 on {}, N = {n}", joints[0].target);
    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>12} {:>12}",
        "dB", "first spd", "slp spd", "pred dB", "meas dB", "first grps", "slp grps"
    );
    for (joint, first) in joints.iter().zip(&firsts) {
        let db = joint.constraint_db.expect("sweep sets the constraint");
        let base = first.cycles_scalar;
        // Bit-accurate validation of the joint flow's specification.
        let spec = joint.spec.as_ref().expect("fixed-point flow has a spec");
        let measured = measure_noise(&joint.kernel, spec, &workload.inputs);
        println!(
            "{:>6.0} | {:>9.3} {:>9.3} | {:>9.1} {:>9.1} | {:>12} {:>12}",
            db,
            first.speedup_over(base),
            joint.speedup_over(base),
            joint.noise_db.expect("fixed-point flow predicts noise"),
            measured.db,
            first.group_count,
            joint.group_count,
        );
        assert!(
            measured.db <= db + 3.0,
            "bit-accurate noise {:.1} dB must honour the constraint {db} dB (3 dB model margin)",
            measured.db
        );
    }
    println!("\nAll specifications validated bit-accurately within 3 dB of the model.");
    Ok(())
}
