//! End-to-end walkthrough on the paper's FIR-64 benchmark: run both
//! flows across constraints, then *validate* the produced fixed-point
//! specification with the bit-accurate simulator against the
//! double-precision reference.
//!
//! Run with: `cargo run --release --example fir_pipeline`

use slpwlo::accuracy::measure_noise;
use slpwlo::core::{prepare, wlo_first_flow, wlo_slp_flow, TabuOptions};
use slpwlo::kernels::{fir64, Workload};
use slpwlo::sim::{speedup, total_cycles};
use slpwlo::targets::xentium;

fn main() {
    let prep = prepare(fir64());
    let target = xentium();
    let n = 2048u64;
    let workload = Workload::white(1, n as usize, 0xF1B);

    println!("FIR-64 on {target}, N = {n}");
    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>12} {:>12}",
        "dB", "first spd", "slp spd", "pred dB", "meas dB", "first grps", "slp grps"
    );
    for db in [-20.0, -40.0, -60.0, -80.0] {
        let first = wlo_first_flow(&prep, &target, db, &TabuOptions::default());
        let joint = wlo_slp_flow(&prep, &target, db);
        let base = total_cycles(&target, &first.scalar, n);
        // Bit-accurate validation of the joint flow's specification.
        let measured = measure_noise(&prep.kernel, &joint.spec, &workload.inputs);
        println!(
            "{:>6.0} | {:>9.3} {:>9.3} | {:>9.1} {:>9.1} | {:>12} {:>12}",
            db,
            speedup(base, total_cycles(&target, &first.simd, n)),
            speedup(base, total_cycles(&target, &joint.simd, n)),
            joint.noise_db,
            measured.db,
            first.group_count,
            joint.group_count,
        );
        assert!(
            measured.db <= db + 3.0,
            "bit-accurate noise {:.1} dB must honour the constraint {db} dB (3 dB model margin)",
            measured.db
        );
    }
    println!("\nAll specifications validated bit-accurately within 3 dB of the model.");
}
