//! # slpwlo — SLP-aware word-length optimization
//!
//! Facade crate re-exporting the whole `slpwlo` workspace: a reproduction
//! of *"Superword Level Parallelism aware Word Length Optimization"*
//! (El Moussawi & Derrien, DATE 2017).
//!
//! Most users want [`core`] (the joint WLO + SLP algorithms and end-to-end
//! flows), [`kernels`] (the paper's FIR/IIR/CONV benchmarks) and [`sim`]
//! (the VLIW cycle model). See the repository `README.md` and the
//! `examples/` directory for end-to-end walkthroughs.

pub use slpwlo_accuracy as accuracy;
pub use slpwlo_codegen as codegen;
pub use slpwlo_core as core;
pub use slpwlo_fixedpoint as fixedpoint;
pub use slpwlo_ir as ir;
pub use slpwlo_kernels as kernels;
pub use slpwlo_sim as sim;
pub use slpwlo_slp as slp;
pub use slpwlo_targets as targets;
