//! # slpwlo — SLP-aware word-length optimization
//!
//! Facade crate re-exporting the whole `slpwlo` workspace: a reproduction
//! of *"Superword Level Parallelism aware Word Length Optimization"*
//! (El Moussawi & Derrien, DATE 2017).
//!
//! Most users want the [`Optimizer`] driver: parse or build a kernel,
//! pick a target and a [`FlowKind`], and [`run`](Optimizer::run) it into
//! a [`Report`] — every fallible path returns a structured [`Error`]
//! instead of panicking.
//!
//! ```
//! use slpwlo::{FlowKind, Optimizer};
//! use slpwlo::targets::xentium;
//!
//! let report = Optimizer::for_source(
//!     "kernel k { input x range [-1, 1]; output y; var t; t = 0.5 * x; y = t; }",
//! )?
//! .target(xentium())
//! .constraint_db(-50.0)
//! .flow(FlowKind::WloSlp)
//! .run()?;
//! assert!(report.noise_db.unwrap() <= -50.0);
//! # Ok::<(), slpwlo::Error>(())
//! ```
//!
//! The layer crates remain available for algorithm-level work: [`core`]
//! (the joint WLO + SLP algorithms and end-to-end flows), [`kernels`]
//! (the paper's FIR/IIR/CONV benchmarks) and [`sim`] (the VLIW cycle
//! model). See the repository `README.md` and the `examples/` directory
//! for end-to-end walkthroughs.

pub use slpwlo_driver::{
    BenefitKind, CompilationFlow, Error, ExportedC, FlowContext, FlowKind, FlowOutput, Optimizer,
    Report, SelectStats, VerifyError, VerifyLevel,
};

pub use slpwlo_accuracy as accuracy;
pub use slpwlo_codegen as codegen;
pub use slpwlo_core as core;
pub use slpwlo_driver as driver;
pub use slpwlo_fixedpoint as fixedpoint;
pub use slpwlo_gen as gen;
pub use slpwlo_ir as ir;
pub use slpwlo_kernels as kernels;
pub use slpwlo_sim as sim;
pub use slpwlo_slp as slp;
pub use slpwlo_targets as targets;
pub use slpwlo_verify as verify;
