//! Batched-vs-reference gain-measurement differential.
//!
//! `measure_gains` propagates impulses in batches (SoA lanes, early
//! retirement, sharded workers); `measure_gains_reference` runs one
//! simulation per impulse. The batched path's contract is *bitwise*
//! equality per noise source for any thread count — this suite pins it
//! across the full registered benchmark suite and a seeded
//! `slpwlo-gen` corpus slice, so any future change to batching,
//! retirement or sharding that perturbs even one ULP of one `(G1, G2)`
//! pair fails loudly.

use slpwlo::accuracy::gains::{measure_gains, measure_gains_reference};
use slpwlo::accuracy::GainOptions;
use slpwlo::gen::KernelGen;
use slpwlo::ir::Kernel;
use slpwlo::kernels::all_benchmarks;

/// Reduced measurement sizes: the differential cares about bit
/// equality, not tail convergence, and the whole suite runs in debug
/// builds.
fn opts(threads: usize) -> GainOptions {
    GainOptions {
        min_activations: 16,
        max_activations: 256,
        param_activations: 128,
        threads,
        ..GainOptions::default()
    }
}

/// Asserts bitwise `(G1, G2)` equality between the batched and the
/// reference measurement on every noise source of `kernel`.
fn assert_bitwise_identical(kernel: &Kernel, label: &str, threads: usize) {
    let o = opts(threads);
    let batched = measure_gains(kernel, &o);
    let reference = measure_gains_reference(kernel, &o);
    assert_eq!(batched.len(), reference.len(), "{label}: source count");
    for (e, (g1, g2)) in batched.iter() {
        let (r1, r2) = reference.get(e);
        assert_eq!(
            g1.to_bits(),
            r1.to_bits(),
            "{label} threads={threads}: G1 of source {e:?} diverged ({g1} vs {r1})"
        );
        assert_eq!(
            g2.to_bits(),
            r2.to_bits(),
            "{label} threads={threads}: G2 of source {e:?} diverged ({g2} vs {r2})"
        );
    }
}

#[test]
fn benchmarks_batched_gains_match_reference_bitwise() {
    for bench in all_benchmarks() {
        // 1 pins the sharding-free path, 3 an uneven shard split.
        for threads in [1, 3] {
            assert_bitwise_identical(&bench.kernel, bench.name, threads);
        }
    }
}

#[test]
fn generated_corpus_batched_gains_match_reference_bitwise() {
    let mut checked = 0usize;
    for seed in 0..64u64 {
        let mut kg = KernelGen::with_seed(seed);
        let Ok(kernel) = kg.gen_plan().build() else {
            continue; // generator invariants are pipeline_fuzz's job
        };
        assert_bitwise_identical(&kernel, &format!("gk{seed}"), 2);
        checked += 1;
    }
    assert!(checked >= 48, "corpus slice too thin: {checked}/64 built");
}
