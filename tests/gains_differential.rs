//! Batched-vs-reference gain-measurement differential.
//!
//! `measure_gains` propagates impulses in batches (SoA lanes, early
//! retirement, sharded workers); `measure_gains_reference` runs one
//! simulation per impulse. The batched path's contract is *bitwise*
//! equality per noise source for any thread count — this suite pins it
//! across the full registered benchmark suite and a seeded
//! `slpwlo-gen` corpus slice, so any future change to batching,
//! retirement or sharding that perturbs even one ULP of one `(G1, G2)`
//! pair fails loudly.

use slpwlo::accuracy::gains::{measure_gains, measure_gains_reference};
use slpwlo::accuracy::GainOptions;
use slpwlo::gen::KernelGen;
use slpwlo::ir::Kernel;
use slpwlo::kernels::all_benchmarks;

/// Reduced measurement sizes: the differential cares about bit
/// equality, not tail convergence, and the whole suite runs in debug
/// builds.
fn opts(threads: usize) -> GainOptions {
    GainOptions {
        min_activations: 16,
        max_activations: 256,
        param_activations: 128,
        threads,
        ..GainOptions::default()
    }
}

/// Asserts bitwise `(G1, G2)` equality between the batched and the
/// reference measurement on every noise source of `kernel`, with the
/// cone-restricted evaluation both on and off.
fn assert_bitwise_identical(kernel: &Kernel, label: &str, threads: usize) {
    for cone in [true, false] {
        let o = GainOptions {
            cone,
            ..opts(threads)
        };
        let batched = measure_gains(kernel, &o);
        let reference = measure_gains_reference(kernel, &o);
        assert_eq!(batched.len(), reference.len(), "{label}: source count");
        for (e, (g1, g2)) in batched.iter() {
            let (r1, r2) = reference.get(e);
            assert_eq!(
                g1.to_bits(),
                r1.to_bits(),
                "{label} threads={threads} cone={cone}: G1 of source {e:?} diverged ({g1} vs {r1})"
            );
            assert_eq!(
                g2.to_bits(),
                r2.to_bits(),
                "{label} threads={threads} cone={cone}: G2 of source {e:?} diverged ({g2} vs {r2})"
            );
        }
    }
}

#[test]
fn benchmarks_batched_gains_match_reference_bitwise() {
    for bench in all_benchmarks() {
        // 1 pins the sharding-free path, 3 an uneven shard split.
        for threads in [1, 3] {
            assert_bitwise_identical(&bench.kernel, bench.name, threads);
        }
    }
}

/// Feedback kernels stress the cone path hardest: variable and array
/// state edges keep every impulse's deviation hull alive across
/// activations, so the hull bookkeeping (`ShiftIn` rotation, read-back
/// of stored hulls, accumulator fusion on `acc = acc + ...`) must stay
/// sound under infinite lifetimes. The length-1 delay line pins the
/// `ShiftIn` edge case where rotation degenerates to a plain store.
#[test]
fn feedback_kernels_batched_gains_match_reference_bitwise() {
    use slpwlo::ir::builder::KernelBuilder;

    // y[n] = x[n] + a*y[n-1] via a scalar variable.
    let mut b = KernelBuilder::new("fb_var");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let acc = b.var("acc");
    let c = b.constf(0.5);
    let prev = b.read_var(acc);
    let fed = b.mul(c, prev);
    let xv = b.read_input(x);
    let sum = b.add(xv, fed);
    b.assign(acc, sum);
    let out = b.read_var(acc);
    b.set_output(y, out);
    let fb_var = b.finish();

    // Same recurrence through a length-1 delay line.
    let mut b = KernelBuilder::new("fb_shift1");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let d = b.array("d", 1);
    let c = b.constf(0.5);
    let prev = b.load(d, 0);
    let fed = b.mul(c, prev);
    let xv = b.read_input(x);
    let sum = b.add(xv, fed);
    b.shift_in(d, sum);
    let out = b.load(d, 0);
    b.set_output(y, out);
    let fb_shift1 = b.finish();

    // Second-order feedback through a length-2 delay line (IIR2).
    let mut b = KernelBuilder::new("fb_iir2");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let d = b.array("d", 2);
    let a1 = b.constf(0.4);
    let y1 = b.load(d, 0);
    let t1 = b.mul(a1, y1);
    let a2 = b.constf(-0.3);
    let y2 = b.load(d, 1);
    let t2 = b.mul(a2, y2);
    let fb = b.add(t1, t2);
    let xv = b.read_input(x);
    let sum = b.add(xv, fb);
    b.shift_in(d, sum);
    let out = b.load(d, 0);
    b.set_output(y, out);
    let fb_iir2 = b.finish();

    for (k, label) in [
        (&fb_var, "fb_var"),
        (&fb_shift1, "fb_shift1"),
        (&fb_iir2, "fb_iir2"),
    ] {
        for threads in [1, 3] {
            assert_bitwise_identical(k, label, threads);
        }
    }
}

#[test]
fn generated_corpus_batched_gains_match_reference_bitwise() {
    let mut checked = 0usize;
    for seed in 0..64u64 {
        let mut kg = KernelGen::with_seed(seed);
        let Ok(kernel) = kg.gen_plan().build() else {
            continue; // generator invariants are pipeline_fuzz's job
        };
        assert_bitwise_identical(&kernel, &format!("gk{seed}"), 2);
        checked += 1;
    }
    assert!(checked >= 48, "corpus slice too thin: {checked}/64 built");
}
