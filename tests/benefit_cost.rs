//! The cycle-priced benefit model's contract (ISSUE 5).
//!
//! (a) On single-issue VEX-1 — the target where abstract op counting is
//!     furthest from scheduled reality — the default `Cycles` model must
//!     admit no pack that makes the scheduled program slower than the
//!     scalar baseline, across the full 8-benchmark suite and the word
//!     lengths {12, 16, 24, 32}.
//! (b) On a target where every priced event genuinely costs one slot of
//!     one shared unit, `Slots` and `Cycles` produce identical
//!     selections.
//! (c) Both selection layers draw every pack/unpack/gather price from
//!     `TargetModel::cost` — spot-checked through `TargetModel::cycles`
//!     folding over it.

mod common;

use common::extract_on_spec;
use slpwlo::core::cycles_per_activation;
use slpwlo::core::nodes::value_wl;
use slpwlo::core::{lower_fixed, lower_scalar};
use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::ir::blocks::collect_blocks;
use slpwlo::ir::Dfg;
use slpwlo::kernels::all_benchmarks;
use slpwlo::slp::{extract_plain_with, BenefitKind};
use slpwlo::targets::{vex, FuSet, OpQuery, SimdConfig, TargetModel};

/// (a) VEX-1: whatever the cycle-priced model admits must never schedule
/// slower than the scalar program under the same specification.
#[test]
fn cycles_model_never_loses_to_scalar_on_vex1() {
    let target = vex(1);
    for bench in all_benchmarks() {
        let ranges = determine_ranges(&bench.kernel, &RangeOptions::default());
        for wl in [12, 16, 24, 32] {
            let spec = FixedPointSpec::from_ranges(&bench.kernel, &ranges, wl);
            let blocks = extract_on_spec(&bench.kernel, &spec, &target, BenefitKind::Cycles);
            let groups: usize = blocks.iter().map(|(_, _, g)| g.len()).sum();
            let simd = lower_fixed(&bench.kernel, &spec, &target, &blocks);
            let scalar = lower_scalar(&bench.kernel, &spec, &target);
            let vc = cycles_per_activation(&target, &simd);
            let sc = cycles_per_activation(&target, &scalar);
            assert!(
                vc <= sc,
                "{} at wl {wl} on VEX-1: {groups} admitted groups cost {vc} cycles \
                 vs {sc} scalar — the cycle-priced admission let a losing pack through",
                bench.name
            );
        }
    }
}

/// A synthetic machine where the slots model's abstractions are *true*:
/// single-issue, every unit one slot per cycle, every op (scalar or
/// vector, any word length) one slot, packs one insert per lane,
/// extracts one op. On it, target-blind slot counting and cycle pricing
/// must agree.
fn unit_cost_target() -> TargetModel {
    TargetModel {
        name: "UNIT".into(),
        issue_width: 1,
        datapath: 32,
        scalar_wls: vec![32, 16, 8],
        simd: vec![
            SimdConfig {
                lanes: 2,
                elem_wl: 16,
            },
            SimdConfig {
                lanes: 4,
                elem_wl: 8,
            },
        ],
        units: FuSet {
            alu: 1,
            mul: 1,
            mem: 1,
            shift: 1,
            fpu: 0,
        },
        mul_latency: 1,
        wide_mul_slots: 1,
        wide_mul_latency: 1,
        load_latency: 1,
        pack_ops_per_lane: 1,
        unpack_ops: 1,
        barrel_shifter: true,
        hw_float: false,
        fadd_cycles: 30,
        fmul_cycles: 30,
        loop_overhead_ops: 2,
    }
}

/// (b) Identical selections where pack ops genuinely cost one slot:
/// per block both models must admit the same packs — compared as the
/// multiset of (operation kind, lane count, lane set cardinality) since
/// greedy tie-breaking may partition symmetric alternatives (e.g. four
/// interchangeable multiply pairs) differently without changing what is
/// packed — and the two lowered programs must schedule to *identical*
/// cycle counts on the unit-cost machine.
#[test]
fn slots_and_cycles_agree_on_a_unit_cost_machine() {
    let target = unit_cost_target();
    let mut agreeing = 0usize;
    for bench in all_benchmarks() {
        let ranges = determine_ranges(&bench.kernel, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&bench.kernel, &ranges, 16);
        let mut per_kind = Vec::new();
        for kind in [BenefitKind::Slots, BenefitKind::Cycles] {
            let blocks: Vec<_> = collect_blocks(&bench.kernel)
                .into_iter()
                .map(|b| {
                    let dfg = Dfg::from_block(&bench.kernel, &b);
                    let groups = {
                        let spec_ref = &spec;
                        let dfg_ref = &dfg;
                        extract_plain_with(
                            &dfg,
                            &target,
                            &move |n| value_wl(spec_ref, dfg_ref, n),
                            kind,
                        )
                    };
                    (b, dfg, groups)
                })
                .collect();
            let shapes: Vec<Vec<String>> = blocks
                .iter()
                .map(|(_, dfg, groups)| {
                    let mut s: Vec<String> = groups
                        .iter()
                        .map(|g| format!("{:?}x{}", g.kind(dfg), g.lanes()))
                        .collect();
                    s.sort();
                    s
                })
                .collect();
            let simd = lower_fixed(&bench.kernel, &spec, &target, &blocks);
            per_kind.push((shapes, cycles_per_activation(&target, &simd)));
        }
        if per_kind[0].0 == per_kind[1].0 {
            assert_eq!(
                per_kind[0].1, per_kind[1].1,
                "{}: identical pack shapes must schedule identically",
                bench.name
            );
            agreeing += 1;
        } else {
            // Kernels with symmetric pack alternatives (CONV's 3x3 grid,
            // MATVEC's row sweep, BIQUAD's cascade) partition differently
            // under the two ranking keys; the resulting programs must
            // still be priced the same to within greedy tie-break noise.
            let (a, b) = (per_kind[0].1 as f64, per_kind[1].1 as f64);
            assert!(
                (a - b).abs() / a.max(b) < 0.06,
                "{}: selections diverge beyond tie-break noise ({a} vs {b} cycles)",
                bench.name
            );
        }
    }
    assert!(
        agreeing >= 5,
        "only {agreeing}/8 benchmarks selected identically on the unit-cost machine"
    );
}

/// (c) No duplicated cost constants: the composite prices the selection
/// layer uses are folds over the same `TargetModel::cost` the scheduler
/// prices lowered ops with.
#[test]
fn selection_prices_fold_over_scheduler_costs() {
    for target in slpwlo::targets::all_targets() {
        for lanes in target.group_sizes() {
            let pack = target.cost(OpQuery::Pack(lanes));
            assert_eq!(
                target.cycles(OpQuery::Pack(lanes)),
                pack.slots as f64
                    / target.units.of(pack.class).min(target.issue_width).max(1) as f64,
                "{}",
                target.name
            );
            let gather = target.cycles(OpQuery::Gather(lanes));
            let parts = lanes as f64 * target.cycles(OpQuery::Load(target.datapath))
                + target.cycles(OpQuery::Pack(lanes));
            assert_eq!(gather, parts, "{}", target.name);
            let scatter = target.cycles(OpQuery::Scatter(lanes));
            assert_eq!(
                scatter,
                lanes as f64
                    * (target.cycles(OpQuery::Extract)
                        + target.cycles(OpQuery::Store(target.datapath))),
                "{}",
                target.name
            );
        }
    }
}
