//! Property-style integration tests over generated kernels.
//!
//! The original version of this suite used `proptest`; the workspace
//! builds fully offline, so the same properties are exercised over
//! deterministic parameter grids instead — every case that runs in CI is
//! reproducible by construction.

use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::ir::builder::KernelBuilder;
use slpwlo::ir::interp::{Executor, FloatSem};
use slpwlo::ir::unroll::unroll;
use slpwlo::ir::Kernel;

/// Builds a random FIR-like kernel: `taps` MACs in a loop, arbitrary
/// (bounded) coefficients.
fn random_fir(taps: u32, coeffs: Vec<f64>) -> (Kernel, slpwlo::ir::LoopId) {
    let mut b = KernelBuilder::new("prop");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let c = b.param("c", coeffs);
    let dl = b.array("dl", taps as usize);
    let acc = b.var("acc");
    let xv = b.read_input(x);
    b.shift_in(dl, xv);
    let z = b.constf(0.0);
    b.assign(acc, z);
    let i = b.begin_for(taps);
    let cv = b.load_param_ix(c, slpwlo::ir::IndexExpr::affine(i, 1, 0));
    let lv = b.load_ix(dl, slpwlo::ir::IndexExpr::affine(i, 1, 0));
    let m = b.mul(cv, lv);
    let av = b.read_var(acc);
    let s = b.add(av, m);
    b.assign(acc, s);
    b.end_for(i);
    let r = b.read_var(acc);
    b.set_output(y, r);
    (b.finish(), i)
}

fn run_float(k: &Kernel, xs: &[f64]) -> Vec<f64> {
    let mut ex = Executor::new(k, FloatSem);
    ex.run(&[xs.to_vec()])[0].clone()
}

/// Unrolling by any factor preserves interpreter semantics exactly.
#[test]
fn unrolling_preserves_semantics() {
    for (taps, factor, seed) in [
        (2u32, 1u32, 0u64),
        (3, 2, 17),
        (5, 3, 101),
        (7, 4, 419),
        (8, 4, 23),
        (11, 5, 777),
        (13, 7, 999),
        (16, 8, 5),
        (23, 6, 321),
    ] {
        let coeffs: Vec<f64> = (0..taps)
            .map(|i| (((i as u64 * 2654435761 + seed) % 2001) as f64 / 1000.0 - 1.0) / taps as f64)
            .collect();
        let xs: Vec<f64> = (0..48)
            .map(|i| ((i as u64 * 40503 + seed) % 2001) as f64 / 1000.0 - 1.0)
            .collect();
        let (k0, _) = random_fir(taps, coeffs.clone());
        let before = run_float(&k0, &xs);
        let (mut k1, l) = random_fir(taps, coeffs);
        unroll(&mut k1, l, factor).unwrap();
        let after = run_float(&k1, &xs);
        for (a, b) in before.iter().zip(&after) {
            assert!(
                (a - b).abs() < 1e-12,
                "taps {taps} factor {factor} seed {seed}"
            );
        }
    }
}

/// The fixed-point simulator's output error is bounded by the total
/// quantization budget of the specification (a loose analytical bound:
/// the sum of all node steps times their trip counts).
#[test]
fn fixed_error_bounded_by_format_budget() {
    for (taps, wl, seed) in [
        (2u32, 10i32, 0u64),
        (3, 12, 11),
        (4, 14, 29),
        (5, 16, 47),
        (7, 18, 61),
        (8, 20, 83),
        (9, 24, 7),
        (11, 27, 99),
    ] {
        let coeffs: Vec<f64> = (0..taps)
            .map(|i| (((i as u64 * 97 + seed) % 1000) as f64 / 1000.0) / taps as f64)
            .collect();
        let (k, _) = random_fir(taps, coeffs);
        let ranges = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &ranges, wl);
        let xs: Vec<f64> = (0..64)
            .map(|i| ((i as u64 * 7919 + seed) % 2001) as f64 / 1000.0 - 1.0)
            .collect();
        let m = slpwlo::accuracy::measure_noise(&k, &spec, &[xs]);
        // Very loose bound: every one of the ~3*taps quantization sites
        // errs below one step of the coarsest useful grid 2^-(wl-4).
        let bound = (3.0 * taps as f64 + 4.0) * f64::powi(2.0, -(wl - 4));
        assert!(
            m.max_abs_error <= bound,
            "max error {} vs bound {} at wl {}",
            m.max_abs_error,
            bound,
            wl
        );
    }
}

/// SLP extraction on a random block never packs dependent nodes and
/// never reuses a node across groups (checked inside extract_plain's own
/// assertions plus here over group structure).
#[test]
fn extraction_respects_structure() {
    for taps in [4u32, 5, 7, 8, 11, 12, 15] {
        for wl in [8i32, 16] {
            let coeffs: Vec<f64> = (0..taps).map(|i| 0.5 / (i + 1) as f64).collect();
            let (mut k, l) = random_fir(taps, coeffs);
            unroll(&mut k, l, 4).unwrap();
            let blocks = slpwlo::ir::blocks::collect_blocks(&k);
            let target = slpwlo::targets::vex(4);
            for b in &blocks {
                let dfg = slpwlo::ir::Dfg::from_block(&k, b);
                let groups = slpwlo::slp::extract_plain(&dfg, &target, &|_| wl);
                let mut seen = std::collections::HashSet::new();
                for g in &groups {
                    for (i, &a) in g.elems.iter().enumerate() {
                        assert!(seen.insert(a), "node reused across groups");
                        for &b2 in &g.elems[i + 1..] {
                            assert!(dfg.independent(a, b2), "dependent nodes packed");
                        }
                    }
                    assert!(
                        target.simd_element_wl(g.lanes()).is_some(),
                        "unsupported group width {}",
                        g.lanes()
                    );
                }
            }
        }
    }
}

/// Lowered machine programs always have backward-pointing deps (valid
/// topological order), whatever the constraint.
#[test]
fn lowering_is_topologically_valid() {
    let bench = slpwlo::kernels::fir64();
    let prep = slpwlo::core::prepare(bench);
    for db in [-100.0f64, -85.0, -60.0, -42.5, -25.0, -10.0] {
        let flow = slpwlo::core::wlo_slp_flow(&prep, &slpwlo::targets::vex(4), db);
        for block in &flow.simd.blocks {
            for (i, op) in block.ops.iter().enumerate() {
                for &p in &op.preds {
                    assert!(p < i, "forward-pointing dep at {db} dB");
                }
            }
        }
    }
}
