//! The machine-program interpreter is a bit-exact mirror of the
//! reference fixed-point simulation.
//!
//! For the paper's three benchmarks at several word lengths — and for
//! the non-uniform specifications the WLO-SLP flow produces — the
//! lowered scalar *and* SIMD machine programs, executed by
//! `slpwlo_sim::execute_fixed`, must reproduce `simulate_fixed`'s
//! outputs bit for bit. This is the golden-reference loop every C
//! back-end is validated against.

use slpwlo::accuracy::simulate::simulate_fixed;
use slpwlo::core::nodes::value_wl;
use slpwlo::core::{lower_fixed, lower_scalar, prepare, wlo_first_flow, wlo_slp_flow};
use slpwlo::core::{MachineProgram, TabuOptions};
use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::ir::blocks::collect_blocks;
use slpwlo::ir::{Dfg, Kernel};
use slpwlo::kernels::{conv3x3, fir64, iir10, Workload};
use slpwlo::sim::execute_fixed;
use slpwlo::slp::extract_plain;
use slpwlo::targets::{vex, xentium, TargetModel};

fn benchmarks() -> Vec<(Kernel, Workload)> {
    vec![
        (fir64(), Workload::white(1, 256, 11)),
        (iir10(), Workload::sine_mix(1, 256)),
        (conv3x3(), Workload::image_rows(64, 12, 5)),
    ]
}

/// Plain SLP groups on a frozen spec (the WLO-First back half).
fn simd_program(kernel: &Kernel, spec: &FixedPointSpec, target: &TargetModel) -> MachineProgram {
    let blocks: Vec<_> = collect_blocks(kernel)
        .into_iter()
        .map(|b| {
            let dfg = Dfg::from_block(kernel, &b);
            let groups = {
                let spec_ref = &spec;
                let dfg_ref = &dfg;
                extract_plain(&dfg, target, &move |n| value_wl(spec_ref, dfg_ref, n))
            };
            (b, dfg, groups)
        })
        .collect();
    lower_fixed(kernel, spec, target, &blocks)
}

fn assert_bit_identical(label: &str, reference: &[Vec<f64>], got: &[Vec<f64>]) {
    assert_eq!(reference.len(), got.len(), "{label}: output arity");
    for (o, (r, g)) in reference.iter().zip(got).enumerate() {
        assert_eq!(r.len(), g.len(), "{label}: output {o} length");
        for (n, (a, b)) in r.iter().zip(g).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: output {o} sample {n}: reference {a:e} vs interpreter {b:e}"
            );
        }
    }
}

#[test]
fn interpreter_matches_simulate_fixed_on_uniform_specs() {
    for (kernel, workload) in benchmarks() {
        let ranges = determine_ranges(&kernel, &RangeOptions::default());
        for wl in [12, 16, 24, 32] {
            let spec = FixedPointSpec::from_ranges(&kernel, &ranges, wl);
            let reference = simulate_fixed(&kernel, &spec, &workload.inputs);
            for target in [xentium(), vex(4)] {
                let scalar = lower_scalar(&kernel, &spec, &target);
                let got = execute_fixed(&scalar, &workload.inputs).expect("scalar program runs");
                assert_bit_identical(
                    &format!("{} scalar wl={wl} on {}", kernel.name(), target.name),
                    &reference,
                    &got,
                );
                let simd = simd_program(&kernel, &spec, &target);
                let got = execute_fixed(&simd, &workload.inputs).expect("simd program runs");
                assert_bit_identical(
                    &format!("{} simd wl={wl} on {}", kernel.name(), target.name),
                    &reference,
                    &got,
                );
            }
        }
    }
}

#[test]
fn interpreter_matches_simulate_fixed_on_flow_specs() {
    // Non-uniform specifications (per-node word lengths chosen by the
    // search) exercise the mismatched-lane scaling paths.
    for (kernel, workload) in benchmarks() {
        let prep = prepare(kernel.clone());
        let target = xentium();
        for db in [-25.0, -55.0] {
            let joint = wlo_slp_flow(&prep, &target, db);
            let reference = simulate_fixed(&kernel, &joint.spec, &workload.inputs);
            for prog in [&joint.simd, &joint.scalar] {
                let got = execute_fixed(prog, &workload.inputs).expect("program runs");
                assert_bit_identical(
                    &format!("{} wlo-slp at {db} dB", kernel.name()),
                    &reference,
                    &got,
                );
            }
            let first = wlo_first_flow(&prep, &target, db, &TabuOptions::default());
            let reference = simulate_fixed(&kernel, &first.spec, &workload.inputs);
            for prog in [&first.simd, &first.scalar] {
                let got = execute_fixed(prog, &workload.inputs).expect("program runs");
                assert_bit_identical(
                    &format!("{} wlo-first at {db} dB", kernel.name()),
                    &reference,
                    &got,
                );
            }
        }
    }
}

#[test]
fn simd_and_scalar_programs_agree_with_each_other() {
    // Vectorization must be semantics-preserving: both lowerings of the
    // same spec produce identical streams.
    let (kernel, workload) = benchmarks().remove(0);
    let ranges = determine_ranges(&kernel, &RangeOptions::default());
    let spec = FixedPointSpec::from_ranges(&kernel, &ranges, 16);
    let target = xentium();
    let scalar = execute_fixed(&lower_scalar(&kernel, &spec, &target), &workload.inputs).unwrap();
    let simd = execute_fixed(&simd_program(&kernel, &spec, &target), &workload.inputs).unwrap();
    assert_bit_identical("fir64 simd-vs-scalar", &scalar, &simd);
}
