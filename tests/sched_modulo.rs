//! Property tests for the scheduler abstraction: flat list scheduling
//! vs exact modulo scheduling (`SchedKind`).
//!
//! Over the 8-benchmark suite × {XENTIUM, VEX-4} × wl {12, 16, 24, 32}
//! and a seeded generated corpus (`SLPWLO_FUZZ_SEEDS`, default 64):
//!
//! 1. **list bit-identity** — `SchedKind::List` through the cached
//!    dispatcher is field-identical to the legacy `schedule_block`
//!    entry point, deterministic across repeated runs, and never
//!    carries a modulo overlay;
//! 2. **II optimality and bounds** — every pipelined block achieves
//!    `II ≥ max(ResMII, RecMII)`, with equality on blocks free of
//!    loop-carried dependences (the exact search leaves no slack when
//!    nothing recurrent constrains it);
//! 3. **audit acceptance** — `verify_program_sched` accepts every
//!    lowering at both `SchedKind`s, so the independent re-derivation
//!    in `slpwlo-verify` agrees with the scheduler across the corpus;
//! 4. **audit rejection** — a hand-shifted steady state (the whole
//!    issue log folded onto one residue) must *fail* the modulo audit:
//!    acceptance is only meaningful if illegal overlaps die.

mod common;

use common::simd_program;
use slpwlo::core::{
    loop_carried_deps, lower_scalar, modulo_bounds_cached, schedule_block, schedule_block_cached,
    schedule_block_with, MachineProgram, SchedKind,
};
use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::gen::KernelGen;
use slpwlo::ir::Kernel;
use slpwlo::kernels::all_benchmarks;
use slpwlo::targets::{vex, xentium, CycleCache, TargetModel};
use slpwlo::verify::{audit_block_schedule, verify_program_sched};

const WLS: [i32; 4] = [12, 16, 24, 32];

fn targets() -> [TargetModel; 2] {
    [xentium(), vex(4)]
}

fn corpus() -> Vec<u64> {
    let n: u64 = std::env::var("SLPWLO_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    (0..n).collect()
}

/// Both lowerings of one kernel at one word length.
fn lowerings(kernel: &Kernel, wl: i32, target: &TargetModel) -> [MachineProgram; 2] {
    let ranges = determine_ranges(kernel, &RangeOptions::default());
    let spec = FixedPointSpec::from_ranges(kernel, &ranges, wl);
    [
        simd_program(kernel, &spec, target),
        lower_scalar(kernel, &spec, target),
    ]
}

/// Every kernel of the suite + corpus, each checked by `check` across
/// the full target × word-length matrix.
fn for_all_lowerings(mut check: impl FnMut(&str, &TargetModel, &MachineProgram)) {
    for bench in all_benchmarks() {
        for target in targets() {
            for wl in WLS {
                for program in &lowerings(&bench.kernel, wl, &target) {
                    check(bench.name, &target, program);
                }
            }
        }
    }
    for seed in corpus() {
        let kernel = match KernelGen::with_seed(seed).gen_plan().build() {
            Ok(k) => k,
            Err(_) => continue, // generator rejects its own plan: not this test's bug
        };
        // One representative word length per generated kernel keeps the
        // corpus pass proportionate; the benchmarks cover the wl axis.
        for target in targets() {
            for program in &lowerings(&kernel, 16, &target) {
                check(&format!("gk{seed}"), &target, program);
            }
        }
    }
}

/// `SchedKind::List` through the new dispatcher must be bit-identical
/// to the legacy flat scheduler — same starts, finishes, makespan and
/// issue log, never a modulo overlay — and deterministic.
#[test]
fn list_schedules_are_bit_identical_and_deterministic() {
    for_all_lowerings(|tag, target, program| {
        let costs = CycleCache::new(target);
        for (b, block) in program.blocks.iter().enumerate() {
            let legacy = schedule_block(target, block);
            let cached = schedule_block_cached(&costs, block, SchedKind::List);
            let again = schedule_block_cached(&costs, block, SchedKind::List);
            for s in [&cached, &again] {
                assert_eq!(legacy.start, s.start, "{tag} blk{b}: start drifted");
                assert_eq!(legacy.finish, s.finish, "{tag} blk{b}: finish drifted");
                assert_eq!(
                    legacy.makespan, s.makespan,
                    "{tag} blk{b}: makespan drifted"
                );
                assert_eq!(legacy.issues, s.issues, "{tag} blk{b}: issue log drifted");
                assert!(s.modulo.is_none(), "{tag} blk{b}: list schedule pipelined");
            }
        }
    });
}

/// Pipelined blocks never beat the `max(ResMII, RecMII)` lower bound,
/// and on blocks with no loop-carried dependences the exact search must
/// *reach* it — a dependence-free steady state has nothing to give up.
/// (Every suite/corpus loop carries a dependence — accumulators and
/// array stores are ubiquitous — so the equality leg here is
/// opportunistic; `dependence_free_loops_reach_the_exact_mii` pins it.)
#[test]
fn achieved_ii_respects_and_reaches_the_mii_bound() {
    let mut pipelined = 0usize;
    for_all_lowerings(|tag, target, program| {
        let costs = CycleCache::new(target);
        for (b, block) in program.blocks.iter().enumerate() {
            let sched = schedule_block_cached(&costs, block, SchedKind::modulo());
            let Some(m) = sched.modulo else { continue };
            pipelined += 1;
            let (res, rec) = modulo_bounds_cached(&costs, block)
                .unwrap_or_else(|| panic!("{tag} blk{b}: pipelined but not eligible"));
            let mii = res.max(rec);
            assert!(
                m.ii >= mii,
                "{tag} blk{b}: II {} beats the lower bound {mii}",
                m.ii
            );
            if loop_carried_deps(block).is_empty() {
                assert_eq!(
                    m.ii, mii,
                    "{tag} blk{b}: dependence-free block left II slack"
                );
            }
        }
    });
    assert!(pipelined > 0, "no block in the corpus pipelined");
}

/// A loop whose body only *overwrites* its variable (never reads it
/// back) lowers to an in-loop block with no loop-carried dependences —
/// no accumulator recurrence, no array store. On such blocks the exact
/// search must achieve `II == max(ResMII, RecMII)` everywhere it
/// pipelines, and it must pipeline on at least one target.
#[test]
fn dependence_free_loops_reach_the_exact_mii() {
    let kernel = slpwlo::ir::parser::parse_kernel(
        r#"
kernel lastval {
    input x range [-1, 1];
    output y;
    param c[16] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07,
                    0.09, -0.21, 0.29, 0.15, -0.03, 0.25, -0.11, 0.05 };
    var t;
    t = 0.0;
    for i in 0..16 {
        t = c[i] * x;
    }
    y = t;
}
"#,
    )
    .expect("dependence-free kernel parses");
    let ranges = determine_ranges(&kernel, &RangeOptions::default());
    let spec = FixedPointSpec::from_ranges(&kernel, &ranges, 16);
    let mut pipelined = 0usize;
    for target in [xentium(), vex(4), vex(1)] {
        let program = lower_scalar(&kernel, &spec, &target);
        let costs = CycleCache::new(&target);
        for (b, block) in program.blocks.iter().enumerate() {
            if !block.in_loop {
                continue;
            }
            assert!(
                loop_carried_deps(block).is_empty(),
                "{} blk{b}: overwrite-only loop grew a carried dependence",
                target.name
            );
            let sched = schedule_block_cached(&costs, block, SchedKind::modulo());
            let Some(m) = sched.modulo else { continue };
            pipelined += 1;
            let (res, rec) = modulo_bounds_cached(&costs, block).expect("eligible");
            assert_eq!(
                m.ii,
                res.max(rec),
                "{} blk{b}: exact search left II slack on a dependence-free loop",
                target.name
            );
        }
        verify_program_sched(&program, &target, SchedKind::modulo())
            .unwrap_or_else(|e| panic!("{}: pipelined lastval rejected: {e}", target.name));
    }
    assert!(pipelined > 0, "lastval pipelined on no target");
}

/// The verifier's independent schedule audit accepts every lowering at
/// both scheduler kinds.
#[test]
fn verifier_accepts_both_sched_kinds_across_the_corpus() {
    for_all_lowerings(|tag, target, program| {
        for kind in [SchedKind::List, SchedKind::modulo()] {
            verify_program_sched(program, target, kind)
                .unwrap_or_else(|e| panic!("{tag}: clean program rejected under {kind}: {e}"));
        }
    });
}

/// A hand-shifted illegal steady state — every issue folded onto one
/// residue — must be rejected by the modulo audit wherever the folding
/// actually overbooks the residue.
#[test]
fn verifier_rejects_a_hand_shifted_steady_state() {
    let mut rejections = 0usize;
    for_all_lowerings(|tag, target, program| {
        for (b, block) in program.blocks.iter().enumerate() {
            let sched = schedule_block_with(target, block, SchedKind::modulo());
            if sched.modulo.is_none() {
                continue;
            }
            let slots: u64 = sched.issues.iter().map(|&(_, _, s)| s as u64).sum();
            if slots <= target.issue_width as u64 {
                continue;
            }
            let mut shifted = sched.clone();
            for entry in &mut shifted.issues {
                entry.1 = 0;
            }
            assert!(
                audit_block_schedule(program, b, target, &shifted).is_err(),
                "{tag} blk{b}: overbooked steady state accepted"
            );
            rejections += 1;
        }
    });
    assert!(rejections > 0, "no illegal steady state was ever probed");
}
