//! Cross-crate integration: complete flows on the paper's benchmarks,
//! driven through the unified `Optimizer` API.

use slpwlo::kernels::paper_benchmarks;
use slpwlo::targets::{all_targets, xentium, OpQuery};
use slpwlo::{Error, FlowKind, Optimizer};

#[test]
fn both_flows_meet_every_constraint_on_every_benchmark() -> Result<(), Error> {
    for bench in paper_benchmarks() {
        let constraints = [-15.0, -45.0, -75.0];
        let mut opt = Optimizer::for_kernel(bench.kernel.clone())?.target(xentium());
        for kind in [FlowKind::WloSlp, FlowKind::WloFirst] {
            opt = opt.flow(kind);
            for report in opt.sweep(&constraints)? {
                let db = report.constraint_db.expect("sweep sets the constraint");
                let noise = report.noise_db.expect("fixed-point flow predicts noise");
                assert!(
                    noise <= db,
                    "{} {} at {db}: {noise:.1} dB",
                    bench.name,
                    report.flow
                );
            }
        }
    }
    Ok(())
}

#[test]
fn joint_flow_wins_on_average_across_the_grid() -> Result<(), Error> {
    // The paper's headline: WLO-SLP consistently beats WLO-First. With
    // the net-benefit admission in extraction, the baseline no longer
    // hurts itself by over-packing (it abstains when packing cannot
    // pay), so the comparison is against a *stronger* WLO-First than
    // the paper's: WLO-SLP must still never lose on the multi-issue
    // SIMD targets (up to 2.5% scheduling noise) and must win the
    // per-target mean everywhere — including single-issue VEX-1, where
    // the op-count benefit estimate is furthest from scheduled cycles
    // (see ROADMAP: cost-aware benefit model).
    let mut slp_total = 0.0;
    let mut first_total = 0.0;
    let mut points = 0usize;
    for target in all_targets() {
        let multi_issue = target.name != "VEX-1";
        let mut slp_target_total = 0.0;
        let mut first_target_total = 0.0;
        for bench in paper_benchmarks() {
            let mut opt = Optimizer::for_kernel(bench.kernel.clone())?
                .activations(bench.activations)
                .target(target.clone());
            for db in [-15.0, -45.0] {
                opt = opt.constraint_db(db);
                let joint = opt.run_with(FlowKind::WloSlp)?;
                let first = opt.run_with(FlowKind::WloFirst)?;
                // Equation (2): the baseline denominator is WLO-First's
                // scalar fixed-point code.
                let base = first.cycles_scalar;
                let s_slp = joint.speedup_over(base);
                let s_first = first.speedup_over(base);
                slp_total += s_slp;
                first_total += s_first;
                slp_target_total += s_slp;
                first_target_total += s_first;
                points += 1;
                if multi_issue {
                    assert!(
                        s_slp >= s_first * 0.975,
                        "{} on {} at {db} dB: WLO-SLP {s_slp:.3} lost to WLO-First {s_first:.3}",
                        bench.name,
                        target.name
                    );
                }
            }
        }
        assert!(
            slp_target_total >= first_target_total,
            "{}: WLO-SLP mean {:.3} below WLO-First mean {:.3}",
            target.name,
            slp_target_total / 6.0,
            first_target_total / 6.0
        );
    }
    assert!(
        slp_total > first_total,
        "mean speedup: slp {} vs first {}",
        slp_total / points as f64,
        first_total / points as f64
    );
    Ok(())
}

#[test]
fn flows_are_deterministic_across_runs() -> Result<(), Error> {
    let bench = &paper_benchmarks()[0];
    let run = || -> Result<_, Error> {
        Optimizer::for_kernel(bench.kernel.clone())?
            .target(xentium())
            .constraint_db(-40.0)
            .flow(FlowKind::WloSlp)
            .activations(100)
            .run()
    };
    let a = run()?;
    let b = run()?;
    assert_eq!(a.group_count, b.group_count);
    assert_eq!(a.cycles_simd, b.cycles_simd);
    assert_eq!(a.noise_db, b.noise_db);
    Ok(())
}

#[test]
fn scalar_program_never_contains_vector_ops() -> Result<(), Error> {
    let bench = &paper_benchmarks()[2]; // CONV
    let report = Optimizer::for_kernel(bench.kernel.clone())?
        .target(xentium())
        .constraint_db(-30.0)
        .flow(FlowKind::WloSlp)
        .run()?;
    for block in &report.scalar.blocks {
        for op in &block.ops {
            assert!(
                !matches!(
                    op.query,
                    OpQuery::VAdd(_)
                        | OpQuery::VMul(_)
                        | OpQuery::VLoad(_)
                        | OpQuery::VStore(_)
                        | OpQuery::VShift(_)
                ),
                "scalar lowering leaked a vector op"
            );
        }
    }
    Ok(())
}
