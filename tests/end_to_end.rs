//! Cross-crate integration: complete flows on the paper's benchmarks.

use slpwlo::core::{prepare, wlo_first_flow, wlo_slp_flow, TabuOptions};
use slpwlo::kernels::all_benchmarks;
use slpwlo::sim::{speedup, total_cycles};
use slpwlo::targets::{all_targets, xentium};

#[test]
fn both_flows_meet_every_constraint_on_every_benchmark() {
    for bench in all_benchmarks() {
        let prep = prepare(bench.kernel.clone());
        let target = xentium();
        for db in [-15.0, -45.0, -75.0] {
            let joint = wlo_slp_flow(&prep, &target, db);
            let first = wlo_first_flow(&prep, &target, db, &TabuOptions::default());
            assert!(
                joint.noise_db <= db,
                "{} WLO-SLP at {db}: {:.1} dB",
                bench.name,
                joint.noise_db
            );
            assert!(
                first.noise_db <= db,
                "{} WLO-First at {db}: {:.1} dB",
                bench.name,
                first.noise_db
            );
        }
    }
}

#[test]
fn joint_flow_wins_on_average_across_the_grid() {
    // The paper's headline: WLO-SLP consistently beats WLO-First.
    let mut slp_total = 0.0;
    let mut first_total = 0.0;
    let mut points = 0usize;
    let mut slp_wins = 0usize;
    for bench in all_benchmarks() {
        let prep = prepare(bench.kernel.clone());
        for target in all_targets() {
            for db in [-15.0, -45.0] {
                let joint = wlo_slp_flow(&prep, &target, db);
                let first = wlo_first_flow(&prep, &target, db, &TabuOptions::default());
                let base = total_cycles(&target, &first.scalar, bench.activations);
                let s_slp = speedup(base, total_cycles(&target, &joint.simd, bench.activations));
                let s_first = speedup(base, total_cycles(&target, &first.simd, bench.activations));
                slp_total += s_slp;
                first_total += s_first;
                if s_slp >= s_first {
                    slp_wins += 1;
                }
                points += 1;
            }
        }
    }
    assert!(
        slp_total > first_total,
        "mean speedup: slp {} vs first {}",
        slp_total / points as f64,
        first_total / points as f64
    );
    assert!(
        slp_wins * 10 >= points * 9,
        "WLO-SLP must win at least 90% of cells: {slp_wins}/{points}"
    );
}

#[test]
fn flows_are_deterministic_across_runs() {
    let bench = &all_benchmarks()[0];
    let prep1 = prepare(bench.kernel.clone());
    let prep2 = prepare(bench.kernel.clone());
    let t = xentium();
    let a = wlo_slp_flow(&prep1, &t, -40.0);
    let b = wlo_slp_flow(&prep2, &t, -40.0);
    assert_eq!(a.group_count, b.group_count);
    assert_eq!(
        total_cycles(&t, &a.simd, 100),
        total_cycles(&t, &b.simd, 100)
    );
    assert_eq!(a.noise_db, b.noise_db);
}

#[test]
fn scalar_program_never_contains_vector_ops() {
    use slpwlo::targets::OpQuery;
    let bench = &all_benchmarks()[2]; // CONV
    let prep = prepare(bench.kernel.clone());
    let flow = wlo_slp_flow(&prep, &xentium(), -30.0);
    for block in &flow.scalar.blocks {
        for op in &block.ops {
            assert!(
                !matches!(
                    op.query,
                    OpQuery::VAdd(_)
                        | OpQuery::VMul(_)
                        | OpQuery::VLoad(_)
                        | OpQuery::VStore(_)
                        | OpQuery::VShift(_)
                ),
                "scalar lowering leaked a vector op"
            );
        }
    }
}
