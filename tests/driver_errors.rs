//! Driver error paths: every user-input failure mode surfaces as a
//! typed `slpwlo::Error` instead of a panic.

use slpwlo::ir::builder::KernelBuilder;
use slpwlo::targets::xentium;
use slpwlo::{Error, FlowKind, Optimizer};

const GOOD: &str = r#"
kernel good {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.25, -0.5, 0.125, 0.0625 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..4 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

#[test]
fn malformed_source_returns_parse_error() {
    for src in [
        "",
        "kernel {",
        "kernel k { input x range [-1 1]; output y; y = x; }",
        "kernel k { input x range [1, -1]; output y; y = x; }",
        "kernel k { input x range [nan, 1]; output y; y = x; }",
        "kernel k { output y; y = undeclared_name; }",
        "garbage £$% tokens",
    ] {
        match Optimizer::for_source(src) {
            Err(Error::Parse(_)) => {}
            Err(other) => panic!("{src:?}: expected Parse, got {other:?}"),
            Ok(_) => panic!("{src:?}: must not parse"),
        }
    }
}

#[test]
fn parse_errors_carry_location_and_chain() {
    use std::error::Error as _;
    let err = Optimizer::for_source("kernel k {\n  input x range [-1, 1];\n  !!\n}")
        .expect_err("must fail");
    // Displayable, with a source chain down to the IR error.
    assert!(err.to_string().contains("parse error"), "{err}");
    assert!(err.source().is_some());
}

#[test]
fn invalid_input_range_is_typed() {
    use slpwlo::ir::IrError;
    // lo > hi: programmatically-built kernels fail `Kernel::validate`
    // (run by `try_finish`) with a typed error instead of a delayed
    // panic deep inside range analysis.
    let mut b = KernelBuilder::new("bad_range");
    let x = b.input("x", 1.0, -1.0);
    let y = b.output("y");
    let xv = b.read_input(x);
    b.set_output(y, xv);
    match b.try_finish() {
        Err(IrError::InvalidRange { input, range }) => {
            assert_eq!(input, "x");
            assert_eq!(range, "[1, -1]");
        }
        other => panic!("expected InvalidRange, got {other:?}"),
    }

    // Non-finite bounds are rejected the same way.
    let mut b = KernelBuilder::new("nan_range");
    let x = b.input("x", f64::NEG_INFINITY, 1.0);
    let y = b.output("y");
    let xv = b.read_input(x);
    b.set_output(y, xv);
    assert!(matches!(b.try_finish(), Err(IrError::InvalidRange { .. })));
}

#[test]
fn unsatisfiable_constraint_returns_typed_error_not_panic() -> Result<(), Error> {
    let opt = Optimizer::for_source(GOOD)?
        .target(xentium())
        .flow(FlowKind::WloSlp);
    let floor = opt.noise_floor_db();
    // Just above the floor: satisfiable.
    assert!(opt.constraint_db(floor + 1.0).run().is_ok());
    // Below the floor: typed error carrying both numbers.
    let opt = Optimizer::for_source(GOOD)?.target(xentium());
    match opt.constraint_db(floor - 10.0).run() {
        Err(Error::Unsatisfiable {
            flow,
            constraint_db,
            floor_db,
        }) => {
            assert_eq!(flow, "wlo-slp");
            assert!((floor_db - floor).abs() < 1e-9);
            assert!((constraint_db - (floor - 10.0)).abs() < 1e-9);
        }
        other => panic!("expected Unsatisfiable, got {other:?}"),
    }
    Ok(())
}

#[test]
fn sweep_rejects_any_unsatisfiable_point_up_front() -> Result<(), Error> {
    let opt = Optimizer::for_source(GOOD)?;
    let floor = opt.noise_floor_db();
    let err = opt.sweep(&[-20.0, floor - 5.0, -40.0]).unwrap_err();
    assert!(matches!(err, Error::Unsatisfiable { .. }), "{err}");
    Ok(())
}

#[test]
fn invalid_builder_configuration_is_typed() -> Result<(), Error> {
    // Missing constraint on a quantizing flow.
    let err = Optimizer::for_source(GOOD)?
        .flow(FlowKind::WloFirst)
        .run()
        .unwrap_err();
    assert!(
        matches!(
            err,
            Error::Config {
                field: "constraint_db",
                ..
            }
        ),
        "{err}"
    );

    // Non-finite constraint.
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = Optimizer::for_source(GOOD)?
            .constraint_db(bad)
            .run()
            .unwrap_err();
        assert!(
            matches!(
                err,
                Error::Config {
                    field: "constraint_db",
                    ..
                }
            ),
            "{err}"
        );
    }

    // Zero-activation cycle reports.
    let err = Optimizer::for_source(GOOD)?
        .constraint_db(-30.0)
        .activations(0)
        .run()
        .unwrap_err();
    assert!(
        matches!(
            err,
            Error::Config {
                field: "activations",
                ..
            }
        ),
        "{err}"
    );

    // Unknown flow names.
    let err = Optimizer::for_source(GOOD)?
        .flow_named("hyperopt")
        .unwrap_err();
    match err {
        Error::UnknownFlow(name) => assert_eq!(name, "hyperopt"),
        other => panic!("expected UnknownFlow, got {other:?}"),
    }

    // Sweeping the float flow (which ignores constraints) is refused.
    let err = Optimizer::for_source(GOOD)?
        .flow(FlowKind::Float)
        .sweep(&[-20.0])
        .unwrap_err();
    assert!(matches!(err, Error::Config { field: "flow", .. }), "{err}");
    Ok(())
}

#[test]
fn export_failures_are_typed() -> Result<(), Error> {
    let report = Optimizer::for_source(GOOD)?.constraint_db(-30.0).run()?;
    // Exporting under a path whose parent is a *file* must fail with a
    // structured Export error, not a panic.
    let dir = std::env::temp_dir().join(format!("slpwlo_export_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a directory").expect("temp file");
    match report.export_c(blocker.join("sub")) {
        Err(Error::Export { path, .. }) => assert!(path.starts_with(&blocker)),
        other => panic!("expected Export error, got {other:?}"),
    }
    // The float flow has nothing to export: typed Config error.
    let float = Optimizer::for_source(GOOD)?.flow(FlowKind::Float).run()?;
    assert!(matches!(float.export_c(&dir), Err(Error::Config { .. })));
    // Happy path still works, and the emitted artifacts are non-empty.
    let exported = report.export_c(&dir)?;
    for p in [&exported.fixed_c, &exported.simd_c, &exported.intrinsics_h] {
        assert!(
            std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false),
            "{p:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
