/* dot256 — SIMD C over the abstract macro API */
/* target: XENTIUM */
#include "slpwlo_simd_xentium.h"

/* t format <-5,21> (quantized at compile time) */
static const int16_t t[256] = { 0, 1, 9, 29, 60, 96, 123, 126, 85, -10, -159, -343, -521, -642, -645, -486, -152, 323, 848, 1288, 1492, 1333, 765, -145, -1196, -2091, -2506, -2204, -1136, 483, 2192, 3394, 3558, 2442, 257, -2312, -4297, -4791, -3363, -349, 3154, 5639, 5828, 3333, -991, -5252, -7310, -5852, -1233, 4438, 8190, 7734, 2886, -3999, -9064, -9081, -3558, 4569, 10357, 9837, 2799, -6568, -12028, -9439, 0, 9987, 13197, 6708, -5240, -13757, -11871, -376, 11988, 15010, 5532, -9112, -16480, -9603, 6185, 16982, 12488, -3922, -17213, -14320, 2758, 17684, 15217, -2960, -18641, -15119, 4709, 20010, 13713, -8069, -21311, -10464, 12817, 21582, 4819, -18150, -19425, 3338, 22383, 13380, -12997, -22943, -2847, 21382, 17163, -10540, -24098, -4195, 21895, 17036, -12487, -24098, -245, 24203, 12349, -18436, -21037, 9112, 25105, 1264, -24721, -10695, 20909, 17983, -15016, -22708, 8305, 25024, -1750, -25418, -4036, 24501, 8757, -22859, -12349, 20983, 14890, -19239, -16518, 17871, 17376, -17022, -17572, 16750, 17163, -17045, -16150, 17834, 14483, -18973, -12083, 20244, 8871, -21342, -4819, 21882, 0, -21420, 5340, 19514, -10732, -15827, 15466, 10273, -18641, -3174, 19326, -4622, -16829, 11738, 11041, -16476, -2763, 17279, -6185, -13385, 13237, 5460, -15863, 4144, 12692, -11875, -4560, 14331, -5240, -10075, 12042, 971, -12148, 8132, 5328, -11824, 4304, 7694, -10357, 1393, 8548, -8676, -403, 8469, -7281, -1206, 7895, -6342, -1233, 7062, -5819, -693, 6046, -5554, 228, 4824, -5326, 1339, 3363, -4895, 2401, 1698, -4062, 3125, 0, -2757, 3230, -1406, -1136, 2580, -2140, 397, 1333, -1976, 1331, -15, -1077, 1364, -848, -17, 688, -856, 557, -63, -328, 453, -334, 106, 85, -163, 136, -64, 4, 19, -15, 4 };
/* win format <1,15> */
static int16_t win[256];
/* acc canonical format <2,30> */
static int64_t acc = 0;

void dot256_step(double x_in, double *y_out)
{
    /* bb0: 3 ops, executes 1x per activation */
    {
        int64_t v0_0 = slpwlo_quant(x_in, 15, INT64_C(-32768), INT64_C(32767));
        for (int k = 255; k > 0; k--) win[k] = win[k-1]; /* delay line */
        win[0] = (int16_t)v0_0;
        /* variable commits (live-in snapshot semantics) */
        int64_t v0_def0 = slpwlo_shl(INT64_C(0), 15);
        acc = v0_def0;
    }
    for (int i1 = 0; i1 < 32; i1++) {
        /* bb1: 41 ops, executes 32x per activation, loop body */
        slpwlo_vec_t v1_0 = VLOAD2(&t[8*i1]);
        slpwlo_vec_t v1_1 = VLOAD2(&win[8*i1]);
        slpwlo_vec_t v1_2 = VMUL2(v1_0, v1_1);
        slpwlo_vec_t v1_3_q = VSH2(v1_2, 15, 15);
        slpwlo_vec_t v1_3 = VSAT2(v1_3_q, INT64_C(-32768), INT64_C(32767), INT64_C(-32768), INT64_C(32767));
        int64_t v1_4 = UNPACK(v1_3, 0);
        int64_t v1_5 = slpwlo_shr(v1_4, 6);
        int64_t v1_6 = slpwlo_sat(slpwlo_shr((acc), 15) + (v1_5), INT64_C(-32768), INT64_C(32767));
        int64_t v1_7 = UNPACK(v1_3, 1);
        int64_t v1_8 = slpwlo_shr(v1_7, 6);
        int64_t v1_9 = slpwlo_sat((v1_6) + (v1_8), INT64_C(-32768), INT64_C(32767));
        slpwlo_vec_t v1_10 = VLOAD2(&t[8*i1 + 2]);
        slpwlo_vec_t v1_11 = VLOAD2(&win[8*i1 + 2]);
        slpwlo_vec_t v1_12 = VMUL2(v1_10, v1_11);
        slpwlo_vec_t v1_13_q = VSH2(v1_12, 15, 15);
        slpwlo_vec_t v1_13 = VSAT2(v1_13_q, INT64_C(-32768), INT64_C(32767), INT64_C(-32768), INT64_C(32767));
        int64_t v1_14 = UNPACK(v1_13, 0);
        int64_t v1_15 = slpwlo_shr(v1_14, 6);
        int64_t v1_16 = slpwlo_sat((v1_9) + (v1_15), INT64_C(-32768), INT64_C(32767));
        int64_t v1_17 = UNPACK(v1_13, 1);
        int64_t v1_18 = slpwlo_shr(v1_17, 6);
        int64_t v1_19 = slpwlo_sat((v1_16) + (v1_18), INT64_C(-32768), INT64_C(32767));
        slpwlo_vec_t v1_20 = VLOAD2(&t[8*i1 + 4]);
        slpwlo_vec_t v1_21 = VLOAD2(&win[8*i1 + 4]);
        slpwlo_vec_t v1_22 = VMUL2(v1_20, v1_21);
        slpwlo_vec_t v1_23_q = VSH2(v1_22, 15, 15);
        slpwlo_vec_t v1_23 = VSAT2(v1_23_q, INT64_C(-32768), INT64_C(32767), INT64_C(-32768), INT64_C(32767));
        int64_t v1_24 = UNPACK(v1_23, 0);
        int64_t v1_25 = slpwlo_shr(v1_24, 6);
        int64_t v1_26 = slpwlo_sat((v1_19) + (v1_25), INT64_C(-32768), INT64_C(32767));
        int64_t v1_27 = UNPACK(v1_23, 1);
        int64_t v1_28 = slpwlo_shr(v1_27, 6);
        int64_t v1_29 = slpwlo_sat((v1_26) + (v1_28), INT64_C(-32768), INT64_C(32767));
        slpwlo_vec_t v1_30 = VLOAD2(&t[8*i1 + 6]);
        slpwlo_vec_t v1_31 = VLOAD2(&win[8*i1 + 6]);
        slpwlo_vec_t v1_32 = VMUL2(v1_30, v1_31);
        slpwlo_vec_t v1_33_q = VSH2(v1_32, 15, 15);
        slpwlo_vec_t v1_33 = VSAT2(v1_33_q, INT64_C(-32768), INT64_C(32767), INT64_C(-32768), INT64_C(32767));
        int64_t v1_34 = UNPACK(v1_33, 0);
        int64_t v1_35 = slpwlo_shr(v1_34, 6);
        int64_t v1_36 = slpwlo_sat((v1_29) + (v1_35), INT64_C(-32768), INT64_C(32767));
        int64_t v1_37 = slpwlo_shr(v1_36, 1);
        int64_t v1_38 = UNPACK(v1_33, 1);
        int64_t v1_39 = slpwlo_shr(v1_38, 7);
        int64_t v1_40 = slpwlo_sat((v1_37) + (v1_39), INT64_C(-32768), INT64_C(32767));
        /* variable commits (live-in snapshot semantics) */
        int64_t v1_def0 = slpwlo_shl(v1_40, 16);
        acc = v1_def0;
    }
    /* bb2: 1 ops, executes 1x per activation */
    {
        *y_out = ldexp((double)(acc), -30);
    }
}
