/* fir8 — SIMD C over the abstract macro API */
/* target: XENTIUM */
#include "slpwlo_simd_xentium.h"

/* c format <0,16> (quantized at compile time) */
static const int16_t c[8] = { 7209, -15073, 20316, 11141, -3277, 17695, -8520, 4588 };
/* dl format <1,15> */
static int16_t dl[8];
/* acc canonical format <2,31> */
static int64_t acc = 0;

void fir8_step(double x_in, double *y_out)
{
    /* bb0: 4 ops, executes 1x per activation */
    {
        int64_t v0_0 = slpwlo_quant(x_in, 31, INT64_C(-2147483648), INT64_C(2147483647));
        int64_t v0_1 = slpwlo_shr(v0_0, 16);
        for (int k = 7; k > 0; k--) dl[k] = dl[k-1]; /* delay line */
        dl[0] = (int16_t)v0_1;
        /* variable commits (live-in snapshot semantics) */
        int64_t v0_def0 = INT64_C(0);
        acc = v0_def0;
    }
    for (int i1 = 0; i1 < 2; i1++) {
        /* bb1: 25 ops, executes 2x per activation, loop body */
        int64_t v1_0 = c[4*i1];
        int64_t v1_1 = dl[4*i1];
        int64_t v1_2 = (v1_0) * (v1_1);
        int64_t v1_3 = slpwlo_sat(slpwlo_shr(v1_2, 15), INT64_C(-32768), INT64_C(32767));
        int64_t v1_4 = slpwlo_shl(v1_3, 15);
        int64_t v1_5 = slpwlo_sat((acc) + (v1_4), INT64_C(-2147483648), INT64_C(2147483647));
        int64_t v1_6 = c[4*i1 + 1];
        int64_t v1_7 = dl[4*i1 + 1];
        int64_t v1_8 = (v1_6) * (v1_7);
        int64_t v1_9 = slpwlo_sat(slpwlo_shr(v1_8, 15), INT64_C(-32768), INT64_C(32767));
        int64_t v1_10 = slpwlo_shr(v1_5, 1);
        int64_t v1_11 = slpwlo_shl(v1_9, 14);
        int64_t v1_12 = slpwlo_sat((v1_10) + (v1_11), INT64_C(-2147483648), INT64_C(2147483647));
        int64_t v1_13 = c[4*i1 + 2];
        int64_t v1_14 = dl[4*i1 + 2];
        int64_t v1_15 = (v1_13) * (v1_14);
        int64_t v1_16 = slpwlo_sat(slpwlo_shl(v1_15, 1), INT64_C(-2147483648), INT64_C(2147483647));
        int64_t v1_17 = slpwlo_shr(v1_16, 2);
        int64_t v1_18 = slpwlo_sat((v1_12) + (v1_17), INT64_C(-2147483648), INT64_C(2147483647));
        int64_t v1_19 = c[4*i1 + 3];
        int64_t v1_20 = dl[4*i1 + 3];
        int64_t v1_21 = (v1_19) * (v1_20);
        int64_t v1_22 = slpwlo_sat(slpwlo_shl(v1_21, 2), INT64_C(-2147483648), INT64_C(2147483647));
        int64_t v1_23 = slpwlo_shr(v1_22, 3);
        int64_t v1_24 = slpwlo_sat((v1_18) + (v1_23), INT64_C(-2147483648), INT64_C(2147483647));
        /* variable commits (live-in snapshot semantics) */
        int64_t v1_def0 = slpwlo_shl(v1_24, 1);
        acc = v1_def0;
    }
    /* bb2: 1 ops, executes 1x per activation */
    {
        *y_out = ldexp((double)(acc), -31);
    }
}
