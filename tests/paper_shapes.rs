//! Shape assertions against the paper's reported results: not absolute
//! numbers (the substrate is a model, not the authors' testbed), but who
//! wins, by roughly what factor, and how curves move. All points run
//! through the unified `Optimizer` driver.

use slpwlo::kernels::paper_benchmarks;
use slpwlo::targets::{st240, vex, xentium};
use slpwlo::{Error, FlowKind, Optimizer};

/// Figure 6 shape: XENTIUM (soft float) speedups are one to two orders
/// of magnitude; ST240 (hardware float) stays near 1x.
#[test]
fn fig6_shape_soft_float_vs_hw_float() -> Result<(), Error> {
    for bench in paper_benchmarks() {
        let db = -25.0;
        let mut opt = Optimizer::for_kernel(bench.kernel.clone())?.activations(bench.activations);

        opt = opt.target(xentium()).flow(FlowKind::Float);
        let float_x = opt.run()?;
        opt = opt.constraint_db(db).flow(FlowKind::WloSlp);
        let fx = opt.run()?;
        let s_x = fx.speedup_over(float_x.cycles_simd);
        assert!(
            (10.0..=60.0).contains(&s_x),
            "{} on XENTIUM: float speedup {s_x:.1} outside the paper's band",
            bench.name
        );

        opt = opt.target(st240()).flow(FlowKind::Float);
        let float_s = opt.run()?;
        opt = opt.flow(FlowKind::WloSlp);
        let fs = opt.run()?;
        let s_s = fs.speedup_over(float_s.cycles_simd);
        assert!(
            (0.7..=2.0).contains(&s_s),
            "{} on ST240: float speedup {s_s:.2} outside the paper's band",
            bench.name
        );
    }
    Ok(())
}

/// Figure 4 shape: the joint flow achieves speedups above 1 at loose
/// constraints, while the baseline cannot meaningfully exploit SLP on
/// the narrow-issue targets. (In the paper the uncoordinated baseline
/// even degrades *below* 1x by packing data whose formats its WLO never
/// aligned; our extraction's net-benefit admission refuses such
/// self-harming packs, so the reproduction's baseline flatlines at ~1x
/// instead — a strictly stronger baseline that the joint flow must
/// still beat.)
#[test]
fn fig4_shape_joint_wins_baseline_degrades() -> Result<(), Error> {
    let bench = &paper_benchmarks()[0]; // FIR
    let mut opt = Optimizer::for_kernel(bench.kernel.clone())?.activations(bench.activations);
    for target in [st240(), vex(1)] {
        let name = target.name.clone();
        opt = opt.target(target);
        let mut best_joint = 0.0f64;
        let mut best_first = 0.0f64;
        for db in [-10.0, -30.0, -50.0] {
            opt = opt.constraint_db(db).flow(FlowKind::WloSlp);
            let joint = opt.run()?;
            opt = opt.flow(FlowKind::WloFirst);
            let first = opt.run()?;
            let base = first.cycles_scalar;
            let s_joint = joint.speedup_over(base);
            let s_first = first.speedup_over(base);
            // The joint flow may dip where wide groups with pack overhead
            // get selected (the paper keeps this behaviour deliberately —
            // section V-D's CONV/XENTIUM discussion) but never collapses.
            assert!(
                s_joint >= 0.6,
                "{name}: joint speedup {s_joint:.2} at {db} dB"
            );
            best_joint = best_joint.max(s_joint);
            best_first = best_first.max(s_first);
        }
        assert!(
            best_joint > 1.0,
            "{name}: joint flow must beat the scalar baseline somewhere, best {best_joint:.2}"
        );
        assert!(
            best_first <= 1.1,
            "{name}: the uncoordinated baseline must not meaningfully exploit SLP \
             (got {best_first:.2}); accuracy-aware coordination is the paper's point"
        );
        assert!(
            best_joint >= best_first * 0.975,
            "{name}: joint {best_joint:.2} must at least match baseline {best_first:.2} \
             (cell-exact comparisons live in tests/end_to_end.rs)"
        );
    }
    Ok(())
}

/// Table I shape: the joint flow's cycles never *decrease* by more than
/// a small wobble as the constraint tightens across the precision
/// transition (the paper's own VEX-4 column wobbles too), and the tight
/// end is slower than the loose end.
#[test]
fn table1_shape_cycles_grow_with_tighter_constraints() -> Result<(), Error> {
    // The grid crosses this setup's 16-bit precision transition (about
    // -100 dB for FIR-64; the paper's kernels transition within its
    // -5..-70 axis).
    let bench = &paper_benchmarks()[0]; // FIR
    let grid = [-10.0, -70.0, -90.0, -100.0, -110.0];
    let reports = Optimizer::for_kernel(bench.kernel.clone())?
        .target(xentium())
        .activations(bench.activations)
        .flow(FlowKind::WloSlp)
        .sweep(&grid)?;
    let cycles: Vec<u64> = reports.iter().map(|r| r.cycles_simd).collect();
    assert!(
        *cycles.last().unwrap() > *cycles.first().unwrap(),
        "tight constraints must cost cycles: {cycles:?}"
    );
    for w in cycles.windows(2) {
        assert!(
            w[1] as f64 >= w[0] as f64 * 0.9,
            "cycles may wobble (the paper's VEX-4 column does too) but not collapse: {cycles:?}"
        );
    }
    Ok(())
}

/// The number of *packed operations* decays as the constraint tightens
/// through the precision transition. (Group count alone is not monotone:
/// one 4-lane group replaces two pairs.) Constraints below the target's
/// noise floor are a typed error, not a silent empty result.
#[test]
fn packed_lanes_decay_with_precision() -> Result<(), Error> {
    let bench = &paper_benchmarks()[2]; // CONV
    let opt = Optimizer::for_kernel(bench.kernel.clone())?
        .target(vex(4))
        .flow(FlowKind::WloSlp);
    let lanes = |r: &slpwlo::Report| -> u32 {
        // Count packed nodes through the lowered vector ops' lane sum.
        let mut n = 0;
        for b in &r.simd.blocks {
            for op in &b.ops {
                if let slpwlo::targets::OpQuery::VAdd(l)
                | slpwlo::targets::OpQuery::VMul(l)
                | slpwlo::targets::OpQuery::VLoad(l) = op.query
                {
                    n += l;
                }
            }
        }
        n
    };
    let reports = opt.sweep(&[-10.0, -100.0])?;
    let (loose, tight) = (lanes(&reports[0]), lanes(&reports[1]));
    assert!(
        loose >= tight,
        "packed lanes must not grow with tighter constraints: {loose} vs {tight}"
    );
    // -160 dB is still (barely) satisfiable at full word length, but
    // nothing packs there.
    let opt = opt.constraint_db(-160.0);
    let impossible = opt.run()?;
    assert_eq!(impossible.group_count, 0, "nothing packs at -160 dB");
    // Below the widest specification's noise floor the driver refuses
    // with a structured error instead of emitting a program that
    // silently violates the constraint.
    let floor = opt.noise_floor_db();
    match opt.constraint_db(floor - 10.0).run() {
        Err(Error::Unsatisfiable {
            constraint_db,
            floor_db,
            ..
        }) => {
            assert!((floor_db - floor).abs() < 1e-9);
            assert!(constraint_db < floor_db);
        }
        other => panic!("expected Unsatisfiable below the {floor:.1} dB floor, got {other:?}"),
    }
    Ok(())
}
