//! Shape assertions against the paper's reported results: not absolute
//! numbers (the substrate is a model, not the authors' testbed), but who
//! wins, by roughly what factor, and how curves move.

use slpwlo::core::{prepare, wlo_first_flow, wlo_slp_flow, TabuOptions};
use slpwlo::core::lower_float;
use slpwlo::kernels::all_benchmarks;
use slpwlo::sim::{speedup, total_cycles};
use slpwlo::targets::{st240, vex, xentium};

/// Figure 6 shape: XENTIUM (soft float) speedups are one to two orders
/// of magnitude; ST240 (hardware float) stays near 1x.
#[test]
fn fig6_shape_soft_float_vs_hw_float() {
    for bench in all_benchmarks() {
        let prep = prepare(bench.kernel.clone());
        let float_prog = lower_float(&prep.kernel);
        let db = -25.0;

        let xent = xentium();
        let fx = wlo_slp_flow(&prep, &xent, db);
        let s_x = speedup(
            total_cycles(&xent, &float_prog, bench.activations),
            total_cycles(&xent, &fx.simd, bench.activations),
        );
        assert!(
            (10.0..=60.0).contains(&s_x),
            "{} on XENTIUM: float speedup {s_x:.1} outside the paper's band",
            bench.name
        );

        let st = st240();
        let fs = wlo_slp_flow(&prep, &st, db);
        let s_s = speedup(
            total_cycles(&st, &float_prog, bench.activations),
            total_cycles(&st, &fs.simd, bench.activations),
        );
        assert!(
            (0.7..=2.0).contains(&s_s),
            "{} on ST240: float speedup {s_s:.2} outside the paper's band",
            bench.name
        );
    }
}

/// Figure 4 shape: the joint flow achieves speedups above 1 at loose
/// constraints, while the baseline frequently degrades below 1 on the
/// narrow-issue targets.
#[test]
fn fig4_shape_joint_wins_baseline_degrades() {
    let bench = &all_benchmarks()[0]; // FIR
    let prep = prepare(bench.kernel.clone());
    for target in [st240(), vex(1)] {
        let mut first_below_one = false;
        let mut best_joint = 0.0f64;
        for db in [-10.0, -30.0, -50.0] {
            let joint = wlo_slp_flow(&prep, &target, db);
            let first = wlo_first_flow(&prep, &target, db, &TabuOptions::default());
            let base = total_cycles(&target, &first.scalar, bench.activations);
            let s_joint = speedup(base, total_cycles(&target, &joint.simd, bench.activations));
            let s_first = speedup(base, total_cycles(&target, &first.simd, bench.activations));
            // The joint flow may dip where wide groups with pack overhead
            // get selected (the paper keeps this behaviour deliberately —
            // section V-D's CONV/XENTIUM discussion) but never collapses.
            assert!(
                s_joint >= 0.6,
                "{}: joint speedup {s_joint:.2} at {db} dB",
                target.name
            );
            best_joint = best_joint.max(s_joint);
            if s_first < 1.0 {
                first_below_one = true;
            }
        }
        assert!(
            best_joint > 1.0,
            "{}: joint flow must beat the scalar baseline somewhere, best {best_joint:.2}",
            target.name
        );
        assert!(
            first_below_one,
            "{}: WLO-First must degrade below 1x somewhere (paper's key claim)",
            target.name
        );
    }
}

/// Table I shape: the joint flow's cycles never *decrease* by more than
/// a small wobble as the constraint tightens across the precision
/// transition (the paper's own VEX-4 column wobbles too), and the tight
/// end is slower than the loose end.
#[test]
fn table1_shape_cycles_grow_with_tighter_constraints() {
    let bench = &all_benchmarks()[0]; // FIR
    let prep = prepare(bench.kernel.clone());
    let target = xentium();
    // The grid crosses this setup's 16-bit precision transition
    // (about -100 dB for FIR-64; the paper's kernels transition within
    // its -5..-70 axis).
    let grid: Vec<f64> = vec![-10.0, -70.0, -90.0, -100.0, -110.0];
    let cycles: Vec<u64> = grid
        .iter()
        .map(|&db| {
            let f = wlo_slp_flow(&prep, &target, db);
            total_cycles(&target, &f.simd, bench.activations)
        })
        .collect();
    assert!(
        *cycles.last().unwrap() > *cycles.first().unwrap(),
        "tight constraints must cost cycles: {cycles:?}"
    );
    for w in cycles.windows(2) {
        assert!(
            w[1] as f64 >= w[0] as f64 * 0.9,
            "cycles may wobble (the paper's VEX-4 column does too) but not collapse: {cycles:?}"
        );
    }
}

/// The number of *packed operations* decays as the constraint tightens
/// through the precision transition. (Group count alone is not monotone:
/// one 4-lane group replaces two pairs.)
#[test]
fn packed_lanes_decay_with_precision() {
    let bench = &all_benchmarks()[2]; // CONV
    let prep = prepare(bench.kernel.clone());
    let target = vex(4);
    let lanes = |db: f64| -> u32 {
        // Count packed nodes through the lowered vector ops' lane sum.
        let flow = wlo_slp_flow(&prep, &target, db);
        let mut n = 0;
        for b in &flow.simd.blocks {
            for op in &b.ops {
                if let slpwlo::targets::OpQuery::VAdd(l)
                | slpwlo::targets::OpQuery::VMul(l)
                | slpwlo::targets::OpQuery::VLoad(l) = op.query
                {
                    n += l;
                }
            }
        }
        n
    };
    let loose = lanes(-10.0);
    let tight = lanes(-100.0);
    assert!(
        loose >= tight,
        "packed lanes must not grow with tighter constraints: {loose} vs {tight}"
    );
    let impossible = wlo_slp_flow(&prep, &target, -160.0);
    assert_eq!(impossible.group_count, 0, "nothing packs at -160 dB");
}
