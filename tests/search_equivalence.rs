//! The incremental-evaluator migration must not change any search
//! outcome: tabu WLO and the joint SLP-aware WLO (SETMAXWL + scaling
//! optimization) must produce **identical** specifications — same word
//! lengths, same noise, same lowered cycle counts — whether the accuracy
//! oracle is the plain full-recompute [`AnalyticalEvaluator`] (the
//! pre-migration behaviour, via the trait's default trial methods) or the
//! [`IncrementalEvaluator`] the flows now use.

use slpwlo::accuracy::{AccuracyEvaluator, IncrementalEvaluator};
use slpwlo::core::total_cycles;
use slpwlo::core::{prepare, tabu_wlo, wlo_slp, TabuOptions};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::kernels::{conv3x3, fir64, iir10};
use slpwlo::targets::xentium;

fn assert_specs_identical(
    kernel: &slpwlo::ir::Kernel,
    a: &FixedPointSpec,
    b: &FixedPointSpec,
    ctx: &str,
) {
    for key in a.optimizable_keys(kernel) {
        assert_eq!(
            a.format(key),
            b.format(key),
            "{ctx}: format of {key} differs"
        );
    }
}

#[test]
fn tabu_is_identical_with_and_without_incremental_evaluation() {
    for (kernel, db) in [(fir64(), -40.0), (iir10(), -35.0), (conv3x3(), -50.0)] {
        let name = kernel.name().to_string();
        let prep = prepare(kernel);
        let target = xentium();

        let mut spec_full =
            FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, target.max_wl());
        let cost_full = tabu_wlo(
            &prep.kernel,
            &mut spec_full,
            &prep.eval,
            db,
            &target.scalar_wls,
            &TabuOptions::default(),
        );

        let mut spec_inc = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, target.max_wl());
        let inc = IncrementalEvaluator::new(&prep.eval);
        let cost_inc = tabu_wlo(
            &prep.kernel,
            &mut spec_inc,
            &inc,
            db,
            &target.scalar_wls,
            &TabuOptions::default(),
        );

        assert_eq!(cost_full, cost_inc, "{name}: tabu cost diverged");
        assert_specs_identical(&prep.kernel, &spec_full, &spec_inc, &name);
        assert_eq!(
            prep.eval.noise_db(&spec_full).to_bits(),
            prep.eval.noise_db(&spec_inc).to_bits(),
            "{name}: noise diverged"
        );
    }
}

#[test]
fn wlo_slp_is_identical_with_and_without_incremental_evaluation() {
    for (kernel, db) in [(fir64(), -35.0), (iir10(), -30.0), (conv3x3(), -45.0)] {
        let name = kernel.name().to_string();
        let prep = prepare(kernel);
        let target = xentium();

        let res_full = wlo_slp(&prep.kernel, &target, &prep.eval, db, &prep.ranges);
        let inc = IncrementalEvaluator::new(&prep.eval);
        let res_inc = wlo_slp(&prep.kernel, &target, &inc, db, &prep.ranges);

        // Same SETMAXWL outcome: groups, word lengths, noise.
        assert_eq!(
            res_full.group_count(),
            res_inc.group_count(),
            "{name}: group count diverged"
        );
        assert_specs_identical(&prep.kernel, &res_full.spec, &res_inc.spec, &name);
        assert_eq!(
            prep.eval.noise_db(&res_full.spec).to_bits(),
            prep.eval.noise_db(&res_inc.spec).to_bits(),
            "{name}: noise diverged"
        );
        for (bf, bi) in res_full.blocks.iter().zip(&res_inc.blocks) {
            assert_eq!(bf.scalopt, bi.scalopt, "{name}: scalopt stats diverged");
            assert_eq!(
                bf.groups.len(),
                bi.groups.len(),
                "{name}: per-block groups diverged"
            );
        }

        // Same cycle counts after lowering both results.
        let lower = |res: &slpwlo::core::WloSlpResult| {
            let blocks: Vec<_> = res
                .blocks
                .iter()
                .map(|b| (b.block.clone(), b.dfg.clone(), b.groups.clone()))
                .collect();
            let prog = slpwlo::core::lower_fixed(&prep.kernel, &res.spec, &target, &blocks);
            total_cycles(&target, &prog, 2048)
        };
        assert_eq!(
            lower(&res_full),
            lower(&res_inc),
            "{name}: cycle counts diverged"
        );
    }
}
