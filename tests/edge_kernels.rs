//! Regression tests for legal-but-unusual kernels the fuzz generator
//! surfaced — each case here once panicked, miscompiled, or was refused
//! somewhere in the pipeline. The whole chain (range analysis → spec →
//! scalar+SIMD lowering → machine interpreter vs reference simulation)
//! must stay bit-exact and panic-free on all of them.

mod common;

use common::simd_program;
use slpwlo::accuracy::simulate::simulate_fixed;
use slpwlo::codegen::{emit_fixed_c, emit_simd_c};
use slpwlo::core::lower_scalar;
use slpwlo::fixedpoint::range::{determine_ranges, RangeMethod, RangeOptions};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::ir::builder::KernelBuilder;
use slpwlo::ir::types::IndexExpr;
use slpwlo::ir::{IrError, Kernel};
use slpwlo::kernels::Workload;
use slpwlo::sim::execute_fixed;
use slpwlo::targets::{vex, xentium, TargetModel};

/// Full-chain check: both lowerings execute and match the reference
/// bitwise, and both C backends emit successfully.
fn assert_whole_chain(kernel: &Kernel, wl: i32) {
    let workload = Workload::white(kernel.inputs().len(), 48, 0xED6E ^ wl as u64);
    let ranges = determine_ranges(kernel, &RangeOptions::default());
    let spec = FixedPointSpec::from_ranges(kernel, &ranges, wl);
    let reference = simulate_fixed(kernel, &spec, &workload.inputs);
    for target in [xentium(), vex(4)] {
        let scalar = lower_scalar(kernel, &spec, &target);
        let got = execute_fixed(&scalar, &workload.inputs).expect("scalar runs");
        assert_streams(kernel, wl, &target, "scalar", &reference, &got);
        let simd = simd_program(kernel, &spec, &target);
        let got = execute_fixed(&simd, &workload.inputs).expect("simd runs");
        assert_streams(kernel, wl, &target, "simd", &reference, &got);
        emit_fixed_c(&scalar).expect("scalar C emits");
        emit_simd_c(&simd, &target.name).expect("SIMD C emits");
    }
}

fn assert_streams(
    kernel: &Kernel,
    wl: i32,
    target: &TargetModel,
    which: &str,
    reference: &[Vec<f64>],
    got: &[Vec<f64>],
) {
    for (o, (r, g)) in reference.iter().zip(got).enumerate() {
        for (n, (a, b)) in r.iter().zip(g).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} {which} wl={wl} on {}: output {o} sample {n}: {a:e} vs {b:e}",
                kernel.name(),
                target.name
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Builder/validation edges: structured errors instead of panics
// ---------------------------------------------------------------------------

#[test]
fn empty_param_table_is_a_typed_error() {
    let mut b = KernelBuilder::new("k");
    assert!(matches!(
        b.try_param("c", vec![]),
        Err(IrError::EmptyTable { kind: "param", .. })
    ));
}

#[test]
fn zero_length_array_is_a_typed_error() {
    let mut b = KernelBuilder::new("k");
    assert!(matches!(
        b.try_array("a", 0),
        Err(IrError::EmptyTable { kind: "array", .. })
    ));
}

#[test]
fn zero_trip_loop_is_a_typed_error() {
    let mut b = KernelBuilder::new("k");
    assert!(matches!(b.try_begin_for(0), Err(IrError::ZeroTripLoop)));
}

#[test]
fn crossed_loops_are_a_typed_error() {
    let mut b = KernelBuilder::new("k");
    let i = b.try_begin_for(2).unwrap();
    let _j = b.try_begin_for(2).unwrap();
    assert!(matches!(b.try_end_for(i), Err(IrError::LoopNesting(_))));
}

#[test]
fn out_of_range_output_is_a_typed_error() {
    let mut b = KernelBuilder::new("k");
    b.output("y");
    let c = b.constf(0.5);
    assert!(matches!(
        b.try_set_output(3, c),
        Err(IrError::OutputOutOfRange { index: 3, count: 1 })
    ));
}

#[test]
fn unset_output_fails_validation() {
    let mut b = KernelBuilder::new("k");
    let x = b.input("x", -1.0, 1.0);
    b.output("y");
    let _ = b.read_input(x);
    assert!(matches!(b.try_finish(), Err(IrError::OutputUnset(_))));
}

// ---------------------------------------------------------------------------
// Legal-but-unusual shapes: whole chain stays exact
// ---------------------------------------------------------------------------

/// A zero-tap accumulator: `acc = 0; y = acc` — no arithmetic at all.
#[test]
fn zero_tap_accumulator() {
    let mut b = KernelBuilder::new("zerotap");
    let _x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let acc = b.var("acc");
    let z = b.constf(0.0);
    b.assign(acc, z);
    let r = b.read_var(acc);
    b.set_output(y, r);
    let k = b.finish();
    assert_whole_chain(&k, 16);
}

/// Fan-out-only kernel: one value copied to two outputs untouched.
#[test]
fn fan_out_only_nodes() {
    let mut b = KernelBuilder::new("fanout");
    let x = b.input("x", -1.0, 1.0);
    let y0 = b.output("y0");
    let y1 = b.output("y1");
    let t = b.var("t");
    let xv = b.read_input(x);
    b.assign(t, xv);
    let r0 = b.read_var(t);
    b.set_output(y0, r0);
    let r1 = b.read_var(t);
    b.set_output(y1, r1);
    let k = b.finish();
    assert_whole_chain(&k, 16);
}

/// Pure identity: output = input, no vars, no state.
#[test]
fn identity_kernel() {
    let mut b = KernelBuilder::new("ident");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let xv = b.read_input(x);
    b.set_output(y, xv);
    let k = b.finish();
    assert_whole_chain(&k, 12);
}

/// Constant output next to an unused input.
#[test]
fn constant_output_kernel() {
    let mut b = KernelBuilder::new("constout");
    let _x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let c = b.constf(0.4375);
    b.set_output(y, c);
    let k = b.finish();
    assert_whole_chain(&k, 16);
}

// ---------------------------------------------------------------------------
// Regressions for pipeline bugs the fuzzer found (by fuzz seed)
// ---------------------------------------------------------------------------

/// Seed 0: the product of two covering variable storage formats can
/// exceed 64 bits; both C backends must fall back to the exact 128-bit
/// `slpwlo_mul_shr` helper instead of refusing (or truncating).
#[test]
fn wide_variable_product_stays_exact() {
    // acc over a big range (iwl grows) times a [-1,1] variable.
    let mut b = KernelBuilder::new("wideprod");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let c = b.param("c", vec![0.9375, 0.875, -0.9375, 0.8125]);
    let acc = b.var("acc");
    let t = b.var("t");
    let xv = b.read_input(x);
    b.assign(t, xv);
    let z = b.constf(0.0);
    b.assign(acc, z);
    // Accumulate 12 taps of ~1: acc range ~ [-12, 12] (iwl ~ 5).
    let i = b.begin_for(12);
    let cv = b.load_param_ix(c, IndexExpr::affine(i, 1, 0));
    let av = b.read_var(acc);
    let s = b.add(av, cv);
    b.assign(acc, s);
    b.end_for(i);
    let a2 = b.read_var(acc);
    let t2 = b.read_var(t);
    let m = b.mul(a2, t2);
    b.set_output(y, m);
    let k = b.finish();
    for wl in [16, 24, 32] {
        assert_whole_chain(&k, wl);
    }
}

/// Seed 10: interval range analysis declared convergence before stored
/// values finished propagating through a delay line, producing unsound
/// (too-narrow) ranges for `dl[k]` reads of a still-filling line.
#[test]
fn delay_line_propagation_ranges_are_sound() {
    let mut b = KernelBuilder::new("dlprop");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let dl = b.array("dl", 4);
    let v = b.var("v");
    let big = b.constf(0.9453125);
    b.shift_in(dl, big);
    // Index -1 wraps to dl[3], the slot that fills last.
    let l = b.load(dl, -1);
    b.assign(v, l);
    let xv = b.read_input(x);
    let r = b.read_var(v);
    let s = b.add(r, xv);
    b.set_output(y, s);
    let k = b.finish();
    let ranges = determine_ranges(&k, &RangeOptions::default());
    assert_eq!(ranges.method, RangeMethod::Interval);
    // The load's range must cover the stored constant once the line has
    // filled (four activations in).
    let (load_id, _) = k
        .exprs()
        .find(|(_, n)| matches!(n, slpwlo::ir::ExprNode::LoadArray(..)))
        .expect("kernel loads the line");
    let iv = ranges.expr(load_id);
    assert!(
        iv.hi >= 0.9453125,
        "load range [{}, {}] must cover the propagated store",
        iv.lo,
        iv.hi
    );
    assert_whole_chain(&k, 16);
}

/// Seed 16: a vectorized load whose lane indices may wrap must lower as
/// a gather (the single-base-pointer VLOAD cannot express Euclidean
/// wrapping); previously the SIMD C emitter refused such programs.
#[test]
fn wrapping_vector_loads_fall_back_to_gather() {
    let mut b = KernelBuilder::new("wrapvec");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let c = b.param("c", vec![0.25, -0.5, 0.125, 0.0625]);
    let dl = b.array("dl", 4);
    let acc = b.var("acc");
    let xv = b.read_input(x);
    b.shift_in(dl, xv);
    let z = b.constf(0.0);
    b.assign(acc, z);
    // Offset -1: lane indices -1..2 wrap at i = 0.
    let i = b.begin_for(4);
    let cv = b.load_param_ix(c, IndexExpr::affine(i, 1, 0));
    let lv = b.load_ix(dl, IndexExpr::affine(i, 1, -1));
    let m = b.mul(cv, lv);
    let av = b.read_var(acc);
    let s = b.add(av, m);
    b.assign(acc, s);
    b.end_for(i);
    let r = b.read_var(acc);
    b.set_output(y, r);
    let mut k = b.finish();
    slpwlo::ir::unroll::unroll(&mut k, i, 4).unwrap();
    assert_whole_chain(&k, 12);
}

/// Seed 24: consecutive blocks sharing an outer loop (an unrolled inner
/// loop plus its remainder) must interleave per outer iteration in the
/// machine program and the generated C, not run their nests back to
/// back.
#[test]
fn shared_outer_loops_interleave() {
    let mut b = KernelBuilder::new("sharedloop");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let c = b.param(
        "c",
        vec![
            -0.0546875,
            -0.0546875,
            -0.3125,
            -0.33203125,
            0.09375,
            0.9453125,
            -0.234375,
        ],
    );
    let acc = b.var("acc");
    let z = b.constf(0.0);
    b.assign(acc, z);
    let outer = b.begin_for(2);
    let inner = b.begin_for(7);
    let cv = b.load_param_ix(c, IndexExpr::affine(inner, 1, 0));
    let av = b.read_var(acc);
    let s = b.add(av, cv);
    b.assign(acc, s);
    b.end_for(inner);
    b.end_for(outer);
    let xv = b.read_input(x);
    let r = b.read_var(acc);
    let s2 = b.add(r, xv);
    b.set_output(y, s2);
    let mut k = b.finish();
    // Unroll the *inner* loop by 4: 7 = 4 + 3 leaves a remainder block
    // sharing the outer loop with the unrolled loop block.
    slpwlo::ir::unroll::unroll(&mut k, inner, 4).unwrap();
    for wl in [12, 16, 32] {
        assert_whole_chain(&k, wl);
    }
}

/// Seed 1: three or more SLP groups can form a dependency cycle that no
/// pairwise conflict check sees; selection must refuse the closing
/// group, and lowering's coarsened topological sort must not panic.
#[test]
fn multi_group_dependency_cycles_are_refused() {
    let src = r#"
kernel gk1 {
    input x0 range [-1, 1];
    output y0;
    output y1;
    var v1;
    v1 = 0.0 + 0.0;
    y0 = 0.0 + 0.0 * 0.0;
    y1 = 0.0 * v1;
}
"#;
    let k = slpwlo::ir::parser::parse_kernel(src).unwrap();
    assert_whole_chain(&k, 16);
}

/// Seed 224 (4096-seed corpus): a delay line whose shift expression read
/// the line's *own* taps through a product — quadratic self-feedback.
/// Interval analysis rightly diverges and falls back to simulation,
/// whose f64 run overflows to infinity; spec construction used to panic
/// on the non-finite range. The measurement is now clamped to the
/// divergence bound: range analysis and spec construction stay
/// panic-free and every format is finite (the generator itself no
/// longer emits self-referential shifts, so this pins the clamping
/// backstop for hand-written kernels).
#[test]
fn divergent_feedback_ranges_are_clamped_finite() {
    let src = r#"
kernel gk224 {
    input x0 range [-1, 1];
    output y0;
    array dl1[2];
    shiftin dl1 <- (dl1[1] + 0.50390625) * (x0 + dl1[-1]);
    y0 = -0.4375 * dl1[0];
}
"#;
    let k = slpwlo::ir::parser::parse_kernel(src).unwrap();
    let opts = RangeOptions::default();
    let ranges = determine_ranges(&k, &opts);
    assert!(
        matches!(ranges.method, RangeMethod::Simulation { .. }),
        "divergent feedback must fall back to simulated ranges"
    );
    for iv in ranges.exprs.iter().flatten().chain(&ranges.arrays) {
        assert!(
            iv.lo.is_finite() && iv.hi.is_finite(),
            "clamped measurement must be finite, got {iv:?}"
        );
        assert!(
            iv.magnitude() <= opts.divergence_bound * opts.margin.max(1.0),
            "clamp must bound the measurement: {iv:?}"
        );
    }
    // Spec construction must not panic; the resulting formats are huge
    // but finite.
    let spec = FixedPointSpec::from_ranges(&k, &ranges, 32);
    let _ = spec;
}

/// A divergent kernel can go one step beyond ±inf: `inf - inf` is NaN,
/// which the simulation's recording layer must sanitize (NaN has no
/// sign, so it widens to the full representable range before the
/// divergence clamp bounds it) rather than panic on.
#[test]
fn nan_producing_feedback_ranges_are_clamped_finite() {
    let src = r#"
kernel gknan {
    input x0 range [-1, 1];
    output y0;
    array dl1[2];
    shiftin dl1 <- dl1[0] + dl1[0] + x0;
    y0 = dl1[0] - dl1[1];
}
"#;
    let k = slpwlo::ir::parser::parse_kernel(src).unwrap();
    let opts = RangeOptions::default();
    let ranges = determine_ranges(&k, &opts);
    for iv in ranges.exprs.iter().flatten().chain(&ranges.arrays) {
        assert!(
            iv.lo.is_finite() && iv.hi.is_finite(),
            "clamped measurement must be finite, got {iv:?}"
        );
    }
    let _ = FixedPointSpec::from_ranges(&k, &ranges, 32);
}
