//! Differential harness for the exact pack selector
//! ([`BenefitKind::Optimal`]) against the greedy cycle-priced selector:
//!
//! 1. **never slower** — on the benchmark suite × {XENTIUM, VEX-1} ×
//!    constraint grid, the exact kind's final cycle count never exceeds
//!    greedy's (the portfolio arbitration makes this an end-to-end
//!    contract, not just a per-round model statement), both legs run
//!    under full paranoid pass-boundary verification, and the default
//!    search budget never trips;
//! 2. **corpus slice** — the same inequality over a seeded generated
//!    corpus (`SLPWLO_FUZZ_SEEDS`, default 64);
//! 3. **budget-0 determinism** — `Optimal { budget: 0 }` degrades to a
//!    bit-identical rerun of the greedy kind (spec, SIMD and scalar
//!    programs), with the fallback recorded in the report's stats;
//! 4. **exhaustive agreement** — driving rounds by hand under a frozen
//!    word-length oracle, every committed round is spot-checked against
//!    brute-force subset enumeration via `verify_optimal_selection`.

use slpwlo::gen::KernelGen;
use slpwlo::kernels::all_benchmarks;
use slpwlo::targets::{st240, vex, xentium};
use slpwlo::{BenefitKind, Error, Optimizer, VerifyLevel};

const DBS: [f64; 2] = [-20.0, -50.0];

fn corpus() -> Vec<u64> {
    let n: u64 = std::env::var("SLPWLO_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    (0..n).collect()
}

/// Runs one (kernel, target, db) point under both kinds and returns
/// `(greedy, exact)` reports; `None` when the constraint is
/// unsatisfiable on this target.
fn both_kinds(
    opt: Optimizer,
    db: f64,
) -> Result<(Optimizer, Option<(slpwlo::Report, slpwlo::Report)>), Error> {
    let opt = opt.benefit_kind(BenefitKind::Cycles);
    let greedy = match opt.run_at(db) {
        Ok(r) => r,
        Err(Error::Unsatisfiable { .. }) => return Ok((opt, None)),
        Err(e) => return Err(e),
    };
    let opt = opt.benefit_kind(BenefitKind::optimal());
    let exact = opt.run_at(db)?;
    Ok((opt, Some((greedy, exact))))
}

/// The exact kind never returns a program that schedules slower than
/// the greedy kind's, on any suite × target × constraint point; both
/// legs hold up under paranoid verification and the default budget
/// suffices everywhere.
#[test]
fn optimal_never_slower_than_greedy_on_the_suite() {
    let mut compared = 0usize;
    for bench in all_benchmarks() {
        for target in [xentium(), vex(1)] {
            let mut opt = Optimizer::for_kernel(bench.kernel.clone())
                .expect("suite kernels validate")
                .target(target.clone())
                .verify_level(VerifyLevel::Paranoid);
            for db in DBS {
                let (returned, pair) = both_kinds(opt, db).unwrap_or_else(|e| {
                    panic!("{} on {} at {db} dB: {e}", bench.name, target.name)
                });
                opt = returned;
                let Some((greedy, exact)) = pair else {
                    continue;
                };
                compared += 1;
                assert!(
                    exact.cycles_simd <= greedy.cycles_simd,
                    "{} on {} at {db} dB: optimal {} cycles, greedy {}",
                    bench.name,
                    target.name,
                    exact.cycles_simd,
                    greedy.cycles_simd
                );
                assert_eq!(
                    exact.select.budget_fallbacks, 0,
                    "{} on {} at {db} dB: default budget exhausted",
                    bench.name, target.name
                );
                assert_eq!(
                    greedy.select,
                    Default::default(),
                    "greedy kinds must not touch the search stats"
                );
            }
        }
    }
    assert!(compared > 0, "no suite point was satisfiable");
}

/// The same inequality over the generated-kernel corpus (one target,
/// one constraint per kernel keeps the pass proportionate; the suite
/// covers the target × constraint axes).
#[test]
fn optimal_never_slower_than_greedy_on_the_corpus() {
    let mut compared = 0usize;
    for seed in corpus() {
        let kernel = match KernelGen::with_seed(seed).gen_plan().build() {
            Ok(k) => k,
            Err(_) => continue, // generator rejects its own plan: not this test's bug
        };
        let opt = match Optimizer::for_kernel(kernel) {
            Ok(o) => o.target(xentium()),
            Err(_) => continue, // degenerate generated kernel
        };
        let (_, pair) = both_kinds(opt, -30.0).unwrap_or_else(|e| panic!("gk{seed}: {e}"));
        let Some((greedy, exact)) = pair else {
            continue;
        };
        compared += 1;
        assert!(
            exact.cycles_simd <= greedy.cycles_simd,
            "gk{seed}: optimal {} cycles, greedy {}",
            exact.cycles_simd,
            greedy.cycles_simd
        );
    }
    assert!(compared > 0, "the whole corpus was skipped");
}

/// A zero search budget falls back to greedy on every round, and the
/// fallback is *bitwise*: same spec, same SIMD program, same scalar
/// program as running the greedy kind outright.
#[test]
fn zero_budget_is_bitwise_greedy() {
    for bench in all_benchmarks().into_iter().take(3) {
        let target = xentium();
        let opt = Optimizer::for_kernel(bench.kernel.clone())
            .expect("suite kernels validate")
            .target(target);
        let opt = opt.benefit_kind(BenefitKind::Cycles);
        let greedy = opt.run_at(-40.0).expect("greedy leg runs");
        let opt = opt.benefit_kind(BenefitKind::Optimal { budget: 0 });
        let exact = opt.run_at(-40.0).expect("budget-0 leg runs");
        assert_eq!(
            format!("{:?}", exact.spec),
            format!("{:?}", greedy.spec),
            "{}: budget-0 spec diverged from greedy",
            bench.name
        );
        assert_eq!(
            format!("{:?}", exact.simd),
            format!("{:?}", greedy.simd),
            "{}: budget-0 SIMD program diverged from greedy",
            bench.name
        );
        assert_eq!(
            format!("{:?}", exact.scalar),
            format!("{:?}", greedy.scalar),
            "{}: budget-0 scalar program diverged from greedy",
            bench.name
        );
        assert_eq!(exact.select.improved, 0, "{}", bench.name);
        assert_eq!(exact.select.veto_fallbacks, 0, "{}", bench.name);
        // Rounds whose search never attempts an include (empty pool, or
        // the greedy incumbent already matches the bound) end without
        // touching the budget, so fallbacks can undercut rounds — but
        // never exceed them.
        assert!(
            exact.select.budget_fallbacks <= exact.select.rounds,
            "{}: more fallbacks than rounds",
            bench.name
        );
    }
}

/// Driving the selection rounds by hand under a frozen word-length
/// oracle, every round the exact selector commits agrees with
/// brute-force subset enumeration (`verify_optimal_selection` skips
/// rounds too large to enumerate — the final assert proves the check
/// actually fired).
#[test]
fn committed_rounds_agree_with_exhaustive_enumeration() {
    use slpwlo::ir::blocks::collect_blocks;
    use slpwlo::ir::dfg::{Dfg, NodeId};
    use slpwlo::slp::{
        absorb_selected, run_selection_stats, CandidateView, Round, SelectHooks, SelectStats,
        SimdGroup,
    };
    use slpwlo::targets::TargetModel;
    use slpwlo::verify::verify_optimal_selection;

    struct FixedWl<'a> {
        target: &'a TargetModel,
    }
    impl SelectHooks for FixedWl<'_> {
        fn validate(&mut self, view: &CandidateView) -> bool {
            view.group
                .elems
                .iter()
                .all(|_| match self.target.container_wl(16) {
                    Some(c) => c <= view.elem_wl,
                    None => false,
                })
        }
        fn current_wl(&self, _n: NodeId) -> Option<i32> {
            Some(16)
        }
    }

    let wl = |_: NodeId| 16;
    let mut verified_rounds = 0usize;
    for bench in all_benchmarks() {
        for target in [xentium(), st240()] {
            for block in collect_blocks(&bench.kernel) {
                let dfg = Dfg::from_block(&bench.kernel, &block);
                let mut groups: Vec<SimdGroup> = Vec::new();
                let mut stats = SelectStats::default();
                loop {
                    let round = Round::new(&dfg, &target, &groups);
                    let live = (0..round.candidates.len())
                        .filter(|&i| {
                            let view = round.view(&target, i);
                            matches!(target.container_wl(16), Some(c) if c <= view.elem_wl)
                        })
                        .count();
                    let chosen = {
                        let mut hooks = FixedWl { target: &target };
                        run_selection_stats(
                            &dfg,
                            &target,
                            &round,
                            &groups,
                            &mut hooks,
                            BenefitKind::optimal(),
                            &mut stats,
                        )
                    };
                    verify_optimal_selection(&dfg, &target, &groups, &chosen, &wl, 14, bench.name)
                        .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name, target.name));
                    if live <= 14 && live > 0 {
                        verified_rounds += 1;
                    }
                    if chosen.is_empty() {
                        break;
                    }
                    absorb_selected(&mut groups, chosen);
                }
            }
        }
    }
    assert!(
        verified_rounds > 0,
        "no round was small enough for the exhaustive spot-check"
    );
}
