//! Differential property test of the incremental accuracy engine.
//!
//! Replays long random `set_wl`/undo sequences — shaped like the moves
//! the WLO search loops actually make — against both evaluators and
//! asserts that [`IncrementalEvaluator`] matches
//! [`AnalyticalEvaluator::noise_db`] **bitwise** on every step, across
//! the paper's three kernels. The workspace builds offline, so the
//! randomness comes from the deterministic in-tree `rand` stand-in
//! (seeded; every CI run replays the same sequences).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpwlo::accuracy::{AccuracyEvaluator, AnalyticalEvaluator, IncrementalEvaluator};
use slpwlo::core::prepare;
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::kernels::paper_benchmarks;

/// Word lengths the random walk draws from (denser than any real
/// target's supported set, to cover more formats).
const WLS: [i32; 7] = [8, 12, 16, 20, 24, 28, 32];

fn assert_bits_eq(inc_db: f64, full_db: f64, ctx: &str) {
    assert_eq!(
        inc_db.to_bits(),
        full_db.to_bits(),
        "{ctx}: incremental {inc_db} != full {full_db}"
    );
}

/// One random walk over a kernel's spec: single- and multi-key trials,
/// randomly committed or undone, interleaved with untrialed writes
/// reported through `observe` — the full caller protocol.
fn random_walk(
    kernel_name: &str,
    kernel: &slpwlo::ir::Kernel,
    eval: &AnalyticalEvaluator,
    steps: usize,
    seed: u64,
) {
    let ranges = slpwlo::fixedpoint::range::determine_ranges(kernel, &Default::default());
    let mut spec = FixedPointSpec::from_ranges(kernel, &ranges, 32);
    let keys = spec.optimizable_keys(kernel);
    let inc = IncrementalEvaluator::with_spec(eval, &spec);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut committed = 0usize;
    let mut undone = 0usize;

    for step in 0..steps {
        let action = rng.gen_range(0..100usize);
        if action < 80 {
            // A trial move: 1–4 random keys, then commit or undo.
            let nkeys = 1 + rng.gen_range(0..4usize);
            let mark = spec.mark();
            for _ in 0..nkeys {
                let key = keys[rng.gen_range(0..keys.len())];
                let wl = WLS[rng.gen_range(0..WLS.len())];
                spec.set_wl(key, wl);
            }
            let inc_db = inc.trial_noise_db(&spec, mark);
            let full_db = eval.noise_db(&spec);
            assert_bits_eq(
                inc_db,
                full_db,
                &format!("{kernel_name} step {step} (trial)"),
            );
            if rng.gen_range(0..100usize) < 50 {
                spec.commit(mark);
                inc.commit_trial();
                committed += 1;
            } else {
                spec.rollback(mark);
                inc.rollback_trial();
                undone += 1;
            }
        } else {
            // An untrialed permanent write (tabu accepted move /
            // snapshot restore shape), reported via observe().
            let mark = spec.mark();
            let key = keys[rng.gen_range(0..keys.len())];
            let wl = WLS[rng.gen_range(0..WLS.len())];
            spec.set_wl(key, wl);
            inc.observe(&spec, mark);
            committed += 1;
        }
        // After resolution the cache must still agree: evaluate via an
        // empty trial (pure cached fold) against the full recompute.
        let mark = spec.mark();
        let inc_db = inc.trial_noise_db(&spec, mark);
        let full_db = eval.noise_db(&spec);
        assert_bits_eq(
            inc_db,
            full_db,
            &format!("{kernel_name} step {step} (post-resolve)"),
        );
        inc.rollback_trial();
    }
    assert!(committed > 0 && undone > 0, "walk must exercise both paths");
}

#[test]
fn incremental_matches_full_recompute_on_random_walks() {
    // ≥ 1000 steps per kernel; each step checks twice (trial + post-
    // resolution), so every kernel sees ≥ 2000 bitwise comparisons.
    for (i, bench) in paper_benchmarks().into_iter().enumerate() {
        let prep = prepare(bench.kernel);
        random_walk(
            bench.name,
            &prep.kernel,
            &prep.eval,
            1100,
            0xD1FF_0000 + i as u64,
        );
    }
}

#[test]
fn incremental_matches_full_after_deep_nested_rollbacks() {
    // Nested mark/rollback towers (the hooks' validate/conflict shape):
    // open several journal levels, trial at the innermost, unwind.
    let bench = paper_benchmarks().remove(0);
    let prep = prepare(bench.kernel);
    let ranges = slpwlo::fixedpoint::range::determine_ranges(&prep.kernel, &Default::default());
    let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &ranges, 32);
    let keys = spec.optimizable_keys(&prep.kernel);
    let inc = IncrementalEvaluator::with_spec(&prep.eval, &spec);
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for round in 0..50 {
        let outer = spec.mark();
        for depth in 0..4 {
            let key = keys[rng.gen_range(0..keys.len())];
            spec.set_wl(key, WLS[rng.gen_range(0..WLS.len())]);
            let _ = depth;
        }
        let inc_db = inc.trial_noise_db(&spec, outer);
        assert_bits_eq(
            inc_db,
            prep.eval.noise_db(&spec),
            &format!("round {round} inner"),
        );
        spec.rollback(outer);
        inc.rollback_trial();
        let mark = spec.mark();
        let inc_db = inc.trial_noise_db(&spec, mark);
        assert_bits_eq(
            inc_db,
            prep.eval.noise_db(&spec),
            &format!("round {round} unwound"),
        );
        inc.rollback_trial();
    }
}
