//! Shared helpers for the compile-and-execute differential harnesses
//! (`tests/c_differential.rs`, `tests/pipeline_fuzz.rs`).
//!
//! Each integration-test binary gets its own copy of this module; not
//! every binary uses every helper.
#![allow(dead_code)]

use slpwlo::core::{lower_fixed, MachineProgram};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::ir::Kernel;
use slpwlo::kernels::Workload;
use slpwlo::slp::BenefitKind;
use slpwlo::targets::TargetModel;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// `slpwlo_core::extract_on_spec`, re-exported for the harnesses (the
/// WLO-First back half's extraction: word lengths *and* formats feed
/// the cycle-priced benefit model).
pub use slpwlo::core::extract_on_spec;

/// Plain (accuracy-unaware) SLP groups on a frozen spec, lowered to the
/// SIMD machine program — the WLO-First back half, used as the SIMD leg
/// of every differential harness.
pub fn simd_program(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
) -> MachineProgram {
    let blocks = extract_on_spec(kernel, spec, target, BenefitKind::default());
    lower_fixed(kernel, spec, target, &blocks)
}

/// Is a C compiler available? With `SLPWLO_REQUIRE_CC=1` a missing
/// compiler is a hard failure (CI sets it), otherwise the caller skips.
pub fn cc_available() -> bool {
    let found = Command::new("cc")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    if !found && std::env::var("SLPWLO_REQUIRE_CC").is_ok() {
        panic!("SLPWLO_REQUIRE_CC is set but no `cc` is on PATH");
    }
    if !found {
        eprintln!("skipping C differential tests: no `cc` on PATH");
    }
    found
}

/// Scratch directory for one compile tag.
pub fn work_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    std::fs::create_dir_all(&dir).expect("create work dir");
    dir
}

/// Emits a stdin/stdout test driver around `<kernel>_step`: one line of
/// hex-encoded f64 bits per input per activation in, one line per
/// output per activation out. Bit-faithful in both directions.
pub fn driver_c(kernel_name: &str, inputs: usize, outputs: usize) -> String {
    let mut s = String::new();
    s.push_str("#include <stdio.h>\n#include <stdint.h>\n#include <string.h>\n\n");
    s.push_str(&format!("void {kernel_name}_step("));
    let mut args: Vec<String> = (0..inputs).map(|i| format!("double in{i}")).collect();
    args.extend((0..outputs).map(|o| format!("double *out{o}")));
    s.push_str(&args.join(", "));
    s.push_str(");\n\nint main(void)\n{\n");
    s.push_str(&format!(
        "    double in[{inputs}];\n    double out[{outputs}];\n    unsigned long long w;\n"
    ));
    s.push_str("    memset(out, 0, sizeof out);\n    for (;;) {\n");
    s.push_str(&format!("        for (int i = 0; i < {inputs}; i++) {{\n"));
    s.push_str("            if (scanf(\"%llx\", &w) != 1) return 0;\n");
    s.push_str("            memcpy(&in[i], &w, 8);\n        }\n");
    let mut call: Vec<String> = (0..inputs).map(|i| format!("in[{i}]")).collect();
    call.extend((0..outputs).map(|o| format!("&out[{o}]")));
    s.push_str(&format!(
        "        {kernel_name}_step({});\n",
        call.join(", ")
    ));
    s.push_str(&format!("        for (int o = 0; o < {outputs}; o++) {{\n"));
    s.push_str(
        "            memcpy(&w, &out[o], 8);\n            printf(\"%llx\\n\", w);\n        }\n",
    );
    s.push_str("    }\n}\n");
    s
}

/// Compiles `{program C, driver C}` with `-std=c99 -Wall -Werror` and
/// runs it over the workload, returning `outputs[o][n]`.
pub fn compile_and_run(
    tag: &str,
    program_c: &str,
    header: Option<(&str, &str)>,
    kernel_name: &str,
    workload: &Workload,
    outputs: usize,
) -> Vec<Vec<f64>> {
    let dir = work_dir(tag);
    let prog_path = dir.join("program.c");
    let main_path = dir.join("main.c");
    let exe_path = dir.join("prog");
    std::fs::write(&prog_path, program_c).expect("write program.c");
    std::fs::write(
        &main_path,
        driver_c(kernel_name, workload.inputs.len(), outputs),
    )
    .expect("write main.c");
    if let Some((name, contents)) = header {
        std::fs::write(dir.join(name), contents).expect("write header");
    }
    let status = Command::new("cc")
        .args(["-std=c99", "-Wall", "-Werror", "-O2", "-I"])
        .arg(&dir)
        .arg("-o")
        .arg(&exe_path)
        .arg(&prog_path)
        .arg(&main_path)
        .arg("-lm")
        .status()
        .expect("invoke cc");
    assert!(status.success(), "cc failed on {tag} (see {dir:?})");

    let mut child = Command::new(&exe_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("run generated program");
    {
        let mut stdin = child.stdin.take().expect("stdin");
        let n = workload.activations();
        let mut text = String::new();
        for a in 0..n {
            for stream in &workload.inputs {
                text.push_str(&format!("{:x}\n", stream[a].to_bits()));
            }
        }
        stdin.write_all(text.as_bytes()).expect("feed inputs");
    }
    let out = child.wait_with_output().expect("collect outputs");
    assert!(out.status.success(), "generated program crashed on {tag}");
    let words: Vec<u64> = String::from_utf8(out.stdout)
        .expect("utf8 output")
        .lines()
        .map(|l| u64::from_str_radix(l.trim(), 16).expect("hex output"))
        .collect();
    let n = workload.activations();
    assert_eq!(words.len(), n * outputs, "{tag}: output count");
    let mut res = vec![Vec::with_capacity(n); outputs];
    for (k, w) in words.into_iter().enumerate() {
        res[k % outputs].push(f64::from_bits(w));
    }
    res
}

/// First bitwise mismatch between two output matrices, as an error.
pub fn bit_diff(label: &str, reference: &[Vec<f64>], got: &[Vec<f64>]) -> Result<(), String> {
    if reference.len() != got.len() {
        return Err(format!(
            "{label}: output arity {} vs {}",
            reference.len(),
            got.len()
        ));
    }
    for (o, (r, g)) in reference.iter().zip(got).enumerate() {
        if r.len() != g.len() {
            return Err(format!(
                "{label}: output {o} length {} vs {}",
                r.len(),
                g.len()
            ));
        }
        for (n, (a, b)) in r.iter().zip(g).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(format!(
                    "{label}: output {o} sample {n}: reference {a:e} vs got {b:e}"
                ));
            }
        }
    }
    Ok(())
}

/// Panicking wrapper over [`bit_diff`] for assert-style tests.
pub fn assert_bit_identical(label: &str, reference: &[Vec<f64>], got: &[Vec<f64>]) {
    if let Err(msg) = bit_diff(label, reference, got) {
        panic!("{msg}");
    }
}
