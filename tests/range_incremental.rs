//! Incremental-vs-full range-analysis differential.
//!
//! `RangeAnalysis::update` re-propagates only the influence cones of the
//! edited expressions and replays everything else from a journal of the
//! baseline fix-point trajectory. Its contract is *bitwise* equality with
//! a fresh `determine_ranges` run on the edited kernel — including the
//! divergence fallback to simulation. This suite pins that contract on
//! the registered benchmarks, on hand-built feedback kernels driven into
//! and out of divergence, and on a seeded `slpwlo-gen` corpus slice.

use slpwlo::fixedpoint::range::{
    changed_exprs, determine_ranges, RangeAnalysis, RangeMethod, RangeOptions,
};
use slpwlo::gen::KernelGen;
use slpwlo::ir::builder::KernelBuilder;
use slpwlo::ir::{ConeIndex, Kernel, ValueSite};
use slpwlo::kernels::{all_benchmarks, conv3x3, fir64, iir10};

fn assert_ranges_bitwise(
    got: &slpwlo::fixedpoint::Ranges,
    want: &slpwlo::fixedpoint::Ranges,
    label: &str,
) {
    assert_eq!(got.method, want.method, "{label}: method");
    assert_eq!(got.exprs.len(), want.exprs.len(), "{label}: expr count");
    for (i, (g, w)) in got.exprs.iter().zip(&want.exprs).enumerate() {
        match (g, w) {
            (None, None) => {}
            (Some(g), Some(w)) => {
                assert!(
                    g.lo.to_bits() == w.lo.to_bits() && g.hi.to_bits() == w.hi.to_bits(),
                    "{label}: expr e{i} diverged ({g:?} vs {w:?})"
                );
            }
            _ => panic!("{label}: expr e{i} liveness diverged ({g:?} vs {w:?})"),
        }
    }
    for (i, (g, w)) in got.arrays.iter().zip(&want.arrays).enumerate() {
        assert!(
            g.lo.to_bits() == w.lo.to_bits() && g.hi.to_bits() == w.hi.to_bits(),
            "{label}: array a{i} diverged ({g:?} vs {w:?})"
        );
    }
    for (i, (g, w)) in got.params.iter().zip(&want.params).enumerate() {
        assert!(
            g.lo.to_bits() == w.lo.to_bits() && g.hi.to_bits() == w.hi.to_bits(),
            "{label}: param p{i} diverged ({g:?} vs {w:?})"
        );
    }
}

/// Applies a deterministic structure-preserving perturbation, update()s
/// an analysis of `old` across it, and asserts bitwise equality with a
/// fresh full analysis of the edited kernel. Returns the edited kernel
/// and the updated analysis for chaining.
fn check_update(
    old: &Kernel,
    mut analysis: RangeAnalysis,
    opts: &RangeOptions,
    edit: impl FnMut(ValueSite, f64) -> f64,
    label: &str,
) -> (Kernel, RangeAnalysis) {
    let new = old.edit_values(edit);
    let changed = changed_exprs(old, &new)
        .unwrap_or_else(|| panic!("{label}: edit_values changed the structure"));
    let cone = ConeIndex::build(&new);
    let got = analysis.update(&new, &changed, &cone).clone();
    let want = determine_ranges(&new, opts);
    assert_ranges_bitwise(&got, &want, label);
    (new, analysis)
}

#[test]
fn fresh_analysis_matches_determine_ranges() {
    let opts = RangeOptions::default();
    for bench in all_benchmarks() {
        let analysis = RangeAnalysis::new(&bench.kernel, &opts);
        let want = determine_ranges(&bench.kernel, &opts);
        assert_ranges_bitwise(analysis.ranges(), &want, bench.name);
        assert_eq!(
            analysis.is_incremental(),
            want.method == RangeMethod::Interval,
            "{}: journal presence must track the interval method",
            bench.name
        );
    }
}

#[test]
fn empty_changed_update_is_noop() {
    let opts = RangeOptions::default();
    let k = fir64();
    let mut analysis = RangeAnalysis::new(&k, &opts);
    let before = analysis.ranges().clone();
    let cone = ConeIndex::build(&k);
    let after = analysis.update(&k, &[], &cone).clone();
    assert_ranges_bitwise(&after, &before, "fir64 empty update");
}

#[test]
fn param_and_input_edits_match_fresh() {
    let opts = RangeOptions::default();
    for (kernel, label) in [(fir64(), "fir64"), (conv3x3(), "conv3x3")] {
        let analysis = RangeAnalysis::new(&kernel, &opts);
        assert!(analysis.is_incremental(), "{label}: expected a journal");
        // Perturb a slice of the parameter table.
        let (kernel, analysis) = check_update(
            &kernel,
            analysis,
            &opts,
            |site, v| match site {
                ValueSite::Param(_, i) if i % 3 == 0 => v - 0.03125,
                _ => v,
            },
            &format!("{label} param edit"),
        );
        // Then widen the input range on the already-updated analysis
        // (chained incremental updates).
        let (kernel, analysis) = check_update(
            &kernel,
            analysis,
            &opts,
            |site, v| match site {
                ValueSite::InputLo(_) => v - 0.25,
                ValueSite::InputHi(_) => v + 0.25,
                _ => v,
            },
            &format!("{label} input edit"),
        );
        // And finally touch constants (conv3x3 has none; the empty
        // changed set must still be a correct no-op through the helper).
        let _ = check_update(
            &kernel,
            analysis,
            &opts,
            |site, v| match site {
                ValueSite::Const(_) => v + 0.015625,
                _ => v,
            },
            &format!("{label} const edit"),
        );
    }
}

#[test]
fn simulation_fallback_update_matches_fresh() {
    // iir10's feedback diverges under interval iteration; the analysis
    // must hold the simulation result and a full-recompute update must
    // still match a fresh run bitwise.
    let opts = RangeOptions::default();
    let k = iir10();
    let analysis = RangeAnalysis::new(&k, &opts);
    assert!(!analysis.is_incremental(), "iir10 should not converge");
    assert!(matches!(
        analysis.ranges().method,
        RangeMethod::Simulation { .. }
    ));
    let _ = check_update(
        &k,
        analysis,
        &opts,
        |site, v| match site {
            ValueSite::Param(_, i) if i % 2 == 0 => v * 0.5,
            _ => v,
        },
        "iir10 param edit",
    );
}

/// `y = a*y + x` with `|a| < 1`: interval iteration converges.
fn feedback_kernel(a: f64) -> Kernel {
    let mut b = KernelBuilder::new("fb");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let acc = b.var("acc");
    let c = b.constf(a);
    let prev = b.read_var(acc);
    let fed = b.mul(c, prev);
    let xv = b.read_input(x);
    let sum = b.add(fed, xv);
    b.assign(acc, sum);
    let out = b.read_var(acc);
    b.set_output(y, out);
    b.finish()
}

#[test]
fn edit_into_and_out_of_divergence_matches_fresh() {
    let opts = RangeOptions::default();
    let k = feedback_kernel(0.125);
    let analysis = RangeAnalysis::new(&k, &opts);
    assert!(analysis.is_incremental(), "|a| < 1 should converge");
    // Crank the feedback coefficient past 1: the incremental replay must
    // detect divergence and fall back exactly like a fresh run.
    let (k, analysis) = check_update(
        &k,
        analysis,
        &opts,
        |site, v| match site {
            ValueSite::Const(_) => v + 1.5,
            _ => v,
        },
        "feedback into divergence",
    );
    assert!(!analysis.is_incremental());
    // And back under 1: the journal-less analysis recomputes in full and
    // regains incrementality.
    let (_, analysis) = check_update(
        &k,
        analysis,
        &opts,
        |site, v| match site {
            ValueSite::Const(_) => v - 1.5,
            _ => v,
        },
        "feedback out of divergence",
    );
    assert!(analysis.is_incremental());
}

#[test]
fn changed_exprs_classifies_edits() {
    let k = fir64();
    // Identical kernels: structurally equal, nothing changed.
    assert_eq!(changed_exprs(&k, &k.clone()), Some(Vec::new()));
    // A value edit flags exactly the loads of the edited table.
    let edited = k.edit_values(|site, v| match site {
        ValueSite::Param(_, 0) => v + 1.0,
        _ => v,
    });
    let changed = changed_exprs(&k, &edited).expect("structure preserved");
    assert!(!changed.is_empty(), "table edit must flag its loads");
    // Structurally different kernels are rejected.
    assert_eq!(changed_exprs(&k, &conv3x3()), None);
}

#[test]
fn generated_corpus_incremental_matches_full() {
    // Reduced simulation size: the differential cares about bit
    // equality, not tail coverage, and the suite runs in debug builds.
    let opts = RangeOptions {
        sim_activations: 512,
        ..RangeOptions::default()
    };
    let mut checked = 0usize;
    for seed in 0..64u64 {
        let mut kg = KernelGen::with_seed(seed);
        let Ok(kernel) = kg.gen_plan().build() else {
            continue; // generator invariants are pipeline_fuzz's job
        };
        let analysis = RangeAnalysis::new(&kernel, &opts);
        let want = determine_ranges(&kernel, &opts);
        assert_ranges_bitwise(analysis.ranges(), &want, &format!("gk{seed} fresh"));
        // Seed-dependent perturbation so the corpus exercises every
        // site kind; input bounds only move outward (lo stays <= hi).
        let (kernel, analysis) = check_update(
            &kernel,
            analysis,
            &opts,
            |site, v| match site {
                ValueSite::Const(_) if seed % 3 == 0 => v + 0.015625,
                ValueSite::Param(_, i) if (i as u64 + seed).is_multiple_of(2) => v - 0.03125,
                ValueSite::InputLo(_) if seed % 4 == 1 => v - 0.5,
                ValueSite::InputHi(_) if seed % 4 == 1 => v + 0.5,
                _ => v,
            },
            &format!("gk{seed} edit 1"),
        );
        // A second chained edit over the updated journal.
        let _ = check_update(
            &kernel,
            analysis,
            &opts,
            |site, v| match site {
                ValueSite::Param(_, 0) => v * 0.5,
                ValueSite::Const(_) if seed % 3 == 1 => v - 0.0625,
                _ => v,
            },
            &format!("gk{seed} edit 2"),
        );
        checked += 1;
    }
    assert!(checked >= 48, "corpus slice too thin: {checked}/64 built");
}
