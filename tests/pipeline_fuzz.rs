//! Whole-pipeline differential fuzzing.
//!
//! For every kernel of a seeded generated corpus ([`slpwlo::gen`]) and
//! every registered benchmark, across {XENTIUM, VEX-4} × wl {12, 16,
//! 24, 32}, the full chain is asserted end to end:
//!
//! 1. **range soundness** — every value observed while interpreting a
//!    sampled workload lies inside the range analysis' interval for
//!    that node;
//! 2. **spec journal / incremental evaluator** — a random `set_wl` /
//!    commit / rollback walk where `IncrementalEvaluator` must match
//!    the full `AnalyticalEvaluator` recompute *bitwise* on every step;
//! 3. **interpreter vs simulator** — the lowered scalar and SIMD
//!    machine programs, executed by `slpwlo::sim::execute_fixed`, must
//!    reproduce `simulate_fixed`'s output streams bit for bit;
//! 4. **compiled C** (gated on a host `cc`) — the emitted scalar and
//!    SIMD C compile with `-std=c99 -Wall -Werror` and their outputs
//!    are bit-identical to the same reference.
//!
//! Interleaved with the differentials, every artifact additionally runs
//! the `slpwlo-verify` static checkers at paranoid depth (kernel, each
//! wl's spec with range re-derivation, every lowered program): an
//! invariant break then names the offending pass directly instead of
//! surfacing as a bit-mismatch three stages later.
//!
//! Any failure prints the reproducing seed plus a **shrunk** minimal
//! kernel (and writes both to `target/fuzz-repros/` for CI artifact
//! upload). Reproduce locally with
//! `SLPWLO_FUZZ_SEEDS=<n> SLPWLO_FUZZ_FIRST=<seed> cargo test --test pipeline_fuzz`.
//!
//! Corpus size defaults to 64 seeds; the weekly CI deep run sets
//! `SLPWLO_FUZZ_SEEDS=4096`. By default the (slow) C stage runs on
//! every 8th generated seed and on every benchmark;
//! `SLPWLO_FUZZ_CC_ALL=1` compiles every kernel.

mod common;

use common::{bit_diff, cc_available, compile_and_run, simd_program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpwlo::accuracy::simulate::simulate_fixed;
use slpwlo::accuracy::{AccuracyEvaluator, AnalyticalEvaluator, IncrementalEvaluator};
use slpwlo::codegen::{emit_fixed_c, emit_intrinsics_header, emit_simd_c};
use slpwlo::core::{lower_scalar, MachineProgram};
use slpwlo::fixedpoint::range::{determine_ranges, RangeMethod, RangeOptions, Ranges};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::gen::{shrink, KernelGen, Plan};
use slpwlo::ir::interp::{ExecCtx, Executor, Semantics};
use slpwlo::ir::pretty::kernel_to_string;
use slpwlo::ir::{BinOp, ExprId, InputId, Kernel, ParamId, UnOp};
use slpwlo::kernels::{all_benchmarks, Workload};
use slpwlo::sim::execute_fixed;
use slpwlo::targets::{vex, xentium, TargetModel};
use slpwlo::verify::{verify_kernel, verify_program, verify_spec};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Activations per differential run (kept small: the whole corpus runs
/// the matrix in debug builds).
const FUZZ_ACTIVATIONS: usize = 64;

const WLS: [i32; 4] = [12, 16, 24, 32];

fn targets() -> [TargetModel; 2] {
    [xentium(), vex(4)]
}

fn corpus() -> Vec<u64> {
    let n: u64 = std::env::var("SLPWLO_FUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let first: u64 = std::env::var("SLPWLO_FUZZ_FIRST")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    (first..first + n).collect()
}

fn cc_everything() -> bool {
    std::env::var("SLPWLO_FUZZ_CC_ALL").is_ok()
}

/// How the C stage is driven for one kernel.
#[derive(Clone, Copy, PartialEq)]
enum CcStage {
    Skip,
    Compile,
}

// ---------------------------------------------------------------------------
// Check 1: range soundness
// ---------------------------------------------------------------------------

/// Float semantics recording the min/max value every expression node
/// ever produced.
struct MinMaxSem {
    lo: Vec<f64>,
    hi: Vec<f64>,
    seen: Vec<bool>,
}

impl MinMaxSem {
    fn new(kernel: &Kernel) -> Self {
        MinMaxSem {
            lo: vec![f64::INFINITY; kernel.expr_count()],
            hi: vec![f64::NEG_INFINITY; kernel.expr_count()],
            seen: vec![false; kernel.expr_count()],
        }
    }

    fn record(&mut self, e: ExprId, v: f64) -> f64 {
        let i = e.index();
        self.lo[i] = self.lo[i].min(v);
        self.hi[i] = self.hi[i].max(v);
        self.seen[i] = true;
        v
    }
}

impl Semantics for MinMaxSem {
    type Value = f64;

    fn zero(&mut self) -> f64 {
        0.0
    }
    fn constant(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> f64 {
        self.record(e, v)
    }
    fn input(&mut self, _c: ExecCtx, e: ExprId, _i: InputId, raw: f64) -> f64 {
        self.record(e, raw)
    }
    fn param(&mut self, _c: ExecCtx, e: ExprId, _p: ParamId, _i: i64, raw: f64) -> f64 {
        self.record(e, raw)
    }
    fn load(&mut self, _c: ExecCtx, e: ExprId, stored: f64) -> f64 {
        self.record(e, stored)
    }
    fn var_use(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> f64 {
        self.record(e, v)
    }
    fn un(&mut self, _c: ExecCtx, e: ExprId, op: UnOp, a: f64) -> f64 {
        let v = match op {
            UnOp::Neg => -a,
        };
        self.record(e, v)
    }
    fn bin(&mut self, _c: ExecCtx, e: ExprId, op: BinOp, a: f64, b: f64) -> f64 {
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        };
        self.record(e, v)
    }
    fn to_f64(&self, v: f64) -> f64 {
        v
    }
}

/// Every observed value must lie inside the analysis range. Interval
/// ranges are sound by construction, so any excursion is a bug;
/// simulation ranges carry a safety margin measured on a *different*
/// workload, so gross violations (beyond an extra 4x inflation) are
/// flagged while legitimate statistical wiggle is tolerated.
fn check_range_soundness(
    kernel: &Kernel,
    ranges: &Ranges,
    workload: &Workload,
) -> Result<(), String> {
    let mut ex = Executor::new(kernel, MinMaxSem::new(kernel));
    let _ = ex.run(&workload.inputs);
    let sem = ex.semantics();
    let (slack, label) = match ranges.method {
        RangeMethod::Interval => (1.0, "interval"),
        RangeMethod::Simulation { .. } => (4.0, "simulation"),
    };
    for (id, _) in kernel.exprs() {
        if !sem.seen[id.index()] {
            continue;
        }
        let iv = ranges.expr(id);
        let mag = iv.lo.abs().max(iv.hi.abs());
        let eps = 1e-9 * mag.max(1.0);
        let widen = (slack - 1.0) * (iv.hi - iv.lo).max(1.0);
        let lo_bound = iv.lo - widen - eps;
        let hi_bound = iv.hi + widen + eps;
        let (olo, ohi) = (sem.lo[id.index()], sem.hi[id.index()]);
        if olo < lo_bound || ohi > hi_bound {
            return Err(format!(
                "range unsoundness ({label}) at {id}: observed [{olo}, {ohi}] \
                 outside analysis range [{}, {}]",
                iv.lo, iv.hi
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Check 2: spec journal / incremental evaluator agreement
// ---------------------------------------------------------------------------

/// A short random `set_wl`/commit/rollback walk; the incremental
/// evaluator must match the full recompute bitwise at every step.
fn check_incremental_agreement(
    kernel: &Kernel,
    ranges: &Ranges,
    seed: u64,
    steps: usize,
) -> Result<(), String> {
    let eval = AnalyticalEvaluator::with_defaults(kernel);
    let mut spec = FixedPointSpec::from_ranges(kernel, ranges, 32);
    let keys = spec.optimizable_keys(kernel);
    if keys.is_empty() {
        return Ok(()); // nothing to optimize (constant-only kernel)
    }
    let inc = IncrementalEvaluator::with_spec(&eval, &spec);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11C0);
    for step in 0..steps {
        let mark = spec.mark();
        let nkeys = 1 + rng.gen_range(0..3usize);
        for _ in 0..nkeys {
            let key = keys[rng.gen_range(0..keys.len())];
            let wl = [8, 12, 16, 20, 24, 28, 32][rng.gen_range(0..7usize)];
            spec.set_wl(key, wl);
        }
        let inc_db = inc.trial_noise_db(&spec, mark);
        let full_db = eval.noise_db(&spec);
        if inc_db.to_bits() != full_db.to_bits() {
            return Err(format!(
                "incremental/journal divergence at step {step}: \
                 incremental {inc_db} vs full {full_db}"
            ));
        }
        if rng.gen_range(0..100usize) < 50 {
            spec.commit(mark);
            inc.commit_trial();
        } else {
            spec.rollback(mark);
            inc.rollback_trial();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Checks 3 + 4: execution differentials
// ---------------------------------------------------------------------------

fn check_exec_differential(
    kernel: &Kernel,
    ranges: &Ranges,
    workload: &Workload,
    cc: CcStage,
    tag: &str,
) -> Result<(), String> {
    for wl in WLS {
        let spec = FixedPointSpec::from_ranges(kernel, ranges, wl);
        // Paranoid spec check: formats cover the established ranges,
        // and (for interval ranges) the ranges themselves re-derive.
        verify_spec(kernel, ranges, &spec, true)
            .map_err(|e| format!("spec verification failed at wl={wl}: {e}"))?;
        let reference = simulate_fixed(kernel, &spec, &workload.inputs);
        for target in targets() {
            let scalar = lower_scalar(kernel, &spec, &target);
            verify_program(&scalar, &target).map_err(|e| {
                format!(
                    "scalar program verification failed at wl={wl} on {}: {e}",
                    target.name
                )
            })?;
            let got = execute_fixed(&scalar, &workload.inputs).map_err(|e| {
                format!(
                    "scalar interpreter failed at wl={wl} on {}: {e:?}",
                    target.name
                )
            })?;
            bit_diff(
                &format!("{} scalar wl={wl} on {}", kernel.name(), target.name),
                &reference,
                &got,
            )?;
            let simd = simd_program(kernel, &spec, &target);
            verify_program(&simd, &target).map_err(|e| {
                format!(
                    "simd program verification failed at wl={wl} on {}: {e}",
                    target.name
                )
            })?;
            let got = execute_fixed(&simd, &workload.inputs).map_err(|e| {
                format!(
                    "simd interpreter failed at wl={wl} on {}: {e:?}",
                    target.name
                )
            })?;
            bit_diff(
                &format!("{} simd wl={wl} on {}", kernel.name(), target.name),
                &reference,
                &got,
            )?;
            // The C stage runs at one representative (wl, target) point:
            // wl 16 on XENTIUM, the paper's headline configuration.
            if cc == CcStage::Compile && wl == 16 && target.name == "XENTIUM" {
                check_c_differential(kernel, &spec, &scalar, &simd, &target, workload, tag)?;
            }
        }
    }
    Ok(())
}

fn check_c_differential(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    scalar: &MachineProgram,
    simd: &MachineProgram,
    target: &TargetModel,
    workload: &Workload,
    tag: &str,
) -> Result<(), String> {
    let reference = simulate_fixed(kernel, spec, &workload.inputs);
    let outputs = kernel.outputs().len();
    let fixed = emit_fixed_c(scalar).map_err(|e| format!("scalar C emission failed: {e}"))?;
    let got = compile_and_run(
        &format!("fuzz_{tag}_fixed"),
        &fixed,
        None,
        kernel.name(),
        workload,
        outputs,
    );
    bit_diff(&format!("{tag} scalar C"), &reference, &got)?;
    let simd_c =
        emit_simd_c(simd, &target.name).map_err(|e| format!("SIMD C emission failed: {e}"))?;
    let header = emit_intrinsics_header(target);
    let got = compile_and_run(
        &format!("fuzz_{tag}_simd"),
        &simd_c,
        Some(("slpwlo_simd_xentium.h", &header)),
        kernel.name(),
        workload,
        outputs,
    );
    bit_diff(&format!("{tag} SIMD C"), &reference, &got)
}

// ---------------------------------------------------------------------------
// The full per-kernel check
// ---------------------------------------------------------------------------

fn check_kernel(kernel: &Kernel, seed: u64, cc: CcStage, tag: &str) -> Result<(), String> {
    kernel
        .validate()
        .map_err(|e| format!("validation failed: {e}"))?;
    verify_kernel(kernel).map_err(|e| format!("kernel verification failed: {e}"))?;
    let workload = Workload::white(kernel.inputs().len(), FUZZ_ACTIVATIONS, seed ^ 0xF00D);
    let ranges = determine_ranges(kernel, &RangeOptions::default());
    check_range_soundness(kernel, &ranges, &workload)?;
    check_incremental_agreement(kernel, &ranges, seed, 30)?;
    check_exec_differential(kernel, &ranges, &workload, cc, tag)
}

/// Runs `f`, converting panics (asserts deep inside the pipeline) into
/// errors so the shrinker can chase them.
fn catching(f: impl FnOnce() -> Result<(), String>) -> Result<(), String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Shrinks a failing plan against "any pipeline check fails", silencing
/// panic output while candidates are probed.
fn shrink_quietly(plan: &Plan, seed: u64, cc: CcStage) -> Plan {
    // Silence the panic output of the (expected-to-fail) shrink probes
    // on *this thread only* — the other tests in this binary may be
    // running concurrently and their panics must stay diagnosable. The
    // delegating hook stays installed afterwards (behaviour-identical
    // to the original once `silenced` is cleared), which also survives
    // a panic escaping the shrink itself.
    let prev_hook: std::sync::Arc<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync> =
        std::panic::take_hook().into();
    let silenced = std::sync::Arc::new(std::sync::Mutex::new(Some(std::thread::current().id())));
    {
        let prev = prev_hook.clone();
        let silenced = silenced.clone();
        std::panic::set_hook(Box::new(move |info| {
            if *silenced.lock().unwrap() != Some(std::thread::current().id()) {
                prev(info);
            }
        }));
    }
    // Clear the silencing even if the shrink itself unwinds.
    struct Unsilence(std::sync::Arc<std::sync::Mutex<Option<std::thread::ThreadId>>>);
    impl Drop for Unsilence {
        fn drop(&mut self) {
            *self.0.lock().unwrap() = None;
        }
    }
    let _guard = Unsilence(silenced);
    // Probe candidates with the same stages the failure was detected
    // under — a C-only divergence must keep compiling C during the
    // shrink, or every candidate would "pass" and nothing shrinks.
    shrink(plan, &mut |kernel| {
        catching(|| check_kernel(kernel, seed, cc, "shrink")).is_err()
    })
}

fn report_failure(seed: u64, plan: Option<&Plan>, cc: CcStage, what: &str, msg: &str) -> ! {
    let repro_dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("..")
        .join("fuzz-repros");
    let _ = std::fs::create_dir_all(&repro_dir);
    let shrunk_text = plan.map(|p| {
        let shrunk = shrink_quietly(p, seed, cc);
        match shrunk.build() {
            Ok(k) => kernel_to_string(&k),
            Err(e) => format!("(shrunk plan failed to rebuild: {e})\n{shrunk:#?}"),
        }
    });
    let mut report = format!("pipeline fuzz failure on {what} (seed {seed}): {msg}\n");
    if let Some(text) = &shrunk_text {
        report.push_str(&format!("minimal reproducing kernel:\n{text}"));
    }
    // SLPWLO_FUZZ_CC_ALL forces the C stage for the replayed seed; the
    // failing stage may otherwise be skipped (it only runs on every
    // 8th seed by default).
    report.push_str(&format!(
        "reproduce with: SLPWLO_FUZZ_SEEDS=1 SLPWLO_FUZZ_FIRST={seed} SLPWLO_FUZZ_CC_ALL=1 \
         cargo test --test pipeline_fuzz fuzz_generated_kernels\n"
    ));
    let _ = std::fs::write(repro_dir.join(format!("seed_{seed}.txt")), &report);
    panic!("{report}");
}

// ---------------------------------------------------------------------------
// The tests
// ---------------------------------------------------------------------------

#[test]
fn fuzz_generated_kernels() {
    let cc_present = cc_available();
    let cc_all = cc_everything();
    for seed in corpus() {
        let mut kg = KernelGen::with_seed(seed);
        let plan = kg.gen_plan();
        let kernel = match plan.build() {
            Ok(k) => k,
            Err(e) => report_failure(
                seed,
                None,
                CcStage::Skip,
                "generator",
                &format!("plan failed to build: {e}"),
            ),
        };
        let cc = if cc_present && (cc_all || seed % 8 == 0) {
            CcStage::Compile
        } else {
            CcStage::Skip
        };
        if let Err(msg) = catching(|| check_kernel(&kernel, seed, cc, &format!("gk{seed}"))) {
            report_failure(seed, Some(&plan), cc, kernel.name(), &msg);
        }
    }
}

#[test]
fn fuzz_benchmark_kernels() {
    let cc_present = cc_available();
    for bench in all_benchmarks() {
        let seed = 0xBEEF ^ bench.name.len() as u64;
        // The benchmark's own workload shape, at fuzz size.
        let workload = bench.workload_sized(FUZZ_ACTIVATIONS, seed);
        let kernel = bench.kernel;
        let cc = if cc_present {
            CcStage::Compile
        } else {
            CcStage::Skip
        };
        let result = catching(|| {
            verify_kernel(&kernel).map_err(|e| format!("kernel verification failed: {e}"))?;
            let ranges = determine_ranges(&kernel, &RangeOptions::default());
            check_range_soundness(&kernel, &ranges, &workload)?;
            check_incremental_agreement(&kernel, &ranges, seed, 20)?;
            check_exec_differential(&kernel, &ranges, &workload, cc, bench.name)
        });
        if let Err(msg) = result {
            panic!(
                "pipeline fuzz failure on benchmark {} : {msg}\n\
                 (benchmarks are deterministic; re-run \
                 `cargo test --test pipeline_fuzz fuzz_benchmark_kernels`)",
                bench.name
            );
        }
    }
}

/// Every benchmark runs through the public `Optimizer` driver exactly
/// the way `examples/quickstart.rs` does — the driver-level guarantee
/// that opening the suite did not leave any registered kernel behind —
/// with pass-boundary verification at its paranoid maximum, so even
/// intermediate artifacts (pre-prune groupings, candidate lowerings the
/// pruner only prices) are checked on every run.
#[test]
fn every_benchmark_runs_through_the_driver() {
    use slpwlo::{FlowKind, Optimizer, VerifyLevel};
    for bench in all_benchmarks() {
        let report = Optimizer::for_kernel(bench.kernel.clone())
            .unwrap_or_else(|e| panic!("{}: driver rejects the kernel: {e}", bench.name))
            .constraint_db(-25.0)
            .flow(FlowKind::WloSlp)
            .activations(64)
            .verify_level(VerifyLevel::Paranoid)
            .run()
            .unwrap_or_else(|e| panic!("{}: driver run failed: {e}", bench.name));
        assert!(
            report.noise_db.unwrap_or(f64::INFINITY) <= -25.0,
            "{}: constraint not met",
            bench.name
        );
        assert!(report.cycles_simd > 0, "{}: no cycle count", bench.name);
    }
}
