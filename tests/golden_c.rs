//! Golden-file snapshots of the emitted C.
//!
//! Two kernels are snapshotted: FIR-8 through the full WLO-SLP flow
//! (non-uniform formats, the paper's pipeline) and dot-product-256 on a
//! uniform 16-bit specification (the longest reduction in the suite —
//! loop-heavy code with large coefficient tables). The emitted
//! artifacts are stable across refactors; any intentional change to the
//! back-ends shows up as a reviewable diff under `tests/golden/` (see
//! its README). Regenerate with:
//!
//! ```sh
//! SLPWLO_UPDATE_GOLDEN=1 cargo test --test golden_c
//! ```

mod common;

use slpwlo::codegen::{emit_fixed_c, emit_simd_c};
use slpwlo::core::{lower_scalar, prepare, wlo_slp_flow};
use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::ir::parser::parse_kernel;
use slpwlo::kernels::dot_product256;
use slpwlo::targets::xentium;
use std::path::Path;

const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

fn check_golden(name: &str, produced: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("SLPWLO_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, produced).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); run with SLPWLO_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        expected, produced,
        "emitted {name} drifted from its golden snapshot; if the change \
         is intentional, regenerate with SLPWLO_UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn fir8_scalar_c_matches_golden() {
    let prep = prepare(parse_kernel(FIR8).unwrap());
    let flow = wlo_slp_flow(&prep, &xentium(), -40.0);
    let scalar = lower_scalar(&prep.kernel, &flow.spec, &xentium());
    let c = emit_fixed_c(&scalar).expect("scalar C emits");
    check_golden("fir8_fixed.c", &c);
}

#[test]
fn fir8_simd_c_matches_golden() {
    let prep = prepare(parse_kernel(FIR8).unwrap());
    let flow = wlo_slp_flow(&prep, &xentium(), -40.0);
    let c = emit_simd_c(&flow.simd, "XENTIUM").expect("SIMD C emits");
    check_golden("fir8_simd.c", &c);
}

/// Uniform 16-bit specification for dot-product-256 (no search: the
/// snapshot must stay byte-stable under optimizer evolution and
/// exercise the loop/table emission paths instead).
fn dot256_setup() -> (slpwlo::ir::Kernel, FixedPointSpec) {
    let kernel = dot_product256();
    let ranges = determine_ranges(&kernel, &RangeOptions::default());
    let spec = FixedPointSpec::from_ranges(&kernel, &ranges, 16);
    (kernel, spec)
}

#[test]
fn dot256_scalar_c_matches_golden() {
    let (kernel, spec) = dot256_setup();
    let scalar = lower_scalar(&kernel, &spec, &xentium());
    let c = emit_fixed_c(&scalar).expect("scalar C emits");
    check_golden("dot256_fixed.c", &c);
}

#[test]
fn dot256_simd_c_matches_golden() {
    let (kernel, spec) = dot256_setup();
    let simd = common::simd_program(&kernel, &spec, &xentium());
    let c = emit_simd_c(&simd, "XENTIUM").expect("SIMD C emits");
    check_golden("dot256_simd.c", &c);
}
