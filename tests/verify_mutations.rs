//! Mutation harness for the `slpwlo-verify` checkers.
//!
//! A verifier is only worth its keep if it actually *kills* broken
//! artifacts. This harness builds known-good artifacts from the
//! 8-benchmark suite, applies seeded single-point mutations — shrink a
//! format, claim a lane twice, reorder dependent machine ops, corrupt a
//! requantization — and asserts that the responsible checker rejects
//! each mutant with the *right* structured error (pass + invariant).
//! Every checker must score at least one kill; most score one per
//! benchmark.
//!
//! The IR checker is the one exception to "mutate a benchmark": the
//! kernel arena's fields are deliberately crate-private, so IR mutants
//! cannot be forged from outside. Its mutants are built through the
//! public `KernelBuilder` instead — misuse that `Kernel::validate`
//! accepts but `verify_kernel` must not.

mod common;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpwlo::core::nodes::value_wl;
use slpwlo::core::{lower_scalar, MachineProgram, MopKind};
use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
use slpwlo::fixedpoint::{FixedPointSpec, QFormat};
use slpwlo::ir::blocks::collect_blocks;
use slpwlo::ir::builder::KernelBuilder;
use slpwlo::ir::Dfg;
use slpwlo::kernels::all_benchmarks;
use slpwlo::slp::{extract_plain, SimdGroup};
use slpwlo::targets::{vex, xentium, TargetModel};
use slpwlo::verify::{
    verify_groups, verify_kernel, verify_program, verify_spec, Invariant, Pass, VerifyError,
};

const WL: i32 = 16;

fn targets() -> [TargetModel; 2] {
    [xentium(), vex(4)]
}

/// Asserts a kill: the mutant is rejected by `pass` for `invariant`.
fn assert_kill(tag: &str, got: Result<(), VerifyError>, pass: Pass, invariant: Invariant) {
    match got {
        Ok(()) => panic!("{tag}: mutant survived verification"),
        Err(e) => {
            assert_eq!(e.pass, pass, "{tag}: wrong pass in {e}");
            assert_eq!(e.invariant, invariant, "{tag}: wrong invariant in {e}");
        }
    }
}

// --- IR -------------------------------------------------------------

/// Builder misuse that `validate` accepts must still die in
/// `verify_kernel` — the checker is redundant with the builder's own
/// bookkeeping by design.
#[test]
fn builder_mutants_kill_the_ir_checker() {
    // Read a variable before any assignment defines it.
    let mut b = KernelBuilder::new("mut_use_before_def");
    let y = b.output("y");
    let v = b.var("t");
    let r = b.read_var(v);
    b.set_output(y, r);
    let k = b.finish();
    assert!(k.validate().is_ok(), "validate should miss use-before-def");
    assert_kill(
        "ir/use-before-def",
        verify_kernel(&k),
        Pass::Ir,
        Invariant::UseBeforeDef,
    );

    // An index past the end is NOT a kill: every backend shares the
    // Euclidean wrap semantics, so the IR checker must accept it.
    let mut b = KernelBuilder::new("mut_wrapping_load");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let a = b.array("dl", 4);
    let xv = b.read_input(x);
    b.shift_in(a, xv);
    let l = b.load(a, 4);
    b.set_output(y, l);
    let k = b.finish();
    verify_kernel(&k).expect("wrapping scalar index must verify clean");
}

/// Every benchmark kernel is clean to begin with — the baseline the
/// mutations below perturb.
#[test]
fn benchmark_kernels_are_clean() {
    for bench in all_benchmarks() {
        verify_kernel(&bench.kernel)
            .unwrap_or_else(|e| panic!("{}: clean kernel rejected: {e}", bench.name));
    }
}

// --- Spec -----------------------------------------------------------

/// Shrinking any chosen format's integer part below what the value
/// range needs is a static overflow; zeroing a word length is
/// unrepresentable. One seeded site per benchmark for each.
#[test]
fn spec_mutations_kill_the_spec_checker() {
    for (bi, bench) in all_benchmarks().into_iter().enumerate() {
        let ranges = determine_ranges(&bench.kernel, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&bench.kernel, &ranges, WL);
        verify_spec(&bench.kernel, &ranges, &spec, true)
            .unwrap_or_else(|e| panic!("{}: clean spec rejected: {e}", bench.name));

        let keys = spec.optimizable_keys(&bench.kernel);
        assert!(!keys.is_empty(), "{}: no optimizable sites", bench.name);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ bi as u64);
        let site = keys[rng.gen_range(0..keys.len())];

        // `from_ranges` chooses the minimal covering IWL, so one bit
        // less cannot represent the established range.
        let mut narrowed = spec.clone();
        let fmt = narrowed.format(site);
        narrowed.set_format(site, QFormat::new(fmt.iwl - 1, fmt.fwl));
        assert_kill(
            &format!("{}/spec-shrink {site}", bench.name),
            verify_spec(&bench.kernel, &ranges, &narrowed, false),
            Pass::Spec,
            Invariant::FormatOverflow,
        );

        let mut zeroed = spec.clone();
        zeroed.set_format(site, QFormat::new(0, 0));
        assert_kill(
            &format!("{}/spec-zero-wl {site}", bench.name),
            verify_spec(&bench.kernel, &ranges, &zeroed, false),
            Pass::Spec,
            Invariant::WordLength,
        );
    }
}

// --- SLP ------------------------------------------------------------

/// Per-block DFG and plain extraction on the frozen 16-bit spec — the
/// same grouping path `tests/slp_invariants.rs` exercises.
fn block_groupings(
    bench: &slpwlo::kernels::Benchmark,
    target: &TargetModel,
) -> Vec<(Dfg, Vec<SimdGroup>)> {
    let ranges = determine_ranges(&bench.kernel, &RangeOptions::default());
    let spec = FixedPointSpec::from_ranges(&bench.kernel, &ranges, WL);
    collect_blocks(&bench.kernel)
        .iter()
        .map(|block| {
            let dfg = Dfg::from_block(&bench.kernel, block);
            let groups = {
                let spec_ref = &spec;
                let dfg_ref = &dfg;
                extract_plain(&dfg, target, &move |n| value_wl(spec_ref, dfg_ref, n))
            };
            (dfg, groups)
        })
        .collect()
}

/// Lane-level single-point mutations: claim a node twice (within a
/// group and across groups), drop to one lane, and stretch to a width
/// the target cannot realise. Each class must kill at least once per
/// target across the suite.
#[test]
fn group_mutations_kill_the_slp_checker() {
    for target in targets() {
        let mut dup_kills = 0usize;
        let mut reclaim_kills = 0usize;
        let mut swap_kills = 0usize;
        let mut lane_kills = 0usize;
        let mut width_kills = 0usize;
        for bench in all_benchmarks() {
            for (dfg, groups) in block_groupings(&bench, &target) {
                verify_groups(&dfg, &groups, &target, bench.name)
                    .unwrap_or_else(|e| panic!("{}: clean groups rejected: {e}", bench.name));
                if groups.is_empty() {
                    continue;
                }

                // Duplicate a lane inside one group: a node is never
                // independent of itself, so the pairwise-independence
                // check fires before the cross-group bookkeeping.
                let mut m = groups.clone();
                m[0].elems[1] = m[0].elems[0];
                assert_kill(
                    &format!("{}/slp-dup {}", bench.name, target.name),
                    verify_groups(&dfg, &m, &target, bench.name),
                    Pass::Slp,
                    Invariant::DependentLanes,
                );
                dup_kills += 1;

                // Claim an entire group twice: every node of the copy
                // is already taken.
                let mut m = groups.clone();
                m.push(m[0].clone());
                assert_kill(
                    &format!("{}/slp-reclaim {}", bench.name, target.name),
                    verify_groups(&dfg, &m, &target, bench.name),
                    Pass::Slp,
                    Invariant::DuplicateNode,
                );
                reclaim_kills += 1;

                // Swap a lane *across* groups. When the groups are
                // isomorphic the node is now claimed twice; when they
                // are not, the graft breaks lane isomorphism — either
                // way the mutant must die, for the predictable reason.
                if groups.len() >= 2 {
                    let a = dfg.node(groups[0].elems[0]);
                    let b = dfg.node(groups[1].elems[0]);
                    let iso = a.kind.isomorphic(&b.kind) && a.operands.len() == b.operands.len();
                    let mut m = groups.clone();
                    m[1].elems[0] = m[0].elems[0];
                    assert_kill(
                        &format!("{}/slp-swap {}", bench.name, target.name),
                        verify_groups(&dfg, &m, &target, bench.name),
                        Pass::Slp,
                        if iso {
                            Invariant::DuplicateNode
                        } else {
                            Invariant::NonIsomorphic
                        },
                    );
                    swap_kills += 1;
                }

                // Drop to a single lane.
                let mut m = groups.clone();
                m[0].elems.truncate(1);
                assert_kill(
                    &format!("{}/slp-lanes {}", bench.name, target.name),
                    verify_groups(&dfg, &m, &target, bench.name),
                    Pass::Slp,
                    Invariant::LaneCount,
                );
                lane_kills += 1;

                // Stretch to lanes+1: no target offers an odd width.
                let mut m = groups.clone();
                let extra = m[0].elems[0];
                m[0].elems.push(extra);
                if target.simd_element_wl(m[0].elems.len() as u32).is_none() {
                    assert_kill(
                        &format!("{}/slp-width {}", bench.name, target.name),
                        verify_groups(&dfg, &m, &target, bench.name),
                        Pass::Slp,
                        Invariant::UnsupportedWidth,
                    );
                    width_kills += 1;
                }
            }
        }
        assert!(dup_kills > 0, "{}: no duplicate-lane kills", target.name);
        assert!(reclaim_kills > 0, "{}: no group-reclaim kills", target.name);
        assert!(swap_kills > 0, "{}: no lane-swap kills", target.name);
        assert!(lane_kills > 0, "{}: no lane-count kills", target.name);
        assert!(width_kills > 0, "{}: no width kills", target.name);
    }
}

// --- Machine --------------------------------------------------------

/// Clean SIMD + scalar lowerings for one benchmark at the frozen spec.
fn lowerings(
    bench: &slpwlo::kernels::Benchmark,
    target: &TargetModel,
) -> (MachineProgram, MachineProgram) {
    let ranges = determine_ranges(&bench.kernel, &RangeOptions::default());
    let spec = FixedPointSpec::from_ranges(&bench.kernel, &ranges, WL);
    let simd = common::simd_program(&bench.kernel, &spec, target);
    let scalar = lower_scalar(&bench.kernel, &spec, target);
    (simd, scalar)
}

/// Swaps a seeded dependent op with its first predecessor, turning the
/// dependence forward. Returns false when the program has none.
fn reorder_dependent_ops(program: &mut MachineProgram, rng: &mut StdRng) -> bool {
    let sites: Vec<(usize, usize, usize)> = program
        .blocks
        .iter()
        .enumerate()
        .flat_map(|(b, block)| {
            block
                .ops
                .iter()
                .enumerate()
                .filter_map(move |(i, op)| op.preds.first().map(|&p| (b, i, p)))
        })
        .collect();
    if sites.is_empty() {
        return false;
    }
    let (b, i, p) = sites[rng.gen_range(0..sites.len())];
    program.blocks[b].ops.swap(i, p);
    true
}

/// Widens a seeded store's claimed format so it no longer matches the
/// location's declared storage format.
fn corrupt_store_format(program: &mut MachineProgram, rng: &mut StdRng) -> bool {
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (b, block) in program.blocks.iter().enumerate() {
        for (i, op) in block.ops.iter().enumerate() {
            if matches!(
                op.kind,
                MopKind::ShiftIn { .. } | MopKind::Store { .. } | MopKind::VStore { .. }
            ) {
                sites.push((b, i));
            }
        }
    }
    if sites.is_empty() {
        return false;
    }
    let (b, i) = sites[rng.gen_range(0..sites.len())];
    match &mut program.blocks[b].ops[i].kind {
        MopKind::ShiftIn { to, .. } | MopKind::Store { to, .. } | MopKind::VStore { to, .. } => {
            *to = QFormat::new(to.iwl + 1, to.fwl - 1);
        }
        _ => unreachable!(),
    }
    true
}

/// Pushes a seeded requantization off the 63-bit shift grid (scalar),
/// or breaks the lane-shift uniformity (vector).
fn corrupt_requant(program: &mut MachineProgram, rng: &mut StdRng) -> bool {
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (b, block) in program.blocks.iter().enumerate() {
        for (i, op) in block.ops.iter().enumerate() {
            if matches!(op.kind, MopKind::Requant { .. } | MopKind::VRequant { .. }) {
                sites.push((b, i));
            }
        }
    }
    if sites.is_empty() {
        return false;
    }
    let (b, i) = sites[rng.gen_range(0..sites.len())];
    match &mut program.blocks[b].ops[i].kind {
        MopKind::Requant { to, .. } => to.fwl += 70,
        MopKind::VRequant { to, .. } => to[0].fwl += 70,
        _ => unreachable!(),
    }
    true
}

/// Sends a seeded vector lane's index out of `[0, len)`. Scalar
/// accesses wrap (defined), but vector locs are read contiguously and
/// must be statically in-bounds.
fn corrupt_vector_lane(program: &mut MachineProgram, rng: &mut StdRng) -> bool {
    use slpwlo::core::Loc;
    use slpwlo::ir::IndexExpr;
    let mut sites: Vec<(usize, usize)> = Vec::new();
    for (b, block) in program.blocks.iter().enumerate() {
        for (i, op) in block.ops.iter().enumerate() {
            if matches!(op.kind, MopKind::VLoad { .. } | MopKind::VStore { .. }) {
                sites.push((b, i));
            }
        }
    }
    if sites.is_empty() {
        return false;
    }
    let (b, i) = sites[rng.gen_range(0..sites.len())];
    match &mut program.blocks[b].ops[i].kind {
        MopKind::VLoad { locs } | MopKind::VStore { locs, .. } => {
            let (Loc::Array(_, ix) | Loc::Param(_, ix)) = &mut locs[0];
            *ix = IndexExpr::constant(-1);
        }
        _ => unreachable!(),
    }
    true
}

/// Reordering, store-format corruption and requant corruption must each
/// kill; reordering and store corruption on every benchmark × target,
/// requant and vector-lane corruption wherever the lowering emits the
/// relevant op.
#[test]
fn machine_mutations_kill_the_machine_checker() {
    let mut requant_kills = 0usize;
    let mut lane_kills = 0usize;
    for target in targets() {
        for (bi, bench) in all_benchmarks().into_iter().enumerate() {
            let (simd, scalar) = lowerings(&bench, &target);
            verify_program(&simd, &target)
                .unwrap_or_else(|e| panic!("{}: clean simd rejected: {e}", bench.name));
            verify_program(&scalar, &target)
                .unwrap_or_else(|e| panic!("{}: clean scalar rejected: {e}", bench.name));

            let mut rng = StdRng::seed_from_u64(0xBADC0DE ^ bi as u64);
            for (leg, clean) in [("simd", &simd), ("scalar", &scalar)] {
                let mut m = clean.clone();
                assert!(
                    reorder_dependent_ops(&mut m, &mut rng),
                    "{}: no dependences to reorder",
                    bench.name
                );
                assert_kill(
                    &format!("{}/{leg}-reorder {}", bench.name, target.name),
                    verify_program(&m, &target),
                    Pass::Machine,
                    Invariant::PredOrder,
                );

                let mut m = clean.clone();
                assert!(
                    corrupt_store_format(&mut m, &mut rng),
                    "{}: no stores to corrupt",
                    bench.name
                );
                assert_kill(
                    &format!("{}/{leg}-store {}", bench.name, target.name),
                    verify_program(&m, &target),
                    Pass::Machine,
                    Invariant::FormatNotCovering,
                );

                let mut m = clean.clone();
                if corrupt_requant(&mut m, &mut rng) {
                    assert_kill(
                        &format!("{}/{leg}-requant {}", bench.name, target.name),
                        verify_program(&m, &target),
                        Pass::Machine,
                        Invariant::FormatNotCovering,
                    );
                    requant_kills += 1;
                }

                let mut m = clean.clone();
                if corrupt_vector_lane(&mut m, &mut rng) {
                    assert_kill(
                        &format!("{}/{leg}-vlane {}", bench.name, target.name),
                        verify_program(&m, &target),
                        Pass::Machine,
                        Invariant::IndexOutOfBounds,
                    );
                    lane_kills += 1;
                }
            }
        }
    }
    assert!(
        requant_kills > 0,
        "no benchmark lowering emitted a requantization to corrupt"
    );
    assert!(
        lane_kills > 0,
        "no benchmark lowering emitted a vector access to corrupt"
    );
}

/// Pipelining-specific corruption of otherwise-clean modulo schedules:
/// tearing the prologue/epilogue reassembly identity, folding the whole
/// issue log onto one residue, and stretching an op past its own
/// loop-carried dependence. Each must die in the machine pass with the
/// matching modulo invariant — none of these is visible to the flat
/// per-cycle audit, which is exactly why the overlay exists.
#[test]
fn modulo_schedule_mutations_kill_the_machine_checker() {
    use slpwlo::core::{loop_carried_deps, schedule_block_with, SchedKind};
    use slpwlo::verify::audit_block_schedule;

    let mut identity_kills = 0usize;
    let mut residue_kills = 0usize;
    let mut carried_kills = 0usize;
    for target in [xentium(), vex(4), vex(1)] {
        for bench in all_benchmarks() {
            let (simd, scalar) = lowerings(&bench, &target);
            for program in [&simd, &scalar] {
                for (b, block) in program.blocks.iter().enumerate() {
                    let sched = schedule_block_with(&target, block, SchedKind::modulo());
                    let Some(ms) = sched.modulo else { continue };
                    audit_block_schedule(program, b, &target, &sched).unwrap_or_else(|e| {
                        panic!("{}: clean pipelined schedule rejected: {e}", bench.name)
                    });

                    // Tear the `prologue + epilogue == makespan` identity
                    // the pipelined pricing formula rests on.
                    let mut mutant = sched.clone();
                    mutant.modulo.as_mut().unwrap().prologue += 1;
                    assert_kill(
                        &format!("{}/modulo-identity {}", bench.name, target.name),
                        audit_block_schedule(program, b, &target, &mutant),
                        Pass::Machine,
                        Invariant::SteadyStateOverflow,
                    );
                    identity_kills += 1;

                    // Fold the whole issue log onto residue 0. The flat
                    // retotal still balances (per-op slot sums are
                    // untouched), so only the steady-state re-derivation
                    // can notice the residue is over budget.
                    let slots: u64 = sched.issues.iter().map(|&(_, _, s)| s as u64).sum();
                    if slots > target.issue_width as u64 {
                        let mut mutant = sched.clone();
                        for entry in &mut mutant.issues {
                            entry.1 = 0;
                        }
                        assert_kill(
                            &format!("{}/modulo-residue {}", bench.name, target.name),
                            audit_block_schedule(program, b, &target, &mutant),
                            Pass::Machine,
                            Invariant::SteadyStateOverflow,
                        );
                        residue_kills += 1;
                    }

                    // Stretch a carried producer past what the II-shifted
                    // consumer tolerates: iteration k+1's copy of `to`
                    // now reads before iteration k's `from` has finished.
                    // Carried producers feed only the next iteration, so
                    // a successor-free one keeps the intra-iteration
                    // checks quiet and the II-shifted check must fire.
                    let succ_free = |w: usize| block.ops.iter().all(|op| !op.preds.contains(&w));
                    if let Some((from, to)) = loop_carried_deps(block)
                        .into_iter()
                        .find(|&(from, _)| succ_free(from))
                    {
                        let mut mutant = sched.clone();
                        mutant.finish[from] = sched.start[to] + ms.ii + 1;
                        assert_kill(
                            &format!("{}/modulo-carried {}", bench.name, target.name),
                            audit_block_schedule(program, b, &target, &mutant),
                            Pass::Machine,
                            Invariant::LoopCarriedOrder,
                        );
                        carried_kills += 1;
                    }
                }
            }
        }
    }
    assert!(identity_kills > 0, "no benchmark block pipelined");
    assert!(residue_kills > 0, "no residue-overflow kills");
    assert!(carried_kills > 0, "no loop-carried kills");
}
