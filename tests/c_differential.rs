//! Compile-and-execute differential validation of the C back-ends.
//!
//! For the paper's three benchmarks, the emitted scalar fixed-point C
//! and the emitted SIMD C (over the portable macro fallback) are
//! compiled with `cc -std=c99 -Wall -Werror` and executed; their output
//! streams must be bit-identical to the bit-accurate reference
//! simulation (`simulate_fixed`) under the same specification.
//!
//! The harness needs a C compiler on `PATH` (`cc`). Without one the
//! tests skip with a notice — set `SLPWLO_REQUIRE_CC=1` (CI does) to
//! turn a missing compiler into a failure.

mod common;

use common::{assert_bit_identical, cc_available, compile_and_run, simd_program};
use slpwlo::accuracy::simulate::simulate_fixed;
use slpwlo::codegen::{emit_fixed_c, emit_intrinsics_header, emit_simd_c};
use slpwlo::core::{lower_scalar, prepare, wlo_slp_flow, MachineProgram};
use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
use slpwlo::fixedpoint::{FixedPointSpec, QFormat, SpecKey};
use slpwlo::ir::parser::parse_kernel;
use slpwlo::ir::{ExprNode, Kernel};
use slpwlo::kernels::{conv3x3, fir64, iir10, Workload};
use slpwlo::targets::xentium;

fn check_both_backends(
    tag: &str,
    kernel: &Kernel,
    spec: &FixedPointSpec,
    scalar: &MachineProgram,
    simd: &MachineProgram,
    workload: &Workload,
) {
    let target = xentium();
    let reference = simulate_fixed(kernel, spec, &workload.inputs);
    let outputs = kernel.outputs().len();

    let fixed = emit_fixed_c(scalar).expect("scalar C emits");
    let got = compile_and_run(
        &format!("{tag}_fixed"),
        &fixed,
        None,
        kernel.name(),
        workload,
        outputs,
    );
    assert_bit_identical(&format!("{tag} scalar C"), &reference, &got);

    let simd_c = emit_simd_c(simd, &target.name).expect("SIMD C emits");
    let header = emit_intrinsics_header(&target);
    let got = compile_and_run(
        &format!("{tag}_simd"),
        &simd_c,
        Some(("slpwlo_simd_xentium.h", &header)),
        kernel.name(),
        workload,
        outputs,
    );
    assert_bit_identical(&format!("{tag} SIMD C"), &reference, &got);
}

#[test]
fn compiled_c_matches_simulation_on_uniform_specs() {
    if !cc_available() {
        return;
    }
    let benches: Vec<(Kernel, Workload)> = vec![
        (fir64(), Workload::white(1, 128, 11)),
        (iir10(), Workload::sine_mix(1, 128)),
        (conv3x3(), Workload::image_rows(48, 8, 5)),
    ];
    let target = xentium();
    for (kernel, workload) in &benches {
        let ranges = determine_ranges(kernel, &RangeOptions::default());
        for wl in [12, 16, 24, 32] {
            let spec = FixedPointSpec::from_ranges(kernel, &ranges, wl);
            let scalar = lower_scalar(kernel, &spec, &target);
            let simd = simd_program(kernel, &spec, &target);
            check_both_backends(
                &format!("{}_wl{}", kernel.name(), wl),
                kernel,
                &spec,
                &scalar,
                &simd,
                workload,
            );
        }
    }
}

#[test]
fn compiled_c_matches_simulation_on_flow_specs() {
    if !cc_available() {
        return;
    }
    let benches: Vec<(Kernel, Workload)> = vec![
        (fir64(), Workload::white(1, 128, 23)),
        (iir10(), Workload::sine_mix(1, 128)),
        (conv3x3(), Workload::image_rows(48, 8, 7)),
    ];
    let target = xentium();
    for (kernel, workload) in &benches {
        let prep = prepare(kernel.clone());
        let flow = wlo_slp_flow(&prep, &target, -40.0);
        check_both_backends(
            &format!("{}_wloslp", kernel.name()),
            kernel,
            &flow.spec,
            &flow.scalar,
            &flow.simd,
            workload,
        );
    }
}

/// Regression for the UB-prone `x << n` path: a kernel whose scalings
/// include a *left* shift of negative-valued intermediates (coarse
/// multiply format re-aligned onto a finer accumulation grid). The
/// emitted C must use the multiplication-based `slpwlo_shl` and stay
/// bit-exact on negative data.
#[test]
fn negative_value_left_shift_path_is_well_defined() {
    if !cc_available() {
        return;
    }
    let src = r#"
kernel negshift {
    input x range [-1, 1];
    output y;
    var t;
    var u;
    t = x * -0.8125;
    u = t + -0.1875;
    y = u;
}
"#;
    let kernel = parse_kernel(src).unwrap();
    let ranges = determine_ranges(&kernel, &RangeOptions::default());
    let mut spec = FixedPointSpec::from_ranges(&kernel, &ranges, 16);
    // Make the multiply coarse and the addition fine: the add's operand
    // alignment becomes a left shift, applied to negative products.
    for (id, node) in kernel.exprs() {
        match node {
            ExprNode::Bin(slpwlo::ir::BinOp::Mul, ..) => {
                spec.set_format(SpecKey::Expr(id), QFormat::new(1, 7));
            }
            ExprNode::Bin(slpwlo::ir::BinOp::Add, ..) => {
                spec.set_format(SpecKey::Expr(id), QFormat::new(2, 14));
            }
            _ => {}
        }
    }
    let target = xentium();
    let scalar = lower_scalar(&kernel, &spec, &target);
    let c = emit_fixed_c(&scalar).expect("emits");
    assert!(
        c.contains("slpwlo_shl("),
        "expected a left-alignment through slpwlo_shl:\n{c}"
    );
    // All-negative inputs keep every intermediate negative.
    let workload = Workload {
        inputs: vec![(0..64).map(|i| -1.0 + (i as f64) * 0.01).collect()],
    };
    let reference = simulate_fixed(&kernel, &spec, &workload.inputs);
    let got = compile_and_run("negshift_fixed", &c, None, "negshift", &workload, 1);
    assert_bit_identical("negshift scalar C", &reference, &got);
    // And the interpreter agrees too.
    let vm = slpwlo::sim::execute_fixed(&scalar, &workload.inputs).unwrap();
    assert_bit_identical("negshift interpreter", &reference, &vm);
}

/// Regression for index wrapping: an affine index that leaves
/// `[0, len)` must address the same element in C as the Euclidean
/// (`rem_euclid`) semantics of the reference executor and the machine
/// interpreter — via `slpwlo_idx`, never out-of-bounds UB.
#[test]
fn out_of_range_indices_wrap_like_the_reference() {
    if !cc_available() {
        return;
    }
    use slpwlo::ir::{IndexExpr, KernelBuilder};
    // acc = sum over i of dl[i - 1]: index -1..2 on a 4-element array,
    // wrapping to dl[3] at i = 0.
    let mut b = KernelBuilder::new("wrapix");
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let dl = b.array("dl", 4);
    let acc = b.var("acc");
    let xv = b.read_input(x);
    b.shift_in(dl, xv);
    let z = b.constf(0.0);
    b.assign(acc, z);
    let i = b.begin_for(4);
    let l = b.load_ix(dl, IndexExpr::affine(i, 1, -1));
    let av = b.read_var(acc);
    let s = b.add(av, l);
    b.assign(acc, s);
    b.end_for(i);
    let r = b.read_var(acc);
    b.set_output(y, r);
    let kernel = b.finish();

    let ranges = determine_ranges(&kernel, &RangeOptions::default());
    let spec = FixedPointSpec::from_ranges(&kernel, &ranges, 16);
    let scalar = lower_scalar(&kernel, &spec, &xentium());
    let c = emit_fixed_c(&scalar).expect("emits");
    assert!(
        c.contains("slpwlo_idx("),
        "out-of-range index must be wrapped:\n{c}"
    );
    let workload = Workload::white(1, 64, 31);
    let reference = simulate_fixed(&kernel, &spec, &workload.inputs);
    let got = compile_and_run("wrapix_fixed", &c, None, "wrapix", &workload, 1);
    assert_bit_identical("wrapix scalar C", &reference, &got);
    let vm = slpwlo::sim::execute_fixed(&scalar, &workload.inputs).unwrap();
    assert_bit_identical("wrapix interpreter", &reference, &vm);
}
