//! The scientific core check: specifications produced by the flows,
//! when executed **bit-accurately**, honour the accuracy constraint the
//! analytical model promised. Runs through the `Optimizer` driver.

use slpwlo::accuracy::measure_noise;
use slpwlo::kernels::{paper_benchmarks, Workload};
use slpwlo::targets::xentium;
use slpwlo::{Error, FlowKind, Optimizer};

/// Model-vs-silicon margin: the analytical noise model linearises
/// quantization; 4 dB covers its bias on these kernels (validated per
/// crate in `slpwlo-accuracy`).
const MARGIN_DB: f64 = 4.0;

fn workload_for(name: &str, n: usize) -> Workload {
    match name {
        "CONV" => Workload::image_rows(64, n / 64, 0xC0),
        _ => Workload::white(1, n, 0xAB),
    }
}

#[test]
fn wlo_slp_specs_validate_bit_accurately() -> Result<(), Error> {
    for bench in paper_benchmarks() {
        let workload = workload_for(bench.name, bench.activations as usize);
        let reports = Optimizer::for_kernel(bench.kernel.clone())?
            .target(xentium())
            .flow(FlowKind::WloSlp)
            .sweep(&[-25.0, -55.0])?;
        for report in reports {
            let db = report.constraint_db.expect("sweep sets the constraint");
            let spec = report.spec.as_ref().expect("fixed-point flow has a spec");
            let measured = measure_noise(&report.kernel, spec, &workload.inputs);
            assert!(
                measured.db <= db + MARGIN_DB,
                "{} at {db} dB: measured {:.1} dB (predicted {:.1})",
                bench.name,
                measured.db,
                report.noise_db.expect("fixed-point flow predicts noise")
            );
        }
    }
    Ok(())
}

#[test]
fn wlo_first_specs_validate_bit_accurately() -> Result<(), Error> {
    for bench in paper_benchmarks() {
        let workload = workload_for(bench.name, bench.activations as usize);
        let db = -35.0;
        let report = Optimizer::for_kernel(bench.kernel.clone())?
            .target(xentium())
            .constraint_db(db)
            .flow(FlowKind::WloFirst)
            .run()?;
        let spec = report.spec.as_ref().expect("fixed-point flow has a spec");
        let measured = measure_noise(&report.kernel, spec, &workload.inputs);
        assert!(
            measured.db <= db + MARGIN_DB,
            "{}: measured {:.1} dB (predicted {:.1})",
            bench.name,
            measured.db,
            report.noise_db.expect("fixed-point flow predicts noise")
        );
    }
    Ok(())
}

#[test]
fn model_tracks_simulation_across_wl() {
    use slpwlo::accuracy::AccuracyEvaluator;
    use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo::fixedpoint::FixedPointSpec;
    // Uniform word lengths on FIR-64: predicted vs measured within the
    // margin at each width.
    let bench = &paper_benchmarks()[0];
    let ranges = determine_ranges(&bench.kernel, &RangeOptions::default());
    let eval = slpwlo::accuracy::AnalyticalEvaluator::with_defaults(&bench.kernel);
    let workload = Workload::white(1, 4096, 0x11);
    for wl in [12, 16, 24] {
        let spec = FixedPointSpec::from_ranges(&bench.kernel, &ranges, wl);
        let predicted = eval.noise_db(&spec);
        let measured = measure_noise(&bench.kernel, &spec, &workload.inputs).db;
        assert!(
            (predicted - measured).abs() <= MARGIN_DB,
            "wl {wl}: predicted {predicted:.1} vs measured {measured:.1}"
        );
    }
}
