//! Property tests for SLP extraction invariants over generated kernels.
//!
//! goSLP's lesson: packing decisions are only trustworthy when they are
//! validated across diverse statement mixes, not just the three shapes
//! the paper evaluates. For a seeded corpus of generated kernels (the
//! in-tree deterministic `rand`, no proptest), every pack selected by
//! the accuracy-unaware extraction must be:
//!
//! * **conflict-free** — lanes pairwise independent, no node in two
//!   groups, and no dependency cycle through the coarsened group graph;
//! * **isomorphic** — all lanes the same operation kind;
//! * **realisable** — the lane count is a SIMD width the target
//!   supports;
//! * **beneficial** — the vectorized program never *costs* more than
//!   the scalar baseline under the cycle model (`benefit >= 0` at the
//!   whole-program level: packing that does not pay for its
//!   pack/unpack overhead must not be selected).
//!
//! The structural invariants (the first three bullets) are now owned by
//! `slpwlo::verify::verify_groups` — the library pass the flows run at
//! every boundary — so this harness checks them by calling that pass
//! rather than re-implementing them.

mod common;

use slpwlo::core::nodes::value_wl;
use slpwlo::core::total_cycles;
use slpwlo::core::{lower_fixed, lower_scalar};
use slpwlo::fixedpoint::range::{determine_ranges, RangeOptions};
use slpwlo::fixedpoint::FixedPointSpec;
use slpwlo::gen::KernelGen;
use slpwlo::ir::blocks::collect_blocks;
use slpwlo::ir::Dfg;
use slpwlo::slp::extract_plain;
use slpwlo::targets::{vex, xentium};
use slpwlo::verify::verify_groups;

const SEEDS: u64 = 48;

#[test]
fn selected_packs_respect_structural_invariants() {
    for seed in 0..SEEDS {
        let kernel = KernelGen::with_seed(seed).gen();
        let ranges = determine_ranges(&kernel, &RangeOptions::default());
        for target in [xentium(), vex(4)] {
            for wl in [8, 16] {
                let spec = FixedPointSpec::from_ranges(&kernel, &ranges, wl);
                for block in collect_blocks(&kernel) {
                    let dfg = Dfg::from_block(&kernel, &block);
                    let groups = {
                        let spec_ref = &spec;
                        let dfg_ref = &dfg;
                        extract_plain(&dfg, &target, &move |n| value_wl(spec_ref, dfg_ref, n))
                    };
                    let ctx = format!("seed {seed} wl {wl} {} {}", target.name, block.id);
                    if let Err(e) = verify_groups(&dfg, &groups, &target, &ctx) {
                        panic!("{} ({}): {e}", ctx, kernel.name());
                    }
                }
            }
        }
    }
}

/// The model-level ranking-key guarantee, for both pricing strategies:
/// every candidate's ranking benefit is finite and non-negative (the
/// `argmax` is well-defined), and its full assessment carries finite
/// saved/reuse/pack components. Under the target-blind `Slots` model the
/// key is additionally *strictly* positive (a group of `L` lanes counts
/// `L - 1` saved issue slots unconditionally); the cycle-priced model
/// deliberately drops that — e.g. a gathered load pair with no reuse
/// saves nothing — which is exactly what lets the net-benefit admission
/// reject it.
#[test]
fn every_candidate_benefit_is_finite_and_rankable() {
    use slpwlo::slp::{BenefitKind, BenefitModel, Round};
    let mut candidates_seen = 0usize;
    for seed in 0..SEEDS {
        let kernel = KernelGen::with_seed(seed).gen();
        for target in [xentium(), vex(4)] {
            for block in collect_blocks(&kernel) {
                let dfg = Dfg::from_block(&kernel, &block);
                let round = Round::new(&dfg, &target, &[]);
                for kind in [BenefitKind::Slots, BenefitKind::Cycles] {
                    let model = BenefitModel::with_kind(&dfg, &round, &target, kind, |_| 16);
                    let alive = vec![true; round.candidates.len()];
                    for idx in 0..round.candidates.len() {
                        let b = model.benefit(idx, &alive, &[]);
                        assert!(
                            b.is_finite() && b >= 0.0,
                            "seed {seed} {} {} {kind}: candidate {idx} benefit {b}",
                            target.name,
                            block.id
                        );
                        if kind == BenefitKind::Slots {
                            assert!(b > 0.0, "the slots ranking key is strictly positive");
                        }
                        let assessed = model.assess(idx, &alive, &[]);
                        assert!(
                            assessed.saved.is_finite()
                                && assessed.reuse.is_finite()
                                && assessed.pack.is_finite()
                                && assessed.pack >= 0.0
                                && assessed.reuse >= 0.0,
                            "seed {seed} {kind}: candidate {idx} assessment {assessed:?}"
                        );
                        candidates_seen += 1;
                    }
                }
            }
        }
    }
    assert!(
        candidates_seen > 200,
        "corpus produced only {candidates_seen} candidates — coverage too thin"
    );
}

/// Whole-program benefit vs the scalar baseline: extraction runs the
/// way the flows run it — over the frozen spec's full format context
/// (`common::extract_on_spec`) — so the cycle-priced model sees word
/// lengths *and* per-lane scalings. Individual kernels may still lose a
/// few per-cent to scheduling effects the per-candidate estimate cannot
/// see, but losses must stay bounded on every kernel, and across the
/// corpus vectorization must win in aggregate.
#[test]
fn vectorization_benefit_holds_against_the_scalar_baseline() {
    let mut total_simd = 0u64;
    let mut total_scalar = 0u64;
    for seed in 0..SEEDS {
        let kernel = KernelGen::with_seed(seed).gen();
        let ranges = determine_ranges(&kernel, &RangeOptions::default());
        for target in [xentium(), vex(4)] {
            let spec = FixedPointSpec::from_ranges(&kernel, &ranges, 16);
            let blocks = common::extract_on_spec(&kernel, &spec, &target, Default::default());
            let n_groups: usize = blocks.iter().map(|(_, _, g)| g.len()).sum();
            let simd = lower_fixed(&kernel, &spec, &target, &blocks);
            let scalar = lower_scalar(&kernel, &spec, &target);
            let vc = total_cycles(&target, &simd, 64);
            let sc = total_cycles(&target, &scalar, 64);
            total_simd += vc;
            total_scalar += sc;
            // Per-kernel: losses happen (the op-count heuristic cannot
            // see scheduling, and tiny kernels amortize pack overhead
            // poorly) but must stay bounded — beyond 50% the benefit
            // and cycle models have genuinely diverged.
            assert!(
                2 * vc <= 3 * sc,
                "seed {seed} on {}: vectorized {vc} cycles vs scalar {sc} \
                 ({n_groups} groups) — packing overhead out of control",
                target.name
            );
        }
    }
    // Random kernels are deliberately pack-unfriendly (scalar-fed
    // operand trees, tiny blocks), so the op-count heuristic does not
    // win on this corpus the way it does on the DSP benchmarks — but
    // its aggregate regression must stay small. Tightening this to
    // "must win on net" is the acceptance bar for the cost-aware
    // benefit model (see ROADMAP).
    assert!(
        total_simd as f64 <= total_scalar as f64 * 1.15,
        "corpus aggregate: vectorized {total_simd} vs scalar {total_scalar} — \
         heuristic regression above 15%"
    );
}
