//! Seeded random kernel generation for whole-pipeline differential
//! fuzzing.
//!
//! The paper's evaluation exercises exactly three kernels; trusting the
//! reproduction on *arbitrary* programs needs the standard synthesizing-
//! superoptimizer recipe (Souper, Csmith): generate random well-formed
//! programs from a seed, run every layer of the pipeline differentially,
//! and shrink any failure to a minimal reproducer. This crate provides
//! the three pieces:
//!
//! * [`Plan`] — a shrinkable *recipe* for a kernel (declarations plus a
//!   statement/expression tree), buildable into a validated
//!   [`slpwlo_ir::Kernel`] via [`Plan::build`]. The generator and the
//!   shrinker both operate on plans, never on raw arena kernels, so
//!   every intermediate candidate rebuilds through the ordinary
//!   [`KernelBuilder`](slpwlo_ir::builder::KernelBuilder) + validation
//!   path;
//! * [`KernelGen`] — the deterministic seeded generator:
//!   `KernelGen::with_seed(seed).gen()` emits a well-formed kernel with
//!   configurable shape ([`GenConfig`]): arbitrary DAGs of add/sub/mul
//!   over live-in streams and quantized constants, FIR-like delay lines,
//!   contractive IIR-like feedback, loop nests with partial/full
//!   unrolling, fan-out through variables, and dead-code-free outputs
//!   (every computed value reaches some output);
//! * [`shrink`] — greedy bisection of a failing plan to a minimal plan
//!   that still fails the caller's predicate.
//!
//! Determinism is total: the same seed yields the same kernel on every
//! platform (the workspace's in-tree `rand` stand-in is deterministic by
//! construction), so a failing fuzz seed printed by CI reproduces
//! locally with no corpus files to ship.

pub mod config;
pub mod generate;
pub mod plan;
pub mod shrink;

pub use config::GenConfig;
pub use generate::KernelGen;
pub use plan::{PExpr, PStmt, Plan};
pub use shrink::shrink;
