//! Greedy plan bisection: minimize a failing kernel.
//!
//! Given a [`Plan`] whose built kernel makes some pipeline check fail,
//! [`shrink`] repeatedly tries structural simplifications — drop a
//! statement, inline a loop, halve a trip count, replace a subtree by an
//! operand, zero a leaf, shorten a table — keeping an edit whenever the
//! simplified plan still builds *and* still fails the caller's
//! predicate. The result is locally minimal: no single edit from the
//! catalogue keeps it failing.
//!
//! Every candidate goes back through [`Plan::build`] (builder +
//! validation), so the shrinker can propose structurally nonsensical
//! edits freely; invalid ones are discarded by construction rather than
//! by bespoke checks.

use crate::plan::{PExpr, PStmt, Plan};
use slpwlo_ir::Kernel;

/// Shrinks `plan` to a locally minimal plan that still fails.
///
/// `still_fails` receives the *built* kernel of each candidate and
/// returns `true` while the failure reproduces. The original plan is
/// assumed failing (it is returned unchanged if no simplification
/// preserves the failure). The search is deterministic: candidates are
/// tried in a fixed order and the first accepted edit restarts the pass.
pub fn shrink(plan: &Plan, still_fails: &mut dyn FnMut(&Kernel) -> bool) -> Plan {
    let mut current = plan.clone();
    // Candidate trials are bounded to keep pathological predicates from
    // spinning; real shrinks converge in far fewer steps.
    let mut budget = 20_000usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            let Ok(kernel) = candidate.build() else {
                continue;
            };
            if still_fails(&kernel) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// All single-edit simplifications of `plan`, most aggressive first.
fn candidates(plan: &Plan) -> Vec<Plan> {
    let mut out = Vec::new();

    // 1. Drop one statement (any nesting depth).
    for path in 0..plan.stmt_count() {
        let mut p = plan.clone();
        let mut at = path;
        if remove_stmt(&mut p.stmts, &mut at) {
            out.push(p);
        }
    }

    // 2. Inline one loop (splice its body where it stood).
    for path in 0..plan.stmt_count() {
        let mut p = plan.clone();
        let mut at = path;
        if inline_loop(&mut p.stmts, &mut at) {
            out.push(p);
        }
    }

    // 3. Halve one loop's trip count / drop its unrolling.
    for path in 0..plan.stmt_count() {
        let mut p = plan.clone();
        let mut at = path;
        if reduce_loop(&mut p.stmts, &mut at) {
            out.push(p);
        }
    }

    // 4. Simplify one expression node.
    let exprs = count_expr_nodes(&plan.stmts);
    for node in 0..exprs {
        for mode in [Simplify::TakeLeft, Simplify::TakeRight, Simplify::Zero] {
            let mut p = plan.clone();
            let mut at = node;
            if simplify_expr_at(&mut p.stmts, &mut at, mode) {
                out.push(p);
            }
        }
    }

    // 5. Halve one parameter table.
    for t in 0..plan.params.len() {
        if plan.params[t].len() > 1 {
            let mut p = plan.clone();
            let keep = p.params[t].len().div_ceil(2);
            p.params[t].truncate(keep);
            out.push(p);
        }
    }

    // 6. Halve one delay line.
    for l in 0..plan.lines.len() {
        if plan.lines[l] > 1 {
            let mut p = plan.clone();
            p.lines[l] = p.lines[l].div_ceil(2);
            out.push(p);
        }
    }

    // 7. Drop the last output (and its Output statements).
    if plan.outputs > 1 {
        let mut p = plan.clone();
        let dropped = p.outputs - 1;
        p.outputs = dropped;
        retain_stmts(
            &mut p.stmts,
            &|s| !matches!(s, PStmt::Output { index, .. } if *index >= dropped),
        );
        out.push(p);
    }

    // 8. Drop the last input when no expression reads it.
    if plan.inputs > 1 && !reads_input(&plan.stmts, plan.inputs - 1) {
        let mut p = plan.clone();
        p.inputs -= 1;
        out.push(p);
    }

    out
}

// ---- statement-path walkers ----------------------------------------------

/// Removes the `path`-th statement in depth-first order; `true` on hit.
fn remove_stmt(stmts: &mut Vec<PStmt>, path: &mut usize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *path == 0 {
            stmts.remove(i);
            return true;
        }
        *path -= 1;
        if let PStmt::Loop { body, .. } = &mut stmts[i] {
            if remove_stmt(body, path) {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Replaces the `path`-th statement by its loop body if it is a loop.
fn inline_loop(stmts: &mut Vec<PStmt>, path: &mut usize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *path == 0 {
            if let PStmt::Loop { body, .. } = stmts[i].clone() {
                stmts.splice(i..=i, body);
                return true;
            }
            return false;
        }
        *path -= 1;
        if let PStmt::Loop { body, .. } = &mut stmts[i] {
            if inline_loop(body, path) {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Halves the `path`-th statement's trip count (or cancels unrolling).
fn reduce_loop(stmts: &mut [PStmt], path: &mut usize) -> bool {
    for s in stmts {
        if *path == 0 {
            if let PStmt::Loop { trips, unroll, .. } = s {
                if *unroll != 1 {
                    *unroll = 1;
                    return true;
                }
                if *trips > 1 {
                    *trips /= 2;
                    return true;
                }
            }
            return false;
        }
        *path -= 1;
        if let PStmt::Loop { body, .. } = s {
            if reduce_loop(body, path) {
                return true;
            }
        }
    }
    false
}

fn retain_stmts(stmts: &mut Vec<PStmt>, keep: &dyn Fn(&PStmt) -> bool) {
    stmts.retain(keep);
    for s in stmts {
        if let PStmt::Loop { body, .. } = s {
            retain_stmts(body, keep);
        }
    }
}

fn reads_input(stmts: &[PStmt], input: usize) -> bool {
    fn expr_reads(e: &PExpr, input: usize) -> bool {
        match e {
            PExpr::Input(i) => *i == input,
            PExpr::Neg(a) => expr_reads(a, input),
            PExpr::Bin(_, a, b) => expr_reads(a, input) || expr_reads(b, input),
            _ => false,
        }
    }
    stmts.iter().any(|s| match s {
        PStmt::Let { expr, .. } | PStmt::Shift { expr, .. } | PStmt::Output { expr, .. } => {
            expr_reads(expr, input)
        }
        PStmt::Loop { body, .. } => reads_input(body, input),
    })
}

// ---- expression-node walkers ---------------------------------------------

#[derive(Clone, Copy)]
enum Simplify {
    /// `a ⊕ b → a` (also `-a → a`).
    TakeLeft,
    /// `a ⊕ b → b`.
    TakeRight,
    /// Any non-`Const(0)` node → `Const(0.0)`.
    Zero,
}

fn count_expr_nodes(stmts: &[PStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            PStmt::Let { expr, .. } | PStmt::Shift { expr, .. } | PStmt::Output { expr, .. } => {
                expr.size()
            }
            PStmt::Loop { body, .. } => count_expr_nodes(body),
        })
        .sum()
}

fn simplify_expr_at(stmts: &mut [PStmt], node: &mut usize, mode: Simplify) -> bool {
    for s in stmts {
        match s {
            PStmt::Let { expr, .. } | PStmt::Shift { expr, .. } | PStmt::Output { expr, .. } => {
                if simplify_in(expr, node, mode) {
                    return true;
                }
            }
            PStmt::Loop { body, .. } => {
                if simplify_expr_at(body, node, mode) {
                    return true;
                }
            }
        }
    }
    false
}

fn simplify_in(e: &mut PExpr, node: &mut usize, mode: Simplify) -> bool {
    if *node == 0 {
        let replacement = match (&mode, &*e) {
            (Simplify::TakeLeft, PExpr::Bin(_, a, _)) => Some((**a).clone()),
            (Simplify::TakeLeft, PExpr::Neg(a)) => Some((**a).clone()),
            (Simplify::TakeRight, PExpr::Bin(_, _, b)) => Some((**b).clone()),
            (Simplify::Zero, PExpr::Const(v)) if *v == 0.0 => None,
            (Simplify::Zero, _) => Some(PExpr::Const(0.0)),
            _ => None,
        };
        return match replacement {
            Some(r) => {
                *e = r;
                true
            }
            None => false,
        };
    }
    *node -= 1;
    match e {
        PExpr::Neg(a) => simplify_in(a, node, mode),
        PExpr::Bin(_, a, b) => simplify_in(a, node, mode) || simplify_in(b, node, mode),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KernelGen;
    use slpwlo_ir::{ExprNode, Stmt};

    /// Shrinking against "kernel contains a multiply" must strip the
    /// plan down to (nearly) a single multiply statement.
    #[test]
    fn shrinks_to_a_minimal_multiply() {
        // Find a seed whose kernel contains a multiply.
        let mut found = None;
        for seed in 0..64u64 {
            let plan = KernelGen::with_seed(seed).gen_plan();
            let k = plan.build().unwrap();
            let has_mul = k
                .exprs()
                .any(|(_, n)| matches!(n, ExprNode::Bin(slpwlo_ir::BinOp::Mul, ..)));
            if has_mul && plan.stmt_count() > 3 {
                found = Some(plan);
                break;
            }
        }
        let plan = found.expect("corpus contains multiplies");
        let has_mul = |k: &slpwlo_ir::Kernel| {
            k.exprs()
                .any(|(_, n)| matches!(n, ExprNode::Bin(slpwlo_ir::BinOp::Mul, ..)))
        };
        let small = shrink(&plan, &mut |k| has_mul(k));
        let kernel = small.build().unwrap();
        assert!(has_mul(&kernel), "shrink must preserve the failure");
        assert!(
            small.stmt_count() <= 3,
            "expected a near-minimal plan, got {} statements:\n{:#?}",
            small.stmt_count(),
            small
        );
        // Exactly one multiply survives.
        let muls = kernel
            .exprs()
            .filter(|(_, n)| matches!(n, ExprNode::Bin(slpwlo_ir::BinOp::Mul, ..)))
            .count();
        assert_eq!(muls, 1, "{kernel:?}");
    }

    /// Shrinking a loop-carrying plan against "has a loop" inlines all
    /// the structure around it away and reduces the trip count to 1.
    #[test]
    fn shrinks_loops_to_single_trips() {
        let mut found = None;
        for seed in 0..64u64 {
            let plan = KernelGen::with_seed(seed).gen_plan();
            if plan.stmts.iter().any(|s| matches!(s, PStmt::Loop { .. })) {
                found = Some(plan);
                break;
            }
        }
        let plan = found.expect("corpus contains loops");
        let has_loop = |k: &slpwlo_ir::Kernel| {
            let mut any = false;
            k.visit_stmts(&mut |s, _| {
                if matches!(s, Stmt::For { .. }) {
                    any = true;
                }
            });
            any
        };
        let small = shrink(&plan, &mut |k| has_loop(k));
        let k = small.build().unwrap();
        assert!(has_loop(&k));
        let mut min_trips = u32::MAX;
        k.visit_stmts(&mut |s, _| {
            if let Stmt::For { count, .. } = s {
                min_trips = min_trips.min(*count);
            }
        });
        assert_eq!(min_trips, 1, "trip counts must shrink to 1:\n{small:#?}");
    }

    /// A predicate nothing satisfies leaves the plan untouched.
    #[test]
    fn unshrinkable_failure_returns_the_original() {
        let plan = KernelGen::with_seed(3).gen_plan();
        let same = shrink(&plan, &mut |_| false);
        assert_eq!(same, plan);
    }
}
