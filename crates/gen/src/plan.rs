//! The shrinkable kernel recipe.
//!
//! A [`Plan`] is a tree-shaped blueprint for a kernel: unlike the arena
//! [`Kernel`] (whose single-use expression discipline makes structural
//! edits awkward), a plan can be freely mutated — remove a statement,
//! replace a subtree by one of its operands, halve a trip count — and
//! rebuilt through [`Plan::build`], which funnels every candidate through
//! the ordinary [`KernelBuilder`] + [`Kernel::validate`] path.

use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::error::IrError;
use slpwlo_ir::types::{BinOp, ExprId, IndexExpr, LoopId};
use slpwlo_ir::unroll::unroll;
use slpwlo_ir::Kernel;

/// An expression tree of the plan.
///
/// Leaf memory accesses carry `stride`/`offset` pairs: inside a loop the
/// index is `stride * i + offset` over the innermost induction variable,
/// outside loops it is the constant `offset`. Out-of-range indices are
/// legal — they wrap with the Euclidean semantics shared by the reference
/// interpreter, the machine interpreter and the C back-ends, so the
/// generator deliberately produces them.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// A (quantized) floating-point literal.
    Const(f64),
    /// Reads live-in input stream `i`.
    Input(usize),
    /// Reads variable slot `v` (fan-out: any number of reads per slot).
    Var(usize),
    /// Loads parameter table `table` at `stride * i + offset`.
    Param {
        /// Table index into [`Plan::params`].
        table: usize,
        /// Index coefficient on the innermost loop variable.
        stride: i64,
        /// Index offset.
        offset: i64,
    },
    /// Loads delay line `line` at `stride * i + offset`.
    Delay {
        /// Line index into [`Plan::lines`].
        line: usize,
        /// Index coefficient on the innermost loop variable.
        stride: i64,
        /// Index offset.
        offset: i64,
    },
    /// Negation.
    Neg(Box<PExpr>),
    /// Binary add/sub/mul.
    Bin(BinOp, Box<PExpr>, Box<PExpr>),
}

impl PExpr {
    /// Number of nodes in this expression tree.
    pub fn size(&self) -> usize {
        match self {
            PExpr::Neg(a) => 1 + a.size(),
            PExpr::Bin(_, a, b) => 1 + a.size() + b.size(),
            _ => 1,
        }
    }
}

/// One statement of the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PStmt {
    /// `v<var> = expr`.
    Let {
        /// Variable slot written.
        var: usize,
        /// Right-hand side.
        expr: PExpr,
    },
    /// Pushes `expr` into delay line `line`.
    Shift {
        /// Line index into [`Plan::lines`].
        line: usize,
        /// Pushed value.
        expr: PExpr,
    },
    /// A counted loop, optionally unrolled after construction.
    Loop {
        /// Trip count (must be positive to build).
        trips: u32,
        /// Unroll factor: `1` = none, `0` = full, otherwise partial.
        /// Ignored for loops containing nested loops (only innermost
        /// loops are unrolled, as in the paper's benchmarks).
        unroll: u32,
        /// Loop body.
        body: Vec<PStmt>,
    },
    /// Emits output `index`.
    Output {
        /// Output index.
        index: usize,
        /// Emitted value.
        expr: PExpr,
    },
}

/// A complete kernel recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Kernel name (carries the generating seed for reproducibility).
    pub name: String,
    /// Number of live-in input streams, each ranged `[-1, 1]`.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Constant parameter tables.
    pub params: Vec<Vec<f64>>,
    /// Delay-line lengths.
    pub lines: Vec<usize>,
    /// The statement sequence.
    pub stmts: Vec<PStmt>,
}

impl Plan {
    /// Highest variable slot referenced anywhere, if any.
    pub fn max_var(&self) -> Option<usize> {
        fn expr_max(e: &PExpr, m: &mut Option<usize>) {
            match e {
                PExpr::Var(v) => *m = Some(m.map_or(*v, |c| c.max(*v))),
                PExpr::Neg(a) => expr_max(a, m),
                PExpr::Bin(_, a, b) => {
                    expr_max(a, m);
                    expr_max(b, m);
                }
                _ => {}
            }
        }
        fn stmt_max(s: &PStmt, m: &mut Option<usize>) {
            match s {
                PStmt::Let { var, expr } => {
                    *m = Some(m.map_or(*var, |c| c.max(*var)));
                    expr_max(expr, m);
                }
                PStmt::Shift { expr, .. } | PStmt::Output { expr, .. } => expr_max(expr, m),
                PStmt::Loop { body, .. } => body.iter().for_each(|s| stmt_max(s, m)),
            }
        }
        let mut m = None;
        self.stmts.iter().for_each(|s| stmt_max(s, &mut m));
        m
    }

    /// Total number of statements (loop bodies included).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[PStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    PStmt::Loop { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Builds and validates the kernel this plan describes.
    ///
    /// # Errors
    ///
    /// Returns the [`IrError`] of the first invalid construct (empty
    /// table, zero-trip loop, out-of-range output index, unset output,
    /// ...). The shrinker relies on this to discard structurally invalid
    /// shrink candidates.
    pub fn build(&self) -> Result<Kernel, IrError> {
        let mut b = KernelBuilder::new(self.name.clone());
        let input_ids: Vec<_> = (0..self.inputs)
            .map(|i| b.input(format!("x{i}"), -1.0, 1.0))
            .collect();
        for o in 0..self.outputs {
            b.output(format!("y{o}"));
        }
        let param_ids = self
            .params
            .iter()
            .enumerate()
            .map(|(t, values)| b.try_param(format!("c{t}"), values.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let line_ids = self
            .lines
            .iter()
            .enumerate()
            .map(|(l, &len)| b.try_array(format!("dl{l}"), len))
            .collect::<Result<Vec<_>, _>>()?;
        let n_vars = self.max_var().map_or(0, |m| m + 1);
        let var_ids: Vec<_> = (0..n_vars).map(|v| b.var(format!("v{v}"))).collect();

        struct Ctx {
            input_ids: Vec<slpwlo_ir::InputId>,
            param_ids: Vec<slpwlo_ir::ParamId>,
            line_ids: Vec<slpwlo_ir::ArrayId>,
            var_ids: Vec<slpwlo_ir::VarId>,
            /// Innermost-first stack of open loops, for affine indices.
            loop_stack: Vec<LoopId>,
            /// `(loop, factor)` pairs to unroll after construction,
            /// innermost loops only.
            to_unroll: Vec<(LoopId, u32)>,
        }

        impl Ctx {
            fn index(&self, stride: i64, offset: i64) -> IndexExpr {
                match self.loop_stack.last() {
                    Some(&l) => IndexExpr::affine(l, stride, offset),
                    None => IndexExpr::constant(offset),
                }
            }

            fn expr(&self, b: &mut KernelBuilder, e: &PExpr) -> Result<ExprId, IrError> {
                Ok(match e {
                    PExpr::Const(v) => b.constf(*v),
                    PExpr::Input(i) => {
                        let id = *self
                            .input_ids
                            .get(*i)
                            .ok_or_else(|| IrError::UnknownName(format!("x{i}")))?;
                        b.read_input(id)
                    }
                    PExpr::Var(v) => b.read_var(self.var_ids[*v]),
                    PExpr::Param {
                        table,
                        stride,
                        offset,
                    } => {
                        let id = *self
                            .param_ids
                            .get(*table)
                            .ok_or_else(|| IrError::UnknownName(format!("c{table}")))?;
                        let ix = self.index(*stride, *offset);
                        b.load_param_ix(id, ix)
                    }
                    PExpr::Delay {
                        line,
                        stride,
                        offset,
                    } => {
                        let id = *self
                            .line_ids
                            .get(*line)
                            .ok_or_else(|| IrError::UnknownName(format!("dl{line}")))?;
                        let ix = self.index(*stride, *offset);
                        b.load_ix(id, ix)
                    }
                    PExpr::Neg(a) => {
                        let a = self.expr(b, a)?;
                        b.neg(a)
                    }
                    PExpr::Bin(op, l, r) => {
                        let l = self.expr(b, l)?;
                        let r = self.expr(b, r)?;
                        match op {
                            BinOp::Add => b.add(l, r),
                            BinOp::Sub => b.sub(l, r),
                            BinOp::Mul => b.mul(l, r),
                        }
                    }
                })
            }

            fn stmts(&mut self, b: &mut KernelBuilder, stmts: &[PStmt]) -> Result<(), IrError> {
                for s in stmts {
                    match s {
                        PStmt::Let { var, expr } => {
                            let e = self.expr(b, expr)?;
                            b.assign(self.var_ids[*var], e);
                        }
                        PStmt::Shift { line, expr } => {
                            let id = *self
                                .line_ids
                                .get(*line)
                                .ok_or_else(|| IrError::UnknownName(format!("dl{line}")))?;
                            let e = self.expr(b, expr)?;
                            b.shift_in(id, e);
                        }
                        PStmt::Output { index, expr } => {
                            let e = self.expr(b, expr)?;
                            b.try_set_output(*index, e)?;
                        }
                        PStmt::Loop {
                            trips,
                            unroll,
                            body,
                        } => {
                            let l = b.try_begin_for(*trips)?;
                            self.loop_stack.push(l);
                            self.stmts(b, body)?;
                            self.loop_stack.pop();
                            b.try_end_for(l)?;
                            let has_nested = body.iter().any(|s| matches!(s, PStmt::Loop { .. }));
                            if *unroll != 1 && !has_nested {
                                self.to_unroll.push((l, *unroll));
                            }
                        }
                    }
                }
                Ok(())
            }
        }

        let mut ctx = Ctx {
            input_ids,
            param_ids,
            line_ids,
            var_ids,
            loop_stack: Vec::new(),
            to_unroll: Vec::new(),
        };
        ctx.stmts(&mut b, &self.stmts)?;
        let mut to_unroll = std::mem::take(&mut ctx.to_unroll);
        let mut kernel = b.try_finish()?;
        // Innermost loops carry the highest ids (they were opened last);
        // unrolling them first keeps every recorded id valid.
        to_unroll.sort_by_key(|&(l, _)| std::cmp::Reverse(l));
        for (l, factor) in to_unroll {
            unroll(&mut kernel, l, factor)?;
        }
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac_plan() -> Plan {
        Plan {
            name: "mac".into(),
            inputs: 1,
            outputs: 1,
            params: vec![vec![0.25, -0.5, 0.125, 0.0625]],
            lines: vec![4],
            stmts: vec![
                PStmt::Shift {
                    line: 0,
                    expr: PExpr::Input(0),
                },
                PStmt::Let {
                    var: 0,
                    expr: PExpr::Const(0.0),
                },
                PStmt::Loop {
                    trips: 4,
                    unroll: 2,
                    body: vec![PStmt::Let {
                        var: 0,
                        expr: PExpr::Bin(
                            BinOp::Add,
                            Box::new(PExpr::Var(0)),
                            Box::new(PExpr::Bin(
                                BinOp::Mul,
                                Box::new(PExpr::Param {
                                    table: 0,
                                    stride: 1,
                                    offset: 0,
                                }),
                                Box::new(PExpr::Delay {
                                    line: 0,
                                    stride: 1,
                                    offset: 0,
                                }),
                            )),
                        ),
                    }],
                },
                PStmt::Output {
                    index: 0,
                    expr: PExpr::Var(0),
                },
            ],
        }
    }

    #[test]
    fn builds_and_unrolls() {
        let k = mac_plan().build().unwrap();
        assert!(k.validate().is_ok());
        assert_eq!(k.inputs().len(), 1);
        assert_eq!(k.outputs().len(), 1);
        // Unroll by 2: one loop of 2 trips remains.
        let blocks = slpwlo_ir::blocks::collect_blocks(&k);
        let body = blocks.iter().find(|b| b.in_loop()).unwrap();
        assert_eq!(body.trip(), 2);
    }

    #[test]
    fn unset_output_is_rejected() {
        let mut p = mac_plan();
        p.stmts.pop();
        assert!(matches!(p.build(), Err(IrError::OutputUnset(_))));
    }

    #[test]
    fn zero_trip_loop_is_rejected() {
        let mut p = mac_plan();
        if let PStmt::Loop { trips, .. } = &mut p.stmts[2] {
            *trips = 0;
        }
        assert!(matches!(p.build(), Err(IrError::ZeroTripLoop)));
    }

    #[test]
    fn empty_param_table_is_rejected() {
        let mut p = mac_plan();
        p.params[0].clear();
        assert!(matches!(
            p.build(),
            Err(IrError::EmptyTable { kind: "param", .. })
        ));
    }

    #[test]
    fn reads_of_never_assigned_vars_are_legal() {
        // Shrinking may remove a `Let` while reads of its slot remain:
        // the variable then holds its zero initialisation, which is a
        // legal (if unusual) kernel, not a build error.
        let mut p = mac_plan();
        p.stmts.remove(1);
        let k = p.build().unwrap();
        assert!(k.validate().is_ok());
    }
}
