//! The seeded deterministic kernel generator.

use crate::config::GenConfig;
use crate::plan::{PExpr, PStmt, Plan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpwlo_ir::types::BinOp;
use slpwlo_ir::Kernel;

/// Seeded random kernel generator.
///
/// One generator instance is a deterministic stream of kernels: the same
/// seed (and config) reproduces the same sequence on every platform.
/// Repeated [`KernelGen::gen`] calls advance the stream, so a fuzz
/// harness typically uses one generator per seed and takes its first
/// kernel.
///
/// ```
/// use slpwlo_gen::KernelGen;
///
/// let a = KernelGen::with_seed(7).gen();
/// let b = KernelGen::with_seed(7).gen();
/// assert_eq!(format!("{a:?}"), format!("{b:?}"));
/// assert!(a.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct KernelGen {
    rng: StdRng,
    cfg: GenConfig,
    seed: u64,
    count: u64,
}

/// Transient state while one plan is being grown.
struct Grow {
    params: Vec<Vec<f64>>,
    lines: Vec<usize>,
    /// Lines loaded by some expression (beyond their own defining shift).
    line_loaded: Vec<bool>,
    stmts: Vec<PStmt>,
    n_vars: usize,
    /// Var slots whose latest value has not been consumed yet.
    pending: Vec<usize>,
    inputs: usize,
    input_used: Vec<bool>,
    emitted_feedback: bool,
}

impl Grow {
    fn fresh_var(&mut self) -> usize {
        let v = self.n_vars;
        self.n_vars += 1;
        v
    }

    fn consume_var(&mut self, v: usize) {
        self.pending.retain(|&p| p != v);
    }
}

impl KernelGen {
    /// A generator with the default [`GenConfig`].
    pub fn with_seed(seed: u64) -> Self {
        Self::with_config(seed, GenConfig::default())
    }

    /// A generator with an explicit configuration.
    pub fn with_config(seed: u64, cfg: GenConfig) -> Self {
        KernelGen {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            seed,
            count: 0,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the next kernel.
    ///
    /// # Panics
    ///
    /// Panics if the emitted plan fails to build — that is a generator
    /// bug by definition (the generator's contract is well-formedness).
    pub fn gen(&mut self) -> Kernel {
        self.gen_plan()
            .build()
            .expect("generator emits well-formed kernels")
    }

    /// Generates the next kernel as a shrinkable [`Plan`].
    pub fn gen_plan(&mut self) -> Plan {
        let name = format!("gk{:x}_{}", self.seed, self.count);
        self.count += 1;
        let inputs = 1 + self.below(self.cfg.max_inputs);
        let mut g = Grow {
            params: Vec::new(),
            lines: Vec::new(),
            line_loaded: Vec::new(),
            stmts: Vec::new(),
            n_vars: 0,
            pending: Vec::new(),
            inputs,
            input_used: vec![false; inputs],
            emitted_feedback: false,
        };
        let constructs = 2 + self.below(self.cfg.max_constructs.saturating_sub(1).max(1));
        for _ in 0..constructs {
            self.construct(&mut g);
        }
        let outputs = 1 + self.below(self.cfg.max_outputs);
        self.emit_outputs(&mut g, outputs);
        Plan {
            name,
            inputs,
            outputs,
            params: g.params,
            lines: g.lines,
            stmts: g.stmts,
        }
    }

    // ---- randomness helpers ----------------------------------------------

    /// Uniform draw from `0..n` (0 when `n == 0`).
    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.rng.gen_range(0..n)
        }
    }

    /// A constant quantized to the 2^-8 grid in `[-1, 1]`, never zero.
    fn qconst(&mut self) -> f64 {
        loop {
            let v = (self.below(513) as f64 - 256.0) / 256.0;
            if v != 0.0 {
                return v;
            }
        }
    }

    /// A small affine index `(stride, offset)` — occasionally striding or
    /// stepping outside `[0, len)` to exercise the wrap paths.
    fn index_shape(&mut self) -> (i64, i64) {
        let stride = [1, 1, 1, 1, 2][self.below(5)];
        let offset = [0, 0, 0, 1, -1][self.below(5)];
        (stride, offset)
    }

    // ---- leaves and expression trees -------------------------------------

    /// A leaf over the currently available value sources.
    fn leaf(&mut self, g: &mut Grow) -> PExpr {
        let have_vars = g.n_vars > 0;
        let have_lines = !g.lines.is_empty();
        loop {
            match self.below(100) {
                0..=29 => {
                    let i = self.below(g.inputs);
                    g.input_used[i] = true;
                    return PExpr::Input(i);
                }
                30..=54 => return PExpr::Const(self.qconst()),
                55..=74 if have_vars => {
                    let v = self.below(g.n_vars);
                    g.consume_var(v);
                    return PExpr::Var(v);
                }
                75..=89 => {
                    let table = self.param_table(g);
                    let (_, offset) = self.index_shape();
                    return PExpr::Param {
                        table,
                        stride: 0,
                        offset,
                    };
                }
                90..=99 if have_lines => {
                    let line = self.below(g.lines.len());
                    g.line_loaded[line] = true;
                    let (_, offset) = self.index_shape();
                    return PExpr::Delay {
                        line,
                        stride: 0,
                        offset,
                    };
                }
                _ => {} // redraw when the picked source is unavailable
            }
        }
    }

    /// A free-form expression tree of at most `depth` operator levels.
    fn expr(&mut self, g: &mut Grow, depth: usize) -> PExpr {
        if depth == 0 {
            return self.leaf(g);
        }
        match self.below(100) {
            0..=19 => self.leaf(g),
            20..=29 => PExpr::Neg(Box::new(self.expr(g, depth - 1))),
            _ => {
                let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][self.below(3)];
                let l = self.expr(g, depth - 1);
                let r = self.expr(g, depth - 1);
                PExpr::Bin(op, Box::new(l), Box::new(r))
            }
        }
    }

    /// Creates or reuses a constant parameter table.
    fn param_table(&mut self, g: &mut Grow) -> usize {
        if !g.params.is_empty() && self.below(100) < 60 {
            return self.below(g.params.len());
        }
        let len = 2 + self.below(7);
        let values = (0..len).map(|_| self.qconst()).collect();
        g.params.push(values);
        g.params.len() - 1
    }

    /// Creates a delay line of length `2..=max_line_len`.
    fn new_line(&mut self, g: &mut Grow) -> usize {
        let len = 2 + self.below(self.cfg.max_line_len.saturating_sub(1).max(1));
        g.lines.push(len);
        g.line_loaded.push(false);
        g.lines.len() - 1
    }

    // ---- top-level constructs --------------------------------------------

    fn construct(&mut self, g: &mut Grow) {
        match self.below(100) {
            // Free-form DAG statement: fan-out source.
            0..=34 => {
                let depth = 1 + self.below(self.cfg.max_depth);
                let expr = self.expr(g, depth);
                let var = g.fresh_var();
                g.stmts.push(PStmt::Let { var, expr });
                g.pending.push(var);
            }
            // FIR-like MAC loop over a fresh delay line.
            35..=59 => self.mac_section(g, false),
            // Nested loop nest (outer counted loop around the MAC).
            60..=71 => self.mac_section(g, self.cfg.nested_loops),
            // Contractive IIR-like feedback section (at most one).
            72..=81 if self.cfg.feedback && !g.emitted_feedback => self.feedback_section(g),
            // Explicit fan-out: two consumers of one existing value.
            82..=91 => {
                if g.n_vars == 0 {
                    let expr = self.expr(g, 1);
                    let var = g.fresh_var();
                    g.stmts.push(PStmt::Let { var, expr });
                    g.pending.push(var);
                }
                let src = self.below(g.n_vars);
                g.consume_var(src);
                let a = g.fresh_var();
                let c = self.qconst();
                g.stmts.push(PStmt::Let {
                    var: a,
                    expr: PExpr::Bin(
                        BinOp::Mul,
                        Box::new(PExpr::Const(c)),
                        Box::new(PExpr::Var(src)),
                    ),
                });
                g.pending.push(a);
                let b = g.fresh_var();
                let c2 = self.qconst();
                g.stmts.push(PStmt::Let {
                    var: b,
                    expr: PExpr::Bin(
                        BinOp::Add,
                        Box::new(PExpr::Var(src)),
                        Box::new(PExpr::Const(c2)),
                    ),
                });
                g.pending.push(b);
            }
            // Plain shift of a computed value into a fresh line (state
            // without a consuming loop; leaves feed later via `leaf`).
            // The expression is built *before* the line exists so it can
            // never read the very line it feeds — self-referential
            // products (`shiftin dl <- dl[i] * dl[j]`) are quadratic
            // feedback that diverges, which no fixed-point spec can
            // cover (controlled, contractive feedback is
            // `feedback_section`'s job).
            _ => {
                let depth = 1 + self.below(2);
                let expr = self.expr(g, depth);
                let line = self.new_line(g);
                g.stmts.push(PStmt::Shift { line, expr });
            }
        }
    }

    /// `shift dl <- src; acc = 0; for i { acc = acc ± c[i]*dl[i] }`,
    /// optionally wrapped in an outer counted loop, optionally unrolled.
    fn mac_section(&mut self, g: &mut Grow, nested: bool) {
        // Source expression before the fresh line, so the shifted value
        // can never read the line it feeds (see `construct`'s shift arm).
        let src = self.expr(g, 1);
        let line = self.new_line(g);
        g.stmts.push(PStmt::Shift { line, expr: src });
        let acc = g.fresh_var();
        g.stmts.push(PStmt::Let {
            var: acc,
            expr: PExpr::Const(0.0),
        });
        let trips = 2 + self.below(self.cfg.max_trips.saturating_sub(1).max(1) as usize) as u32;
        let unroll = [1, 1, 2, 4, 0][self.below(5)];
        let table = self.param_table(g);
        let (stride, offset) = self.index_shape();
        g.line_loaded[line] = true;
        let op = if self.below(100) < 80 {
            BinOp::Add
        } else {
            BinOp::Sub
        };
        let mac = PStmt::Let {
            var: acc,
            expr: PExpr::Bin(
                op,
                Box::new(PExpr::Var(acc)),
                Box::new(PExpr::Bin(
                    BinOp::Mul,
                    Box::new(PExpr::Param {
                        table,
                        stride,
                        offset,
                    }),
                    Box::new(PExpr::Delay {
                        line,
                        stride,
                        offset,
                    }),
                )),
            ),
        };
        // Rarely push into the line *inside* the loop too — unusual but
        // legal state mutation the paper's kernels never perform.
        let mut body = vec![mac];
        if self.below(100) < 5 {
            let i = self.below(g.inputs);
            g.input_used[i] = true;
            body.push(PStmt::Shift {
                line,
                expr: PExpr::Input(i),
            });
        }
        let inner = PStmt::Loop {
            trips,
            unroll,
            body,
        };
        if nested {
            let outer_trips = 2 + self.below(2) as u32;
            g.stmts.push(PStmt::Loop {
                trips: outer_trips,
                unroll: 1,
                body: vec![inner],
            });
        } else {
            g.stmts.push(PStmt::Loop {
                trips,
                unroll,
                body: match inner {
                    PStmt::Loop { body, .. } => body,
                    _ => unreachable!(),
                },
            });
        }
        g.pending.push(acc);
    }

    /// `t = g*src + Σ c_k * fb[k]; shift fb <- t` with `Σ|c_k| = 0.75`,
    /// keeping interval range analysis contractive (the filter is BIBO
    /// stable by construction).
    fn feedback_section(&mut self, g: &mut Grow) {
        g.emitted_feedback = true;
        let len = 1 + self.below(4);
        g.lines.push(len);
        g.line_loaded.push(true);
        let line = g.lines.len() - 1;
        let mut coeffs: Vec<f64> = (0..len).map(|_| self.qconst()).collect();
        let l1: f64 = coeffs.iter().map(|c| c.abs()).sum();
        for c in &mut coeffs {
            *c *= 0.75 / l1;
        }
        let i = self.below(g.inputs);
        g.input_used[i] = true;
        let mut expr = PExpr::Bin(
            BinOp::Mul,
            Box::new(PExpr::Const(0.25)),
            Box::new(PExpr::Input(i)),
        );
        for (k, &c) in coeffs.iter().enumerate() {
            expr = PExpr::Bin(
                BinOp::Add,
                Box::new(expr),
                Box::new(PExpr::Bin(
                    BinOp::Mul,
                    Box::new(PExpr::Const(c)),
                    Box::new(PExpr::Delay {
                        line,
                        stride: 0,
                        offset: k as i64,
                    }),
                )),
            );
        }
        let t = g.fresh_var();
        g.stmts.push(PStmt::Let { var: t, expr });
        g.stmts.push(PStmt::Shift {
            line,
            expr: PExpr::Var(t),
        });
        g.pending.push(t);
    }

    /// Emits `outputs` output statements that jointly consume every
    /// pending value, every unused input and every never-loaded delay
    /// line — the dead-code-freedom guarantee.
    fn emit_outputs(&mut self, g: &mut Grow, outputs: usize) {
        let mut terms: Vec<PExpr> = Vec::new();
        for &v in &g.pending.clone() {
            terms.push(PExpr::Var(v));
        }
        for i in 0..g.inputs {
            if !g.input_used[i] {
                terms.push(PExpr::Input(i));
            }
        }
        for line in 0..g.lines.len() {
            if !g.line_loaded[line] {
                terms.push(PExpr::Delay {
                    line,
                    stride: 0,
                    offset: 0,
                });
            }
        }
        let mut per_output: Vec<Vec<PExpr>> = (0..outputs).map(|_| Vec::new()).collect();
        for (k, t) in terms.into_iter().enumerate() {
            per_output[k % outputs].push(t);
        }
        for (index, terms) in per_output.into_iter().enumerate() {
            let mut expr: Option<PExpr> = None;
            for t in terms {
                let scaled = PExpr::Bin(
                    BinOp::Mul,
                    Box::new(PExpr::Const(self.qconst())),
                    Box::new(t),
                );
                expr = Some(match expr {
                    None => scaled,
                    Some(acc) => PExpr::Bin(BinOp::Add, Box::new(acc), Box::new(scaled)),
                });
            }
            // An output with no assigned terms still has to be set — and
            // with fan-out rather than fresh sources when possible.
            let expr = expr.unwrap_or_else(|| self.leaf(g));
            g.stmts.push(PStmt::Output { index, expr });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::pretty::kernel_to_string;

    #[test]
    fn deterministic_per_seed() {
        for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF] {
            let a = KernelGen::with_seed(seed).gen();
            let b = KernelGen::with_seed(seed).gen();
            assert_eq!(
                kernel_to_string(&a),
                kernel_to_string(&b),
                "seed {seed} must regenerate the identical kernel"
            );
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_kernels() {
        let a = kernel_to_string(&KernelGen::with_seed(1).gen());
        let b = kernel_to_string(&KernelGen::with_seed(2).gen());
        assert_ne!(a, b);
    }

    #[test]
    fn stream_advances_within_one_generator() {
        let mut g = KernelGen::with_seed(5);
        let a = kernel_to_string(&g.gen());
        let b = kernel_to_string(&g.gen());
        assert_ne!(a, b, "repeated gen() must advance the stream");
    }

    #[test]
    fn corpus_is_well_formed() {
        for seed in 0..128u64 {
            let k = KernelGen::with_seed(seed).gen();
            assert!(k.validate().is_ok(), "seed {seed}");
            assert!(!k.outputs().is_empty(), "seed {seed}");
            assert!(!k.inputs().is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn corpus_covers_the_structural_features() {
        // Across a modest corpus the generator must exercise loops,
        // unrolling, delay lines, feedback, fan-out and multi-output
        // kernels — otherwise the fuzz harness silently loses coverage.
        let mut loops = 0;
        let mut lines = 0;
        let mut multi_out = 0;
        let mut multi_in = 0;
        for seed in 0..64u64 {
            let p = KernelGen::with_seed(seed).gen_plan();
            if p.stmts.iter().any(|s| matches!(s, PStmt::Loop { .. })) {
                loops += 1;
            }
            if !p.lines.is_empty() {
                lines += 1;
            }
            if p.outputs > 1 {
                multi_out += 1;
            }
            if p.inputs > 1 {
                multi_in += 1;
            }
        }
        assert!(loops > 10, "only {loops} kernels with loops");
        assert!(lines > 10, "only {lines} kernels with delay lines");
        assert!(multi_out > 5, "only {multi_out} multi-output kernels");
        assert!(multi_in > 5, "only {multi_in} multi-input kernels");
    }

    #[test]
    fn plans_rebuild_to_the_same_kernel() {
        for seed in [3u64, 17, 91] {
            let mut g = KernelGen::with_seed(seed);
            let plan = g.gen_plan();
            let a = plan.build().unwrap();
            let b = plan.build().unwrap();
            assert_eq!(kernel_to_string(&a), kernel_to_string(&b));
        }
    }
}
