//! Shape knobs for the kernel generator.

/// Configurable shape bounds for [`KernelGen`](crate::KernelGen).
///
/// The defaults are tuned for fuzzing: kernels stay small enough that a
/// 64-seed corpus runs the whole differential pipeline in seconds, while
/// still covering every structural feature the paper's benchmarks use
/// (and several they do not).
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum number of live-in input streams (at least 1 is always
    /// generated).
    pub max_inputs: usize,
    /// Maximum number of outputs (at least 1).
    pub max_outputs: usize,
    /// Maximum number of top-level constructs drawn per kernel (at least
    /// 2).
    pub max_constructs: usize,
    /// Maximum expression-tree depth for free-form statements.
    pub max_depth: usize,
    /// Maximum delay-line length.
    pub max_line_len: usize,
    /// Maximum trip count for generated loops.
    pub max_trips: u32,
    /// Allow nested (depth-2) loop nests.
    pub nested_loops: bool,
    /// Allow one contractive IIR-like feedback section per kernel.
    pub feedback: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_inputs: 3,
            max_outputs: 2,
            max_constructs: 5,
            max_depth: 3,
            max_line_len: 8,
            max_trips: 10,
            nested_loops: true,
            feedback: true,
        }
    }
}
