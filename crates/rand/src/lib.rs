//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over `f64` ranges, `SliceRandom::shuffle`).
//!
//! The workspace builds fully offline, so the real `rand` cannot be
//! fetched; everything here is deterministic by construction, which is
//! also what the reproduction needs — every stochastic stage (range
//! simulation, workload generation, Tabu neighbourhood order) runs from a
//! fixed seed.
//!
//! The generator is xoshiro256** seeded through splitmix64 — the same
//! construction the real `rand`'s small-rng family uses. It is *not* a
//! drop-in bit-for-bit replacement for `rand::rngs::StdRng` (which is
//! ChaCha-based); only the API shape is preserved.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample inverted range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the span sizes used here and determinism is all that matters.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator (API-compatible stand-in for `rand`'s
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the 64-bit seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngCore;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0).to_bits(),
                b.gen_range(0.0..1.0).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let w = rng.gen_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&w));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..32).collect();
        let orig = v.clone();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "shuffle left the slice untouched");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must permute, not alter");
    }
}
