//! Interval arithmetic for dynamic-range analysis.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` over `f64`.
///
/// Used as the abstract value domain of range analysis. The empty interval
/// is not representable; degenerate (point) intervals are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or a bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            !lo.is_nan() && !hi.is_nan(),
            "interval bounds must not be NaN"
        );
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The point interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval::new(v, v)
    }

    /// `[0, 0]`.
    pub fn zero() -> Self {
        Interval::point(0.0)
    }

    /// Smallest interval containing both operands.
    pub fn union(self, other: Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Returns `true` if `v` lies inside the interval.
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Returns `true` if `other` is contained in `self`.
    pub fn encloses(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Maximum absolute value over the interval.
    pub fn magnitude(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Width `hi - lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Scales both bounds away from zero by `factor` (≥ 1), used as a
    /// safety margin on simulated ranges.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn inflate(self, factor: f64) -> Interval {
        assert!(factor >= 1.0, "inflate factor must be >= 1");
        let scale = |v: f64| v * factor;
        Interval::new(scale(self.lo).min(self.lo), scale(self.hi).max(self.hi))
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval::new(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval::new(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let c = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let lo = c.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Interval::new(lo, hi)
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(0.5, 3.0);
        assert_eq!(a + b, Interval::new(-0.5, 5.0));
        assert_eq!(a - b, Interval::new(-4.0, 1.5));
        assert_eq!(a * b, Interval::new(-3.0, 6.0));
        assert_eq!(-a, Interval::new(-2.0, 1.0));
    }

    #[test]
    fn mul_sign_cases() {
        let neg = Interval::new(-3.0, -1.0);
        let pos = Interval::new(2.0, 4.0);
        assert_eq!(neg * pos, Interval::new(-12.0, -2.0));
        assert_eq!(neg * neg, Interval::new(1.0, 9.0));
        let span = Interval::new(-2.0, 3.0);
        assert_eq!(span * span, Interval::new(-6.0, 9.0));
    }

    #[test]
    fn union_and_containment() {
        let a = Interval::new(-1.0, 0.5);
        let b = Interval::new(0.0, 2.0);
        let u = a.union(b);
        assert_eq!(u, Interval::new(-1.0, 2.0));
        assert!(u.encloses(a) && u.encloses(b));
        assert!(u.contains(1.99));
        assert!(!a.contains(1.0));
    }

    #[test]
    fn magnitude_and_inflate() {
        let a = Interval::new(-0.5, 2.0);
        assert_eq!(a.magnitude(), 2.0);
        let inflated = a.inflate(1.5);
        assert_eq!(inflated, Interval::new(-0.75, 3.0));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn invalid_rejected() {
        let _ = Interval::new(1.0, 0.0);
    }
}
