//! The fixed-point specification: per-node formats with transactional
//! editing.
//!
//! The "nodes" of the paper's fixed-point specification map here onto
//! three key spaces:
//!
//! * **expressions** — every operation instance (and input-conversion
//!   site) carries its own format;
//! * **state arrays** — one storage format per array, shared by all loads
//!   and stores (a SIMD vector load requires homogeneous element storage);
//! * **parameter tables** — one storage format per coefficient table.
//!
//! WLO algorithms mutate formats speculatively ("set, evaluate accuracy,
//! maybe revert"), so every mutation is journaled; [`FixedPointSpec::mark`]
//! / [`FixedPointSpec::rollback`] provide nested transactions.

use crate::format::QFormat;
use crate::range::Ranges;
use slpwlo_ir::types::{ArrayId, ExprId, ParamId};
use slpwlo_ir::{ExprNode, Kernel};
use std::fmt;

/// Addresses one formatted node of the specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecKey {
    /// An expression (operation instance / conversion site).
    Expr(ExprId),
    /// A state array's storage format.
    Array(ArrayId),
    /// A parameter table's storage format.
    Param(ParamId),
}

impl fmt::Display for SpecKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecKey::Expr(e) => write!(f, "{e}"),
            SpecKey::Array(a) => write!(f, "{a}"),
            SpecKey::Param(p) => write!(f, "{p}"),
        }
    }
}

/// A complete fixed-point specification with an undo journal.
#[derive(Debug, Clone)]
pub struct FixedPointSpec {
    exprs: Vec<QFormat>,
    arrays: Vec<QFormat>,
    params: Vec<QFormat>,
    max_wl: i32,
    journal: Vec<(SpecKey, QFormat)>,
}

impl FixedPointSpec {
    /// Builds the initial specification: every node at the minimal IWL
    /// covering its range and the **maximum word length** supported by the
    /// target (`max_wl`) — the starting point of the SLP-aware WLO
    /// algorithm (fig. 1a lines 1–3).
    pub fn from_ranges(kernel: &Kernel, ranges: &Ranges, max_wl: i32) -> Self {
        let exprs = kernel
            .exprs()
            .map(|(id, _)| {
                let iv = ranges.expr(id);
                QFormat::for_range(iv.lo, iv.hi, max_wl)
            })
            .collect();
        let arrays = ranges
            .arrays
            .iter()
            .map(|iv| QFormat::for_range(iv.lo, iv.hi, max_wl))
            .collect();
        let params = ranges
            .params
            .iter()
            .map(|iv| QFormat::for_range(iv.lo, iv.hi, max_wl))
            .collect();
        FixedPointSpec {
            exprs,
            arrays,
            params,
            max_wl,
            journal: Vec::new(),
        }
    }

    /// The maximum word length the specification was initialised with.
    pub fn max_wl(&self) -> i32 {
        self.max_wl
    }

    /// Number of expression formats.
    pub fn expr_count(&self) -> usize {
        self.exprs.len()
    }

    /// Reads a node's format.
    pub fn format(&self, key: SpecKey) -> QFormat {
        match key {
            SpecKey::Expr(e) => self.exprs[e.index()],
            SpecKey::Array(a) => self.arrays[a.index()],
            SpecKey::Param(p) => self.params[p.index()],
        }
    }

    /// Writes a node's format, journaling the previous value.
    pub fn set_format(&mut self, key: SpecKey, fmt: QFormat) {
        let slot = match key {
            SpecKey::Expr(e) => &mut self.exprs[e.index()],
            SpecKey::Array(a) => &mut self.arrays[a.index()],
            SpecKey::Param(p) => &mut self.params[p.index()],
        };
        self.journal.push((key, *slot));
        *slot = fmt;
    }

    /// Resizes a node to `wl` total bits, preserving its IWL (range).
    pub fn set_wl(&mut self, key: SpecKey, wl: i32) {
        let fmt = self.format(key).with_wl(wl);
        self.set_format(key, fmt);
    }

    /// Current word length of a node.
    pub fn wl(&self, key: SpecKey) -> i32 {
        self.format(key).wl()
    }

    /// Opens a transaction: returns a mark to pass to [`rollback`] or
    /// [`commit`].
    ///
    /// [`rollback`]: FixedPointSpec::rollback
    /// [`commit`]: FixedPointSpec::commit
    pub fn mark(&self) -> usize {
        self.journal.len()
    }

    /// Reverts every mutation performed since `mark` (most recent first).
    pub fn rollback(&mut self, mark: usize) {
        while self.journal.len() > mark {
            let (key, old) = self.journal.pop().expect("journal shorter than mark");
            let slot = match key {
                SpecKey::Expr(e) => &mut self.exprs[e.index()],
                SpecKey::Array(a) => &mut self.arrays[a.index()],
                SpecKey::Param(p) => &mut self.params[p.index()],
            };
            *slot = old;
        }
    }

    /// Accepts every mutation performed since `mark`, forgetting the undo
    /// information (outer marks stay valid).
    pub fn commit(&mut self, mark: usize) {
        self.journal.truncate(mark);
    }

    /// The keys journaled since `mark`, oldest first — the write set of an
    /// open transaction. Incremental accuracy evaluators consume this to
    /// re-evaluate only the noise sources a trial actually touched; a key
    /// appears once per mutation, so consumers should deduplicate.
    pub fn changed_since(&self, mark: usize) -> impl Iterator<Item = SpecKey> + '_ {
        self.journal[mark.min(self.journal.len())..]
            .iter()
            .map(|(key, _)| *key)
    }

    /// The keys WLO is allowed to optimize: operation expressions,
    /// input-conversion sites, state arrays and parameter tables.
    ///
    /// Wiring expressions (variable reads), constants and loads are
    /// excluded: loads inherit their array/param storage format and
    /// variable reads inherit their producer's format.
    pub fn optimizable_keys(&self, kernel: &Kernel) -> Vec<SpecKey> {
        let mut keys = Vec::new();
        for (id, node) in kernel.exprs() {
            match node {
                ExprNode::Bin(..) | ExprNode::Unary(..) | ExprNode::ReadInput(_) => {
                    keys.push(SpecKey::Expr(id));
                }
                _ => {}
            }
        }
        for a in 0..self.arrays.len() {
            keys.push(SpecKey::Array(ArrayId(a as u32)));
        }
        for p in 0..self.params.len() {
            keys.push(SpecKey::Param(ParamId(p as u32)));
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::parser::parse_kernel;

    fn spec_for(src: &str) -> (Kernel, FixedPointSpec) {
        let k = parse_kernel(src).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let s = FixedPointSpec::from_ranges(&k, &r, 32);
        (k, s)
    }

    const SRC: &str = r#"
kernel k {
    input x range [-1, 1];
    output y;
    param c[2] = { 0.5, 0.25 };
    array dl[2];
    shiftin dl <- x;
    y = c[0] * dl[0] + c[1] * dl[1];
}
"#;

    #[test]
    fn initial_formats_use_max_wl() {
        let (k, s) = spec_for(SRC);
        for (id, _) in k.exprs() {
            assert_eq!(s.wl(SpecKey::Expr(id)), 32);
        }
        assert_eq!(s.wl(SpecKey::Array(ArrayId(0))), 32);
        assert_eq!(s.wl(SpecKey::Param(ParamId(0))), 32);
        // The input range [-1,1] gives IWL 1 => Q1.31 on the array.
        assert_eq!(s.format(SpecKey::Array(ArrayId(0))), QFormat::new(1, 31));
    }

    #[test]
    fn set_wl_preserves_iwl() {
        let (_, mut s) = spec_for(SRC);
        let key = SpecKey::Array(ArrayId(0));
        let before = s.format(key);
        s.set_wl(key, 16);
        let after = s.format(key);
        assert_eq!(after.iwl, before.iwl);
        assert_eq!(after.wl(), 16);
    }

    #[test]
    fn rollback_restores_nested() {
        let (_, mut s) = spec_for(SRC);
        let key = SpecKey::Param(ParamId(0));
        let orig = s.format(key);
        let outer = s.mark();
        s.set_wl(key, 16);
        let inner = s.mark();
        s.set_wl(key, 8);
        assert_eq!(s.wl(key), 8);
        s.rollback(inner);
        assert_eq!(s.wl(key), 16);
        s.rollback(outer);
        assert_eq!(s.format(key), orig);
    }

    #[test]
    fn commit_keeps_changes_and_outer_marks() {
        let (_, mut s) = spec_for(SRC);
        let key = SpecKey::Array(ArrayId(0));
        let orig = s.format(key);
        let outer = s.mark();
        s.set_wl(key, 16);
        let inner = s.mark();
        s.set_wl(key, 8);
        s.commit(inner); // keep the 8-bit change
        assert_eq!(s.wl(key), 8);
        s.rollback(outer); // outer rollback reverts to the pre-outer state
        assert_eq!(s.format(key), orig);
    }

    #[test]
    fn changed_since_reports_the_write_set() {
        let (_, mut s) = spec_for(SRC);
        let a = SpecKey::Array(ArrayId(0));
        let p = SpecKey::Param(ParamId(0));
        let mark = s.mark();
        assert_eq!(s.changed_since(mark).count(), 0);
        s.set_wl(a, 16);
        s.set_wl(p, 16);
        s.set_wl(a, 8);
        let keys: Vec<SpecKey> = s.changed_since(mark).collect();
        assert_eq!(keys, vec![a, p, a], "oldest first, one entry per write");
        // Inner marks slice the journal; rollback shrinks the write set.
        let inner = s.mark();
        s.set_wl(p, 8);
        assert_eq!(s.changed_since(inner).collect::<Vec<_>>(), vec![p]);
        s.rollback(inner);
        assert_eq!(s.changed_since(inner).count(), 0);
        assert_eq!(s.changed_since(mark).count(), 3);
    }

    #[test]
    fn optimizable_keys_exclude_wiring() {
        let (k, s) = spec_for(SRC);
        let keys = s.optimizable_keys(&k);
        // 3 bin ops (2 mul + 1 add) + 1 input read + 1 array + 1 param = 6.
        assert_eq!(keys.len(), 6);
        for key in keys {
            if let SpecKey::Expr(e) = key {
                assert!(matches!(
                    k.expr(e),
                    ExprNode::Bin(..) | ExprNode::Unary(..) | ExprNode::ReadInput(_)
                ));
            }
        }
    }
}
