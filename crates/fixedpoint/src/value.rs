//! Bit-accurate fixed-point scalar values.

use crate::format::QFormat;
use crate::quantize::{OverflowMode, QuantizeMode};

/// A fixed-point value: a raw two's-complement integer plus its format.
///
/// All arithmetic is performed exactly on the raw integers (with `i128`
/// intermediates) and re-quantized explicitly, which is what the generated
/// fixed-point C code does with shifts and casts — this type *is* the
/// executable semantics of that code.
///
/// # Example
///
/// ```
/// use slpwlo_fixedpoint::{FxValue, QFormat};
/// use slpwlo_fixedpoint::quantize::{OverflowMode, QuantizeMode};
///
/// let q = QFormat::new(1, 15);
/// let a = FxValue::from_f64(0.5, q, QuantizeMode::Truncate, OverflowMode::Saturate);
/// let b = FxValue::from_f64(0.25, q, QuantizeMode::Truncate, OverflowMode::Saturate);
/// let sum = a.add(b, q, QuantizeMode::Truncate, OverflowMode::Saturate);
/// assert_eq!(sum.to_f64(), 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FxValue {
    raw: i64,
    fmt: QFormat,
}

impl FxValue {
    /// The zero value in the given format.
    pub fn zero(fmt: QFormat) -> Self {
        FxValue { raw: 0, fmt }
    }

    /// Quantizes a float into the format.
    pub fn from_f64(x: f64, fmt: QFormat, mode: QuantizeMode, ovf: OverflowMode) -> Self {
        let scaled = x * crate::format::pow2(fmt.fwl);
        let q = match mode {
            QuantizeMode::Truncate => scaled.floor(),
            QuantizeMode::Round => (scaled + 0.5).floor(),
        };
        let raw = clamp_raw(q as i128, fmt, ovf);
        FxValue { raw, fmt }
    }

    /// Builds a value from a raw integer already on the format's grid.
    ///
    /// # Panics
    ///
    /// Debug-panics if `raw` is outside the representable range.
    pub fn from_raw(raw: i64, fmt: QFormat) -> Self {
        debug_assert!(
            raw >= fmt.min_raw() && raw <= fmt.max_raw(),
            "raw {raw} out of range for {fmt}"
        );
        FxValue { raw, fmt }
    }

    /// The raw integer.
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The format.
    pub fn format(self) -> QFormat {
        self.fmt
    }

    /// The denoted real value `raw * 2^-fwl`.
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * crate::format::pow2(-self.fmt.fwl)
    }

    /// Re-quantizes into another format (alignment shift plus
    /// truncation/rounding plus overflow handling) — the semantics of an
    /// explicit scaling operation in generated code.
    pub fn requantize(self, to: QFormat, mode: QuantizeMode, ovf: OverflowMode) -> Self {
        let raw = requantize_raw(self.raw as i128, self.fmt.fwl, to, mode, ovf);
        FxValue { raw, fmt: to }
    }

    /// Exact addition followed by re-quantization to `out`.
    pub fn add(self, rhs: FxValue, out: QFormat, mode: QuantizeMode, ovf: OverflowMode) -> Self {
        self.linear(rhs, out, mode, ovf, false)
    }

    /// Exact subtraction followed by re-quantization to `out`.
    pub fn sub(self, rhs: FxValue, out: QFormat, mode: QuantizeMode, ovf: OverflowMode) -> Self {
        self.linear(rhs, out, mode, ovf, true)
    }

    fn linear(
        self,
        rhs: FxValue,
        out: QFormat,
        mode: QuantizeMode,
        ovf: OverflowMode,
        negate: bool,
    ) -> Self {
        // Align both operands on the finer grid, add exactly, re-quantize.
        let f = self.fmt.fwl.max(rhs.fmt.fwl);
        let a = (self.raw as i128) << (f - self.fmt.fwl).max(0);
        let b = (rhs.raw as i128) << (f - rhs.fmt.fwl).max(0);
        let sum = if negate { a - b } else { a + b };
        let raw = requantize_raw(sum, f, out, mode, ovf);
        FxValue { raw, fmt: out }
    }

    /// Exact multiplication followed by re-quantization to `out`.
    pub fn mul(self, rhs: FxValue, out: QFormat, mode: QuantizeMode, ovf: OverflowMode) -> Self {
        let prod = self.raw as i128 * rhs.raw as i128; // grid 2^-(fa+fb)
        let raw = requantize_raw(prod, self.fmt.fwl + rhs.fmt.fwl, out, mode, ovf);
        FxValue { raw, fmt: out }
    }

    /// Exact negation followed by re-quantization to `out`.
    pub fn neg(self, out: QFormat, mode: QuantizeMode, ovf: OverflowMode) -> Self {
        let raw = requantize_raw(-(self.raw as i128), self.fmt.fwl, out, mode, ovf);
        FxValue { raw, fmt: out }
    }
}

/// Re-quantizes a raw value on grid `2^-from_fwl` to format `to`.
fn requantize_raw(
    raw: i128,
    from_fwl: i32,
    to: QFormat,
    mode: QuantizeMode,
    ovf: OverflowMode,
) -> i64 {
    let shift = from_fwl - to.fwl;
    let v = if shift > 0 {
        // Discarding bits: truncate (arithmetic right shift = floor) or
        // round (add half step first).
        let s = shift.min(126) as u32;
        match mode {
            QuantizeMode::Truncate => raw >> s,
            QuantizeMode::Round => (raw + (1i128 << (s - 1))) >> s,
        }
    } else {
        // Gaining bits: exact left shift.
        raw << ((-shift).min(126) as u32)
    };
    clamp_raw(v, to, ovf)
}

fn clamp_raw(v: i128, fmt: QFormat, ovf: OverflowMode) -> i64 {
    let max = fmt.max_raw() as i128;
    let min = fmt.min_raw() as i128;
    match ovf {
        OverflowMode::Saturate => v.clamp(min, max) as i64,
        OverflowMode::Wrap => {
            let span = max - min + 1;
            (((v - min).rem_euclid(span)) + min) as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: QuantizeMode = QuantizeMode::Truncate;
    const R: QuantizeMode = QuantizeMode::Round;
    const S: OverflowMode = OverflowMode::Saturate;
    const W: OverflowMode = OverflowMode::Wrap;

    #[test]
    fn roundtrip_exact_values() {
        let q = QFormat::new(1, 15);
        for &x in &[0.0, 0.5, -0.25, 0.75, -1.0] {
            let v = FxValue::from_f64(x, q, T, S);
            assert_eq!(v.to_f64(), x, "value {x} should be exact in Q1.15");
        }
    }

    #[test]
    fn truncation_floors() {
        let q = QFormat::new(1, 2); // step 0.25
        let v = FxValue::from_f64(0.3, q, T, S);
        assert_eq!(v.to_f64(), 0.25);
        let v = FxValue::from_f64(-0.3, q, T, S);
        assert_eq!(v.to_f64(), -0.5, "truncation floors toward -inf");
    }

    #[test]
    fn rounding_rounds_to_nearest() {
        let q = QFormat::new(1, 2);
        assert_eq!(FxValue::from_f64(0.3, q, R, S).to_f64(), 0.25);
        assert_eq!(FxValue::from_f64(0.4, q, R, S).to_f64(), 0.5);
        assert_eq!(FxValue::from_f64(-0.3, q, R, S).to_f64(), -0.25);
    }

    #[test]
    fn saturation_clamps() {
        let q = QFormat::new(1, 15);
        let v = FxValue::from_f64(1.0, q, T, S);
        assert_eq!(v.to_f64(), q.max_value());
        let v = FxValue::from_f64(-2.0, q, T, S);
        assert_eq!(v.to_f64(), -1.0);
    }

    #[test]
    fn wrap_wraps() {
        let q = QFormat::new(1, 3); // raws -8..7
        let v = FxValue::from_f64(1.125, q, T, W); // raw 9 -> wraps to -7
        assert_eq!(v.raw(), -7);
    }

    #[test]
    fn addition_with_alignment() {
        let qa = QFormat::new(1, 15);
        let qb = QFormat::new(2, 8);
        let out = QFormat::new(2, 12);
        let a = FxValue::from_f64(0.5, qa, T, S);
        let b = FxValue::from_f64(1.25, qb, T, S);
        let s = a.add(b, out, T, S);
        assert_eq!(s.to_f64(), 1.75);
    }

    #[test]
    fn multiplication_exact_then_quantized() {
        let q = QFormat::new(1, 15);
        let a = FxValue::from_f64(0.5, q, T, S);
        let b = FxValue::from_f64(-0.25, q, T, S);
        let out = QFormat::new(1, 15);
        let p = a.mul(b, out, T, S);
        assert_eq!(p.to_f64(), -0.125);
        // Full-precision output grid is 2^-30; quantizing to 2^-4 truncates.
        let coarse = QFormat::new(1, 4);
        let p = a.mul(b, coarse, T, S);
        assert_eq!(p.to_f64(), -0.125);
        let c = FxValue::from_f64(0.3, q, T, S);
        let p2 = c.mul(c, coarse, T, S); // 0.09 -> floor to 0.0625
        assert_eq!(p2.to_f64(), 0.0625);
    }

    #[test]
    fn negation() {
        let q = QFormat::new(1, 15);
        let a = FxValue::from_f64(0.5, q, T, S);
        assert_eq!(a.neg(q, T, S).to_f64(), -0.5);
        // Negating the minimum saturates.
        let m = FxValue::from_f64(-1.0, q, T, S);
        assert_eq!(m.neg(q, T, S).to_f64(), q.max_value());
    }

    #[test]
    fn requantize_matches_shift_semantics() {
        let fine = QFormat::new(1, 15);
        let coarse = QFormat::new(1, 7);
        let v = FxValue::from_f64(0.1234, fine, T, S);
        let r = v.requantize(coarse, T, S);
        let expected = ((v.raw() >> 8) as f64) * 2f64.powi(-7);
        assert_eq!(r.to_f64(), expected);
        // Re-quantizing to a finer grid is exact.
        let back = r.requantize(fine, T, S);
        assert_eq!(back.to_f64(), r.to_f64());
    }

    #[test]
    fn truncation_error_bounded_by_step() {
        let q = QFormat::new(1, 12);
        let mut x = -0.999;
        while x < 1.0 {
            let v = FxValue::from_f64(x, q, T, S);
            let e = v.to_f64() - x;
            assert!(e <= 0.0 && e > -q.step() - 1e-15, "error {e} at {x}");
            x += 0.0137;
        }
    }
}
