//! Fixed-point arithmetic substrate for the `slpwlo` tool-chain.
//!
//! Provides everything float-to-fixed-point conversion needs below the
//! optimization algorithms themselves:
//!
//! * [`format::QFormat`] — `<IWL, FWL>` fixed-point formats (ID.Fix
//!   convention: the sign bit is counted inside the integer word length),
//! * [`value::FxValue`] — bit-accurate fixed-point scalars with
//!   truncation/rounding and wrap/saturate overflow handling,
//! * [`interval::Interval`] — interval arithmetic,
//! * [`range`] — dynamic-range determination over kernels (interval
//!   fix-point propagation with a simulation fallback for feedback
//!   systems), i.e. the paper's "IWL determination ... using interval
//!   arithmetic (any alternative method can be used instead)",
//! * [`quantize`] — quantization modes and their noise statistics,
//! * [`spec::FixedPointSpec`] — the fixed-point specification: one format
//!   per operation / array / parameter-table node, with transactional
//!   save/revert as required by the WLO algorithms.

pub mod format;
pub mod interval;
pub mod quantize;
pub mod range;
pub mod spec;
pub mod value;

pub use format::QFormat;
pub use interval::Interval;
pub use quantize::{noise_stats, OverflowMode, QuantizeMode};
pub use range::{changed_exprs, determine_ranges, RangeAnalysis, RangeMethod, Ranges};
pub use spec::{FixedPointSpec, SpecKey};
pub use value::FxValue;
