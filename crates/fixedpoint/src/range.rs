//! Dynamic-range determination.
//!
//! This is the paper's "Dynamic Range Determination" stage of ID.Fix: the
//! value range of every node is computed by propagating the user-annotated
//! input ranges, and the minimal IWL covering each range is selected "in
//! such way to avoid overflows".
//!
//! Two methods are provided, matching the two families the paper mentions:
//!
//! * **interval propagation** ([`RangeMethod::Interval`]) — sound, exact
//!   fix-point for feed-forward kernels (FIR, CONV);
//! * **simulation statistics** ([`RangeMethod::Simulation`]) — seeded
//!   random-input measurement with a safety margin, used automatically when
//!   interval iteration does not converge (feedback systems such as IIR,
//!   where naive interval arithmetic diverges even for stable filters).

use crate::interval::Interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpwlo_ir::interp::{ExecCtx, Executor, Semantics};
use slpwlo_ir::types::{ArrayId, BinOp, ExprId, InputId, ParamId, UnOp};
use slpwlo_ir::Kernel;

/// Which method produced a [`Ranges`] result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangeMethod {
    /// Interval fix-point propagation converged.
    Interval,
    /// Seeded simulation with the recorded number of activations and the
    /// applied safety margin.
    Simulation {
        /// Number of simulated activations.
        activations: usize,
        /// Multiplicative margin applied to observed magnitudes.
        margin: f64,
    },
}

/// Options controlling [`determine_ranges`].
#[derive(Debug, Clone, Copy)]
pub struct RangeOptions {
    /// Maximum interval sweeps before declaring divergence.
    pub max_sweeps: usize,
    /// Magnitude at which interval iteration is declared divergent.
    pub divergence_bound: f64,
    /// Activations for the simulation fallback.
    pub sim_activations: usize,
    /// RNG seed for the simulation fallback.
    pub seed: u64,
    /// Safety margin for simulated ranges (>= 1).
    pub margin: f64,
}

impl Default for RangeOptions {
    fn default() -> Self {
        RangeOptions {
            max_sweeps: 512,
            divergence_bound: 1e9,
            sim_activations: 4096,
            seed: 0x5EED_2017,
            margin: 1.25,
        }
    }
}

/// Value ranges for every site of a kernel.
#[derive(Debug, Clone)]
pub struct Ranges {
    /// Per-expression ranges; `None` for expressions that never execute
    /// (dead arena nodes left behind by unrolling).
    pub exprs: Vec<Option<Interval>>,
    /// Per-state-array ranges (union over all stored values and the zero
    /// initialisation).
    pub arrays: Vec<Interval>,
    /// Per-parameter-table ranges (min/max of the constant values).
    pub params: Vec<Interval>,
    /// How the ranges were obtained.
    pub method: RangeMethod,
}

impl Ranges {
    /// Range of an expression, defaulting to `[0, 0]` for dead nodes.
    pub fn expr(&self, e: ExprId) -> Interval {
        self.exprs
            .get(e.index())
            .copied()
            .flatten()
            .unwrap_or_else(Interval::zero)
    }
}

/// Determines value ranges: interval propagation first, simulation
/// fallback on divergence.
pub fn determine_ranges(kernel: &Kernel, opts: &RangeOptions) -> Ranges {
    match interval_ranges(kernel, opts) {
        Some(r) => r,
        None => simulate_ranges(kernel, opts),
    }
}

/// One fix-point snapshot: per-expression intervals plus the
/// per-element array state (see the convergence comment below).
type SweepState = (Vec<Option<Interval>>, Vec<Vec<Interval>>);

/// Pure interval propagation; `None` when no fix-point is reached within
/// `opts.max_sweeps` or magnitudes exceed `opts.divergence_bound`.
pub fn interval_ranges(kernel: &Kernel, opts: &RangeOptions) -> Option<Ranges> {
    let sem = IntervalSem::new(kernel);
    let mut ex = Executor::new(kernel, sem);
    let inputs: Vec<f64> = vec![0.0; kernel.inputs().len()];
    let mut prev: Option<SweepState> = None;
    let mut stable = 0;
    for _ in 0..opts.max_sweeps {
        let _ = ex.step(&inputs);
        let sem = ex.semantics();
        if sem
            .exprs
            .iter()
            .flatten()
            .any(|iv| iv.magnitude() > opts.divergence_bound)
        {
            return None;
        }
        // Convergence needs expression intervals *and* the per-element
        // array state: a stored interval travels through a delay line
        // one slot per sweep without widening any expression until it
        // reaches a read index, so expression stability alone declares
        // victory several sweeps too early (dl[k] reads of a line still
        // filling up).
        let state = (ex.semantics().exprs.clone(), ex.array_state().to_vec());
        if prev.as_ref() == Some(&state) {
            stable += 1;
            // Two consecutive fully-stable sweeps: every update is a
            // monotone union of already-seen state, so nothing new can
            // appear.
            if stable >= 2 {
                let sem = ex.semantics();
                return Some(Ranges {
                    exprs: sem.exprs.clone(),
                    arrays: sem.arrays.clone(),
                    params: param_ranges(kernel),
                    method: RangeMethod::Interval,
                });
            }
        } else {
            stable = 0;
            prev = Some(state);
        }
    }
    None
}

/// Simulation-based range measurement with safety margin.
pub fn simulate_ranges(kernel: &Kernel, opts: &RangeOptions) -> Ranges {
    let sem = RecordSem::new(kernel);
    let mut ex = Executor::new(kernel, sem);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let decls: Vec<(f64, f64)> = kernel.inputs().iter().map(|i| (i.lo, i.hi)).collect();
    let mut sample = vec![0.0; decls.len()];
    for _ in 0..opts.sim_activations {
        for (s, &(lo, hi)) in sample.iter_mut().zip(&decls) {
            *s = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        }
        let _ = ex.step(&sample);
    }
    let sem = ex.semantics();
    let inflate = |iv: Option<Interval>| -> Option<Interval> {
        iv.map(|iv| {
            // A diverging kernel (unstable feedback) overflows the f64
            // simulation to ±inf; no finite fixed-point format can cover
            // that, so the measurement is clamped to the divergence
            // bound. Downstream the huge IWL makes any realistic noise
            // constraint unsatisfiable — a clean, reportable outcome
            // instead of a panic in spec construction.
            let clamped = Interval::new(
                iv.lo.clamp(-opts.divergence_bound, opts.divergence_bound),
                iv.hi.clamp(-opts.divergence_bound, opts.divergence_bound),
            );
            clamped.inflate(opts.margin).union(Interval::zero())
        })
    };
    Ranges {
        exprs: sem.exprs.iter().map(|&iv| inflate(iv)).collect(),
        arrays: sem
            .arrays
            .iter()
            .map(|&iv| inflate(Some(iv)).expect("array range always present"))
            .collect(),
        params: param_ranges(kernel),
        method: RangeMethod::Simulation {
            activations: opts.sim_activations,
            margin: opts.margin,
        },
    }
}

fn param_ranges(kernel: &Kernel) -> Vec<Interval> {
    kernel
        .params()
        .iter()
        .map(|p| {
            p.values
                .iter()
                .fold(Interval::zero(), |acc, &v| acc.union(Interval::point(v)))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Interval semantics
// ---------------------------------------------------------------------------

struct IntervalSem {
    exprs: Vec<Option<Interval>>,
    arrays: Vec<Interval>,
    input_decls: Vec<Interval>,
}

impl IntervalSem {
    fn new(kernel: &Kernel) -> Self {
        IntervalSem {
            exprs: vec![None; kernel.expr_count()],
            arrays: vec![Interval::zero(); kernel.arrays().len()],
            input_decls: kernel
                .inputs()
                .iter()
                .map(|i| Interval::new(i.lo, i.hi))
                .collect(),
        }
    }

    fn record(&mut self, e: ExprId, v: Interval) -> Interval {
        let slot = &mut self.exprs[e.index()];
        *slot = Some(match *slot {
            Some(old) => old.union(v),
            None => v,
        });
        v
    }
}

impl Semantics for IntervalSem {
    type Value = Interval;

    fn zero(&mut self) -> Interval {
        Interval::zero()
    }

    fn constant(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> Interval {
        self.record(e, Interval::point(v))
    }

    fn input(&mut self, _c: ExecCtx, e: ExprId, input: InputId, _raw: f64) -> Interval {
        let iv = self.input_decls[input.index()];
        self.record(e, iv)
    }

    fn param(&mut self, _c: ExecCtx, e: ExprId, _p: ParamId, _idx: i64, raw: f64) -> Interval {
        self.record(e, Interval::point(raw))
    }

    fn load(&mut self, _c: ExecCtx, e: ExprId, stored: Interval) -> Interval {
        self.record(e, stored)
    }

    fn var_use(&mut self, _c: ExecCtx, e: ExprId, v: Interval) -> Interval {
        self.record(e, v)
    }

    fn un(&mut self, _c: ExecCtx, e: ExprId, op: UnOp, a: Interval) -> Interval {
        let v = match op {
            UnOp::Neg => -a,
        };
        self.record(e, v)
    }

    fn bin(&mut self, _c: ExecCtx, e: ExprId, op: BinOp, a: Interval, b: Interval) -> Interval {
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        };
        self.record(e, v)
    }

    fn store(&mut self, array: ArrayId, v: Interval) -> Interval {
        self.arrays[array.index()] = self.arrays[array.index()].union(v);
        v
    }

    fn to_f64(&self, v: Interval) -> f64 {
        v.hi
    }
}

// ---------------------------------------------------------------------------
// Recording float semantics (simulation fallback)
// ---------------------------------------------------------------------------

struct RecordSem {
    exprs: Vec<Option<Interval>>,
    arrays: Vec<Interval>,
}

impl RecordSem {
    fn new(kernel: &Kernel) -> Self {
        RecordSem {
            exprs: vec![None; kernel.expr_count()],
            arrays: vec![Interval::zero(); kernel.arrays().len()],
        }
    }

    fn record(&mut self, e: ExprId, v: f64) -> f64 {
        let slot = &mut self.exprs[e.index()];
        let point = sample_interval(v);
        *slot = Some(match *slot {
            Some(old) => old.union(point),
            None => point,
        });
        v
    }
}

/// Divergent kernels can drive the f64 simulation to `±inf` and, one
/// arithmetic step later (`inf - inf`), to NaN. A measurement is a
/// magnitude observation, so non-finite samples are recorded as "at
/// least as large as anything representable" (the final clamp in
/// [`simulate_ranges`] bounds them to the divergence limit); NaN has no
/// sign and widens both ends.
fn sample_interval(v: f64) -> Interval {
    if v.is_finite() {
        Interval::point(v)
    } else if v == f64::INFINITY {
        Interval::point(f64::MAX)
    } else if v == f64::NEG_INFINITY {
        Interval::point(f64::MIN)
    } else {
        Interval::new(f64::MIN, f64::MAX)
    }
}

impl Semantics for RecordSem {
    type Value = f64;

    fn zero(&mut self) -> f64 {
        0.0
    }

    fn constant(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> f64 {
        self.record(e, v)
    }

    fn input(&mut self, _c: ExecCtx, e: ExprId, _i: InputId, raw: f64) -> f64 {
        self.record(e, raw)
    }

    fn param(&mut self, _c: ExecCtx, e: ExprId, _p: ParamId, _idx: i64, raw: f64) -> f64 {
        self.record(e, raw)
    }

    fn load(&mut self, _c: ExecCtx, e: ExprId, stored: f64) -> f64 {
        self.record(e, stored)
    }

    fn var_use(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> f64 {
        self.record(e, v)
    }

    fn un(&mut self, _c: ExecCtx, e: ExprId, op: UnOp, a: f64) -> f64 {
        let v = match op {
            UnOp::Neg => -a,
        };
        self.record(e, v)
    }

    fn bin(&mut self, _c: ExecCtx, e: ExprId, op: BinOp, a: f64, b: f64) -> f64 {
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        };
        self.record(e, v)
    }

    fn store(&mut self, array: ArrayId, v: f64) -> f64 {
        self.arrays[array.index()] = self.arrays[array.index()].union(sample_interval(v));
        v
    }

    fn to_f64(&self, v: f64) -> f64 {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::parser::parse_kernel;

    const FIR4: &str = r#"
kernel fir4 {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.25, 0.25, 0.25, 0.25 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    /// Stable biquad (poles at |z| ~ 0.894) whose feedback coefficient
    /// magnitudes sum to 2.4 > 1: naive interval iteration diverges even
    /// though the filter is stable.
    const IIR2: &str = r#"
kernel iir2 {
    input x range [-1, 1];
    output y;
    array yline[2];
    var t;
    t = 0.1 * x + 1.6 * yline[0] - 0.8 * yline[1];
    shiftin yline <- t;
    y = t;
}
"#;

    /// First-order feedback with pole 0.9: contractive, so interval
    /// iteration converges numerically to the exact bound 0.5/(1-0.9) = 5.
    const IIR1: &str = r#"
kernel iir1 {
    input x range [-1, 1];
    output y;
    array yline[1];
    var t;
    t = 0.5 * x + 0.9 * yline[0];
    shiftin yline <- t;
    y = t;
}
"#;

    #[test]
    fn fir_converges_with_interval() {
        let k = parse_kernel(FIR4).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert_eq!(r.method, RangeMethod::Interval);
        // Output range: sum of 4 taps of 0.25 * [-1,1] = [-1, 1].
        let out_range = r.arrays[0];
        assert!(out_range.encloses(Interval::new(-1.0, 1.0)));
        // The accumulator's final range must be within [-1,1].
        let mag: f64 = r
            .exprs
            .iter()
            .flatten()
            .map(|iv| iv.magnitude())
            .fold(0.0, f64::max);
        assert!((mag - 1.0).abs() < 1e-12, "max magnitude {mag}");
    }

    #[test]
    fn contractive_feedback_converges_with_interval() {
        let k = parse_kernel(IIR1).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert_eq!(r.method, RangeMethod::Interval);
        // Steady-state bound of y = 0.5x + 0.9 y is |y| <= 0.5/(1-0.9) = 5.
        let ymax = r.arrays[0].magnitude();
        assert!(
            (ymax - 5.0).abs() < 1e-6,
            "expected the exact bound 5, got {ymax}"
        );
    }

    #[test]
    fn resonant_feedback_falls_back_to_simulation() {
        let k = parse_kernel(IIR2).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert!(matches!(r.method, RangeMethod::Simulation { .. }));
        // The filter is stable: simulated ranges must be finite and above
        // the input range (resonance gain > 1 for 0.1/(1 - 1.6 + 0.8) = 0.5
        // at DC, higher near resonance).
        let ymax = r.arrays[0].magnitude();
        assert!(ymax.is_finite());
        assert!(ymax > 0.3, "resonance must amplify, got {ymax}");
        assert!(ymax < 100.0, "stable filter must stay bounded, got {ymax}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let k = parse_kernel(IIR2).unwrap();
        let a = simulate_ranges(&k, &RangeOptions::default());
        let b = simulate_ranges(&k, &RangeOptions::default());
        assert_eq!(a.arrays[0], b.arrays[0]);
    }

    #[test]
    fn param_ranges_cover_table() {
        let k = parse_kernel(FIR4).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert!(r.params[0].encloses(Interval::new(0.0, 0.25)));
    }

    #[test]
    fn dead_exprs_have_no_range() {
        // Unrolled kernels leave orphan arena nodes: they must read as None.
        let k = parse_kernel(
            "kernel k { input x range [-1,1]; output y; var a; for i in 0..4 unroll 2 { a = x; } y = a; }",
        );
        let k = k.unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert!(
            r.exprs.iter().any(|e| e.is_none()),
            "expected dead arena nodes"
        );
        // And Ranges::expr defaults them to zero.
        let dead = r.exprs.iter().position(|e| e.is_none()).unwrap();
        assert_eq!(r.expr(slpwlo_ir::ExprId(dead as u32)), Interval::zero());
    }
}
