//! Dynamic-range determination.
//!
//! This is the paper's "Dynamic Range Determination" stage of ID.Fix: the
//! value range of every node is computed by propagating the user-annotated
//! input ranges, and the minimal IWL covering each range is selected "in
//! such way to avoid overflows".
//!
//! Two methods are provided, matching the two families the paper mentions:
//!
//! * **interval propagation** ([`RangeMethod::Interval`]) — sound, exact
//!   fix-point for feed-forward kernels (FIR, CONV);
//! * **simulation statistics** ([`RangeMethod::Simulation`]) — seeded
//!   random-input measurement with a safety margin, used automatically when
//!   interval iteration does not converge (feedback systems such as IIR,
//!   where naive interval arithmetic diverges even for stable filters).

use crate::interval::Interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slpwlo_ir::interp::{ExecCtx, Executor, Semantics};
use slpwlo_ir::types::{ArrayId, BinOp, ExprId, InputId, LoopId, ParamId, UnOp};
use slpwlo_ir::{ConeIndex, ExprNode, Kernel, Stmt};
use std::collections::HashMap;

/// Which method produced a [`Ranges`] result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangeMethod {
    /// Interval fix-point propagation converged.
    Interval,
    /// Seeded simulation with the recorded number of activations and the
    /// applied safety margin.
    Simulation {
        /// Number of simulated activations.
        activations: usize,
        /// Multiplicative margin applied to observed magnitudes.
        margin: f64,
    },
}

/// Options controlling [`determine_ranges`].
#[derive(Debug, Clone, Copy)]
pub struct RangeOptions {
    /// Maximum interval sweeps before declaring divergence.
    pub max_sweeps: usize,
    /// Magnitude at which interval iteration is declared divergent.
    pub divergence_bound: f64,
    /// Activations for the simulation fallback.
    pub sim_activations: usize,
    /// RNG seed for the simulation fallback.
    pub seed: u64,
    /// Safety margin for simulated ranges (>= 1).
    pub margin: f64,
}

impl Default for RangeOptions {
    fn default() -> Self {
        RangeOptions {
            max_sweeps: 512,
            divergence_bound: 1e9,
            sim_activations: 4096,
            seed: 0x5EED_2017,
            margin: 1.25,
        }
    }
}

/// Value ranges for every site of a kernel.
#[derive(Debug, Clone)]
pub struct Ranges {
    /// Per-expression ranges; `None` for expressions that never execute
    /// (dead arena nodes left behind by unrolling).
    pub exprs: Vec<Option<Interval>>,
    /// Per-state-array ranges (union over all stored values and the zero
    /// initialisation).
    pub arrays: Vec<Interval>,
    /// Per-parameter-table ranges (min/max of the constant values).
    pub params: Vec<Interval>,
    /// How the ranges were obtained.
    pub method: RangeMethod,
}

impl Ranges {
    /// Range of an expression, defaulting to `[0, 0]` for dead nodes.
    pub fn expr(&self, e: ExprId) -> Interval {
        self.exprs
            .get(e.index())
            .copied()
            .flatten()
            .unwrap_or_else(Interval::zero)
    }
}

/// Determines value ranges: interval propagation first, simulation
/// fallback on divergence.
pub fn determine_ranges(kernel: &Kernel, opts: &RangeOptions) -> Ranges {
    match interval_ranges(kernel, opts) {
        Some(r) => r,
        None => simulate_ranges(kernel, opts),
    }
}

/// One fix-point snapshot: per-expression intervals plus the
/// per-element array and variable state (see the convergence comment
/// below).
type SweepState = (Vec<Option<Interval>>, Vec<Vec<Interval>>, Vec<Interval>);

/// Pure interval propagation; `None` when no fix-point is reached within
/// `opts.max_sweeps` or magnitudes exceed `opts.divergence_bound`.
pub fn interval_ranges(kernel: &Kernel, opts: &RangeOptions) -> Option<Ranges> {
    let sem = IntervalSem::new(kernel);
    let mut ex = Executor::new(kernel, sem);
    let inputs: Vec<f64> = vec![0.0; kernel.inputs().len()];
    let mut prev: Option<SweepState> = None;
    let mut stable = 0;
    for _ in 0..opts.max_sweeps {
        let _ = ex.step(&inputs);
        let sem = ex.semantics();
        if sem
            .exprs
            .iter()
            .flatten()
            .any(|iv| iv.magnitude() > opts.divergence_bound)
        {
            return None;
        }
        // Convergence needs expression intervals *and* the raw machine
        // state (per-element arrays, variables): a stored interval
        // travels through a delay line one slot per sweep without
        // widening any expression until it reaches a read index, so
        // expression stability alone declares victory several sweeps too
        // early (dl[k] reads of a line still filling up). Including the
        // full machine state also makes stability rigorous: two equal
        // consecutive post-sweep states pin the trajectory to period one
        // forever, which the incremental replay in [`RangeAnalysis`]
        // relies on to extend a recorded journal past its last sweep.
        let state = (
            ex.semantics().exprs.clone(),
            ex.array_state().to_vec(),
            ex.var_state().to_vec(),
        );
        if prev.as_ref() == Some(&state) {
            stable += 1;
            // Two consecutive fully-stable sweeps: every update is a
            // monotone union of already-seen state, so nothing new can
            // appear.
            if stable >= 2 {
                let sem = ex.semantics();
                return Some(Ranges {
                    exprs: sem.exprs.clone(),
                    arrays: sem.arrays.clone(),
                    params: param_ranges(kernel),
                    method: RangeMethod::Interval,
                });
            }
        } else {
            stable = 0;
            prev = Some(state);
        }
    }
    None
}

/// Simulation-based range measurement with safety margin.
pub fn simulate_ranges(kernel: &Kernel, opts: &RangeOptions) -> Ranges {
    let sem = RecordSem::new(kernel);
    let mut ex = Executor::new(kernel, sem);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let decls: Vec<(f64, f64)> = kernel.inputs().iter().map(|i| (i.lo, i.hi)).collect();
    let mut sample = vec![0.0; decls.len()];
    for _ in 0..opts.sim_activations {
        for (s, &(lo, hi)) in sample.iter_mut().zip(&decls) {
            *s = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        }
        let _ = ex.step(&sample);
    }
    let sem = ex.semantics();
    let inflate = |iv: Option<Interval>| -> Option<Interval> {
        iv.map(|iv| {
            // A diverging kernel (unstable feedback) overflows the f64
            // simulation to ±inf; no finite fixed-point format can cover
            // that, so the measurement is clamped to the divergence
            // bound. Downstream the huge IWL makes any realistic noise
            // constraint unsatisfiable — a clean, reportable outcome
            // instead of a panic in spec construction.
            let clamped = Interval::new(
                iv.lo.clamp(-opts.divergence_bound, opts.divergence_bound),
                iv.hi.clamp(-opts.divergence_bound, opts.divergence_bound),
            );
            clamped.inflate(opts.margin).union(Interval::zero())
        })
    };
    Ranges {
        exprs: sem.exprs.iter().map(|&iv| inflate(iv)).collect(),
        arrays: sem
            .arrays
            .iter()
            .map(|&iv| inflate(Some(iv)).expect("array range always present"))
            .collect(),
        params: param_ranges(kernel),
        method: RangeMethod::Simulation {
            activations: opts.sim_activations,
            margin: opts.margin,
        },
    }
}

fn param_ranges(kernel: &Kernel) -> Vec<Interval> {
    kernel
        .params()
        .iter()
        .map(|p| {
            p.values
                .iter()
                .fold(Interval::zero(), |acc, &v| acc.union(Interval::point(v)))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Incremental range analysis
// ---------------------------------------------------------------------------

/// Incremental interval range analysis.
///
/// A full fix-point run records a **journal**: per sweep, the interval
/// every expression evaluation delivered (in statement walk order) plus
/// the accumulated per-expression unions after the sweep. After a kernel
/// edit that keeps the structure (new literal constants, parameter
/// tables or input range declarations), [`update`](Self::update)
/// re-propagates only the expressions inside the edited nodes' influence
/// cones and replays every other evaluation from the journal —
/// expressions outside the cones provably see the exact same trajectory,
/// so the result is **bitwise identical** to a fresh
/// [`determine_ranges`] run on the edited kernel, at a cost proportional
/// to the cone instead of the kernel.
///
/// When the interval iteration diverges (feedback kernels) the analysis
/// holds a [`RangeMethod::Simulation`] result without a journal, and
/// `update` falls back to a full recompute.
#[derive(Debug)]
pub struct RangeAnalysis {
    opts: RangeOptions,
    ranges: Ranges,
    journal: Option<Journal>,
    /// Per-expression evaluation-tree size (operands re-evaluated per
    /// occurrence), used to skip journal spans of unaffected subtrees.
    subtree: Vec<u32>,
}

/// Baseline trajectory of a converged interval fix-point run.
#[derive(Debug, Default)]
struct Journal {
    /// `vals[sweep][k]`: interval delivered by the `k`-th expression
    /// evaluation of the sweep, in deterministic statement walk order.
    vals: Vec<Vec<Interval>>,
    /// `exprs[sweep]`: accumulated per-expression unions after the sweep.
    exprs: Vec<Vec<Option<Interval>>>,
}

/// Post-sweep stability snapshot: accumulated unions plus the raw
/// machine state (arrays, variables). Two equal consecutive snapshots
/// pin the trajectory to period one.
#[derive(PartialEq)]
struct Snap {
    exprs: Vec<Option<Interval>>,
    arrays: Vec<Vec<Interval>>,
    vars: Vec<Interval>,
}

impl RangeAnalysis {
    /// Runs the full analysis (same fallback policy as
    /// [`determine_ranges`], bitwise-identical result) and records the
    /// journal for later incremental updates.
    pub fn new(kernel: &Kernel, opts: &RangeOptions) -> Self {
        let subtree = subtree_sizes(kernel);
        match record_interval(kernel, opts) {
            Some((ranges, journal)) => RangeAnalysis {
                opts: *opts,
                ranges,
                journal: Some(journal),
                subtree,
            },
            None => RangeAnalysis {
                opts: *opts,
                ranges: simulate_ranges(kernel, opts),
                journal: None,
                subtree,
            },
        }
    }

    /// The current ranges.
    pub fn ranges(&self) -> &Ranges {
        &self.ranges
    }

    /// Whether a journal is held (interval method converged), i.e. the
    /// next [`update`](Self::update) can run incrementally.
    pub fn is_incremental(&self) -> bool {
        self.journal.is_some()
    }

    /// Re-analyses after an edit. `kernel` must be structurally
    /// identical to the previously analysed kernel (same arena, loops
    /// and statements — see [`changed_exprs`]); `changed` lists the
    /// expressions whose produced values may differ; `cone` is the
    /// influence-cone index of the kernel. Only the union of the changed
    /// expressions' cones is re-propagated; everything else replays from
    /// the journal. The result is bitwise identical to a fresh
    /// [`determine_ranges`] on `kernel`.
    pub fn update(&mut self, kernel: &Kernel, changed: &[ExprId], cone: &ConeIndex) -> &Ranges {
        assert_eq!(
            cone.expr_count(),
            kernel.expr_count(),
            "cone index built for a different kernel"
        );
        if changed.is_empty() {
            return &self.ranges;
        }
        if self.journal.is_none() {
            // No baseline trajectory (simulation result): full recompute.
            *self = RangeAnalysis::new(kernel, &self.opts);
            return &self.ranges;
        }
        let n = kernel.expr_count();
        let mut incone = vec![false; n];
        for &c in changed {
            cone.for_each_member(c, |e| incone[e] = true);
        }
        match self.replay(kernel, &incone) {
            Some((ranges, journal)) => {
                self.ranges = ranges;
                self.journal = Some(journal);
            }
            None => {
                // The edit pushed the interval iteration into divergence:
                // same fallback a fresh run takes.
                self.ranges = simulate_ranges(kernel, &self.opts);
                self.journal = None;
            }
        }
        &self.ranges
    }

    /// Cone-restricted fix-point replay; `None` on divergence (by the
    /// same criteria as [`interval_ranges`]).
    fn replay(&self, kernel: &Kernel, incone: &[bool]) -> Option<(Ranges, Journal)> {
        let base = self.journal.as_ref().expect("caller checked");
        let last = base.vals.len() - 1;
        let n = kernel.expr_count();
        let mut m = IvMachine::new(kernel);
        let mut journal = Journal::default();
        let mut prev: Option<Snap> = None;
        let mut stable = 0;
        for s in 0..self.opts.max_sweeps {
            // Past the recorded horizon the baseline is at its fix point
            // (two equal consecutive machine states pin it to period
            // one), so its last sweep repeats verbatim.
            let bs = s.min(last);
            let mut vals = base.vals[bs].clone();
            m.replay_sweep(kernel, incone, &self.subtree, &mut vals);
            let exprs: Vec<Option<Interval>> = (0..n)
                .map(|i| {
                    if incone[i] {
                        m.exprs[i]
                    } else {
                        base.exprs[bs][i]
                    }
                })
                .collect();
            journal.vals.push(vals);
            journal.exprs.push(exprs.clone());
            if exprs
                .iter()
                .flatten()
                .any(|iv| iv.magnitude() > self.opts.divergence_bound)
            {
                return None;
            }
            let snap = Snap {
                exprs,
                arrays: m.arrays.clone(),
                vars: m.vars.clone(),
            };
            if prev.as_ref() == Some(&snap) {
                stable += 1;
                if stable >= 2 {
                    let ranges = Ranges {
                        exprs: snap.exprs,
                        arrays: m.array_ranges.clone(),
                        params: param_ranges(kernel),
                        method: RangeMethod::Interval,
                    };
                    return Some((ranges, journal));
                }
            } else {
                stable = 0;
                prev = Some(snap);
            }
        }
        None
    }
}

/// Expressions whose produced values can differ between two structurally
/// identical kernels: edited literal constants, parameter tables, or
/// input range declarations. Returns `None` when the kernels differ
/// structurally (incremental update does not apply). Bitwise value
/// comparison — an edit from `0.0` to `-0.0` counts as a change.
pub fn changed_exprs(old: &Kernel, new: &Kernel) -> Option<Vec<ExprId>> {
    if old.expr_count() != new.expr_count()
        || old.inputs().len() != new.inputs().len()
        || old.params().len() != new.params().len()
    {
        return None;
    }
    let table_eq = |p: usize| {
        let (a, b) = (&old.params()[p].values, &new.params()[p].values);
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    };
    let mut out = Vec::new();
    for ((e, a), (_, b)) in old.exprs().zip(new.exprs()) {
        match (a, b) {
            (ExprNode::Const(x), ExprNode::Const(y)) => {
                if x.to_bits() != y.to_bits() {
                    out.push(e);
                }
            }
            (ExprNode::ReadInput(x), ExprNode::ReadInput(y)) if x == y => {
                let (oi, ni) = (&old.inputs()[x.index()], &new.inputs()[x.index()]);
                if oi.lo.to_bits() != ni.lo.to_bits() || oi.hi.to_bits() != ni.hi.to_bits() {
                    out.push(e);
                }
            }
            (ExprNode::LoadParam(p, ix), ExprNode::LoadParam(q, jx)) if p == q && ix == jx => {
                if !table_eq(p.index()) {
                    out.push(e);
                }
            }
            (a, b) if a == b => {}
            _ => return None,
        }
    }
    Some(out)
}

/// Evaluation-tree size of every expression (a shared node is counted
/// once per occurrence, matching the interpreter's walk).
fn subtree_sizes(kernel: &Kernel) -> Vec<u32> {
    fn size(k: &Kernel, e: ExprId, memo: &mut [u32]) -> u32 {
        if memo[e.index()] != 0 {
            return memo[e.index()];
        }
        let s = match k.expr(e) {
            ExprNode::Unary(_, a) => 1 + size(k, *a, memo),
            ExprNode::Bin(_, a, b) => {
                let (a, b) = (*a, *b);
                1 + size(k, a, memo) + size(k, b, memo)
            }
            _ => 1,
        };
        memo[e.index()] = s;
        s
    }
    let mut memo = vec![0u32; kernel.expr_count()];
    for i in 0..kernel.expr_count() {
        size(kernel, ExprId(i as u32), &mut memo);
    }
    memo
}

/// Full recording run of the interval fix point; `None` on divergence.
/// Mirrors [`interval_ranges`] exactly (the `range_incremental`
/// differential tests pin the bitwise agreement).
fn record_interval(kernel: &Kernel, opts: &RangeOptions) -> Option<(Ranges, Journal)> {
    let mut m = IvMachine::new(kernel);
    let mut journal = Journal::default();
    let mut prev: Option<Snap> = None;
    let mut stable = 0;
    for _ in 0..opts.max_sweeps {
        let mut vals = Vec::new();
        m.record_sweep(kernel, &mut vals);
        journal.vals.push(vals);
        journal.exprs.push(m.exprs.clone());
        if m.exprs
            .iter()
            .flatten()
            .any(|iv| iv.magnitude() > opts.divergence_bound)
        {
            return None;
        }
        let snap = Snap {
            exprs: m.exprs.clone(),
            arrays: m.arrays.clone(),
            vars: m.vars.clone(),
        };
        if prev.as_ref() == Some(&snap) {
            stable += 1;
            if stable >= 2 {
                let ranges = Ranges {
                    exprs: m.exprs.clone(),
                    arrays: m.array_ranges.clone(),
                    params: param_ranges(kernel),
                    method: RangeMethod::Interval,
                };
                return Some((ranges, journal));
            }
        } else {
            stable = 0;
            prev = Some(snap);
        }
    }
    None
}

/// Interval abstract machine replicating the [`Executor`] +
/// [`IntervalSem`] walk: same statement order, loop unrolling, index
/// resolution and zero-initialised state, so delivered values agree
/// bitwise with [`interval_ranges`].
struct IvMachine {
    vars: Vec<Interval>,
    arrays: Vec<Vec<Interval>>,
    /// Per-array union over all stored values and the zero init.
    array_ranges: Vec<Interval>,
    /// Accumulated per-expression unions (in replay mode only the
    /// in-cone entries are maintained).
    exprs: Vec<Option<Interval>>,
    input_decls: Vec<Interval>,
    env: HashMap<LoopId, i64>,
}

impl IvMachine {
    fn new(kernel: &Kernel) -> Self {
        IvMachine {
            vars: vec![Interval::zero(); kernel.vars().len()],
            arrays: kernel
                .arrays()
                .iter()
                .map(|a| vec![Interval::zero(); a.len])
                .collect(),
            array_ranges: vec![Interval::zero(); kernel.arrays().len()],
            exprs: vec![None; kernel.expr_count()],
            input_decls: kernel
                .inputs()
                .iter()
                .map(|i| Interval::new(i.lo, i.hi))
                .collect(),
            env: HashMap::new(),
        }
    }

    fn union_expr(&mut self, e: ExprId, v: Interval) {
        let slot = &mut self.exprs[e.index()];
        *slot = Some(match *slot {
            Some(old) => old.union(v),
            None => v,
        });
    }

    fn index(&self, ix: &slpwlo_ir::IndexExpr) -> i64 {
        ix.eval(&|l| self.env.get(&l).copied().unwrap_or(0))
    }

    fn resolve(&self, ix: &slpwlo_ir::IndexExpr, array: usize) -> usize {
        let len = self.arrays[array].len() as i64;
        self.index(ix).rem_euclid(len) as usize
    }

    /// One full sweep, appending every delivered value to `out`.
    fn record_sweep(&mut self, kernel: &Kernel, out: &mut Vec<Interval>) {
        self.record_stmts(kernel, kernel.body(), out);
    }

    fn record_stmts(&mut self, kernel: &Kernel, stmts: &[Stmt], out: &mut Vec<Interval>) {
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    let val = self.record_eval(kernel, *e, out);
                    self.vars[v.index()] = val;
                }
                Stmt::Store(a, ix, e) => {
                    let val = self.record_eval(kernel, *e, out);
                    let idx = self.resolve(ix, a.index());
                    self.array_ranges[a.index()] = self.array_ranges[a.index()].union(val);
                    self.arrays[a.index()][idx] = val;
                }
                Stmt::ShiftIn(a, e) => {
                    let val = self.record_eval(kernel, *e, out);
                    self.array_ranges[a.index()] = self.array_ranges[a.index()].union(val);
                    let arr = &mut self.arrays[a.index()];
                    for i in (1..arr.len()).rev() {
                        arr[i] = arr[i - 1];
                    }
                    if !arr.is_empty() {
                        arr[0] = val;
                    }
                }
                Stmt::Output(_, e) => {
                    let _ = self.record_eval(kernel, *e, out);
                }
                Stmt::For { var, count, body } => {
                    for trip in 0..*count {
                        self.env.insert(*var, trip as i64);
                        self.record_stmts(kernel, body, out);
                    }
                    self.env.remove(var);
                }
            }
        }
    }

    fn record_eval(&mut self, kernel: &Kernel, e: ExprId, out: &mut Vec<Interval>) -> Interval {
        let v = match kernel.expr(e) {
            ExprNode::Const(v) => Interval::point(*v),
            ExprNode::ReadVar(v) => self.vars[v.index()],
            ExprNode::ReadInput(i) => self.input_decls[i.index()],
            ExprNode::LoadParam(p, ix) => Interval::point(kernel.param_value(*p, self.index(ix))),
            ExprNode::LoadArray(a, ix) => {
                let idx = self.resolve(ix, a.index());
                self.arrays[a.index()][idx]
            }
            ExprNode::Unary(UnOp::Neg, a) => {
                let a = *a;
                -self.record_eval(kernel, a, out)
            }
            ExprNode::Bin(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let av = self.record_eval(kernel, a, out);
                let bv = self.record_eval(kernel, b, out);
                match op {
                    BinOp::Add => av + bv,
                    BinOp::Sub => av - bv,
                    BinOp::Mul => av * bv,
                }
            }
        };
        self.union_expr(e, v);
        out.push(v);
        v
    }

    /// One cone-restricted sweep. `vals` holds the baseline sweep's
    /// delivered values on entry; in-cone positions are overwritten with
    /// the recomputed values (so the vector becomes the edited kernel's
    /// journal sweep), out-of-cone positions are consumed as-is.
    fn replay_sweep(
        &mut self,
        kernel: &Kernel,
        incone: &[bool],
        subtree: &[u32],
        vals: &mut [Interval],
    ) {
        let mut cur = 0;
        self.replay_stmts(kernel, kernel.body(), incone, subtree, vals, &mut cur);
        debug_assert_eq!(cur, vals.len(), "journal walk misaligned");
    }

    #[allow(clippy::too_many_arguments)]
    fn replay_stmts(
        &mut self,
        kernel: &Kernel,
        stmts: &[Stmt],
        incone: &[bool],
        subtree: &[u32],
        vals: &mut [Interval],
        cur: &mut usize,
    ) {
        for s in stmts {
            match s {
                Stmt::Assign(v, e) => {
                    let val = self.replay_eval(kernel, *e, incone, subtree, vals, cur);
                    self.vars[v.index()] = val;
                }
                Stmt::Store(a, ix, e) => {
                    let val = self.replay_eval(kernel, *e, incone, subtree, vals, cur);
                    let idx = self.resolve(ix, a.index());
                    self.array_ranges[a.index()] = self.array_ranges[a.index()].union(val);
                    self.arrays[a.index()][idx] = val;
                }
                Stmt::ShiftIn(a, e) => {
                    let val = self.replay_eval(kernel, *e, incone, subtree, vals, cur);
                    self.array_ranges[a.index()] = self.array_ranges[a.index()].union(val);
                    let arr = &mut self.arrays[a.index()];
                    for i in (1..arr.len()).rev() {
                        arr[i] = arr[i - 1];
                    }
                    if !arr.is_empty() {
                        arr[0] = val;
                    }
                }
                Stmt::Output(_, e) => {
                    let _ = self.replay_eval(kernel, *e, incone, subtree, vals, cur);
                }
                Stmt::For { var, count, body } => {
                    for trip in 0..*count {
                        self.env.insert(*var, trip as i64);
                        self.replay_stmts(kernel, body, incone, subtree, vals, cur);
                    }
                    self.env.remove(var);
                }
            }
        }
    }

    /// Evaluates an expression during replay. Out-of-cone subtrees are
    /// skipped wholesale: no changed node influences them (influence
    /// through variables and arrays is part of the cone graph), so the
    /// journal value at the subtree's root position is exact.
    #[allow(clippy::too_many_arguments)]
    fn replay_eval(
        &mut self,
        kernel: &Kernel,
        e: ExprId,
        incone: &[bool],
        subtree: &[u32],
        vals: &mut [Interval],
        cur: &mut usize,
    ) -> Interval {
        if !incone[e.index()] {
            let n = subtree[e.index()] as usize;
            let v = vals[*cur + n - 1];
            *cur += n;
            return v;
        }
        let v = match kernel.expr(e) {
            ExprNode::Const(v) => Interval::point(*v),
            ExprNode::ReadVar(v) => self.vars[v.index()],
            ExprNode::ReadInput(i) => self.input_decls[i.index()],
            ExprNode::LoadParam(p, ix) => Interval::point(kernel.param_value(*p, self.index(ix))),
            ExprNode::LoadArray(a, ix) => {
                let idx = self.resolve(ix, a.index());
                self.arrays[a.index()][idx]
            }
            ExprNode::Unary(UnOp::Neg, a) => {
                let a = *a;
                -self.replay_eval(kernel, a, incone, subtree, vals, cur)
            }
            ExprNode::Bin(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let av = self.replay_eval(kernel, a, incone, subtree, vals, cur);
                let bv = self.replay_eval(kernel, b, incone, subtree, vals, cur);
                match op {
                    BinOp::Add => av + bv,
                    BinOp::Sub => av - bv,
                    BinOp::Mul => av * bv,
                }
            }
        };
        self.union_expr(e, v);
        vals[*cur] = v;
        *cur += 1;
        v
    }
}

// ---------------------------------------------------------------------------
// Interval semantics
// ---------------------------------------------------------------------------

struct IntervalSem {
    exprs: Vec<Option<Interval>>,
    arrays: Vec<Interval>,
    input_decls: Vec<Interval>,
}

impl IntervalSem {
    fn new(kernel: &Kernel) -> Self {
        IntervalSem {
            exprs: vec![None; kernel.expr_count()],
            arrays: vec![Interval::zero(); kernel.arrays().len()],
            input_decls: kernel
                .inputs()
                .iter()
                .map(|i| Interval::new(i.lo, i.hi))
                .collect(),
        }
    }

    fn record(&mut self, e: ExprId, v: Interval) -> Interval {
        let slot = &mut self.exprs[e.index()];
        *slot = Some(match *slot {
            Some(old) => old.union(v),
            None => v,
        });
        v
    }
}

impl Semantics for IntervalSem {
    type Value = Interval;

    fn zero(&mut self) -> Interval {
        Interval::zero()
    }

    fn constant(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> Interval {
        self.record(e, Interval::point(v))
    }

    fn input(&mut self, _c: ExecCtx, e: ExprId, input: InputId, _raw: f64) -> Interval {
        let iv = self.input_decls[input.index()];
        self.record(e, iv)
    }

    fn param(&mut self, _c: ExecCtx, e: ExprId, _p: ParamId, _idx: i64, raw: f64) -> Interval {
        self.record(e, Interval::point(raw))
    }

    fn load(&mut self, _c: ExecCtx, e: ExprId, stored: Interval) -> Interval {
        self.record(e, stored)
    }

    fn var_use(&mut self, _c: ExecCtx, e: ExprId, v: Interval) -> Interval {
        self.record(e, v)
    }

    fn un(&mut self, _c: ExecCtx, e: ExprId, op: UnOp, a: Interval) -> Interval {
        let v = match op {
            UnOp::Neg => -a,
        };
        self.record(e, v)
    }

    fn bin(&mut self, _c: ExecCtx, e: ExprId, op: BinOp, a: Interval, b: Interval) -> Interval {
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        };
        self.record(e, v)
    }

    fn store(&mut self, array: ArrayId, v: Interval) -> Interval {
        self.arrays[array.index()] = self.arrays[array.index()].union(v);
        v
    }

    fn to_f64(&self, v: Interval) -> f64 {
        v.hi
    }
}

// ---------------------------------------------------------------------------
// Recording float semantics (simulation fallback)
// ---------------------------------------------------------------------------

struct RecordSem {
    exprs: Vec<Option<Interval>>,
    arrays: Vec<Interval>,
}

impl RecordSem {
    fn new(kernel: &Kernel) -> Self {
        RecordSem {
            exprs: vec![None; kernel.expr_count()],
            arrays: vec![Interval::zero(); kernel.arrays().len()],
        }
    }

    fn record(&mut self, e: ExprId, v: f64) -> f64 {
        let slot = &mut self.exprs[e.index()];
        let point = sample_interval(v);
        *slot = Some(match *slot {
            Some(old) => old.union(point),
            None => point,
        });
        v
    }
}

/// Divergent kernels can drive the f64 simulation to `±inf` and, one
/// arithmetic step later (`inf - inf`), to NaN. A measurement is a
/// magnitude observation, so non-finite samples are recorded as "at
/// least as large as anything representable" (the final clamp in
/// [`simulate_ranges`] bounds them to the divergence limit); NaN has no
/// sign and widens both ends.
fn sample_interval(v: f64) -> Interval {
    if v.is_finite() {
        Interval::point(v)
    } else if v == f64::INFINITY {
        Interval::point(f64::MAX)
    } else if v == f64::NEG_INFINITY {
        Interval::point(f64::MIN)
    } else {
        Interval::new(f64::MIN, f64::MAX)
    }
}

impl Semantics for RecordSem {
    type Value = f64;

    fn zero(&mut self) -> f64 {
        0.0
    }

    fn constant(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> f64 {
        self.record(e, v)
    }

    fn input(&mut self, _c: ExecCtx, e: ExprId, _i: InputId, raw: f64) -> f64 {
        self.record(e, raw)
    }

    fn param(&mut self, _c: ExecCtx, e: ExprId, _p: ParamId, _idx: i64, raw: f64) -> f64 {
        self.record(e, raw)
    }

    fn load(&mut self, _c: ExecCtx, e: ExprId, stored: f64) -> f64 {
        self.record(e, stored)
    }

    fn var_use(&mut self, _c: ExecCtx, e: ExprId, v: f64) -> f64 {
        self.record(e, v)
    }

    fn un(&mut self, _c: ExecCtx, e: ExprId, op: UnOp, a: f64) -> f64 {
        let v = match op {
            UnOp::Neg => -a,
        };
        self.record(e, v)
    }

    fn bin(&mut self, _c: ExecCtx, e: ExprId, op: BinOp, a: f64, b: f64) -> f64 {
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        };
        self.record(e, v)
    }

    fn store(&mut self, array: ArrayId, v: f64) -> f64 {
        self.arrays[array.index()] = self.arrays[array.index()].union(sample_interval(v));
        v
    }

    fn to_f64(&self, v: f64) -> f64 {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::parser::parse_kernel;

    const FIR4: &str = r#"
kernel fir4 {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.25, 0.25, 0.25, 0.25 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    /// Stable biquad (poles at |z| ~ 0.894) whose feedback coefficient
    /// magnitudes sum to 2.4 > 1: naive interval iteration diverges even
    /// though the filter is stable.
    const IIR2: &str = r#"
kernel iir2 {
    input x range [-1, 1];
    output y;
    array yline[2];
    var t;
    t = 0.1 * x + 1.6 * yline[0] - 0.8 * yline[1];
    shiftin yline <- t;
    y = t;
}
"#;

    /// First-order feedback with pole 0.9: contractive, so interval
    /// iteration converges numerically to the exact bound 0.5/(1-0.9) = 5.
    const IIR1: &str = r#"
kernel iir1 {
    input x range [-1, 1];
    output y;
    array yline[1];
    var t;
    t = 0.5 * x + 0.9 * yline[0];
    shiftin yline <- t;
    y = t;
}
"#;

    #[test]
    fn fir_converges_with_interval() {
        let k = parse_kernel(FIR4).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert_eq!(r.method, RangeMethod::Interval);
        // Output range: sum of 4 taps of 0.25 * [-1,1] = [-1, 1].
        let out_range = r.arrays[0];
        assert!(out_range.encloses(Interval::new(-1.0, 1.0)));
        // The accumulator's final range must be within [-1,1].
        let mag: f64 = r
            .exprs
            .iter()
            .flatten()
            .map(|iv| iv.magnitude())
            .fold(0.0, f64::max);
        assert!((mag - 1.0).abs() < 1e-12, "max magnitude {mag}");
    }

    #[test]
    fn contractive_feedback_converges_with_interval() {
        let k = parse_kernel(IIR1).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert_eq!(r.method, RangeMethod::Interval);
        // Steady-state bound of y = 0.5x + 0.9 y is |y| <= 0.5/(1-0.9) = 5.
        let ymax = r.arrays[0].magnitude();
        assert!(
            (ymax - 5.0).abs() < 1e-6,
            "expected the exact bound 5, got {ymax}"
        );
    }

    #[test]
    fn resonant_feedback_falls_back_to_simulation() {
        let k = parse_kernel(IIR2).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert!(matches!(r.method, RangeMethod::Simulation { .. }));
        // The filter is stable: simulated ranges must be finite and above
        // the input range (resonance gain > 1 for 0.1/(1 - 1.6 + 0.8) = 0.5
        // at DC, higher near resonance).
        let ymax = r.arrays[0].magnitude();
        assert!(ymax.is_finite());
        assert!(ymax > 0.3, "resonance must amplify, got {ymax}");
        assert!(ymax < 100.0, "stable filter must stay bounded, got {ymax}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let k = parse_kernel(IIR2).unwrap();
        let a = simulate_ranges(&k, &RangeOptions::default());
        let b = simulate_ranges(&k, &RangeOptions::default());
        assert_eq!(a.arrays[0], b.arrays[0]);
    }

    #[test]
    fn param_ranges_cover_table() {
        let k = parse_kernel(FIR4).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert!(r.params[0].encloses(Interval::new(0.0, 0.25)));
    }

    #[test]
    fn dead_exprs_have_no_range() {
        // Unrolled kernels leave orphan arena nodes: they must read as None.
        let k = parse_kernel(
            "kernel k { input x range [-1,1]; output y; var a; for i in 0..4 unroll 2 { a = x; } y = a; }",
        );
        let k = k.unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        assert!(
            r.exprs.iter().any(|e| e.is_none()),
            "expected dead arena nodes"
        );
        // And Ranges::expr defaults them to zero.
        let dead = r.exprs.iter().position(|e| e.is_none()).unwrap();
        assert_eq!(r.expr(slpwlo_ir::ExprId(dead as u32)), Interval::zero());
    }
}
