//! Fixed-point formats.

use std::fmt;

/// A two's-complement fixed-point format `<IWL, FWL>`.
///
/// Following the ID.Fix convention used by the paper, the **integer word
/// length includes the sign bit** and the total word length is
/// `WL = IWL + FWL`. A value with format `<i, f>` is stored as an integer
/// `raw` and denotes `raw * 2^-f`, covering the closed-open range
/// `[-2^(i-1), 2^(i-1))` with step `2^-f`.
///
/// `FWL` may be negative (steps larger than one) and `IWL` may exceed the
/// word length of the container; only the *sum* is constrained by the
/// target processor.
///
/// # Example
///
/// ```
/// use slpwlo_fixedpoint::QFormat;
///
/// let q15 = QFormat::new(1, 15); // Q1.15: [-1, 1) with step 2^-15
/// assert_eq!(q15.wl(), 16);
/// assert_eq!(q15.step(), 2f64.powi(-15));
/// assert_eq!(q15.max_value(), 1.0 - 2f64.powi(-15));
/// assert_eq!(q15.min_value(), -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    /// Integer word length, sign bit included.
    pub iwl: i32,
    /// Fractional word length.
    pub fwl: i32,
}

impl QFormat {
    /// Creates a format from integer and fractional word lengths.
    pub fn new(iwl: i32, fwl: i32) -> Self {
        QFormat { iwl, fwl }
    }

    /// Total word length `IWL + FWL`.
    pub fn wl(self) -> i32 {
        self.iwl + self.fwl
    }

    /// Quantization step `2^-FWL`.
    pub fn step(self) -> f64 {
        pow2(-self.fwl)
    }

    /// Largest representable value, `2^(IWL-1) - step`.
    pub fn max_value(self) -> f64 {
        pow2(self.iwl - 1) - self.step()
    }

    /// Smallest representable value, `-2^(IWL-1)`.
    pub fn min_value(self) -> f64 {
        -pow2(self.iwl - 1)
    }

    /// Largest raw integer value.
    pub fn max_raw(self) -> i64 {
        debug_assert!(self.wl() <= 63, "format wider than i64");
        (1i64 << (self.wl() - 1)) - 1
    }

    /// Smallest raw integer value.
    pub fn min_raw(self) -> i64 {
        debug_assert!(self.wl() <= 63, "format wider than i64");
        -(1i64 << (self.wl() - 1))
    }

    /// The minimal IWL (sign included) covering the closed range
    /// `[lo, hi]`, letting the extreme positive value saturate by one step
    /// when `hi` is an exact power of two (Q1.15 practice: `[-1, 1]` maps
    /// to IWL 1 with `+1.0` saturating to `1 - 2^-15`).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn iwl_for_range(lo: f64, hi: f64) -> i32 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        assert!(lo.is_finite() && hi.is_finite(), "range must be finite");
        let mag = lo.abs().max(hi.abs());
        if mag == 0.0 {
            return 1; // sign bit only
        }
        // Smallest i with 2^(i-1) >= mag.
        let mut i = (mag.log2().ceil() as i32) + 1;
        // Guard against log2 rounding artefacts at power-of-two boundaries.
        while pow2(i - 1) < mag {
            i += 1;
        }
        while i > 1 && pow2(i - 2) >= mag {
            i -= 1;
        }
        i
    }

    /// Builds a format covering `[lo, hi]` within `wl` total bits: minimal
    /// IWL, all remaining bits fractional.
    pub fn for_range(lo: f64, hi: f64, wl: i32) -> Self {
        let iwl = Self::iwl_for_range(lo, hi);
        QFormat { iwl, fwl: wl - iwl }
    }

    /// Returns a copy resized to `wl` total bits, preserving IWL (the
    /// range) and trading fractional bits — the adjustment performed when
    /// a node's word length is changed by WLO.
    pub fn with_wl(self, wl: i32) -> Self {
        QFormat {
            iwl: self.iwl,
            fwl: wl - self.iwl,
        }
    }

    /// Returns a copy with the fractional length reduced by `delta`
    /// (IWL grows so the word length is preserved) — the adjustment
    /// performed by scaling optimization.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative.
    pub fn shrink_fwl(self, delta: i32) -> Self {
        assert!(delta >= 0, "shrink_fwl takes a non-negative delta");
        QFormat {
            iwl: self.iwl + delta,
            fwl: self.fwl - delta,
        }
    }

    /// Returns `true` if every value representable in `other` is exactly
    /// representable in `self`.
    pub fn covers(self, other: QFormat) -> bool {
        self.iwl >= other.iwl && self.fwl >= other.fwl
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.iwl, self.fwl)
    }
}

/// `2^e` as f64 for arbitrary (possibly negative) exponents.
pub(crate) fn pow2(e: i32) -> f64 {
    f64::powi(2.0, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q15_basics() {
        let q = QFormat::new(1, 15);
        assert_eq!(q.wl(), 16);
        assert_eq!(q.max_raw(), 32767);
        assert_eq!(q.min_raw(), -32768);
        assert_eq!(q.min_value(), -1.0);
    }

    #[test]
    fn iwl_for_ranges() {
        assert_eq!(QFormat::iwl_for_range(-1.0, 1.0), 1);
        assert_eq!(QFormat::iwl_for_range(-0.5, 0.5), 0);
        assert_eq!(QFormat::iwl_for_range(-2.0, 1.5), 2);
        assert_eq!(QFormat::iwl_for_range(0.0, 0.0), 1);
        assert_eq!(QFormat::iwl_for_range(-4.0, 3.0), 3);
        assert_eq!(QFormat::iwl_for_range(-0.25, 0.2), -1);
        assert_eq!(QFormat::iwl_for_range(0.0, 100.0), 8);
    }

    #[test]
    fn for_range_uses_all_bits() {
        let q = QFormat::for_range(-1.0, 1.0, 16);
        assert_eq!(q, QFormat::new(1, 15));
        let q = QFormat::for_range(-8.0, 8.0, 32);
        assert_eq!(q, QFormat::new(4, 28));
    }

    #[test]
    fn with_wl_preserves_range() {
        let q = QFormat::for_range(-2.0, 2.0, 32);
        let h = q.with_wl(16);
        assert_eq!(h.iwl, q.iwl);
        assert_eq!(h.wl(), 16);
    }

    #[test]
    fn shrink_fwl_keeps_wl() {
        let q = QFormat::new(1, 15).shrink_fwl(3);
        assert_eq!(q, QFormat::new(4, 12));
        assert_eq!(q.wl(), 16);
    }

    #[test]
    fn covers_partial_order() {
        let wide = QFormat::new(4, 28);
        let narrow = QFormat::new(2, 14);
        assert!(wide.covers(narrow));
        assert!(!narrow.covers(wide));
        assert!(wide.covers(wide));
    }

    #[test]
    fn negative_fwl_is_allowed() {
        let q = QFormat::new(10, -2);
        assert_eq!(q.wl(), 8);
        assert_eq!(q.step(), 4.0);
        assert_eq!(q.max_value(), 512.0 - 4.0);
    }

    #[test]
    fn display() {
        assert_eq!(QFormat::new(1, 15).to_string(), "<1,15>");
    }
}
