//! Quantization modes, overflow handling and quantization-noise statistics.

/// How values are quantized when fractional bits are discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantizeMode {
    /// Two's-complement truncation (floor). The paper's assumption.
    #[default]
    Truncate,
    /// Round-half-up: add half a step, then truncate.
    Round,
}

/// How values exceeding the representable range are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowMode {
    /// Clamp to the closest representable value. IWLs produced by range
    /// analysis make saturation a rare event (only at exact range
    /// extremes), matching the paper's "avoid overflows" IWL policy.
    #[default]
    Saturate,
    /// Two's-complement wrap-around.
    Wrap,
}

/// First and second moments of the quantization error introduced when a
/// signal on grid `q_in` is re-quantized to the coarser grid `q_out`.
///
/// Uses the discrete noise model of Menard & Sentieys (DATE 2002) /
/// Caffarena et al.:
///
/// * truncation: `mean = -(q_out - q_in)/2`, `var = (q_out² - q_in²)/12`
/// * rounding:   `mean = q_in/2`,            `var = (q_out² - q_in²)/12`
///
/// `q_in = 0` models a continuous-amplitude source (float-to-fixed
/// conversion of an input sample).
///
/// Returns `(mean, variance)`; both are zero when `q_out <= q_in`
/// (no bits discarded).
///
/// # Panics
///
/// Panics if a grid step is negative.
pub fn noise_stats(q_in: f64, q_out: f64, mode: QuantizeMode) -> (f64, f64) {
    assert!(
        q_in >= 0.0 && q_out >= 0.0,
        "grid steps must be non-negative"
    );
    if q_out <= q_in {
        return (0.0, 0.0);
    }
    let var = (q_out * q_out - q_in * q_in) / 12.0;
    let mean = match mode {
        QuantizeMode::Truncate => -(q_out - q_in) / 2.0,
        QuantizeMode::Round => q_in / 2.0,
    };
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_truncation() {
        let q = 2f64.powi(-15);
        let (m, v) = noise_stats(0.0, q, QuantizeMode::Truncate);
        assert!((m + q / 2.0).abs() < 1e-30);
        assert!((v - q * q / 12.0).abs() < 1e-30);
    }

    #[test]
    fn continuous_rounding_is_unbiased() {
        let q = 2f64.powi(-15);
        let (m, v) = noise_stats(0.0, q, QuantizeMode::Round);
        assert_eq!(m, 0.0);
        assert!(v > 0.0);
    }

    #[test]
    fn no_noise_when_not_discarding() {
        assert_eq!(noise_stats(0.25, 0.25, QuantizeMode::Truncate), (0.0, 0.0));
        assert_eq!(noise_stats(0.5, 0.25, QuantizeMode::Truncate), (0.0, 0.0));
    }

    #[test]
    fn discrete_truncation_single_bit() {
        // Discarding one bit: error in {0, -q_in}; mean -q_in/2,
        // var q_in^2/4 - mean^2 = q_in^2/4 - q_in^2/4... the model's
        // (q_out^2 - q_in^2)/12 = q_in^2/4 since q_out = 2 q_in.
        let q_in = 2f64.powi(-10);
        let q_out = 2.0 * q_in;
        let (m, v) = noise_stats(q_in, q_out, QuantizeMode::Truncate);
        assert!((m + q_in / 2.0).abs() < 1e-30);
        assert!((v - q_in * q_in / 4.0).abs() < 1e-30);
    }

    #[test]
    fn empirical_truncation_moments_match_model() {
        // Empirically truncate a fine grid to a coarse one and compare
        // moments with the analytical model.
        let q_in = 2f64.powi(-12);
        let q_out = 2f64.powi(-8);
        let n = 1 << 16;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for k in 0..n {
            // values on the fine grid, uniformly covering several coarse steps
            let x = (k as f64) * q_in;
            let xq = (x / q_out).floor() * q_out;
            let e = xq - x;
            sum += e;
            sum2 += e * e;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let (m_model, v_model) = noise_stats(q_in, q_out, QuantizeMode::Truncate);
        assert!(
            (mean - m_model).abs() < q_out * 0.01,
            "mean {mean} vs {m_model}"
        );
        assert!(
            (var - v_model).abs() < v_model * 0.05,
            "var {var} vs {v_model}"
        );
    }
}
