//! Benchmark kernels and their workloads.
//!
//! The paper's three kernels (Section V-C):
//!
//! * [`fir::fir64`] — 64-tap windowed-sinc low-pass FIR, tap loop
//!   unrolled by 4;
//! * [`iir::iir10`] — stable order-10 direct-form-I IIR (five well
//!   separated conjugate pole pairs expanded into direct form),
//!   feed-forward and feedback tap loops unrolled by 4;
//! * [`conv::conv3x3`] — 3x3 convolution in streaming line-buffer form
//!   (one output pixel per activation, three row streams), fully
//!   unrolled.
//!
//! Five more kernels open the suite beyond the paper's evaluation
//! (every layer of the pipeline regresses against all eight through
//! `tests/pipeline_fuzz.rs`):
//!
//! * [`dot::dot_product256`] — 256-tap streaming dot product (matched
//!   filter), unrolled by 8: the longest reduction in the suite;
//! * [`matvec::matvec16x16`] — dense 16x16 matrix-vector product:
//!   16 inputs, 16 outputs, staged input vector, 16 row reductions;
//! * [`biquad::biquad_cascade4`] — four cascaded second-order IIR
//!   sections, fully unrolled: chained small feedback loops;
//! * [`cfir::complex_fir32`] — 32-tap complex (I/Q) FIR: two streams,
//!   two outputs, cross-coupled MACs with subtractions;
//! * [`polyphase::polyphase_decim2`] — decimate-by-2 polyphase filter:
//!   per-phase delay lines and reductions merged into one accumulator.
//!
//! [`signals`] provides the seeded workload generators (inputs
//! pre-normalized to `[-1, 1]`).

pub mod biquad;
pub mod cfir;
pub mod conv;
pub mod dot;
pub mod fir;
pub mod iir;
pub mod matvec;
pub mod polyphase;
pub mod signals;

pub use biquad::biquad_cascade4;
pub use cfir::complex_fir32;
pub use conv::conv3x3;
pub use dot::dot_product256;
pub use fir::fir64;
pub use iir::iir10;
pub use matvec::matvec16x16;
pub use polyphase::polyphase_decim2;
pub use signals::Workload;

use slpwlo_ir::Kernel;

/// A named benchmark with its standard workload.
#[derive(Debug)]
pub struct Benchmark {
    /// Display name used in reports ("FIR", "IIR", "CONV", ...).
    pub name: &'static str,
    /// The kernel, already unrolled as registered.
    pub kernel: Kernel,
    /// Number of activations in the standard workload (samples/pixels).
    pub activations: u64,
    /// Standard workload constructor: `(activations, seed)` to input
    /// streams shaped for this kernel.
    pub make_workload: fn(usize, u64) -> Workload,
}

impl Benchmark {
    /// The standard-size workload for this benchmark.
    pub fn workload(&self, seed: u64) -> Workload {
        (self.make_workload)(self.activations as usize, seed)
    }

    /// A workload of `n` activations shaped for this kernel.
    pub fn workload_sized(&self, n: usize, seed: u64) -> Workload {
        (self.make_workload)(n, seed)
    }
}

/// The paper's three benchmarks in presentation order — the set every
/// figure/table reproduction (`table1`, `fig4`, `fig6`, ablation) runs.
pub fn paper_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "FIR",
            kernel: fir64(),
            activations: 2048,
            make_workload: |n, seed| Workload::white(1, n, seed),
        },
        Benchmark {
            name: "IIR",
            kernel: iir10(),
            activations: 2048,
            make_workload: |n, seed| Workload::white(1, n, seed),
        },
        Benchmark {
            name: "CONV",
            kernel: conv3x3(),
            activations: 64 * 64,
            make_workload: |n, seed| Workload::image_rows(64, n.div_ceil(64).max(1), seed),
        },
    ]
}

/// The full benchmark suite: the paper's three kernels plus the five
/// expansion kernels, in presentation order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = paper_benchmarks();
    v.extend([
        Benchmark {
            name: "DOT",
            kernel: dot_product256(),
            activations: 1024,
            make_workload: |n, seed| Workload::white(1, n, seed),
        },
        Benchmark {
            name: "MATVEC",
            kernel: matvec16x16(),
            activations: 256,
            make_workload: |n, seed| Workload::white(16, n, seed),
        },
        Benchmark {
            name: "BIQUAD",
            kernel: biquad_cascade4(),
            activations: 2048,
            make_workload: |n, seed| Workload::white(1, n, seed),
        },
        Benchmark {
            name: "CFIR",
            kernel: complex_fir32(),
            activations: 1024,
            make_workload: |n, seed| Workload::white(2, n, seed),
        },
        Benchmark {
            name: "POLY",
            kernel: polyphase_decim2(),
            activations: 1024,
            make_workload: |n, seed| Workload::white(2, n, seed),
        },
    ]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_benchmarks_all_valid() {
        let b = all_benchmarks();
        assert_eq!(b.len(), 8);
        let names: Vec<_> = b.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            ["FIR", "IIR", "CONV", "DOT", "MATVEC", "BIQUAD", "CFIR", "POLY"]
        );
        for bench in &b {
            assert!(bench.kernel.validate().is_ok(), "{} invalid", bench.name);
            assert!(bench.activations > 0);
        }
    }

    #[test]
    fn paper_benchmarks_are_the_first_three() {
        let p = paper_benchmarks();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].name, "FIR");
        assert_eq!(p[1].name, "IIR");
        assert_eq!(p[2].name, "CONV");
    }

    #[test]
    fn workloads_match_kernel_arity() {
        for bench in all_benchmarks() {
            let w = bench.workload_sized(32, 7);
            assert_eq!(
                w.inputs.len(),
                bench.kernel.inputs().len(),
                "{}: workload streams must match kernel inputs",
                bench.name
            );
            assert!(
                w.activations() >= 32,
                "{}: requested size honoured",
                bench.name
            );
            for s in &w.inputs {
                for &v in s {
                    assert!((-1.0..=1.0).contains(&v), "{}: normalized", bench.name);
                }
            }
        }
    }

    #[test]
    fn standard_workloads_are_deterministic() {
        for bench in all_benchmarks() {
            let other = all_benchmarks()
                .into_iter()
                .find(|b| b.name == bench.name)
                .unwrap();
            assert_eq!(
                bench.workload(42).inputs,
                other.workload(42).inputs,
                "{}: same seed, same workload",
                bench.name
            );
        }
    }
}
