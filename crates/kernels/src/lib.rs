//! The paper's benchmark kernels and their workloads.
//!
//! Section V-C of the paper: "A 64-tap FIR and a 10th order IIR filters as
//! well as a 2d (3x3) image convolution (CONV) are used as benchmarks...
//! The innermost loop in FIR and IIR is partially unrolled by 4 to expose
//! SLP, whereas the convolution kernel (3x3) is fully unrolled. The input
//! samples are pre-normalized to [-1, 1]."
//!
//! * [`fir::fir64`] — 64-tap windowed-sinc low-pass FIR, tap loop
//!   unrolled by 4;
//! * [`iir::iir10`] — stable order-10 direct-form-I IIR (five well
//!   separated conjugate pole pairs expanded into direct form),
//!   feed-forward and feedback tap loops unrolled by 4;
//! * [`conv::conv3x3`] — 3x3 convolution in streaming line-buffer form
//!   (one output pixel per activation, three row streams), fully
//!   unrolled;
//! * [`signals`] — seeded workload generators (inputs pre-normalized to
//!   `[-1, 1]`).

pub mod conv;
pub mod fir;
pub mod iir;
pub mod signals;

pub use conv::conv3x3;
pub use fir::fir64;
pub use iir::iir10;
pub use signals::Workload;

use slpwlo_ir::Kernel;

/// A named benchmark with its standard workload size.
#[derive(Debug)]
pub struct Benchmark {
    /// Display name used in reports ("FIR", "IIR", "CONV").
    pub name: &'static str,
    /// The kernel, already unrolled as in the paper.
    pub kernel: Kernel,
    /// Number of activations in the standard workload (samples/pixels).
    pub activations: u64,
}

/// The paper's three benchmarks in presentation order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "FIR",
            kernel: fir64(),
            activations: 2048,
        },
        Benchmark {
            name: "IIR",
            kernel: iir10(),
            activations: 2048,
        },
        Benchmark {
            name: "CONV",
            kernel: conv3x3(),
            activations: 64 * 64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_benchmarks() {
        let b = all_benchmarks();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].name, "FIR");
        for bench in &b {
            assert!(bench.kernel.validate().is_ok(), "{} invalid", bench.name);
        }
    }
}
