//! Dense matrix-vector product kernels.
//!
//! One activation multiplies a constant `rows x cols` matrix by the
//! activation's input vector (`cols` live-in streams) and emits `rows`
//! outputs — the shape of small dense layers, beamformers and
//! projection stages. Structurally this is the suite's multi-input /
//! multi-output stress test: the input vector is staged into a state
//! array, the row loops read it with affine indices, and every row is
//! an independent reduction (16 of them at the standard size).

use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::types::IndexExpr;
use slpwlo_ir::unroll::unroll;
use slpwlo_ir::Kernel;

/// A deterministic `rows x cols` test matrix (row-major), every row
/// L1-normalized so each output of inputs in `[-1, 1]` stays in
/// `[-1, 1]`.
///
/// # Panics
///
/// Panics if `rows` or `cols` is zero.
pub fn test_matrix(rows: usize, cols: usize) -> Vec<f64> {
    assert!(rows > 0 && cols > 0, "matrix must be non-empty");
    let mut a = vec![0.0; rows * cols];
    for r in 0..rows {
        let mut l1 = 0.0;
        for c in 0..cols {
            // Smoothly varying, sign-alternating entries (a DCT-ish
            // pattern keeps rows linearly independent and well scaled).
            let v = ((r + 1) as f64 * (2 * c + 1) as f64 * std::f64::consts::PI
                / (2.0 * cols as f64))
                .cos();
            a[r * cols + c] = v;
            l1 += v.abs();
        }
        for c in 0..cols {
            a[r * cols + c] /= l1;
        }
    }
    a
}

/// Builds the matvec kernel: `cols` inputs, `rows` outputs, row
/// reductions partially unrolled by `unroll_factor` (`<= 1` = none).
///
/// # Panics
///
/// Panics if `matrix.len() != rows * cols`.
pub fn matvec_kernel(
    name: &str,
    rows: usize,
    cols: usize,
    matrix: Vec<f64>,
    unroll_factor: u32,
) -> Kernel {
    assert_eq!(matrix.len(), rows * cols, "matrix shape mismatch");
    let mut b = KernelBuilder::new(name);
    let inputs: Vec<_> = (0..cols)
        .map(|c| b.input(format!("x{c}"), -1.0, 1.0))
        .collect();
    let outputs: Vec<_> = (0..rows).map(|r| b.output(format!("y{r}"))).collect();
    let a = b.param("a", matrix);
    // Stage the input vector into a state array so the row loops can
    // address it with affine indices.
    let xv = b.array("xv", cols);
    for (c, &inp) in inputs.iter().enumerate() {
        let v = b.read_input(inp);
        b.store(xv, c as i64, v);
    }
    let acc = b.var("acc");
    let mut row_loops = Vec::with_capacity(rows);
    for (r, &out) in outputs.iter().enumerate() {
        let zero = b.constf(0.0);
        b.assign(acc, zero);
        let i = b.begin_for(cols as u32);
        let av = b.load_param_ix(a, IndexExpr::affine(i, 1, (r * cols) as i64));
        let vv = b.load_ix(xv, IndexExpr::affine(i, 1, 0));
        let m = b.mul(av, vv);
        let cur = b.read_var(acc);
        let s = b.add(cur, m);
        b.assign(acc, s);
        b.end_for(i);
        let res = b.read_var(acc);
        b.set_output(out, res);
        row_loops.push(i);
    }
    let mut kernel = b.finish();
    if unroll_factor > 1 {
        for i in row_loops {
            unroll(&mut kernel, i, unroll_factor).expect("row loop exists");
        }
    }
    kernel
}

/// The benchmark: 16x16 matrix-vector product, row loops unrolled by 4.
pub fn matvec16x16() -> Kernel {
    matvec_kernel("matvec16", 16, 16, test_matrix(16, 16), 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::interp::{Executor, FloatSem};

    #[test]
    fn rows_are_l1_normalized() {
        let a = test_matrix(16, 16);
        for r in 0..16 {
            let l1: f64 = a[r * 16..(r + 1) * 16].iter().map(|v| v.abs()).sum();
            assert!((l1 - 1.0).abs() < 1e-12, "row {r}: {l1}");
        }
    }

    #[test]
    fn shape() {
        let k = matvec16x16();
        assert_eq!(k.inputs().len(), 16);
        assert_eq!(k.outputs().len(), 16);
        assert_eq!(k.params()[0].values.len(), 256);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn matches_direct_computation() {
        let rows = 4;
        let cols = 4;
        let a = test_matrix(rows, cols);
        let k = matvec_kernel("mv", rows, cols, a.clone(), 2);
        let x = [0.5, -0.25, 0.75, -1.0];
        let mut ex = Executor::new(&k, FloatSem);
        let streams: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let out = ex.run(&streams);
        for r in 0..rows {
            let expect: f64 = (0..cols).map(|c| a[r * cols + c] * x[c]).sum();
            assert!(
                (out[r][0] - expect).abs() < 1e-12,
                "row {r}: {} vs {expect}",
                out[r][0]
            );
        }
    }

    #[test]
    fn outputs_bounded() {
        let k = matvec16x16();
        let mut ex = Executor::new(&k, FloatSem);
        let streams: Vec<Vec<f64>> = (0..16)
            .map(|i| {
                (0..32)
                    .map(|n| if (n + i) % 2 == 0 { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let out = ex.run(&streams);
        for (r, s) in out.iter().enumerate() {
            for &v in s {
                assert!(v.abs() <= 1.0 + 1e-12, "row {r} escaped [-1,1]: {v}");
            }
        }
    }
}
