//! Complex-valued FIR kernels.
//!
//! Baseband radio processing runs FIRs over complex samples: two live-in
//! streams (I/Q), two outputs, and per-tap cross-coupled MACs
//! (`yr += cr·xr − ci·xi`, `yi += cr·xi + ci·xr`). Structurally this is
//! the suite's multi-stream kernel with *subtractions* inside the
//! reduction and four interleaved MAC chains over two delay lines —
//! packing opportunities the real-valued kernels never expose.

use crate::fir::lowpass_coeffs;
use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::types::IndexExpr;
use slpwlo_ir::unroll::unroll;
use slpwlo_ir::Kernel;

/// Complex coefficients of a frequency-shifted low-pass: the real
/// prototype rotated by `omega` per tap, scaled so
/// `Σ (|cr| + |ci|) <= 1` (outputs of `[-1, 1]` inputs stay bounded).
///
/// # Panics
///
/// Panics if `taps == 0`.
pub fn shifted_coeffs(taps: usize, omega: f64) -> (Vec<f64>, Vec<f64>) {
    let h = lowpass_coeffs(taps, 0.2);
    let cr: Vec<f64> = h
        .iter()
        .enumerate()
        .map(|(k, &v)| v * (omega * k as f64).cos())
        .collect();
    let ci: Vec<f64> = h
        .iter()
        .enumerate()
        .map(|(k, &v)| v * (omega * k as f64).sin())
        .collect();
    let l1: f64 = cr.iter().zip(&ci).map(|(r, i)| r.abs() + i.abs()).sum();
    (
        cr.iter().map(|v| v / l1).collect(),
        ci.iter().map(|v| v / l1).collect(),
    )
}

/// Builds the complex FIR kernel with the tap loop partially unrolled
/// by `unroll_factor` (`<= 1` = none).
///
/// # Panics
///
/// Panics if the coefficient vectors are empty or differ in length.
pub fn cfir_kernel(name: &str, cr: Vec<f64>, ci: Vec<f64>, unroll_factor: u32) -> Kernel {
    assert!(!cr.is_empty() && cr.len() == ci.len(), "coefficient shape");
    let taps = cr.len();
    let mut b = KernelBuilder::new(name);
    let xr = b.input("xr", -1.0, 1.0);
    let xi = b.input("xi", -1.0, 1.0);
    let yr = b.output("yr");
    let yi = b.output("yi");
    let crp = b.param("cr", cr);
    let cip = b.param("ci", ci);
    let rline = b.array("rline", taps);
    let iline = b.array("iline", taps);
    let accr = b.var("accr");
    let acci = b.var("acci");
    let xrv = b.read_input(xr);
    b.shift_in(rline, xrv);
    let xiv = b.read_input(xi);
    b.shift_in(iline, xiv);
    let z0 = b.constf(0.0);
    b.assign(accr, z0);
    let z1 = b.constf(0.0);
    b.assign(acci, z1);
    let i = b.begin_for(taps as u32);
    // yr += cr[k]*xr[k];  yr -= ci[k]*xi[k]
    let c0 = b.load_param_ix(crp, IndexExpr::affine(i, 1, 0));
    let r0 = b.load_ix(rline, IndexExpr::affine(i, 1, 0));
    let m0 = b.mul(c0, r0);
    let a0 = b.read_var(accr);
    let s0 = b.add(a0, m0);
    b.assign(accr, s0);
    let c1 = b.load_param_ix(cip, IndexExpr::affine(i, 1, 0));
    let i0 = b.load_ix(iline, IndexExpr::affine(i, 1, 0));
    let m1 = b.mul(c1, i0);
    let a1 = b.read_var(accr);
    let s1 = b.sub(a1, m1);
    b.assign(accr, s1);
    // yi += cr[k]*xi[k];  yi += ci[k]*xr[k]
    let c2 = b.load_param_ix(crp, IndexExpr::affine(i, 1, 0));
    let i1 = b.load_ix(iline, IndexExpr::affine(i, 1, 0));
    let m2 = b.mul(c2, i1);
    let a2 = b.read_var(acci);
    let s2 = b.add(a2, m2);
    b.assign(acci, s2);
    let c3 = b.load_param_ix(cip, IndexExpr::affine(i, 1, 0));
    let r1 = b.load_ix(rline, IndexExpr::affine(i, 1, 0));
    let m3 = b.mul(c3, r1);
    let a3 = b.read_var(acci);
    let s3 = b.add(a3, m3);
    b.assign(acci, s3);
    b.end_for(i);
    let rr = b.read_var(accr);
    b.set_output(yr, rr);
    let ri = b.read_var(acci);
    b.set_output(yi, ri);
    let mut kernel = b.finish();
    if unroll_factor > 1 {
        unroll(&mut kernel, i, unroll_factor).expect("tap loop exists");
    }
    kernel
}

/// The benchmark: 32 complex taps, unrolled by 4.
pub fn complex_fir32() -> Kernel {
    let (cr, ci) = shifted_coeffs(32, 0.7);
    cfir_kernel("cfir32", cr, ci, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::interp::{Executor, FloatSem};

    #[test]
    fn coefficients_are_jointly_normalized() {
        let (cr, ci) = shifted_coeffs(32, 0.7);
        let l1: f64 = cr.iter().zip(&ci).map(|(r, i)| r.abs() + i.abs()).sum();
        assert!((l1 - 1.0).abs() < 1e-12);
        assert!(
            ci.iter().any(|&v| v.abs() > 1e-6),
            "rotation must be complex"
        );
    }

    #[test]
    fn real_impulse_reproduces_both_coefficient_streams() {
        let (cr, ci) = shifted_coeffs(8, 0.7);
        let k = cfir_kernel("c", cr.clone(), ci.clone(), 4);
        let mut ex = Executor::new(&k, FloatSem);
        let mut re = vec![0.0; 10];
        re[0] = 1.0;
        let im = vec![0.0; 10];
        let out = ex.run(&[re, im]);
        for (n, (&r, &i)) in cr.iter().zip(&ci).enumerate() {
            assert!((out[0][n] - r).abs() < 1e-12, "yr tap {n}");
            assert!((out[1][n] - i).abs() < 1e-12, "yi tap {n}");
        }
    }

    #[test]
    fn bounded_outputs() {
        let k = complex_fir32();
        let mut ex = Executor::new(&k, FloatSem);
        let re: Vec<f64> = (0..256)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let im: Vec<f64> = (0..256)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = ex.run(&[re, im]);
        for s in &out {
            for &v in s {
                assert!(
                    v.abs() <= 1.0 + 1e-12,
                    "jointly normalized taps bound outputs"
                );
            }
        }
    }

    #[test]
    fn structure() {
        let k = complex_fir32();
        assert_eq!(k.inputs().len(), 2);
        assert_eq!(k.outputs().len(), 2);
        let blocks = slpwlo_ir::blocks::collect_blocks(&k);
        let body = blocks.iter().find(|b| b.in_loop()).unwrap();
        assert_eq!(body.trip(), 8, "32 taps unrolled by 4");
    }
}
