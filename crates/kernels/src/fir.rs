//! FIR filter kernels.

use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::types::IndexExpr;
use slpwlo_ir::unroll::unroll;
use slpwlo_ir::Kernel;

/// Windowed-sinc low-pass coefficients (Hamming window), normalized to
/// `sum(|c|) <= 1` so that outputs of inputs in `[-1, 1]` stay in
/// `[-1, 1]` (no internal overflow headroom needed).
///
/// # Panics
///
/// Panics if `taps == 0` or the cutoff is outside `(0, 0.5)`.
pub fn lowpass_coeffs(taps: usize, cutoff: f64) -> Vec<f64> {
    assert!(taps > 0, "taps must be positive");
    assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff must be in (0, 0.5)");
    let m = (taps - 1) as f64;
    let mut c: Vec<f64> = (0..taps)
        .map(|i| {
            let x = i as f64 - m / 2.0;
            let sinc = if x.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (2.0 * std::f64::consts::PI * cutoff * x).sin() / (std::f64::consts::PI * x)
            };
            let w = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / m).cos();
            sinc * w
        })
        .collect();
    let l1: f64 = c.iter().map(|v| v.abs()).sum();
    for v in &mut c {
        *v /= l1;
    }
    c
}

/// Builds an FIR kernel with the given coefficients and an inner tap loop
/// partially unrolled by `unroll_factor` (0 = no unrolling).
///
/// # Panics
///
/// Panics if `coeffs` is empty.
pub fn fir_kernel(name: &str, coeffs: Vec<f64>, unroll_factor: u32) -> Kernel {
    assert!(!coeffs.is_empty(), "FIR needs at least one coefficient");
    let taps = coeffs.len();
    let mut b = KernelBuilder::new(name);
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let c = b.param("c", coeffs);
    let dl = b.array("dl", taps);
    let acc = b.var("acc");
    let xv = b.read_input(x);
    b.shift_in(dl, xv);
    let zero = b.constf(0.0);
    b.assign(acc, zero);
    let i = b.begin_for(taps as u32);
    let cv = b.load_param_ix(c, IndexExpr::affine(i, 1, 0));
    let lv = b.load_ix(dl, IndexExpr::affine(i, 1, 0));
    let m = b.mul(cv, lv);
    let av = b.read_var(acc);
    let s = b.add(av, m);
    b.assign(acc, s);
    b.end_for(i);
    let r = b.read_var(acc);
    b.set_output(y, r);
    let mut kernel = b.finish();
    if unroll_factor > 1 {
        unroll(&mut kernel, i, unroll_factor).expect("tap loop exists");
    }
    kernel
}

/// The paper's FIR benchmark: 64 taps, inner loop unrolled by 4.
pub fn fir64() -> Kernel {
    fir_kernel("fir64", lowpass_coeffs(64, 0.2), 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::interp::{Executor, FloatSem};

    #[test]
    fn coefficients_are_l1_normalized() {
        let c = lowpass_coeffs(64, 0.2);
        let l1: f64 = c.iter().map(|v| v.abs()).sum();
        assert!((l1 - 1.0).abs() < 1e-12);
        // Low-pass: the DC gain is positive and close to the passband.
        let dc: f64 = c.iter().sum();
        assert!(dc > 0.5 && dc <= 1.0, "DC gain {dc}");
    }

    #[test]
    fn fir64_structure() {
        let k = fir64();
        assert_eq!(k.params()[0].values.len(), 64);
        let blocks = collect_blocks(&k);
        // head (shiftin+init), unrolled loop body, tail (output).
        assert_eq!(blocks.len(), 3);
        let body = blocks.iter().find(|b| b.in_loop()).unwrap();
        assert_eq!(body.trip(), 16, "64 taps unrolled by 4");
        assert_eq!(body.stmts.len(), 4, "four tap statements per iteration");
    }

    #[test]
    fn impulse_response_equals_coefficients() {
        let k = fir_kernel("f", lowpass_coeffs(8, 0.25), 4);
        let c = lowpass_coeffs(8, 0.25);
        let mut ex = Executor::new(&k, FloatSem);
        let mut input = vec![0.0; 10];
        input[0] = 1.0;
        let out = ex.run(&[input]);
        for (i, &ci) in c.iter().enumerate() {
            assert!((out[0][i] - ci).abs() < 1e-12, "tap {i}");
        }
        assert_eq!(out[0][8], 0.0);
    }

    #[test]
    fn bounded_output_for_bounded_input() {
        let k = fir64();
        let mut ex = Executor::new(&k, FloatSem);
        let xs: Vec<f64> = (0..256)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = ex.run(&[xs]);
        for &v in &out[0] {
            assert!(
                v.abs() <= 1.0 + 1e-12,
                "L1-normalized FIR stays in [-1,1]: {v}"
            );
        }
    }
}
