//! Polyphase decimation filter kernels.
//!
//! Decimation-by-M done right: the M input phases arrive as separate
//! live-in streams (the commutator runs outside the kernel), each phase
//! feeds its own delay line and polyphase branch of the prototype
//! low-pass, and one activation emits one output sample at the low
//! rate. Structurally: multiple parallel reductions over distinct
//! delay lines merged into one accumulator — the classic multi-rate
//! front-end shape.

use crate::fir::lowpass_coeffs;
use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::types::IndexExpr;
use slpwlo_ir::unroll::unroll;
use slpwlo_ir::Kernel;

/// Splits a prototype into `phases` polyphase branches
/// (`branch[p][k] = h[k*phases + p]`).
///
/// # Panics
///
/// Panics if `phases` is zero or does not divide `h.len()`.
pub fn polyphase_split(h: &[f64], phases: usize) -> Vec<Vec<f64>> {
    assert!(
        phases > 0 && h.len().is_multiple_of(phases),
        "phase split shape"
    );
    let per = h.len() / phases;
    (0..phases)
        .map(|p| (0..per).map(|k| h[k * phases + p]).collect())
        .collect()
}

/// Builds the polyphase decimator kernel: one input stream, delay line
/// and reduction loop per phase, branch loops partially unrolled by
/// `unroll_factor` (`<= 1` = none).
///
/// # Panics
///
/// Panics if `branches` is empty or any branch is empty.
pub fn polyphase_kernel(name: &str, branches: &[Vec<f64>], unroll_factor: u32) -> Kernel {
    assert!(
        !branches.is_empty() && branches.iter().all(|b| !b.is_empty()),
        "polyphase branches must be non-empty"
    );
    let mut b = KernelBuilder::new(name);
    let inputs: Vec<_> = (0..branches.len())
        .map(|p| b.input(format!("x{p}"), -1.0, 1.0))
        .collect();
    let y = b.output("y");
    let acc = b.var("acc");
    let zero = b.constf(0.0);
    b.assign(acc, zero);
    let mut loops = Vec::new();
    for (p, (branch, &inp)) in branches.iter().zip(&inputs).enumerate() {
        let taps = branch.len();
        let hp = b.param(format!("h{p}"), branch.clone());
        let line = b.array(format!("dl{p}"), taps);
        let xv = b.read_input(inp);
        b.shift_in(line, xv);
        let i = b.begin_for(taps as u32);
        let hv = b.load_param_ix(hp, IndexExpr::affine(i, 1, 0));
        let lv = b.load_ix(line, IndexExpr::affine(i, 1, 0));
        let m = b.mul(hv, lv);
        let av = b.read_var(acc);
        let s = b.add(av, m);
        b.assign(acc, s);
        b.end_for(i);
        loops.push(i);
    }
    let r = b.read_var(acc);
    b.set_output(y, r);
    let mut kernel = b.finish();
    if unroll_factor > 1 {
        for i in loops {
            unroll(&mut kernel, i, unroll_factor).expect("branch loop exists");
        }
    }
    kernel
}

/// The benchmark: decimate-by-2, 32-tap prototype (16 taps per branch),
/// branch loops unrolled by 4.
pub fn polyphase_decim2() -> Kernel {
    let h = lowpass_coeffs(32, 0.2);
    polyphase_kernel("poly2", &polyphase_split(&h, 2), 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::interp::{Executor, FloatSem};

    #[test]
    fn split_interleaves() {
        let h: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let b = polyphase_split(&h, 2);
        assert_eq!(b[0], vec![0.0, 2.0, 4.0, 6.0]);
        assert_eq!(b[1], vec![1.0, 3.0, 5.0, 7.0]);
    }

    /// The polyphase form computes the same samples the direct
    /// decimated FIR would.
    #[test]
    fn equivalent_to_decimated_direct_fir() {
        let h = lowpass_coeffs(8, 0.2);
        let k = polyphase_kernel("p", &polyphase_split(&h, 2), 2);
        // High-rate signal; phase streams x_p[n] = x[2n - p] (zero
        // before the start of time).
        let x: Vec<f64> = (0..64)
            .map(|i| ((i * 37 + 11) % 200) as f64 / 100.0 - 1.0)
            .collect();
        let n_out = 20;
        let x0: Vec<f64> = (0..n_out).map(|n| x[2 * n]).collect();
        let x1: Vec<f64> = (0..n_out)
            .map(|n| if n == 0 { 0.0 } else { x[2 * n - 1] })
            .collect();
        let mut ex = Executor::new(&k, FloatSem);
        let out = ex.run(&[x0, x1]);
        // Direct form: y[n] = sum_m h[m] * x[2n - m] (x zero for t < 0).
        #[allow(clippy::needless_range_loop)]
        for n in 0..n_out {
            let expect: f64 = h
                .iter()
                .enumerate()
                .map(|(m, &c)| {
                    let t = 2 * n as i64 - m as i64;
                    if t < 0 {
                        0.0
                    } else {
                        x.get(t as usize).copied().unwrap_or(0.0) * c
                    }
                })
                .sum();
            assert!(
                (out[0][n] - expect).abs() < 1e-12,
                "sample {n}: {} vs {expect}",
                out[0][n]
            );
        }
    }

    #[test]
    fn structure() {
        let k = polyphase_decim2();
        assert_eq!(k.inputs().len(), 2);
        assert_eq!(k.outputs().len(), 1);
        assert_eq!(k.arrays().len(), 2);
        let blocks = slpwlo_ir::blocks::collect_blocks(&k);
        let loop_blocks: Vec<_> = blocks.iter().filter(|b| b.in_loop()).collect();
        assert_eq!(loop_blocks.len(), 2, "one reduction per phase");
        for lb in loop_blocks {
            assert_eq!(lb.trip(), 4, "16 taps unrolled by 4");
        }
    }

    #[test]
    fn bounded_outputs() {
        let k = polyphase_decim2();
        let mut ex = Executor::new(&k, FloatSem);
        let a: Vec<f64> = (0..256)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let b2: Vec<f64> = (0..256)
            .map(|i| if i % 5 == 0 { -1.0 } else { 1.0 })
            .collect();
        let out = ex.run(&[a, b2]);
        for &v in &out[0] {
            assert!(
                v.abs() <= 1.0 + 1e-12,
                "L1-normalized prototype bounds output"
            );
        }
    }
}
