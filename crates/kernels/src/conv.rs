//! 2-D 3x3 convolution in streaming line-buffer form.
//!
//! One activation computes one output pixel: three row streams (the
//! neighbourhoods above/at/below the output row, as delivered by line
//! buffers outside the kernel) are shifted into three 3-wide column
//! windows, and the fully unrolled 3x3 mask is applied — the form in
//! which streaming hardware and DSP firmware implement small
//! convolutions, and the fully-unrolled basic block the paper's CONV
//! benchmark vectorizes.

use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::Kernel;

/// The 3x3 Gaussian-like smoothing mask `[1 2 1; 2 4 2; 1 2 1] / 16`,
/// row-major. `sum = 1`, so pixel ranges are preserved.
pub fn gaussian3x3() -> Vec<f64> {
    vec![
        1.0 / 16.0,
        2.0 / 16.0,
        1.0 / 16.0,
        2.0 / 16.0,
        4.0 / 16.0,
        2.0 / 16.0,
        1.0 / 16.0,
        2.0 / 16.0,
        1.0 / 16.0,
    ]
}

/// Builds the streaming 3x3 convolution kernel for an arbitrary mask
/// (row-major, 9 entries).
///
/// # Panics
///
/// Panics if `mask` does not have exactly 9 entries.
pub fn conv_kernel(name: &str, mask: Vec<f64>) -> Kernel {
    assert_eq!(mask.len(), 9, "3x3 mask needs 9 entries");
    let mut b = KernelBuilder::new(name);
    let r0 = b.input("r0", -1.0, 1.0);
    let r1 = b.input("r1", -1.0, 1.0);
    let r2 = b.input("r2", -1.0, 1.0);
    let y = b.output("y");
    let k = b.param("k", mask);
    let w0 = b.array("w0", 3);
    let w1 = b.array("w1", 3);
    let w2 = b.array("w2", 3);
    let acc = b.var("acc");
    // Slide the three column windows by one pixel.
    let v0 = b.read_input(r0);
    b.shift_in(w0, v0);
    let v1 = b.read_input(r1);
    b.shift_in(w1, v1);
    let v2 = b.read_input(r2);
    b.shift_in(w2, v2);
    // Fully unrolled 3x3 multiply-accumulate tree.
    let zero = b.constf(0.0);
    b.assign(acc, zero);
    for (row, win) in [w0, w1, w2].into_iter().enumerate() {
        for col in 0..3usize {
            let kv = b.load_param(k, (row * 3 + col) as i64);
            let wv = b.load(win, col as i64);
            let m = b.mul(kv, wv);
            let av = b.read_var(acc);
            let s = b.add(av, m);
            b.assign(acc, s);
        }
    }
    let r = b.read_var(acc);
    b.set_output(y, r);
    b.finish()
}

/// The paper's CONV benchmark: Gaussian 3x3, fully unrolled.
pub fn conv3x3() -> Kernel {
    conv_kernel("conv3x3", gaussian3x3())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::interp::{Executor, FloatSem};

    #[test]
    fn one_straight_line_block() {
        let k = conv3x3();
        let blocks = collect_blocks(&k);
        assert_eq!(blocks.len(), 1, "fully unrolled kernel is one basic block");
        assert!(!blocks[0].in_loop());
    }

    #[test]
    fn smoothing_of_constant_image_is_identity() {
        let k = conv3x3();
        let mut ex = Executor::new(&k, FloatSem);
        let rows = vec![vec![0.5; 16], vec![0.5; 16], vec![0.5; 16]];
        let out = ex.run(&rows);
        // After the 3-pixel window fills, the output equals the input
        // level (mask sums to 1).
        for &v in &out[0][2..] {
            assert!((v - 0.5).abs() < 1e-12, "got {v}");
        }
    }

    #[test]
    fn center_weight_dominates() {
        let k = conv3x3();
        let mut ex = Executor::new(&k, FloatSem);
        // Single bright pixel in the middle row.
        let mut r1 = vec![0.0; 8];
        r1[3] = 1.0;
        let rows = vec![vec![0.0; 8], r1, vec![0.0; 8]];
        let out = ex.run(&rows);
        // When the pixel sits in the window center (one activation after
        // insertion), the response is 4/16.
        let max = out[0].iter().cloned().fold(f64::MIN, f64::max);
        assert!((max - 0.25).abs() < 1e-12, "center response {max}");
    }

    #[test]
    fn nine_muls_eight_adds() {
        let k = conv3x3();
        let mut muls = 0;
        let mut adds = 0;
        for (_, n) in k.exprs() {
            match n {
                slpwlo_ir::ExprNode::Bin(slpwlo_ir::BinOp::Mul, ..) => muls += 1,
                slpwlo_ir::ExprNode::Bin(slpwlo_ir::BinOp::Add, ..) => adds += 1,
                _ => {}
            }
        }
        assert_eq!(muls, 9);
        assert_eq!(
            adds, 9,
            "nine accumulator adds (one per MAC, first adds to zero)"
        );
    }
}
