//! IIR filter kernels.
//!
//! The paper's IIR benchmark is a 10th-order filter. We synthesise a
//! stable order-10 transfer function from five conjugate pole pairs with
//! well separated radii/angles (direct forms of clustered high-order
//! poles are hopelessly sensitive to coefficient quantization, which
//! would drown the experiments in instability artefacts), expand it into
//! direct-form-I coefficients, and implement
//!
//! ```text
//! y[n] = sum_{k=0..=10} b_k x[n-k]  -  sum_{k=1..=10} a_k y[n-k]
//! ```
//!
//! with both tap loops partially unrolled by 4 (paper setup; 11 and 10
//! taps leave remainders of 3 and 2, exercising the remainder-block path
//! of the unroller).

use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::types::IndexExpr;
use slpwlo_ir::unroll::unroll;
use slpwlo_ir::Kernel;

/// Multiplies polynomial `p` by `(1 + c1 z^-1 + c2 z^-2)`.
fn poly_mul2(p: &[f64], c1: f64, c2: f64) -> Vec<f64> {
    let mut out = vec![0.0; p.len() + 2];
    for (i, &v) in p.iter().enumerate() {
        out[i] += v;
        out[i + 1] += v * c1;
        out[i + 2] += v * c2;
    }
    out
}

/// Direct-form coefficients `(b, a)` of the order-10 benchmark filter.
///
/// `a` has 11 entries with `a[0] = 1`; `b` has 11 entries scaled for a DC
/// gain of 0.9 (keeps the output inside the input range with headroom).
pub fn iir10_coeffs() -> (Vec<f64>, Vec<f64>) {
    // Five conjugate pole pairs: (1 - 2 r cosθ z^-1 + r² z^-2).
    let poles: [(f64, f64); 5] = [
        (0.45, 0.35),
        (0.55, 0.75),
        (0.65, 1.15),
        (0.72, 1.55),
        (0.80, 1.95),
    ];
    let mut a = vec![1.0];
    for &(r, th) in &poles {
        a = poly_mul2(&a, -2.0 * r * th.cos(), r * r);
    }
    // Numerator: all zeros at z = -1 (low-pass), scaled for DC gain 0.9.
    let mut b = vec![1.0];
    for _ in 0..5 {
        b = poly_mul2(&b, 2.0, 1.0);
    }
    let a_dc: f64 = a.iter().sum();
    let b_dc: f64 = b.iter().sum();
    let scale = 0.9 * a_dc / b_dc;
    for v in &mut b {
        *v *= scale;
    }
    (b, a)
}

/// Builds a direct-form-I IIR kernel from `(b, a)` coefficients with the
/// tap loops partially unrolled by `unroll_factor`.
///
/// # Panics
///
/// Panics if `a` is empty, `a[0] != 1`, or `b` is empty.
pub fn iir_kernel(
    name: &str,
    b_coeffs: Vec<f64>,
    a_coeffs: Vec<f64>,
    unroll_factor: u32,
) -> Kernel {
    assert!(!b_coeffs.is_empty() && !a_coeffs.is_empty());
    assert!((a_coeffs[0] - 1.0).abs() < 1e-12, "a[0] must be 1");
    let nb = b_coeffs.len();
    let na = a_coeffs.len() - 1; // feedback taps
    let mut bd = KernelBuilder::new(name);
    let x = bd.input("x", -1.0, 1.0);
    let y = bd.output("y");
    let bp = bd.param("b", b_coeffs);
    // Feedback table holds a[1..] (a[0] is the implicit unit gain).
    let ap = bd.param("a", a_coeffs[1..].to_vec());
    let xline = bd.array("xline", nb);
    let yline = bd.array("yline", na.max(1));
    let acc = bd.var("acc");
    let xv = bd.read_input(x);
    bd.shift_in(xline, xv);
    let zero = bd.constf(0.0);
    bd.assign(acc, zero);
    // Feed-forward taps.
    let i = bd.begin_for(nb as u32);
    let bv = bd.load_param_ix(bp, IndexExpr::affine(i, 1, 0));
    let xl = bd.load_ix(xline, IndexExpr::affine(i, 1, 0));
    let m = bd.mul(bv, xl);
    let av = bd.read_var(acc);
    let s = bd.add(av, m);
    bd.assign(acc, s);
    bd.end_for(i);
    // Feedback taps.
    let j = bd.begin_for(na as u32);
    let avv = bd.load_param_ix(ap, IndexExpr::affine(j, 1, 0));
    let yl = bd.load_ix(yline, IndexExpr::affine(j, 1, 0));
    let m2 = bd.mul(avv, yl);
    let av2 = bd.read_var(acc);
    let s2 = bd.sub(av2, m2);
    bd.assign(acc, s2);
    bd.end_for(j);
    let r = bd.read_var(acc);
    bd.shift_in(yline, r);
    let r2 = bd.read_var(acc);
    bd.set_output(y, r2);
    let mut kernel = bd.finish();
    if unroll_factor > 1 {
        unroll(&mut kernel, i, unroll_factor).expect("ff loop exists");
        unroll(&mut kernel, j, unroll_factor).expect("fb loop exists");
    }
    kernel
}

/// The paper's IIR benchmark: order 10, direct form I, loops unrolled
/// by 4.
pub fn iir10() -> Kernel {
    let (b, a) = iir10_coeffs();
    iir_kernel("iir10", b, a, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::interp::{Executor, FloatSem};

    #[test]
    fn filter_is_stable() {
        let k = iir10();
        let mut ex = Executor::new(&k, FloatSem);
        let mut input = vec![0.0; 4096];
        input[0] = 1.0;
        let out = ex.run(&[input]);
        // Impulse response must decay.
        let head: f64 = out[0][..64].iter().map(|v| v * v).sum();
        let tail: f64 = out[0][3500..].iter().map(|v| v * v).sum();
        assert!(head > 0.0);
        assert!(tail < head * 1e-9, "tail energy {tail} vs head {head}");
    }

    #[test]
    fn dc_gain_near_expected() {
        let k = iir10();
        let mut ex = Executor::new(&k, FloatSem);
        let out = ex.run(&[vec![1.0; 4096]]);
        let settled = out[0][4095];
        assert!((settled - 0.9).abs() < 1e-6, "DC gain {settled}");
    }

    #[test]
    fn unrolled_structure_has_remainders() {
        let k = iir10();
        let blocks = collect_blocks(&k);
        // head; ff loop (2 trips of 4) ; ff remainder (3 taps); fb loop
        // (2 trips of 4); fb remainder (2 taps); tail — remainders merge
        // with following straight-line code, so expect >= 5 blocks.
        assert!(blocks.len() >= 5, "got {} blocks", blocks.len());
        let loop_blocks: Vec<_> = blocks.iter().filter(|b| b.in_loop()).collect();
        assert_eq!(loop_blocks.len(), 2);
        assert_eq!(loop_blocks[0].trip(), 2);
        assert_eq!(loop_blocks[1].trip(), 2);
    }

    #[test]
    fn output_stays_bounded_for_noise_input() {
        let k = iir10();
        let mut ex = Executor::new(&k, FloatSem);
        let xs: Vec<f64> = (0..2048)
            .map(|i| ((i * 2654435761u64 as usize) % 2001) as f64 / 1000.0 - 1.0)
            .collect();
        let out = ex.run(&[xs]);
        for &v in &out[0] {
            assert!(v.abs() < 8.0, "stable filter output exploded: {v}");
        }
    }

    #[test]
    fn coefficients_have_eleven_entries() {
        let (b, a) = iir10_coeffs();
        assert_eq!(b.len(), 11);
        assert_eq!(a.len(), 11);
        assert!((a[0] - 1.0).abs() < 1e-12);
    }
}
