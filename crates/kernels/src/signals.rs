//! Workload generation: input streams pre-normalized to `[-1, 1]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated workload: one stream per kernel input.
#[derive(Debug, Clone)]
pub struct Workload {
    /// `inputs[i][n]` = value of input `i` at activation `n`.
    pub inputs: Vec<Vec<f64>>,
}

impl Workload {
    /// Number of activations.
    pub fn activations(&self) -> usize {
        self.inputs.first().map_or(0, |v| v.len())
    }

    /// Uniform white noise in `[-1, 1]` for `streams` inputs.
    pub fn white(streams: usize, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs = (0..streams)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        Workload { inputs }
    }

    /// A normalized mix of sinusoids (deterministic, spectrally rich) —
    /// a typical telecom-ish test vector.
    pub fn sine_mix(streams: usize, n: usize) -> Self {
        let freqs = [0.013, 0.037, 0.11, 0.23];
        let inputs = (0..streams)
            .map(|s| {
                (0..n)
                    .map(|i| {
                        let t = i as f64 + 7.0 * s as f64;
                        let v: f64 = freqs
                            .iter()
                            .enumerate()
                            .map(|(k, f)| ((2.0 * std::f64::consts::PI * f * t) + k as f64).sin())
                            .sum();
                        v / freqs.len() as f64
                    })
                    .collect()
            })
            .collect();
        Workload { inputs }
    }

    /// A synthetic "image" rendered as three row streams for the
    /// streaming 3x3 convolution: smooth gradients plus seeded texture,
    /// pre-normalized to `[-1, 1]`.
    pub fn image_rows(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pixel = |x: usize, y: usize| -> f64 {
            let gx = x as f64 / width.max(1) as f64;
            let gy = y as f64 / height.max(1) as f64;
            let texture: f64 = rng.gen_range(-0.25..0.25);
            (2.0 * gx - 1.0) * 0.4 + (2.0 * gy - 1.0) * 0.3 + texture
        };
        let n = width * height;
        let mut rows: Vec<Vec<f64>> = (0..3).map(|_| Vec::with_capacity(n)).collect();
        for y in 0..height {
            for x in 0..width {
                // Row streams: the line above, the line itself, the line
                // below (clamped at borders).
                let ym = y.saturating_sub(1);
                let yp = (y + 1).min(height - 1);
                rows[0].push(pixel(x, ym).clamp(-1.0, 1.0));
                rows[1].push(pixel(x, y).clamp(-1.0, 1.0));
                rows[2].push(pixel(x, yp).clamp(-1.0, 1.0));
            }
        }
        Workload { inputs: rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_noise_in_range_and_deterministic() {
        let a = Workload::white(1, 1000, 42);
        let b = Workload::white(1, 1000, 42);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.activations(), 1000);
        for &v in &a.inputs[0] {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn sine_mix_is_normalized() {
        let w = Workload::sine_mix(2, 500);
        assert_eq!(w.inputs.len(), 2);
        for s in &w.inputs {
            for &v in s {
                assert!(v.abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn image_rows_shape() {
        let w = Workload::image_rows(16, 8, 7);
        assert_eq!(w.inputs.len(), 3);
        assert_eq!(w.activations(), 16 * 8);
        for s in &w.inputs {
            for &v in s {
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }
}
