//! Streaming dot-product (matched filter) kernels.
//!
//! One activation pushes the new sample into a window of the last `n`
//! samples and emits the dot product of that window with a constant
//! template — the correlation/matched-filter workhorse of DSP front
//! ends. Structurally this is the longest reduction in the suite
//! (256 MACs per activation at the standard size), exercising deep
//! accumulation chains and large parameter tables.

use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::types::IndexExpr;
use slpwlo_ir::unroll::unroll;
use slpwlo_ir::Kernel;

/// A deterministic, spectrally rich matched-filter template of `n`
/// taps: a windowed linear chirp, L1-normalized so outputs of inputs in
/// `[-1, 1]` stay in `[-1, 1]`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn chirp_template(n: usize) -> Vec<f64> {
    assert!(n > 0, "template needs at least one tap");
    let mut t: Vec<f64> = (0..n)
        .map(|i| {
            let u = i as f64 / n as f64;
            // Quadratic phase (chirp) under a Hann window.
            let phase = std::f64::consts::PI * (0.1 * i as f64 + 0.35 * u * i as f64);
            let w = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * u).cos();
            w * phase.sin()
        })
        .collect();
    let l1: f64 = t.iter().map(|v| v.abs()).sum();
    for v in &mut t {
        *v /= l1;
    }
    t
}

/// Builds the streaming dot-product kernel for an arbitrary template,
/// with the reduction loop partially unrolled by `unroll_factor`
/// (`<= 1` = no unrolling).
///
/// # Panics
///
/// Panics if `template` is empty.
pub fn dot_kernel(name: &str, template: Vec<f64>, unroll_factor: u32) -> Kernel {
    assert!(!template.is_empty(), "dot product needs at least one tap");
    let n = template.len();
    let mut b = KernelBuilder::new(name);
    let x = b.input("x", -1.0, 1.0);
    let y = b.output("y");
    let t = b.param("t", template);
    let win = b.array("win", n);
    let acc = b.var("acc");
    let xv = b.read_input(x);
    b.shift_in(win, xv);
    let zero = b.constf(0.0);
    b.assign(acc, zero);
    let i = b.begin_for(n as u32);
    let tv = b.load_param_ix(t, IndexExpr::affine(i, 1, 0));
    let wv = b.load_ix(win, IndexExpr::affine(i, 1, 0));
    let m = b.mul(tv, wv);
    let av = b.read_var(acc);
    let s = b.add(av, m);
    b.assign(acc, s);
    b.end_for(i);
    let r = b.read_var(acc);
    b.set_output(y, r);
    let mut kernel = b.finish();
    if unroll_factor > 1 {
        unroll(&mut kernel, i, unroll_factor).expect("reduction loop exists");
    }
    kernel
}

/// The benchmark: 256-tap streaming dot product, unrolled by 8.
pub fn dot_product256() -> Kernel {
    dot_kernel("dot256", chirp_template(256), 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::interp::{Executor, FloatSem};

    #[test]
    fn template_is_l1_normalized() {
        let t = chirp_template(256);
        let l1: f64 = t.iter().map(|v| v.abs()).sum();
        assert!((l1 - 1.0).abs() < 1e-12);
        assert_eq!(t.len(), 256);
    }

    #[test]
    fn structure() {
        let k = dot_product256();
        assert_eq!(k.params()[0].values.len(), 256);
        let blocks = collect_blocks(&k);
        let body = blocks.iter().find(|b| b.in_loop()).unwrap();
        assert_eq!(body.trip(), 32, "256 taps unrolled by 8");
        assert_eq!(body.stmts.len(), 8);
    }

    #[test]
    fn matched_template_peaks() {
        // Feeding the time-reversed template makes the correlation peak
        // at exactly the L1-normalized self-similarity once aligned.
        let t = chirp_template(64);
        let k = dot_kernel("d", t.clone(), 4);
        let mut ex = Executor::new(&k, FloatSem);
        let mut input: Vec<f64> = t.iter().rev().map(|&v| v * 64.0).collect();
        // Clamp to the declared [-1, 1] range.
        for v in &mut input {
            *v = v.clamp(-1.0, 1.0);
        }
        input.extend(std::iter::repeat_n(0.0, 16));
        let out = ex.run(&[input]);
        let peak = out[0].iter().cloned().fold(f64::MIN, f64::max);
        assert!(peak > 0.05, "aligned correlation must peak, got {peak}");
    }

    #[test]
    fn bounded_output_for_bounded_input() {
        let k = dot_product256();
        let mut ex = Executor::new(&k, FloatSem);
        let xs: Vec<f64> = (0..512)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let out = ex.run(&[xs]);
        for &v in &out[0] {
            assert!(v.abs() <= 1.0 + 1e-12, "L1-normalized dot stays in [-1,1]");
        }
    }
}
