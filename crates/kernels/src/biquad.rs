//! Cascaded biquad (second-order-section) IIR kernels.
//!
//! The production way to run high-order IIR filters: a cascade of
//! direct-form-I second-order sections, each with its own feed-forward
//! and feedback state. Numerically far better conditioned than the
//! expanded direct form (`iir10`), and structurally different for the
//! optimizer: four small feedback loops chained through intermediate
//! variables instead of one long pair of tap loops, fully unrolled.

use slpwlo_ir::builder::KernelBuilder;
use slpwlo_ir::Kernel;

/// One second-order section `y = b0 x + b1 x⁻¹ + b2 x⁻² - a1 y⁻¹ - a2 y⁻²`.
#[derive(Debug, Clone, Copy)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b: [f64; 3],
    /// Feedback coefficients (`a0` is the implicit unit gain).
    pub a: [f64; 2],
}

impl Biquad {
    /// A low-pass section from a conjugate pole pair at radius `r`,
    /// angle `theta`, zeros at `z = -1`, scaled for DC gain `gain`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < r < 1` (stability).
    pub fn lowpass(r: f64, theta: f64, gain: f64) -> Self {
        assert!(
            r > 0.0 && r < 1.0,
            "pole radius must be inside the unit circle"
        );
        let a1 = -2.0 * r * theta.cos();
        let a2 = r * r;
        // DC gain of b(z)/a(z) at z = 1: (b0+b1+b2)/(1+a1+a2).
        let g = gain * (1.0 + a1 + a2) / 4.0;
        Biquad {
            b: [g, 2.0 * g, g],
            a: [a1, a2],
        }
    }
}

/// The benchmark's four sections: well-separated resonances, per-section
/// DC gain 0.95 (cascade ≈ 0.81).
pub fn cascade4_sections() -> Vec<Biquad> {
    [(0.50, 0.40), (0.62, 0.90), (0.72, 1.40), (0.82, 1.90)]
        .iter()
        .map(|&(r, th)| Biquad::lowpass(r, th, 0.95))
        .collect()
}

/// Builds a cascade of biquad sections, fully unrolled (each section is
/// five MACs of straight-line code chained through a variable).
///
/// # Panics
///
/// Panics if `sections` is empty.
pub fn biquad_cascade_kernel(name: &str, sections: &[Biquad]) -> Kernel {
    assert!(!sections.is_empty(), "cascade needs at least one section");
    let mut bd = KernelBuilder::new(name);
    let x = bd.input("x", -1.0, 1.0);
    let y = bd.output("y");
    let mut stage_in = None; // var holding the current section's input
    for (k, s) in sections.iter().enumerate() {
        let bp = bd.param(format!("b{k}"), s.b.to_vec());
        let ap = bd.param(format!("a{k}"), s.a.to_vec());
        let xline = bd.array(format!("x{k}line"), 2);
        let yline = bd.array(format!("y{k}line"), 2);
        let vin = bd.var(format!("s{k}in"));
        let vout = bd.var(format!("s{k}out"));
        // Latch the section input (the kernel input for section 0, the
        // previous section's output after).
        let in_expr = match stage_in {
            None => bd.read_input(x),
            Some(prev) => bd.read_var(prev),
        };
        bd.assign(vin, in_expr);
        // t = b0*in + b1*x[n-1] + b2*x[n-2] - a1*y[n-1] - a2*y[n-2]
        let b0 = bd.load_param(bp, 0);
        let iv = bd.read_var(vin);
        let mut t = bd.mul(b0, iv);
        for d in 0..2usize {
            let bc = bd.load_param(bp, (d + 1) as i64);
            let xd = bd.load(xline, d as i64);
            let m = bd.mul(bc, xd);
            t = bd.add(t, m);
        }
        for d in 0..2usize {
            let ac = bd.load_param(ap, d as i64);
            let yd = bd.load(yline, d as i64);
            let m = bd.mul(ac, yd);
            t = bd.sub(t, m);
        }
        bd.assign(vout, t);
        // Advance the section's delay lines.
        let iv2 = bd.read_var(vin);
        bd.shift_in(xline, iv2);
        let ov = bd.read_var(vout);
        bd.shift_in(yline, ov);
        stage_in = Some(vout);
    }
    let last = stage_in.expect("at least one section");
    let r = bd.read_var(last);
    bd.set_output(y, r);
    bd.finish()
}

/// The benchmark: four cascaded low-pass biquads, fully unrolled.
pub fn biquad_cascade4() -> Kernel {
    biquad_cascade_kernel("biquad4", &cascade4_sections())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::interp::{Executor, FloatSem};

    #[test]
    fn cascade_is_stable() {
        let k = biquad_cascade4();
        let mut ex = Executor::new(&k, FloatSem);
        let mut input = vec![0.0; 4096];
        input[0] = 1.0;
        let out = ex.run(&[input]);
        let head: f64 = out[0][..64].iter().map(|v| v * v).sum();
        let tail: f64 = out[0][3500..].iter().map(|v| v * v).sum();
        assert!(head > 0.0);
        assert!(tail < head * 1e-9, "impulse response must decay");
    }

    #[test]
    fn dc_gain_is_the_section_product() {
        let k = biquad_cascade4();
        let mut ex = Executor::new(&k, FloatSem);
        let out = ex.run(&[vec![1.0; 4096]]);
        let settled = out[0][4095];
        let expect = 0.95f64.powi(4);
        assert!(
            (settled - expect).abs() < 1e-6,
            "DC gain {settled} vs {expect}"
        );
    }

    #[test]
    fn structure_is_straight_line() {
        let k = biquad_cascade4();
        let blocks = slpwlo_ir::blocks::collect_blocks(&k);
        assert_eq!(blocks.len(), 1, "fully unrolled cascade is one block");
        assert_eq!(k.params().len(), 8, "b and a tables per section");
        assert_eq!(k.arrays().len(), 8, "x and y lines per section");
    }

    #[test]
    fn bounded_for_noise_input() {
        let k = biquad_cascade4();
        let mut ex = Executor::new(&k, FloatSem);
        let xs: Vec<f64> = (0..2048)
            .map(|i| ((i * 2654435761u64 as usize) % 2001) as f64 / 1000.0 - 1.0)
            .collect();
        let out = ex.run(&[xs]);
        for &v in &out[0] {
            assert!(v.abs() < 8.0, "stable cascade exploded: {v}");
        }
    }
}
