//! Experiment execution.

use slpwlo_core::{lower_float, prepare, wlo_first_flow, wlo_slp_flow, Prepared, TabuOptions};
use slpwlo_kernels::Benchmark;
use slpwlo_sim::{speedup, total_cycles};
use slpwlo_targets::TargetModel;

// Re-export the flow entry points under the harness namespace for the
// binaries.
pub use slpwlo_core::flow::{wlo_first_flow as first_flow, wlo_slp_flow as slp_flow};

/// Options for one experiment point.
#[derive(Debug, Clone, Copy)]
pub struct PointOptions {
    /// Tabu options for the baseline WLO.
    pub tabu: TabuOptions,
}

impl Default for PointOptions {
    fn default() -> Self {
        PointOptions { tabu: TabuOptions::default() }
    }
}

/// One (benchmark, target, constraint) measurement.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Benchmark name ("FIR", "IIR", "CONV").
    pub bench: String,
    /// Target name ("XENTIUM", "ST240", "VEX-4", "VEX-1").
    pub target: String,
    /// Accuracy constraint in dB.
    pub constraint_db: f64,
    /// Workload activations.
    pub activations: u64,
    /// Cycles of the scalar fixed-point `WLO-First` code — the paper's
    /// baseline denominator.
    pub cycles_baseline: u64,
    /// Cycles of the `WLO-First` SIMD code.
    pub cycles_first: u64,
    /// Cycles of the `WLO-SLP` SIMD code.
    pub cycles_slp: u64,
    /// Cycles of the original floating-point code.
    pub cycles_float: u64,
    /// SIMD groups selected by each flow.
    pub groups_first: usize,
    /// SIMD groups selected by the joint flow.
    pub groups_slp: usize,
    /// Final predicted noise of each flow (dB).
    pub noise_first_db: f64,
    /// Final predicted noise of the joint flow (dB).
    pub noise_slp_db: f64,
}

impl ExperimentPoint {
    /// Speedup of the `WLO-First` SIMD code over the baseline.
    pub fn speedup_first(&self) -> f64 {
        speedup(self.cycles_baseline, self.cycles_first)
    }

    /// Speedup of the `WLO-SLP` SIMD code over the baseline.
    pub fn speedup_slp(&self) -> f64 {
        speedup(self.cycles_baseline, self.cycles_slp)
    }

    /// Speedup of the `WLO-SLP` SIMD code over the floating-point code
    /// (figure 6).
    pub fn speedup_vs_float(&self) -> f64 {
        speedup(self.cycles_float, self.cycles_slp)
    }
}

/// Runs both flows plus the float reference for one point.
pub fn run_point(
    prep: &Prepared,
    bench_name: &str,
    target: &TargetModel,
    constraint_db: f64,
    activations: u64,
    opts: &PointOptions,
) -> ExperimentPoint {
    let first = wlo_first_flow(prep, target, constraint_db, &opts.tabu);
    let slp = wlo_slp_flow(prep, target, constraint_db);
    let float_prog = lower_float(&prep.kernel);
    ExperimentPoint {
        bench: bench_name.to_string(),
        target: target.name.clone(),
        constraint_db,
        activations,
        cycles_baseline: total_cycles(target, &first.scalar, activations),
        cycles_first: total_cycles(target, &first.simd, activations),
        cycles_slp: total_cycles(target, &slp.simd, activations),
        cycles_float: total_cycles(target, &float_prog, activations),
        groups_first: first.group_count,
        groups_slp: slp.group_count,
        noise_first_db: first.noise_db,
        noise_slp_db: slp.noise_db,
    }
}

/// Sweeps one benchmark over targets and constraints.
pub fn sweep(
    bench: &Benchmark,
    targets: &[TargetModel],
    constraints_db: &[f64],
    opts: &PointOptions,
) -> Vec<ExperimentPoint> {
    let prep = prepare(bench.kernel.clone());
    let mut out = Vec::new();
    for target in targets {
        for &db in constraints_db {
            out.push(run_point(&prep, bench.name, target, db, bench.activations, opts));
        }
    }
    out
}

/// Re-exported preparation helper (range analysis + accuracy model).
pub fn prepare_kernel(kernel: slpwlo_ir::Kernel) -> Prepared {
    prepare(kernel)
}
