//! Experiment execution over the unified `Optimizer` driver.
//!
//! One [`ExperimentPoint`] corresponds to one (benchmark, target,
//! accuracy-constraint) cell of the paper's figures. All three flows run
//! through [`slpwlo_driver::Optimizer`]; the per-kernel analyses are
//! amortized across every constraint point of a sweep.

use slpwlo_core::TabuOptions;
use slpwlo_driver::{Error, FlowKind, Optimizer};
use slpwlo_kernels::Benchmark;
use slpwlo_sim::speedup;
use slpwlo_targets::TargetModel;

/// Options for one experiment point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointOptions {
    /// Tabu options for the baseline WLO.
    pub tabu: TabuOptions,
}

/// One (benchmark, target, constraint) measurement.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Benchmark name ("FIR", "IIR", "CONV").
    pub bench: String,
    /// Target name ("XENTIUM", "ST240", "VEX-4", "VEX-1").
    pub target: String,
    /// Accuracy constraint in dB.
    pub constraint_db: f64,
    /// Workload activations.
    pub activations: u64,
    /// Cycles of the scalar fixed-point `WLO-First` code — the paper's
    /// baseline denominator.
    pub cycles_baseline: u64,
    /// Cycles of the `WLO-First` SIMD code.
    pub cycles_first: u64,
    /// Cycles of the `WLO-SLP` SIMD code.
    pub cycles_slp: u64,
    /// Cycles of the original floating-point code.
    pub cycles_float: u64,
    /// SIMD groups selected by each flow.
    pub groups_first: usize,
    /// SIMD groups selected by the joint flow.
    pub groups_slp: usize,
    /// Final predicted noise of each flow (dB).
    pub noise_first_db: f64,
    /// Final predicted noise of the joint flow (dB).
    pub noise_slp_db: f64,
}

impl ExperimentPoint {
    /// Speedup of the `WLO-First` SIMD code over the baseline.
    pub fn speedup_first(&self) -> f64 {
        speedup(self.cycles_baseline, self.cycles_first)
    }

    /// Speedup of the `WLO-SLP` SIMD code over the baseline.
    pub fn speedup_slp(&self) -> f64 {
        speedup(self.cycles_baseline, self.cycles_slp)
    }

    /// Speedup of the `WLO-SLP` SIMD code over the floating-point code
    /// (figure 6).
    pub fn speedup_vs_float(&self) -> f64 {
        speedup(self.cycles_float, self.cycles_slp)
    }
}

/// Builds the driver for one benchmark (kernel validation + the
/// once-per-kernel analyses).
pub fn optimizer_for(bench: &Benchmark, opts: &PointOptions) -> Result<Optimizer, Error> {
    Ok(Optimizer::for_kernel(bench.kernel.clone())?
        .activations(bench.activations)
        .tabu(opts.tabu))
}

/// Builds one grid cell from the three flow reports of a point.
fn point_from(
    bench: &Benchmark,
    target: &TargetModel,
    first: &slpwlo_driver::Report,
    slp: &slpwlo_driver::Report,
    float: &slpwlo_driver::Report,
) -> ExperimentPoint {
    ExperimentPoint {
        bench: bench.name.to_string(),
        target: target.name.clone(),
        constraint_db: first
            .constraint_db
            .expect("fixed-point flows carry the constraint"),
        activations: bench.activations,
        cycles_baseline: first.cycles_scalar,
        cycles_first: first.cycles_simd,
        cycles_slp: slp.cycles_simd,
        cycles_float: float.cycles_simd,
        groups_first: first.group_count,
        groups_slp: slp.group_count,
        noise_first_db: first.noise_db.expect("fixed-point flow predicts noise"),
        noise_slp_db: slp.noise_db.expect("fixed-point flow predicts noise"),
    }
}

/// Runs both fixed-point flows plus the float reference for one point.
///
/// Unlike [`sweep`], an infeasible constraint propagates as the driver's
/// typed [`Error::Unsatisfiable`] (with the floor it missed) rather than
/// being skipped.
pub fn run_point(
    bench: &Benchmark,
    target: &TargetModel,
    constraint_db: f64,
    opts: &PointOptions,
) -> Result<ExperimentPoint, Error> {
    let opt = optimizer_for(bench, opts)?
        .target(target.clone())
        .constraint_db(constraint_db);
    let first = opt.run_with(FlowKind::WloFirst)?;
    let slp = opt.run_with(FlowKind::WloSlp)?;
    let float = opt.run_with(FlowKind::Float)?;
    Ok(point_from(bench, target, &first, &slp, &float))
}

/// Sweeps one benchmark over targets and constraints, reusing the
/// per-kernel analyses for every cell.
///
/// Constraint points below a target's noise floor (reachable when a
/// grid deliberately extends past the precision transition, as the
/// paper's Fig. 4 axis does) are skipped with a note on stderr rather
/// than failing the whole grid; all other errors propagate.
pub fn sweep(
    bench: &Benchmark,
    targets: &[TargetModel],
    constraints_db: &[f64],
    opts: &PointOptions,
) -> Result<Vec<ExperimentPoint>, Error> {
    let mut opt = optimizer_for(bench, opts)?;
    let mut out = Vec::new();
    for target in targets {
        opt = opt.target(target.clone());
        let floor = opt.noise_floor_db();
        let feasible: Vec<f64> = constraints_db
            .iter()
            .copied()
            .filter(|&db| db >= floor)
            .collect();
        if feasible.len() < constraints_db.len() {
            eprintln!(
                "harness: {} on {}: skipping {} constraint point(s) below the {:.1} dB floor",
                bench.name,
                target.name,
                constraints_db.len() - feasible.len(),
                floor,
            );
        }
        opt = opt.flow(FlowKind::Float);
        let float = opt.run()?;
        opt = opt.flow(FlowKind::WloFirst);
        let firsts = opt.sweep(&feasible)?;
        opt = opt.flow(FlowKind::WloSlp);
        let slps = opt.sweep(&feasible)?;
        for (first, slp) in firsts.iter().zip(&slps) {
            out.push(point_from(bench, target, first, slp, &float));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_kernels::paper_benchmarks;
    use slpwlo_targets::xentium;

    #[test]
    fn run_point_fills_every_field() {
        let bench = &paper_benchmarks()[0];
        let p = run_point(bench, &xentium(), -30.0, &PointOptions::default()).unwrap();
        assert_eq!(p.bench, "FIR");
        assert_eq!(p.target, "XENTIUM");
        assert!(p.cycles_baseline > 0 && p.cycles_first > 0 && p.cycles_slp > 0);
        assert!(p.cycles_float > p.cycles_slp, "soft float must be slower");
        assert!(p.noise_slp_db <= -30.0);
        assert!(p.speedup_slp() > 0.0);
    }

    #[test]
    fn run_point_surfaces_unsatisfiable_points() {
        let bench = &paper_benchmarks()[0];
        let err = run_point(bench, &xentium(), -500.0, &PointOptions::default()).unwrap_err();
        assert!(matches!(err, Error::Unsatisfiable { .. }), "{err}");
    }

    #[test]
    fn sweep_skips_infeasible_points_instead_of_failing() {
        let bench = &paper_benchmarks()[0];
        // -500 dB is below any floor; the grid must shrink, not error.
        let pts = sweep(
            bench,
            &[xentium()],
            &[-20.0, -500.0],
            &PointOptions::default(),
        )
        .unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].constraint_db, -20.0);
    }
}
