//! Experiment harness reproducing the paper's evaluation.
//!
//! One [`ExperimentPoint`] corresponds to one (benchmark, target,
//! accuracy-constraint) cell of the paper's figures: both flows run, the
//! resulting programs are cycle-simulated, and the speedups of equation
//! (2) are computed against the scalar fixed-point version of
//! `WLO-First` (the paper's baseline denominator).
//!
//! Binaries:
//!
//! * `fig4`   — speedup of both SIMD flows vs accuracy constraint, all
//!   benchmarks x all targets (figure 4);
//! * `table1` — FIR SIMD cycle counts on XENTIUM/ST240/VEX-4 (table I);
//! * `fig6`   — `WLO-SLP` speedup over the original floating-point code
//!   on XENTIUM and ST240 (figure 6);
//! * `ablation` — beyond-paper ablations (scaling optimization off,
//!   accuracy conflicts off).

pub mod harness;
pub mod micro;
pub mod report;

pub use harness::{optimizer_for, run_point, sweep, ExperimentPoint, PointOptions};
pub use micro::{BenchRecord, Micro, MicroOptions};
