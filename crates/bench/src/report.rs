//! Plain-text/CSV report emitters for the experiment binaries.

use crate::harness::ExperimentPoint;
use std::fmt::Write as _;

/// Figure-4 style table: one row per constraint, speedups of both flows,
/// grouped by (benchmark, target).
pub fn fig4_text(points: &[ExperimentPoint]) -> String {
    let mut s = String::new();
    let mut last_key = String::new();
    for p in points {
        let key = format!("{} on {}", p.bench, p.target);
        if key != last_key {
            let _ = writeln!(
                s,
                "\n== {key} (speedup over WLO-First scalar fixed-point) =="
            );
            let _ = writeln!(
                s,
                "{:>10} {:>12} {:>12} {:>8} {:>8}",
                "dB", "WLO-First", "WLO-SLP", "grp-F", "grp-S"
            );
            last_key = key;
        }
        let _ = writeln!(
            s,
            "{:>10.0} {:>12.3} {:>12.3} {:>8} {:>8}",
            p.constraint_db,
            p.speedup_first(),
            p.speedup_slp(),
            p.groups_first,
            p.groups_slp
        );
    }
    s
}

/// Table-I style rows: raw SIMD cycle counts per constraint.
pub fn table1_text(points: &[ExperimentPoint]) -> String {
    let mut s = String::new();
    let mut targets: Vec<String> = points.iter().map(|p| p.target.clone()).collect();
    targets.dedup();
    let constraints: Vec<f64> = {
        let mut c: Vec<f64> = points.iter().map(|p| p.constraint_db).collect();
        c.dedup();
        c.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        c.dedup();
        c
    };
    let _ = write!(s, "{:<10} {:<10}", "Target", "Flow");
    for c in &constraints {
        let _ = write!(s, "{c:>10.0}");
    }
    let _ = writeln!(s);
    for t in targets.iter() {
        for (flow, pick) in [("WLO-First", 0usize), ("WLO-SLP", 1usize)] {
            let _ = write!(s, "{t:<10} {flow:<10}");
            for c in &constraints {
                // Grids may be ragged: the harness skips points below a
                // target's noise floor, so a missing cell renders as "-".
                match points
                    .iter()
                    .find(|p| &p.target == t && p.constraint_db == *c)
                {
                    Some(p) => {
                        let v = if pick == 0 {
                            p.cycles_first
                        } else {
                            p.cycles_slp
                        };
                        let _ = write!(s, "{v:>10}");
                    }
                    None => {
                        let _ = write!(s, "{:>10}", "-");
                    }
                }
            }
            let _ = writeln!(s);
        }
    }
    s
}

/// Figure-6 style table: speedup of `WLO-SLP` SIMD over the original
/// floating-point version.
pub fn fig6_text(points: &[ExperimentPoint]) -> String {
    let mut s = String::new();
    let mut last_target = String::new();
    for p in points {
        if p.target != last_target {
            let _ = writeln!(
                s,
                "\n== {} (WLO-SLP speedup over floating point) ==",
                p.target
            );
            let _ = writeln!(s, "{:>6} {:>8} {:>10}", "dB", "bench", "speedup");
            last_target = p.target.clone();
        }
        let _ = writeln!(
            s,
            "{:>6.0} {:>8} {:>10.2}",
            p.constraint_db,
            p.bench,
            p.speedup_vs_float()
        );
    }
    s
}

/// CSV dump of all fields, for plotting.
pub fn csv(points: &[ExperimentPoint]) -> String {
    let mut s = String::from(
        "bench,target,constraint_db,activations,cycles_baseline,cycles_first,cycles_slp,\
         cycles_float,speedup_first,speedup_slp,speedup_vs_float,groups_first,groups_slp,\
         noise_first_db,noise_slp_db\n",
    );
    for p in points {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{},{},{:.2},{:.2}",
            p.bench,
            p.target,
            p.constraint_db,
            p.activations,
            p.cycles_baseline,
            p.cycles_first,
            p.cycles_slp,
            p.cycles_float,
            p.speedup_first(),
            p.speedup_slp(),
            p.speedup_vs_float(),
            p.groups_first,
            p.groups_slp,
            p.noise_first_db,
            p.noise_slp_db
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::ExperimentPoint;

    fn point(target: &str, db: f64, base: u64, first: u64, slp: u64) -> ExperimentPoint {
        ExperimentPoint {
            bench: "FIR".into(),
            target: target.into(),
            constraint_db: db,
            activations: 100,
            cycles_baseline: base,
            cycles_first: first,
            cycles_slp: slp,
            cycles_float: base * 20,
            groups_first: 1,
            groups_slp: 3,
            noise_first_db: -40.0,
            noise_slp_db: -50.0,
        }
    }

    #[test]
    fn fig4_groups_by_bench_and_target() {
        let pts = vec![
            point("XENTIUM", -5.0, 100, 90, 70),
            point("ST240", -5.0, 100, 110, 80),
        ];
        let t = fig4_text(&pts);
        assert!(t.contains("FIR on XENTIUM"));
        assert!(t.contains("FIR on ST240"));
        // speedups: 100/90 = 1.111, 100/70 = 1.429
        assert!(t.contains("1.111"));
        assert!(t.contains("1.429"));
    }

    #[test]
    fn table1_renders_ragged_grids_with_dashes() {
        // One target missing the -15 dB cell must render "-" there, not
        // panic.
        let pts = vec![
            point("XENTIUM", -5.0, 100, 90, 70),
            point("XENTIUM", -15.0, 100, 95, 75),
            point("VEX-4", -5.0, 100, 85, 65),
        ];
        let t = table1_text(&pts);
        assert!(t.contains('-'), "{t}");
        let vex_first = t.lines().find(|l| l.starts_with("VEX-4")).unwrap();
        assert!(vex_first.trim_end().ends_with('-'), "{vex_first}");
    }

    #[test]
    fn table1_emits_full_grid() {
        let pts = vec![
            point("XENTIUM", -5.0, 100, 90, 70),
            point("XENTIUM", -15.0, 100, 95, 75),
        ];
        let t = table1_text(&pts);
        assert!(t.contains("WLO-First"));
        assert!(t.contains("WLO-SLP"));
        assert!(t.contains("90") && t.contains("75"), "{t}");
    }

    #[test]
    fn fig6_uses_float_denominator() {
        let pts = vec![point("XENTIUM", -5.0, 100, 90, 80)];
        let t = fig6_text(&pts);
        // 2000 float cycles / 80 = 25.00
        assert!(t.contains("25.00"), "{t}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let pts = vec![point("XENTIUM", -5.0, 100, 90, 80)];
        let c = csv(&pts);
        let mut lines = c.lines();
        assert!(lines.next().unwrap().starts_with("bench,target"));
        let row = lines.next().unwrap();
        assert!(row.starts_with("FIR,XENTIUM,-5,100,100,90,80,2000,"));
        assert_eq!(c.lines().count(), 2);
    }

    #[test]
    fn speedup_accessors() {
        let p = point("X", -5.0, 100, 50, 25);
        assert_eq!(p.speedup_first(), 2.0);
        assert_eq!(p.speedup_slp(), 4.0);
        assert_eq!(p.speedup_vs_float(), 80.0);
    }
}
