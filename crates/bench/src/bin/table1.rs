//! Reproduces Table I: number of cycles of the SIMD versions for FIR on
//! XENTIUM, ST240 and VEX-4 at constraints -5..-65 dB.
//!
//! Usage: `cargo run --release -p slpwlo-bench --bin table1 [--csv]`

use slpwlo_bench::harness::{sweep, PointOptions};
use slpwlo_bench::report;
use slpwlo_driver::Error;
use slpwlo_kernels::paper_benchmarks;
use slpwlo_targets::{st240, vex, xentium};

fn main() -> Result<(), Error> {
    let csv = std::env::args().any(|a| a == "--csv");
    let constraints: Vec<f64> = vec![-5.0, -15.0, -25.0, -35.0, -45.0, -55.0, -65.0];
    // Our 16-bit noise floor sits deeper than the paper's (about -100 dB
    // for this FIR), so a second band shows the constrained regime where
    // grouping progressively disappears.
    let deep: Vec<f64> = vec![-85.0, -95.0, -100.0, -105.0, -110.0];
    let targets = vec![xentium(), st240(), vex(4)];
    let fir = paper_benchmarks().remove(0);
    assert_eq!(fir.name, "FIR");
    let pts = sweep(&fir, &targets, &constraints, &PointOptions::default())?;
    let deep_pts = sweep(&fir, &targets, &deep, &PointOptions::default())?;
    if csv {
        let mut all = pts;
        all.extend(deep_pts);
        print!("{}", report::csv(&all));
    } else {
        println!(
            "Table I: number of cycles of SIMD versions for FIR (N = {})",
            fir.activations
        );
        print!("{}", report::table1_text(&pts));
        println!("\nExtension: tight-constraint band (beyond the paper's axis)");
        print!("{}", report::table1_text(&deep_pts));
    }
    Ok(())
}
