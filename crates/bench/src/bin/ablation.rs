//! Ablation study (beyond the paper, motivated by its section III
//! discussion): what does each ingredient of the joint flow buy?
//!
//! * `no-scalopt` — the joint WLO/SLP without the fig. 1b scaling
//!   optimization: mismatched per-lane scalings must unpack/shift/repack;
//! * `no-acc-conflicts` — candidate validation only, without the
//!   pairwise accuracy-conflict detection (fig. 1c lines 16-22): the
//!   selection may paint itself into a corner and lose groups at the
//!   `on_select` guard.
//!
//! Usage: `cargo run --release -p slpwlo-bench --bin ablation`

use slpwlo_core::hooks::AccuracyHooks;
use slpwlo_core::{lower_fixed, lower_scalar, prepare, scaling_optimize, Prepared};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::blocks::blocks_by_priority;
use slpwlo_ir::dfg::Dfg;
use slpwlo_kernels::all_benchmarks;
use slpwlo_sim::total_cycles;
use slpwlo_slp::{run_selection, CandidateView, Round, SelectHooks, SimdGroup};
use slpwlo_targets::{xentium, TargetModel};

/// Accuracy hooks with the pairwise conflict detection disabled.
struct NoConflictHooks<'a>(AccuracyHooks<'a>);

impl SelectHooks for NoConflictHooks<'_> {
    fn validate(&mut self, view: &CandidateView) -> bool {
        self.0.validate(view)
    }
    fn accuracy_conflict(&mut self, _a: &CandidateView, _b: &CandidateView) -> bool {
        false
    }
    fn on_select(&mut self, view: &CandidateView) -> bool {
        self.0.on_select(view)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Full,
    NoScalopt,
    NoAccConflicts,
}

fn run_variant(
    prep: &Prepared,
    target: &TargetModel,
    db: f64,
    variant: Variant,
) -> (u64, usize) {
    let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, target.max_wl());
    let mut per_block = Vec::new();
    for block in blocks_by_priority(&prep.kernel) {
        let dfg = Dfg::from_block(&prep.kernel, &block);
        let mut groups: Vec<SimdGroup> = Vec::new();
        loop {
            let round = Round::new(&dfg, target, &groups);
            let selected = {
                let inner = AccuracyHooks::new(&dfg, &mut spec, &prep.eval, db);
                if variant == Variant::NoAccConflicts {
                    let mut hooks = NoConflictHooks(inner);
                    run_selection(&dfg, target, &round, &groups, &mut hooks)
                } else {
                    let mut hooks = inner;
                    run_selection(&dfg, target, &round, &groups, &mut hooks)
                }
            };
            if selected.is_empty() {
                break;
            }
            groups.retain(|g| !selected.iter().any(|s| s.lanes() > g.lanes() && s.overlaps(g)));
            groups.extend(selected);
        }
        if variant != Variant::NoScalopt {
            let _ = scaling_optimize(&mut spec, &dfg, &groups, &prep.eval, db);
        }
        per_block.push((block, dfg, groups));
    }
    let n_groups = per_block.iter().map(|(_, _, g)| g.len()).sum();
    let simd = lower_fixed(&prep.kernel, &spec, target, &per_block);
    let _scalar = lower_scalar(&prep.kernel, &spec, target);
    (total_cycles(target, &simd, 2048), n_groups)
}

fn main() {
    let target = xentium();
    println!(
        "Ablation on {} (SIMD cycles, N=2048; lower is better)\n{:<8} {:>6} {:>12} {:>12} {:>16}",
        target.name, "bench", "dB", "full", "no-scalopt", "no-acc-conflicts"
    );
    for bench in all_benchmarks() {
        let prep = prepare(bench.kernel.clone());
        for db in [-20.0, -50.0, -80.0] {
            let (full, gf) = run_variant(&prep, &target, db, Variant::Full);
            let (nos, _) = run_variant(&prep, &target, db, Variant::NoScalopt);
            let (noc, gc) = run_variant(&prep, &target, db, Variant::NoAccConflicts);
            println!(
                "{:<8} {:>6.0} {:>9} g={:<3} {:>12} {:>13} g={:<3}",
                bench.name, db, full, gf, nos, noc, gc
            );
        }
    }
}
