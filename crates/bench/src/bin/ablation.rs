//! Ablation study (beyond the paper, motivated by its section III
//! discussion): what does each ingredient of the joint flow buy?
//!
//! * `no-scalopt` — the joint WLO/SLP without the fig. 1b scaling
//!   optimization: mismatched per-lane scalings must unpack/shift/repack;
//! * `no-acc-conflicts` — candidate validation only, without the
//!   pairwise accuracy-conflict detection (fig. 1c lines 16-22): the
//!   selection may paint itself into a corner and lose groups at the
//!   `on_select` guard;
//! * **benefit models** — `BenefitKind::Slots` (target-blind issue-slot
//!   counting) vs `BenefitKind::Cycles` (candidates priced through
//!   `TargetModel::cost`) across the full 8-benchmark suite and all four
//!   targets, with selection time and scheduled cycles-per-activation
//!   recorded to `BENCH_benefit.json`.
//!
//! Each variant is a custom [`CompilationFlow`] strategy plugged into the
//! unified `Optimizer` driver — the extension point new flows register
//! through.
//!
//! Usage: `cargo run --release -p slpwlo-bench --bin ablation`

use slpwlo_bench::micro::Micro;
use slpwlo_core::hooks::AccuracyHooks;
use slpwlo_core::{lower_fixed, lower_scalar, prepare, scaling_optimize};
use slpwlo_driver::{
    required_constraint, BenefitKind, CompilationFlow, Error, FlowContext, FlowKind, FlowOutput,
    Optimizer,
};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::blocks::blocks_by_priority;
use slpwlo_ir::dfg::Dfg;
use slpwlo_kernels::{all_benchmarks, paper_benchmarks, Benchmark};
use slpwlo_sim::cycles_per_activation;
use slpwlo_slp::{run_selection, BenefitModel, CandidateView, Round, SelectHooks, SimdGroup};
use slpwlo_targets::{all_targets, xentium, CycleCache, TargetModel};

/// Accuracy hooks with the pairwise conflict detection disabled.
struct NoConflictHooks<'a>(AccuracyHooks<'a>);

impl SelectHooks for NoConflictHooks<'_> {
    fn validate(&mut self, view: &CandidateView) -> bool {
        self.0.validate(view)
    }
    fn accuracy_conflict(&mut self, _a: &CandidateView, _b: &CandidateView) -> bool {
        false
    }
    fn on_select(&mut self, view: &CandidateView) -> bool {
        self.0.on_select(view)
    }
}

/// Which ingredient the ablated joint flow drops.
#[derive(Clone, Copy, PartialEq)]
enum Ablate {
    Scalopt,
    AccConflicts,
}

/// The joint `WLO-SLP` flow with one ingredient removed, expressed as a
/// driver strategy.
struct AblatedWloSlp(Ablate);

impl CompilationFlow for AblatedWloSlp {
    fn name(&self) -> &'static str {
        match self.0 {
            Ablate::Scalopt => "wlo-slp/no-scalopt",
            Ablate::AccConflicts => "wlo-slp/no-acc-conflicts",
        }
    }

    fn run(&self, ctx: &FlowContext<'_>) -> Result<FlowOutput, Error> {
        let db = required_constraint(ctx, self.name())?;
        let prep = ctx.prep;
        let target = ctx.target;
        let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, target.max_wl());
        let mut per_block = Vec::new();
        for block in blocks_by_priority(&prep.kernel) {
            let dfg = Dfg::from_block(&prep.kernel, &block);
            let mut groups: Vec<SimdGroup> = Vec::new();
            loop {
                let round = Round::new(&dfg, target, &groups);
                let selected = {
                    let inner = AccuracyHooks::new(&dfg, &mut spec, &prep.eval, db);
                    if self.0 == Ablate::AccConflicts {
                        let mut hooks = NoConflictHooks(inner);
                        run_selection(&dfg, target, &round, &groups, &mut hooks)
                    } else {
                        let mut hooks = inner;
                        run_selection(&dfg, target, &round, &groups, &mut hooks)
                    }
                };
                if selected.is_empty() {
                    break;
                }
                groups.retain(|g| {
                    !selected
                        .iter()
                        .any(|s| s.lanes() > g.lanes() && s.overlaps(g))
                });
                groups.extend(selected);
            }
            if self.0 != Ablate::Scalopt {
                let _ = scaling_optimize(&mut spec, &dfg, &groups, &prep.eval, db, target);
            }
            per_block.push((block, dfg, groups));
        }
        let group_count = per_block.iter().map(|(_, _, g)| g.len()).sum();
        let program = lower_fixed(&prep.kernel, &spec, target, &per_block);
        let scalar = lower_scalar(&prep.kernel, &spec, target);
        use slpwlo_accuracy::AccuracyEvaluator;
        let noise_db = prep.eval.noise_db(&spec);
        Ok(FlowOutput {
            spec: Some(spec),
            program,
            scalar,
            group_count,
            noise_db: Some(noise_db),
        })
    }
}

/// Slots-vs-cycles benefit-model comparison over the full benchmark
/// suite: per (benchmark, target, model) the wall-clock selection time
/// and the scheduled cycles per activation of the produced SIMD program,
/// recorded to `BENCH_benefit.json` (the bench-smoke CI artifact).
fn benefit_model_study() -> Result<(), Error> {
    let mut micro = Micro::for_bench("benefit");
    println!(
        "\nBenefit models across the 8-benchmark suite (cycles/activation at -40 dB)\n\
         {:<18} {:<8} {:>14} {:>14} {:>12}",
        "bench", "target", "slots", "cycles", "price-ratio"
    );
    for bench in all_benchmarks() {
        for target in all_targets() {
            let mut per_model = Vec::new();
            for kind in [BenefitKind::Slots, BenefitKind::Cycles] {
                let opt = Optimizer::for_kernel(bench.kernel.clone())?
                    .target(target.clone())
                    .constraint_db(-40.0)
                    .flow(FlowKind::WloSlp)
                    .benefit_kind(kind);
                // End-to-end joint-flow time. NOTE: this is not a pure
                // model-overhead comparison — the two pricings admit
                // different packings, so later extraction rounds see
                // different candidate sets (legitimately different work).
                // The timed closure's last run doubles as the report, so
                // the pipeline is not executed an extra time.
                let mut report = None;
                micro.bench(
                    &format!("select/{}/{}/{kind}", bench.name, target.name),
                    || report = Some(opt.run().expect("feasible point")),
                );
                let report = report.expect("bench ran at least once");
                let cpa = cycles_per_activation(&target, &report.simd);
                micro.metric(
                    &format!("cpa/{}/{}/{kind}", bench.name, target.name),
                    cpa as f64,
                );
                per_model.push(cpa);
            }
            let ratio = pricing_overhead(&mut micro, &bench, &target);
            println!(
                "{:<18} {:<8} {:>14} {:>14} {:>12.3}",
                bench.name, target.name, per_model[0], per_model[1], ratio
            );
        }
    }
    micro.finish().expect("write BENCH_benefit.json");
    Ok(())
}

/// Controlled cycles-vs-slots pricing overhead: assess every candidate
/// of each block's first extraction round under both models with
/// identical max-word-length oracles. No candidate is admitted, so both
/// models price the exact same work — the ratio isolates what pricing in
/// target cycles costs over counting issue slots.
fn pricing_overhead(micro: &mut Micro, bench: &Benchmark, target: &TargetModel) -> f64 {
    let prep = prepare(bench.kernel.clone());
    let rounds: Vec<(Dfg, Round)> = blocks_by_priority(&prep.kernel)
        .into_iter()
        .map(|block| {
            let dfg = Dfg::from_block(&prep.kernel, &block);
            let round = Round::new(&dfg, target, &[]);
            (dfg, round)
        })
        .collect();
    let max_wl = target.max_wl();
    // Selection shares one price cache across model rebuilds
    // (`run_selection_with` hoists it out of the loop); mirror that here
    // so the sweep prices through a warmed cache, not cold target folds.
    let prices = CycleCache::new(target);
    let mut medians = [0.0f64; 2];
    for (k, kind) in [BenefitKind::Slots, BenefitKind::Cycles]
        .into_iter()
        .enumerate()
    {
        medians[k] = micro.bench(
            &format!("price/{}/{}/{kind}", bench.name, target.name),
            || {
                let mut acc = 0.0;
                for (dfg, round) in &rounds {
                    let model = BenefitModel::with_context_shared(
                        dfg,
                        round,
                        &prices,
                        kind,
                        move |_| max_wl,
                        |_| None,
                    );
                    let alive = vec![true; round.candidates.len()];
                    let pass = model.pass(&alive, &[]);
                    for i in 0..round.candidates.len() {
                        acc += pass.assess(i).net();
                    }
                }
                acc
            },
        );
    }
    let ratio = medians[1] / medians[0];
    micro.metric(
        &format!("price_ratio/{}/{}", bench.name, target.name),
        ratio,
    );
    ratio
}

fn main() -> Result<(), Error> {
    let target = xentium();
    println!(
        "Ablation on {} (SIMD cycles, N=2048; lower is better)\n{:<8} {:>6} {:>12} {:>12} {:>16}",
        target.name, "bench", "dB", "full", "no-scalopt", "no-acc-conflicts"
    );
    for bench in paper_benchmarks() {
        let mut opt = Optimizer::for_kernel(bench.kernel.clone())?
            .target(target.clone())
            .activations(2048);
        for db in [-20.0, -50.0, -80.0] {
            opt = opt.constraint_db(db);
            opt = opt.flow(FlowKind::WloSlp);
            let full = opt.run()?;
            opt = opt.custom_flow(Box::new(AblatedWloSlp(Ablate::Scalopt)));
            let nos = opt.run()?;
            opt = opt.custom_flow(Box::new(AblatedWloSlp(Ablate::AccConflicts)));
            let noc = opt.run()?;
            println!(
                "{:<8} {:>6.0} {:>9} g={:<3} {:>12} {:>13} g={:<3}",
                bench.name,
                db,
                full.cycles_simd,
                full.group_count,
                nos.cycles_simd,
                noc.cycles_simd,
                noc.group_count
            );
        }
    }
    benefit_model_study()
}
