//! Ablation study (beyond the paper, motivated by its section III
//! discussion): what does each ingredient of the joint flow buy?
//!
//! * `no-scalopt` — the joint WLO/SLP without the fig. 1b scaling
//!   optimization: mismatched per-lane scalings must unpack/shift/repack;
//! * `no-acc-conflicts` — candidate validation only, without the
//!   pairwise accuracy-conflict detection (fig. 1c lines 16-22): the
//!   selection may paint itself into a corner and lose groups at the
//!   `on_select` guard;
//! * **benefit models** — `BenefitKind::Slots` (target-blind issue-slot
//!   counting) vs `BenefitKind::Cycles` (candidates priced through
//!   `TargetModel::cost`) across the full 8-benchmark suite and all four
//!   targets, with selection time and scheduled cycles-per-activation
//!   recorded to `BENCH_benefit.json`;
//! * **schedulers** — `SchedKind::List` vs `SchedKind::Modulo` through
//!   the joint flow at −40 dB on single-issue VEX (slot-bound: pure
//!   latency-hiding) and ST240 (multi-issue: pipelined pricing changes
//!   which packs are admitted): pipelined vs flat cycles per
//!   activation, group-count flips, and the modulo scheduler's
//!   budget-fallback rate across every eligible block, recorded to
//!   `BENCH_sched.json` (own `--sched-json` flag — the global `--json`
//!   override belongs to the benefit study);
//! * **selection exactness** — greedy cycle-priced selection vs the
//!   exact `BenefitKind::Optimal` branch-and-bound across the suite on
//!   XENTIUM and single-issue VEX: cycles per activation of both legs,
//!   the relative gap, flow time, and the search's fallback counters,
//!   recorded to `BENCH_optimal.json` (own `--optimal-json` flag), with
//!   the never-slower contract and a zero budget-fallback rate asserted.
//!
//! Each variant is a custom [`CompilationFlow`] strategy plugged into the
//! unified `Optimizer` driver — the extension point new flows register
//! through.
//!
//! Usage: `cargo run --release -p slpwlo-bench --bin ablation`

use slpwlo_bench::micro::{Micro, MicroOptions};
use slpwlo_core::hooks::AccuracyHooks;
use slpwlo_core::{
    cycles_per_activation, cycles_per_activation_cached, lower_fixed, lower_scalar,
    modulo_attempt_cached, modulo_bounds_cached, prepare, scaling_optimize, ModuloAttempt,
    SchedKind,
};
use slpwlo_driver::{
    required_constraint, BenefitKind, CompilationFlow, Error, FlowContext, FlowKind, FlowOutput,
    Optimizer,
};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::blocks::blocks_by_priority;
use slpwlo_ir::dfg::Dfg;
use slpwlo_kernels::{all_benchmarks, paper_benchmarks, Benchmark};
use slpwlo_slp::{
    absorb_selected, run_selection, BenefitModel, CandidateView, Round, SelectHooks, SelectStats,
    SimdGroup,
};
use slpwlo_targets::{all_targets, st240, vex, xentium, CycleCache, TargetModel};

/// Accuracy hooks with the pairwise conflict detection disabled.
struct NoConflictHooks<'a>(AccuracyHooks<'a>);

impl SelectHooks for NoConflictHooks<'_> {
    fn validate(&mut self, view: &CandidateView) -> bool {
        self.0.validate(view)
    }
    fn accuracy_conflict(&mut self, _a: &CandidateView, _b: &CandidateView) -> bool {
        false
    }
    fn on_select(&mut self, view: &CandidateView) -> bool {
        self.0.on_select(view)
    }
}

/// Which ingredient the ablated joint flow drops.
#[derive(Clone, Copy, PartialEq)]
enum Ablate {
    Scalopt,
    AccConflicts,
}

/// The joint `WLO-SLP` flow with one ingredient removed, expressed as a
/// driver strategy.
struct AblatedWloSlp(Ablate);

impl CompilationFlow for AblatedWloSlp {
    fn name(&self) -> &'static str {
        match self.0 {
            Ablate::Scalopt => "wlo-slp/no-scalopt",
            Ablate::AccConflicts => "wlo-slp/no-acc-conflicts",
        }
    }

    fn run(&self, ctx: &FlowContext<'_>) -> Result<FlowOutput, Error> {
        let db = required_constraint(ctx, self.name())?;
        let prep = ctx.prep;
        let target = ctx.target;
        let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, target.max_wl());
        let mut per_block = Vec::new();
        for block in blocks_by_priority(&prep.kernel) {
            let dfg = Dfg::from_block(&prep.kernel, &block);
            let mut groups: Vec<SimdGroup> = Vec::new();
            loop {
                let round = Round::new(&dfg, target, &groups);
                let selected = {
                    let inner = AccuracyHooks::new(&dfg, &mut spec, &prep.eval, db);
                    if self.0 == Ablate::AccConflicts {
                        let mut hooks = NoConflictHooks(inner);
                        run_selection(&dfg, target, &round, &groups, &mut hooks)
                    } else {
                        let mut hooks = inner;
                        run_selection(&dfg, target, &round, &groups, &mut hooks)
                    }
                };
                if selected.is_empty() {
                    break;
                }
                absorb_selected(&mut groups, selected);
            }
            if self.0 != Ablate::Scalopt {
                let _ = scaling_optimize(&mut spec, &dfg, &groups, &prep.eval, db, target);
            }
            per_block.push((block, dfg, groups));
        }
        let group_count = per_block.iter().map(|(_, _, g)| g.len()).sum();
        let program = lower_fixed(&prep.kernel, &spec, target, &per_block);
        let scalar = lower_scalar(&prep.kernel, &spec, target);
        use slpwlo_accuracy::AccuracyEvaluator;
        let noise_db = prep.eval.noise_db(&spec);
        Ok(FlowOutput {
            spec: Some(spec),
            program,
            scalar,
            group_count,
            noise_db: Some(noise_db),
            select: SelectStats::default(),
        })
    }
}

/// Slots-vs-cycles benefit-model comparison over the full benchmark
/// suite: per (benchmark, target, model) the wall-clock selection time
/// and the scheduled cycles per activation of the produced SIMD program,
/// recorded to `BENCH_benefit.json` (the bench-smoke CI artifact).
fn benefit_model_study() -> Result<(), Error> {
    let mut micro = Micro::for_bench("benefit");
    println!(
        "\nBenefit models across the 8-benchmark suite (cycles/activation at -40 dB)\n\
         {:<18} {:<8} {:>14} {:>14} {:>12}",
        "bench", "target", "slots", "cycles", "price-ratio"
    );
    for bench in all_benchmarks() {
        for target in all_targets() {
            let mut per_model = Vec::new();
            for kind in [BenefitKind::Slots, BenefitKind::Cycles] {
                let opt = Optimizer::for_kernel(bench.kernel.clone())?
                    .target(target.clone())
                    .constraint_db(-40.0)
                    .flow(FlowKind::WloSlp)
                    .benefit_kind(kind);
                // End-to-end joint-flow time. NOTE: this is not a pure
                // model-overhead comparison — the two pricings admit
                // different packings, so later extraction rounds see
                // different candidate sets (legitimately different work).
                // The timed closure's last run doubles as the report, so
                // the pipeline is not executed an extra time.
                let mut report = None;
                micro.bench(
                    &format!("select/{}/{}/{kind}", bench.name, target.name),
                    || report = Some(opt.run().expect("feasible point")),
                );
                let report = report.expect("bench ran at least once");
                let cpa = cycles_per_activation(&target, &report.simd);
                micro.metric(
                    &format!("cpa/{}/{}/{kind}", bench.name, target.name),
                    cpa as f64,
                );
                per_model.push(cpa);
            }
            let ratio = pricing_overhead(&mut micro, &bench, &target);
            println!(
                "{:<18} {:<8} {:>14} {:>14} {:>12.3}",
                bench.name, target.name, per_model[0], per_model[1], ratio
            );
        }
    }
    micro.finish().expect("write BENCH_benefit.json");
    Ok(())
}

/// Controlled cycles-vs-slots pricing overhead: assess every candidate
/// of each block's first extraction round under both models with
/// identical max-word-length oracles. No candidate is admitted, so both
/// models price the exact same work — the ratio isolates what pricing in
/// target cycles costs over counting issue slots.
fn pricing_overhead(micro: &mut Micro, bench: &Benchmark, target: &TargetModel) -> f64 {
    let prep = prepare(bench.kernel.clone());
    let rounds: Vec<(Dfg, Round)> = blocks_by_priority(&prep.kernel)
        .into_iter()
        .map(|block| {
            let dfg = Dfg::from_block(&prep.kernel, &block);
            let round = Round::new(&dfg, target, &[]);
            (dfg, round)
        })
        .collect();
    let max_wl = target.max_wl();
    // Selection shares one price cache across model rebuilds
    // (`run_selection_with` hoists it out of the loop); mirror that here
    // so the sweep prices through a warmed cache, not cold target folds.
    let prices = CycleCache::new(target);
    let mut medians = [0.0f64; 2];
    for (k, kind) in [BenefitKind::Slots, BenefitKind::Cycles]
        .into_iter()
        .enumerate()
    {
        medians[k] = micro.bench(
            &format!("price/{}/{}/{kind}", bench.name, target.name),
            || {
                let mut acc = 0.0;
                for (dfg, round) in &rounds {
                    let model = BenefitModel::with_context_shared(
                        dfg,
                        round,
                        &prices,
                        kind,
                        move |_| max_wl,
                        |_| None,
                    );
                    let alive = vec![true; round.candidates.len()];
                    let pass = model.pass(&alive, &[]);
                    for i in 0..round.candidates.len() {
                        acc += pass.assess(i).net();
                    }
                }
                acc
            },
        );
    }
    let ratio = medians[1] / medians[0];
    micro.metric(
        &format!("price_ratio/{}/{}", bench.name, target.name),
        ratio,
    );
    ratio
}

/// List-vs-modulo scheduling study at −40 dB: per benchmark and target
/// the joint flow runs once under each `SchedKind`, recording cycles
/// per activation (pipelined pricing under modulo), the group count
/// each pricing admits, and the time the scheduler spends pricing the
/// finished program. Two targets probe complementary regimes:
///
/// * **VEX-1** — single issue, where the steady state is slot-bound:
///   pipelining squeezes out list-schedule latency bubbles but cannot
///   change which packs are profitable (a pack's slot count prices the
///   same flat or folded);
/// * **ST240** — multi-issue, where pipelined pricing *changes the
///   selection*: a vectorized block whose long latency chains stall
///   sequential issue can lose to its scalar form under list pricing
///   yet win once iterations overlap. The `sched_flips/<target>` metric
///   counts benchmarks where the modulo-priced flow admits packs the
///   list-priced one rejects, and the run asserts at least one flip.
///
/// The modulo scheduler's budget-fallback rate across every eligible
/// block of the produced programs also gates the run: the default
/// per-II budget must cover the suite, or pipelined pricing silently
/// degrades to list pricing.
///
/// Results go to `--sched-json <path>` (default `BENCH_sched.json`) —
/// a dedicated flag because `--json` globally overrides *every*
/// `Micro::for_bench` path in the process and is claimed by the
/// benefit study.
fn sched_study() -> Result<(), Error> {
    let mut micro = Micro::with_options(MicroOptions::from_env_args());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--sched-json")
        .and_then(|pos| args.get(pos + 1).cloned())
        .unwrap_or_else(|| "BENCH_sched.json".to_string());
    let mut total_flips = 0usize;
    let (mut eligible, mut exhausted) = (0u64, 0u64);
    for target in [vex(1), st240()] {
        let costs = CycleCache::new(&target);
        println!(
            "\nList vs modulo scheduling on {} (cycles/activation at -40 dB)\n\
             {:<18} {:>10} {:>10} {:>8} {:>12} {:>12}",
            target.name, "bench", "list", "modulo", "speedup", "groups-list", "groups-mod"
        );
        let mut flips = 0usize;
        for bench in all_benchmarks() {
            let mut cpa = [0u64; 2];
            let mut groups = [0usize; 2];
            for (k, (label, sched)) in [("list", SchedKind::List), ("modulo", SchedKind::modulo())]
                .into_iter()
                .enumerate()
            {
                let report = Optimizer::for_kernel(bench.kernel.clone())?
                    .target(target.clone())
                    .constraint_db(-40.0)
                    .flow(FlowKind::WloSlp)
                    .sched_kind(sched)
                    .run()?;
                cpa[k] = cycles_per_activation_cached(&costs, &report.simd, sched);
                groups[k] = report.group_count;
                micro.metric(
                    &format!("sched_cpa/{}/{}/{label}", bench.name, target.name),
                    cpa[k] as f64,
                );
                micro.metric(
                    &format!("sched_groups/{}/{}/{label}", bench.name, target.name),
                    groups[k] as f64,
                );
                // Pricing-time leg: how long the scheduler itself takes
                // on the finished program (the modulo side re-runs the
                // branch-and-bound search every call).
                micro.bench(
                    &format!("sched_price/{}/{}/{label}", bench.name, target.name),
                    || cycles_per_activation_cached(&costs, &report.simd, sched),
                );
                if let SchedKind::Modulo { budget } = sched {
                    for block in &report.simd.blocks {
                        if modulo_bounds_cached(&costs, block).is_none() {
                            continue;
                        }
                        eligible += 1;
                        if matches!(
                            modulo_attempt_cached(&costs, block, budget),
                            ModuloAttempt::BudgetExhausted
                        ) {
                            exhausted += 1;
                        }
                    }
                }
            }
            if groups[1] > groups[0] {
                flips += 1;
            }
            micro.metric(
                &format!("sched_speedup/{}/{}", bench.name, target.name),
                cpa[0] as f64 / cpa[1].max(1) as f64,
            );
            println!(
                "{:<18} {:>10} {:>10} {:>8.3} {:>12} {:>12}",
                bench.name,
                cpa[0],
                cpa[1],
                cpa[0] as f64 / cpa[1].max(1) as f64,
                groups[0],
                groups[1]
            );
        }
        micro.metric(&format!("sched_flips/{}", target.name), flips as f64);
        total_flips += flips;
    }
    let fallback_rate = if eligible == 0 {
        0.0
    } else {
        exhausted as f64 / eligible as f64
    };
    micro.metric("sched_budget_fallback_rate", fallback_rate);
    assert!(
        fallback_rate <= 0.10,
        "modulo budget exhausted on {exhausted}/{eligible} eligible blocks \
         ({:.0}%): the default budget no longer covers the suite",
        fallback_rate * 100.0
    );
    assert!(
        total_flips >= 1,
        "no benchmark admitted extra packs under modulo pricing on any target"
    );
    micro
        .write_json(std::path::Path::new(&json_path))
        .expect("write sched study JSON");
    println!("wrote {json_path}");
    Ok(())
}

/// Greedy-vs-exact pack-selection study at −40 dB: per benchmark and
/// target the joint flow runs once under the greedy cycle-priced kind
/// and once under [`BenefitKind::Optimal`] (default budget), recording
/// scheduled cycles per activation of both legs, the relative gap, the
/// end-to-end flow time, and the exact selector's search counters. Two
/// gates keep the study honest:
///
/// * the exact kind's cycles never exceed greedy's on any point — the
///   portfolio-arbitration contract, re-checked on real suite data
///   rather than generated kernels;
/// * the default search budget covers the whole suite, gated at
///   **exactly zero** fallbacks: a budget fallback silently degrades
///   "exact" to greedy, so any nonzero rate makes the study's label a
///   lie.
///
/// Results go to `--optimal-json <path>` (default
/// `BENCH_optimal.json`) — a dedicated flag for the same reason as
/// `--sched-json`.
fn optimal_study() -> Result<(), Error> {
    let mut micro = Micro::with_options(MicroOptions::from_env_args());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args
        .iter()
        .position(|a| a == "--optimal-json")
        .and_then(|pos| args.get(pos + 1).cloned())
        .unwrap_or_else(|| "BENCH_optimal.json".to_string());
    let (mut rounds, mut improved, mut budget_fallbacks) = (0u64, 0u64, 0u64);
    let mut improved_points = 0usize;
    for target in [xentium(), vex(1)] {
        println!(
            "\nGreedy vs exact pack selection on {} (cycles/activation at -40 dB)\n\
             {:<18} {:>10} {:>10} {:>8} {:>10}",
            target.name, "bench", "greedy", "optimal", "gap", "rounds"
        );
        for bench in all_benchmarks() {
            let mut cpa = [0u64; 2];
            let mut stats = SelectStats::default();
            for (k, (label, kind)) in [
                ("greedy", BenefitKind::Cycles),
                ("optimal", BenefitKind::optimal()),
            ]
            .into_iter()
            .enumerate()
            {
                let opt = Optimizer::for_kernel(bench.kernel.clone())?
                    .target(target.clone())
                    .constraint_db(-40.0)
                    .flow(FlowKind::WloSlp)
                    .benefit_kind(kind);
                // End-to-end flow time: the optimal leg pays for the
                // branch-and-bound search *and* the greedy portfolio
                // leg it arbitrates against. The timed closure's last
                // run doubles as the report.
                let mut report = None;
                micro.bench(
                    &format!("optimal_time/{}/{}/{label}", bench.name, target.name),
                    || report = Some(opt.run().expect("feasible point")),
                );
                let report = report.expect("bench ran at least once");
                cpa[k] = cycles_per_activation(&target, &report.simd);
                micro.metric(
                    &format!("optimal_cpa/{}/{}/{label}", bench.name, target.name),
                    cpa[k] as f64,
                );
                if k == 1 {
                    stats = report.select;
                }
            }
            assert!(
                cpa[1] <= cpa[0],
                "{} on {}: exact selection scheduled slower than greedy ({} > {})",
                bench.name,
                target.name,
                cpa[1],
                cpa[0]
            );
            let gap = (cpa[0] as f64 - cpa[1] as f64) / cpa[0].max(1) as f64;
            micro.metric(&format!("optimal_gap/{}/{}", bench.name, target.name), gap);
            if cpa[1] < cpa[0] {
                improved_points += 1;
            }
            rounds += stats.rounds;
            improved += stats.improved;
            budget_fallbacks += stats.budget_fallbacks;
            println!(
                "{:<18} {:>10} {:>10} {:>7.1}% {:>10}",
                bench.name,
                cpa[0],
                cpa[1],
                gap * 100.0,
                stats.rounds
            );
        }
    }
    micro.metric("optimal_rounds", rounds as f64);
    micro.metric("optimal_improved_rounds", improved as f64);
    micro.metric("optimal_improved_points", improved_points as f64);
    let fallback_rate = if rounds == 0 {
        0.0
    } else {
        budget_fallbacks as f64 / rounds as f64
    };
    micro.metric("optimal_budget_fallback_rate", fallback_rate);
    assert_eq!(
        budget_fallbacks, 0,
        "exact search budget exhausted on {budget_fallbacks}/{rounds} rounds: \
         the default budget no longer covers the suite"
    );
    micro
        .write_json(std::path::Path::new(&json_path))
        .expect("write optimal study JSON");
    println!("wrote {json_path}");
    Ok(())
}

fn main() -> Result<(), Error> {
    let target = xentium();
    println!(
        "Ablation on {} (SIMD cycles, N=2048; lower is better)\n{:<8} {:>6} {:>12} {:>12} {:>16}",
        target.name, "bench", "dB", "full", "no-scalopt", "no-acc-conflicts"
    );
    for bench in paper_benchmarks() {
        let mut opt = Optimizer::for_kernel(bench.kernel.clone())?
            .target(target.clone())
            .activations(2048);
        for db in [-20.0, -50.0, -80.0] {
            opt = opt.constraint_db(db);
            opt = opt.flow(FlowKind::WloSlp);
            let full = opt.run()?;
            opt = opt.custom_flow(Box::new(AblatedWloSlp(Ablate::Scalopt)));
            let nos = opt.run()?;
            opt = opt.custom_flow(Box::new(AblatedWloSlp(Ablate::AccConflicts)));
            let noc = opt.run()?;
            println!(
                "{:<8} {:>6.0} {:>9} g={:<3} {:>12} {:>13} g={:<3}",
                bench.name,
                db,
                full.cycles_simd,
                full.group_count,
                nos.cycles_simd,
                noc.cycles_simd,
                noc.group_count
            );
        }
    }
    benefit_model_study()?;
    sched_study()?;
    optimal_study()
}
