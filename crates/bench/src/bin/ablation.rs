//! Ablation study (beyond the paper, motivated by its section III
//! discussion): what does each ingredient of the joint flow buy?
//!
//! * `no-scalopt` — the joint WLO/SLP without the fig. 1b scaling
//!   optimization: mismatched per-lane scalings must unpack/shift/repack;
//! * `no-acc-conflicts` — candidate validation only, without the
//!   pairwise accuracy-conflict detection (fig. 1c lines 16-22): the
//!   selection may paint itself into a corner and lose groups at the
//!   `on_select` guard.
//!
//! Each variant is a custom [`CompilationFlow`] strategy plugged into the
//! unified `Optimizer` driver — the extension point new flows register
//! through.
//!
//! Usage: `cargo run --release -p slpwlo-bench --bin ablation`

use slpwlo_core::hooks::AccuracyHooks;
use slpwlo_core::{lower_fixed, lower_scalar, scaling_optimize};
use slpwlo_driver::{
    required_constraint, CompilationFlow, Error, FlowContext, FlowKind, FlowOutput, Optimizer,
};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::blocks::blocks_by_priority;
use slpwlo_ir::dfg::Dfg;
use slpwlo_kernels::paper_benchmarks;
use slpwlo_slp::{run_selection, CandidateView, Round, SelectHooks, SimdGroup};
use slpwlo_targets::xentium;

/// Accuracy hooks with the pairwise conflict detection disabled.
struct NoConflictHooks<'a>(AccuracyHooks<'a>);

impl SelectHooks for NoConflictHooks<'_> {
    fn validate(&mut self, view: &CandidateView) -> bool {
        self.0.validate(view)
    }
    fn accuracy_conflict(&mut self, _a: &CandidateView, _b: &CandidateView) -> bool {
        false
    }
    fn on_select(&mut self, view: &CandidateView) -> bool {
        self.0.on_select(view)
    }
}

/// Which ingredient the ablated joint flow drops.
#[derive(Clone, Copy, PartialEq)]
enum Ablate {
    Scalopt,
    AccConflicts,
}

/// The joint `WLO-SLP` flow with one ingredient removed, expressed as a
/// driver strategy.
struct AblatedWloSlp(Ablate);

impl CompilationFlow for AblatedWloSlp {
    fn name(&self) -> &'static str {
        match self.0 {
            Ablate::Scalopt => "wlo-slp/no-scalopt",
            Ablate::AccConflicts => "wlo-slp/no-acc-conflicts",
        }
    }

    fn run(&self, ctx: &FlowContext<'_>) -> Result<FlowOutput, Error> {
        let db = required_constraint(ctx, self.name())?;
        let prep = ctx.prep;
        let target = ctx.target;
        let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, target.max_wl());
        let mut per_block = Vec::new();
        for block in blocks_by_priority(&prep.kernel) {
            let dfg = Dfg::from_block(&prep.kernel, &block);
            let mut groups: Vec<SimdGroup> = Vec::new();
            loop {
                let round = Round::new(&dfg, target, &groups);
                let selected = {
                    let inner = AccuracyHooks::new(&dfg, &mut spec, &prep.eval, db);
                    if self.0 == Ablate::AccConflicts {
                        let mut hooks = NoConflictHooks(inner);
                        run_selection(&dfg, target, &round, &groups, &mut hooks)
                    } else {
                        let mut hooks = inner;
                        run_selection(&dfg, target, &round, &groups, &mut hooks)
                    }
                };
                if selected.is_empty() {
                    break;
                }
                groups.retain(|g| {
                    !selected
                        .iter()
                        .any(|s| s.lanes() > g.lanes() && s.overlaps(g))
                });
                groups.extend(selected);
            }
            if self.0 != Ablate::Scalopt {
                let _ = scaling_optimize(&mut spec, &dfg, &groups, &prep.eval, db);
            }
            per_block.push((block, dfg, groups));
        }
        let group_count = per_block.iter().map(|(_, _, g)| g.len()).sum();
        let program = lower_fixed(&prep.kernel, &spec, target, &per_block);
        let scalar = lower_scalar(&prep.kernel, &spec, target);
        use slpwlo_accuracy::AccuracyEvaluator;
        let noise_db = prep.eval.noise_db(&spec);
        Ok(FlowOutput {
            spec: Some(spec),
            program,
            scalar,
            group_count,
            noise_db: Some(noise_db),
        })
    }
}

fn main() -> Result<(), Error> {
    let target = xentium();
    println!(
        "Ablation on {} (SIMD cycles, N=2048; lower is better)\n{:<8} {:>6} {:>12} {:>12} {:>16}",
        target.name, "bench", "dB", "full", "no-scalopt", "no-acc-conflicts"
    );
    for bench in paper_benchmarks() {
        let mut opt = Optimizer::for_kernel(bench.kernel.clone())?
            .target(target.clone())
            .activations(2048);
        for db in [-20.0, -50.0, -80.0] {
            opt = opt.constraint_db(db);
            opt = opt.flow(FlowKind::WloSlp);
            let full = opt.run()?;
            opt = opt.custom_flow(Box::new(AblatedWloSlp(Ablate::Scalopt)));
            let nos = opt.run()?;
            opt = opt.custom_flow(Box::new(AblatedWloSlp(Ablate::AccConflicts)));
            let noc = opt.run()?;
            println!(
                "{:<8} {:>6.0} {:>9} g={:<3} {:>12} {:>13} g={:<3}",
                bench.name,
                db,
                full.cycles_simd,
                full.group_count,
                nos.cycles_simd,
                noc.cycles_simd,
                noc.group_count
            );
        }
    }
    Ok(())
}
