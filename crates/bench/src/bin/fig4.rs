//! Reproduces Figure 4: speedup of the SIMD versions of `WLO-First` and
//! `WLO-SLP` over the scalar fixed-point baseline, for each benchmark on
//! each target, against the accuracy constraint.
//!
//! Usage: `cargo run --release -p slpwlo-bench --bin fig4 [--csv]`

use slpwlo_bench::harness::{sweep, PointOptions};
use slpwlo_bench::report;
use slpwlo_driver::Error;
use slpwlo_kernels::paper_benchmarks;
use slpwlo_targets::all_targets;

fn main() -> Result<(), Error> {
    let csv = std::env::args().any(|a| a == "--csv");
    // The paper sweeps -5..-70 dB. Our fixed-point noise floor for 16-bit
    // data sits near -100 dB (textbook Q15 SQNR for these kernels), so the
    // sweep extends to -110 dB to cover the same qualitative region where
    // SIMD grouping must progressively surrender to precision.
    let constraints: Vec<f64> = (1..=22).map(|i| -5.0 * i as f64).collect(); // -5..-110
    let targets = all_targets();
    let opts = PointOptions::default();
    let mut all = Vec::new();
    for bench in paper_benchmarks() {
        eprintln!("fig4: sweeping {} ...", bench.name);
        all.extend(sweep(&bench, &targets, &constraints, &opts)?);
    }
    if csv {
        print!("{}", report::csv(&all));
    } else {
        print!("{}", report::fig4_text(&all));
    }
    Ok(())
}
