//! Reproduces Figure 6: speedup of `WLO-SLP` over the original
//! (single-precision) floating-point version, on XENTIUM (soft float) and
//! ST240 (hardware float).
//!
//! Usage: `cargo run --release -p slpwlo-bench --bin fig6 [--csv]`

use slpwlo_bench::harness::{sweep, PointOptions};
use slpwlo_bench::report;
use slpwlo_driver::Error;
use slpwlo_kernels::paper_benchmarks;
use slpwlo_targets::{st240, xentium};

fn main() -> Result<(), Error> {
    let csv = std::env::args().any(|a| a == "--csv");
    let constraints: Vec<f64> = (1..=9).map(|i| -5.0 * i as f64).collect(); // -5..-45
    let targets = vec![xentium(), st240()];
    let opts = PointOptions::default();
    let mut all = Vec::new();
    for bench in paper_benchmarks() {
        eprintln!("fig6: sweeping {} ...", bench.name);
        all.extend(sweep(&bench, &targets, &constraints, &opts)?);
    }
    // Order by target first (figure 6 has one panel per target).
    all.sort_by(|a, b| a.target.cmp(&b.target).then(a.bench.cmp(&b.bench)));
    if csv {
        print!("{}", report::csv(&all));
    } else {
        print!("{}", report::fig6_text(&all));
    }
    Ok(())
}
