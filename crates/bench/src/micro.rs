//! Minimal micro-benchmark harness.
//!
//! The workspace builds fully offline, so `criterion` is unavailable;
//! this module provides the small slice of it the `benches/` targets
//! need: named benchmarks, warm-up, multiple timed samples, and a
//! median-based report on stdout. Bench targets set `harness = false`
//! and drive [`Micro`] from a plain `main`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so bench closures can defeat constant folding the same
/// way criterion users do.
pub use std::hint::black_box as bb;

/// Options for one [`Micro`] run.
#[derive(Debug, Clone, Copy)]
pub struct MicroOptions {
    /// Warm-up time per benchmark.
    pub warmup: Duration,
    /// Number of timed samples.
    pub samples: usize,
    /// Minimum time per sample (iterations are batched to reach it).
    pub sample_time: Duration,
}

impl Default for MicroOptions {
    fn default() -> Self {
        MicroOptions {
            warmup: Duration::from_millis(200),
            samples: 11,
            sample_time: Duration::from_millis(50),
        }
    }
}

/// A micro-benchmark runner: times closures and prints one line per
/// benchmark (`name ... median ns/iter (min .. max)`).
#[derive(Debug, Default)]
pub struct Micro {
    opts: MicroOptions,
}

impl Micro {
    /// Runner with default options.
    pub fn new() -> Self {
        Micro::default()
    }

    /// Runner with explicit options.
    pub fn with_options(opts: MicroOptions) -> Self {
        Micro { opts }
    }

    /// Times `f`, printing a one-line report. Returns the median
    /// nanoseconds per iteration (also usable for assertions).
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        // Warm-up: run until the budget is spent, measuring a rough
        // per-iteration cost to size sample batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.opts.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.opts.sample_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64)
            .clamp(1, 1_000_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.opts.samples);
        for _ in 0..self.opts.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples_ns[samples_ns.len() / 2];
        let (min, max) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);
        println!(
            "{name:<40} {:>12}/iter  (min {:>12}, max {:>12}, {} x {batch} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.opts.samples,
        );
        median
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_sane_timings() {
        let mut m = Micro::with_options(MicroOptions {
            warmup: Duration::from_millis(1),
            samples: 3,
            sample_time: Duration::from_millis(1),
        });
        let mut acc = 0u64;
        let ns = m.bench("noop_add", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(ns > 0.0 && ns < 1e7, "implausible timing {ns}");
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1_500.0), "1.50us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000s");
    }
}
