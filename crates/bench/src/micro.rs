//! Minimal micro-benchmark harness.
//!
//! The workspace builds fully offline, so `criterion` is unavailable;
//! this module provides the small slice of it the `benches/` targets
//! need: named benchmarks, warm-up, multiple timed samples, and a
//! median-based report on stdout. Bench targets set `harness = false`
//! and drive [`Micro`] from a plain `main`.
//!
//! # Machine-readable output
//!
//! Every benchmark result (and any derived [`Micro::metric`], e.g. a
//! speedup) is recorded; [`Micro::finish`] writes them as JSON so CI can
//! track the perf trajectory. The output path comes from, in precedence
//! order, the `--json <path>` argument (after `cargo bench ... --`), the
//! `SLPWLO_BENCH_JSON` environment variable, or the per-bench default
//! `BENCH_<name>.json` passed to [`Micro::for_bench`]. Sampling options
//! are likewise overridable via `--samples`, `--warmup-ms` and
//! `--sample-ms` (env: `SLPWLO_BENCH_SAMPLES`), which is how the CI
//! smoke step runs every bench with one cheap sample.

use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Re-exported so bench closures can defeat constant folding the same
/// way criterion users do.
pub use std::hint::black_box as bb;

/// Options for one [`Micro`] run.
#[derive(Debug, Clone, Copy)]
pub struct MicroOptions {
    /// Warm-up time per benchmark.
    pub warmup: Duration,
    /// Number of timed samples.
    pub samples: usize,
    /// Minimum time per sample (iterations are batched to reach it).
    pub sample_time: Duration,
}

impl Default for MicroOptions {
    fn default() -> Self {
        MicroOptions {
            warmup: Duration::from_millis(200),
            samples: 11,
            sample_time: Duration::from_millis(50),
        }
    }
}

impl MicroOptions {
    /// Default options overridden by `--samples`, `--warmup-ms` and
    /// `--sample-ms` arguments and the `SLPWLO_BENCH_SAMPLES` environment
    /// variable (arguments win). Unknown arguments are ignored so the
    /// harness coexists with whatever cargo forwards.
    pub fn from_env_args() -> Self {
        let mut opts = MicroOptions::default();
        if let Some(n) = env_parse::<usize>("SLPWLO_BENCH_SAMPLES") {
            opts.samples = n.max(1);
        }
        let args: Vec<String> = std::env::args().skip(1).collect();
        if let Some(n) = arg_parse::<usize>(&args, "--samples") {
            opts.samples = n.max(1);
        }
        if let Some(ms) = arg_parse::<u64>(&args, "--warmup-ms") {
            opts.warmup = Duration::from_millis(ms);
        }
        if let Some(ms) = arg_parse::<u64>(&args, "--sample-ms") {
            opts.sample_time = Duration::from_millis(ms);
        }
        opts
    }
}

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark name.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub batch: u64,
}

/// A micro-benchmark runner: times closures, prints one line per
/// benchmark (`name ... median ns/iter (min .. max)`), and records every
/// result for the JSON report.
#[derive(Debug, Default)]
pub struct Micro {
    opts: MicroOptions,
    records: Vec<BenchRecord>,
    metrics: Vec<(String, f64)>,
    json_path: Option<PathBuf>,
}

impl Micro {
    /// Runner with default options.
    pub fn new() -> Self {
        Micro::default()
    }

    /// Runner with explicit options.
    pub fn with_options(opts: MicroOptions) -> Self {
        Micro {
            opts,
            ..Micro::default()
        }
    }

    /// Runner for a named bench target: options from the environment and
    /// argv ([`MicroOptions::from_env_args`]), JSON output defaulting to
    /// `BENCH_<name>.json` unless `--json`/`SLPWLO_BENCH_JSON` override
    /// it (`--json -` disables the file).
    pub fn for_bench(name: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let path = arg_parse::<String>(&args, "--json")
            .or_else(|| std::env::var("SLPWLO_BENCH_JSON").ok())
            .unwrap_or_else(|| format!("BENCH_{name}.json"));
        let json_path = (path != "-").then(|| PathBuf::from(path));
        Micro {
            opts: MicroOptions::from_env_args(),
            json_path,
            ..Micro::default()
        }
    }

    /// The configured options (for deriving loop counts in benches).
    pub fn options(&self) -> MicroOptions {
        self.opts
    }

    /// Times `f`, printing a one-line report. Returns the median
    /// nanoseconds per iteration (also usable for assertions).
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        // Warm-up: run until the budget is spent, measuring a rough
        // per-iteration cost to size sample batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.opts.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((self.opts.sample_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64)
            .clamp(1, 1_000_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.opts.samples);
        for _ in 0..self.opts.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples_ns[samples_ns.len() / 2];
        let (min, max) = (samples_ns[0], samples_ns[samples_ns.len() - 1]);
        println!(
            "{name:<40} {:>12}/iter  (min {:>12}, max {:>12}, {} x {batch} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            self.opts.samples,
        );
        self.records.push(BenchRecord {
            name: name.to_string(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
            samples: self.opts.samples,
            batch,
        });
        median
    }

    /// Records a derived scalar (speedup, count, ...) for the JSON
    /// report, printing it alongside the timings.
    pub fn metric(&mut self, name: &str, value: f64) {
        println!("{name:<40} {value:>12.3}  (metric)");
        self.metrics.push((name.to_string(), value));
    }

    /// Everything recorded so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Writes the JSON report to the configured path, if any. Call once
    /// at the end of a bench `main`.
    pub fn finish(&self) -> std::io::Result<()> {
        let Some(path) = &self.json_path else {
            return Ok(());
        };
        self.write_json(path)?;
        println!("wrote {}", path.display());
        Ok(())
    }

    /// Writes the recorded results as JSON to an explicit path.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The recorded results as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"slpwlo-bench-v1\",\n");
        s.push_str(&format!("  \"samples\": {},\n", self.opts.samples));
        s.push_str("  \"benchmarks\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"samples\": {}, \"batch\": {}}}",
                json_string(&r.name),
                json_number(r.median_ns),
                json_number(r.min_ns),
                json_number(r.max_ns),
                r.samples,
                r.batch,
            ));
        }
        s.push_str("\n  ],\n  \"metrics\": [");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": {}, \"value\": {}}}",
                json_string(name),
                json_number(*value),
            ));
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats render via `Display` (valid JSON numbers); anything
/// else degrades to `null`.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn env_parse<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok()?.parse().ok()
}

fn arg_parse<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1)?.parse().ok()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> MicroOptions {
        MicroOptions {
            warmup: Duration::from_millis(1),
            samples: 3,
            sample_time: Duration::from_millis(1),
        }
    }

    #[test]
    fn reports_sane_timings() {
        let mut m = Micro::with_options(tiny_options());
        let mut acc = 0u64;
        let ns = m.bench("noop_add", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(ns > 0.0 && ns < 1e7, "implausible timing {ns}");
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1_500.0), "1.50us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000s");
    }

    #[test]
    fn json_report_contains_records_and_metrics() {
        let mut m = Micro::with_options(tiny_options());
        m.bench("alpha", || 1u64);
        m.metric("speedup/alpha", 7.25);
        let json = m.to_json();
        assert!(json.contains("\"schema\": \"slpwlo-bench-v1\""));
        assert!(json.contains("\"name\": \"alpha\""));
        assert!(json.contains("\"median_ns\": "));
        assert!(json.contains("\"name\": \"speedup/alpha\", \"value\": 7.25"));
        // Structure sanity: balanced braces/brackets, no trailing commas.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(!json.contains(",\n  ]"), "no trailing commas");
    }

    #[test]
    fn json_escapes_and_non_finite_values() {
        let mut m = Micro::new();
        m.metric("weird\"name\\", f64::INFINITY);
        let json = m.to_json();
        assert!(json.contains("\"weird\\\"name\\\\\""));
        assert!(json.contains("\"value\": null"));
    }

    #[test]
    fn records_accumulate() {
        let mut m = Micro::with_options(tiny_options());
        m.bench("a", || 1u64);
        m.bench("b", || 2u64);
        assert_eq!(m.records().len(), 2);
        assert_eq!(m.records()[0].name, "a");
        assert!(m.records()[1].batch >= 1);
    }
}
