//! Criterion bench regenerating Table I.
//!
//! Prints the reproduced FIR cycle-count table once, then benchmarks the
//! per-cell cost on each of the three targets of the table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slpwlo_bench::harness::{run_point, PointOptions};
use slpwlo_bench::{report, sweep};
use slpwlo_core::prepare;
use slpwlo_kernels::all_benchmarks;
use slpwlo_targets::{st240, vex, xentium};

fn print_reproduction() {
    let constraints: Vec<f64> = vec![-5.0, -15.0, -25.0, -35.0, -45.0, -55.0, -65.0];
    let targets = vec![xentium(), st240(), vex(4)];
    let fir = all_benchmarks().remove(0);
    let pts = sweep(&fir, &targets, &constraints, &PointOptions::default());
    println!("\n--- Table I reproduction (FIR SIMD cycles, N = {}) ---", fir.activations);
    println!("{}", report::table1_text(&pts));
}

fn bench_table1(c: &mut Criterion) {
    print_reproduction();
    let fir = all_benchmarks().remove(0);
    let prep = prepare(fir.kernel.clone());
    let mut group = c.benchmark_group("table1_cell");
    for target in [xentium(), st240(), vex(4)] {
        group.bench_with_input(
            BenchmarkId::new("fir_cell", &target.name),
            &target,
            |b, target| {
                b.iter(|| {
                    run_point(&prep, "FIR", target, -35.0, fir.activations, &PointOptions::default())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
