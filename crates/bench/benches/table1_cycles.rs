//! Bench regenerating Table I.
//!
//! Prints the reproduced FIR cycle-count table once, then benchmarks the
//! per-cell cost on each of the three targets of the table.
//!
//! Run with: `cargo bench -p slpwlo-bench --bench table1_cycles`

use slpwlo_bench::harness::{optimizer_for, sweep, PointOptions};
use slpwlo_bench::{report, Micro};
use slpwlo_driver::{Error, FlowKind};
use slpwlo_kernels::paper_benchmarks;
use slpwlo_targets::{st240, vex, xentium};

fn print_reproduction() -> Result<(), Error> {
    let constraints: Vec<f64> = vec![-5.0, -15.0, -25.0, -35.0, -45.0, -55.0, -65.0];
    let targets = vec![xentium(), st240(), vex(4)];
    let fir = paper_benchmarks().remove(0);
    let pts = sweep(&fir, &targets, &constraints, &PointOptions::default())?;
    println!(
        "\n--- Table I reproduction (FIR SIMD cycles, N = {}) ---",
        fir.activations
    );
    println!("{}", report::table1_text(&pts));
    Ok(())
}

fn main() -> Result<(), Error> {
    print_reproduction()?;
    let fir = paper_benchmarks().remove(0);
    let mut m = Micro::for_bench("table1");
    let mut opt = optimizer_for(&fir, &PointOptions::default())?.constraint_db(-35.0);
    for target in [xentium(), st240(), vex(4)] {
        let name = target.name.clone();
        opt = opt.target(target);
        m.bench(&format!("table1_fir_cell/{name}"), || {
            let a = opt.run_with(FlowKind::WloSlp).expect("feasible point");
            let b = opt.run_with(FlowKind::WloFirst).expect("feasible point");
            (a.cycles_simd, b.cycles_simd)
        });
    }
    m.finish().expect("write bench JSON");
    Ok(())
}
