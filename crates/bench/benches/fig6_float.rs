//! Bench regenerating Figure 6.
//!
//! Prints the reproduced float-vs-fixed speedups once (soft-float XENTIUM
//! and hardware-float ST240), then benchmarks the float-baseline path
//! (lowering plus cycle simulation) through the driver.
//!
//! Run with: `cargo bench -p slpwlo-bench --bench fig6_float`

use slpwlo_bench::harness::{optimizer_for, sweep, PointOptions};
use slpwlo_bench::{report, Micro};
use slpwlo_driver::{Error, FlowKind};
use slpwlo_kernels::paper_benchmarks;
use slpwlo_targets::{st240, xentium};

fn print_reproduction() -> Result<(), Error> {
    let constraints: Vec<f64> = vec![-5.0, -15.0, -25.0, -35.0, -45.0];
    let targets = vec![xentium(), st240()];
    let mut all = Vec::new();
    for bench in paper_benchmarks() {
        all.extend(sweep(
            &bench,
            &targets,
            &constraints,
            &PointOptions::default(),
        )?);
    }
    all.sort_by(|a, b| a.target.cmp(&b.target).then(a.bench.cmp(&b.bench)));
    println!("\n--- Figure 6 reproduction ---");
    println!("{}", report::fig6_text(&all));
    Ok(())
}

fn main() -> Result<(), Error> {
    print_reproduction()?;
    let mut m = Micro::for_bench("fig6");
    for bench in paper_benchmarks() {
        let float = optimizer_for(&bench, &PointOptions::default())?
            .target(xentium())
            .flow(FlowKind::Float);
        m.bench(
            &format!("fig6_lower_and_simulate_float/{}", bench.name),
            || {
                float
                    .run()
                    .expect("float flow cannot be infeasible")
                    .cycles_simd
            },
        );
    }
    m.finish().expect("write bench JSON");
    Ok(())
}
