//! Criterion bench regenerating Figure 6.
//!
//! Prints the reproduced float-vs-fixed speedups once (soft-float XENTIUM
//! and hardware-float ST240), then benchmarks float lowering plus cycle
//! simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slpwlo_bench::harness::PointOptions;
use slpwlo_bench::{report, sweep};
use slpwlo_core::lower_float;
use slpwlo_kernels::all_benchmarks;
use slpwlo_sim::total_cycles;
use slpwlo_targets::{st240, xentium};

fn print_reproduction() {
    let constraints: Vec<f64> = vec![-5.0, -15.0, -25.0, -35.0, -45.0];
    let targets = vec![xentium(), st240()];
    let mut all = Vec::new();
    for bench in all_benchmarks() {
        all.extend(sweep(&bench, &targets, &constraints, &PointOptions::default()));
    }
    all.sort_by(|a, b| a.target.cmp(&b.target).then(a.bench.cmp(&b.bench)));
    println!("\n--- Figure 6 reproduction ---");
    println!("{}", report::fig6_text(&all));
}

fn bench_fig6(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("fig6_float_path");
    for bench in all_benchmarks() {
        group.bench_with_input(
            BenchmarkId::new("lower_and_simulate_float", bench.name),
            &bench,
            |b, bench| {
                let xent = xentium();
                b.iter(|| {
                    let prog = lower_float(&bench.kernel);
                    total_cycles(&xent, &prog, bench.activations)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
