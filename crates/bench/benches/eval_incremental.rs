//! Micro-benchmark of the incremental accuracy engine and the parallel
//! constraint sweep: full recompute vs `trial()` per move, and serial vs
//! parallel `Optimizer::sweep`.
//!
//! Emits `BENCH_eval.json` (override with `--json <path>` or
//! `SLPWLO_BENCH_JSON`) so the evaluator's perf trajectory is tracked
//! per PR; the CI smoke step runs this with `--samples 1`.
//!
//! Run with: `cargo bench -p slpwlo-bench --bench eval_incremental`

use slpwlo_accuracy::{AccuracyEvaluator, IncrementalEvaluator};
use slpwlo_bench::Micro;
use slpwlo_core::prepare;
use slpwlo_driver::{FlowKind, Optimizer};
use slpwlo_fixedpoint::{FixedPointSpec, SpecKey};
use slpwlo_ir::{BinOp, ExprNode};
use slpwlo_kernels::{fir64, paper_benchmarks};

fn main() {
    let mut m = Micro::for_bench("eval");

    for bench in paper_benchmarks() {
        let name = bench.name.to_lowercase();
        let prep = prepare(bench.kernel);
        let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, 32);

        // Baseline: the pre-existing full recompute per query.
        let full_ns = m.bench(&format!("eval_full/{name}"), || prep.eval.noise_db(&spec));

        // A representative single-key WLO move: shrink one multiply.
        let (mul, _) = prep
            .kernel
            .exprs()
            .find(|(_, n)| matches!(n, ExprNode::Bin(BinOp::Mul, _, _)))
            .expect("every paper kernel multiplies");
        let key = SpecKey::Expr(mul);
        let inc = IncrementalEvaluator::with_spec(&prep.eval, &spec);
        {
            // Differential sanity before timing anything.
            let mark = spec.mark();
            spec.set_wl(key, 16);
            let trial = inc.trial_noise_db(&spec, mark);
            let full = prep.eval.noise_db(&spec);
            assert_eq!(trial.to_bits(), full.to_bits(), "engine diverged");
            spec.rollback(mark);
            inc.rollback_trial();
        }
        let trial_ns = m.bench(&format!("eval_trial_1key/{name}"), || {
            let mark = spec.mark();
            spec.set_wl(key, 16);
            let db = inc.trial_noise_db(&spec, mark);
            spec.rollback(mark);
            inc.rollback_trial();
            db
        });
        m.metric(&format!("speedup_trial_1key/{name}"), full_ns / trial_ns);

        // A SETMAXWL-sized move: a 4-lane group's worth of keys.
        let keys = spec.optimizable_keys(&prep.kernel);
        let group: Vec<SpecKey> = keys.iter().copied().take(4).collect();
        let group_ns = m.bench(&format!("eval_trial_4keys/{name}"), || {
            let mark = spec.mark();
            for &k in &group {
                spec.set_wl(k, 16);
            }
            let db = inc.trial_noise_db(&spec, mark);
            spec.rollback(mark);
            inc.rollback_trial();
            db
        });
        m.metric(&format!("speedup_trial_4keys/{name}"), full_ns / group_ns);

        // Worst-case write set: every optimizable key in one trial (the
        // incremental engine degrades to a full walk plus bookkeeping).
        let all_ns = m.bench(&format!("eval_trial_allkeys/{name}"), || {
            let mark = spec.mark();
            for &k in &keys {
                spec.set_wl(k, 16);
            }
            let db = inc.trial_noise_db(&spec, mark);
            spec.rollback(mark);
            inc.rollback_trial();
            db
        });
        m.metric(&format!("speedup_trial_allkeys/{name}"), full_ns / all_ns);
    }

    // Constraint sweeps: the Fig. 4/6 workload shape. One prepared
    // kernel, several constraint points, serial vs parallel.
    let grid = [-20.0, -35.0, -50.0, -65.0];
    let opt = Optimizer::for_kernel(fir64())
        .expect("fir64 is valid")
        .flow(FlowKind::WloSlp);
    let serial_ns = m.bench("sweep_serial/fir64_x4", || {
        grid.iter()
            .map(|&db| opt.run_at(db).expect("feasible point").cycles_simd)
            .sum::<u64>()
    });
    let parallel_ns = m.bench("sweep_parallel/fir64_x4", || {
        opt.sweep(&grid)
            .expect("feasible grid")
            .iter()
            .map(|r| r.cycles_simd)
            .sum::<u64>()
    });
    m.metric("speedup_parallel_sweep/fir64_x4", serial_ns / parallel_ns);

    m.finish().expect("write bench JSON");
}
