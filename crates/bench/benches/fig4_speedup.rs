//! Criterion bench regenerating Figure 4 data points.
//!
//! Prints the reproduced speedup series once (representative constraint
//! grid), then benchmarks the cost of producing one figure cell — both
//! flows end-to-end on one (kernel, target, constraint) triple.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slpwlo_bench::harness::{run_point, PointOptions};
use slpwlo_bench::report;
use slpwlo_bench::sweep;
use slpwlo_core::prepare;
use slpwlo_kernels::all_benchmarks;
use slpwlo_targets::{all_targets, xentium};

fn print_reproduction() {
    let constraints: Vec<f64> = [-5.0, -20.0, -40.0, -60.0, -80.0, -95.0].to_vec();
    let targets = all_targets();
    let mut all = Vec::new();
    for bench in all_benchmarks() {
        all.extend(sweep(&bench, &targets, &constraints, &PointOptions::default()));
    }
    println!("\n--- Figure 4 reproduction (condensed grid) ---");
    println!("{}", report::fig4_text(&all));
}

fn bench_fig4(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("fig4_point");
    let target = xentium();
    for bench in all_benchmarks() {
        let prep = prepare(bench.kernel.clone());
        group.bench_with_input(
            BenchmarkId::new("both_flows", bench.name),
            &prep,
            |b, prep| {
                b.iter(|| {
                    run_point(
                        prep,
                        bench.name,
                        &target,
                        -40.0,
                        bench.activations,
                        &PointOptions::default(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
