//! Bench regenerating Figure 4 data points.
//!
//! Prints the reproduced speedup series once (representative constraint
//! grid), then benchmarks the cost of producing one figure cell — both
//! flows end-to-end on one (kernel, target, constraint) triple, with the
//! per-kernel analyses amortized the way `Optimizer::sweep` amortizes
//! them.
//!
//! Run with: `cargo bench -p slpwlo-bench --bench fig4_speedup`

use slpwlo_bench::harness::{optimizer_for, sweep, PointOptions};
use slpwlo_bench::{report, Micro};
use slpwlo_driver::{Error, FlowKind};
use slpwlo_kernels::paper_benchmarks;
use slpwlo_targets::{all_targets, xentium};

fn print_reproduction() -> Result<(), Error> {
    let constraints: Vec<f64> = [-5.0, -20.0, -40.0, -60.0, -80.0, -95.0].to_vec();
    let targets = all_targets();
    let mut all = Vec::new();
    for bench in paper_benchmarks() {
        all.extend(sweep(
            &bench,
            &targets,
            &constraints,
            &PointOptions::default(),
        )?);
    }
    println!("\n--- Figure 4 reproduction (condensed grid) ---");
    println!("{}", report::fig4_text(&all));
    Ok(())
}

fn main() -> Result<(), Error> {
    print_reproduction()?;
    let mut m = Micro::for_bench("fig4");
    for bench in paper_benchmarks() {
        // One Optimizer per benchmark: the once-per-kernel analyses run
        // once; `run_with` switches the flow per call.
        let opt = optimizer_for(&bench, &PointOptions::default())?
            .target(xentium())
            .constraint_db(-40.0);
        m.bench(&format!("fig4_point_both_flows/{}", bench.name), || {
            let a = opt.run_with(FlowKind::WloSlp).expect("feasible point");
            let b = opt.run_with(FlowKind::WloFirst).expect("feasible point");
            (a.cycles_simd, b.cycles_simd)
        });
    }
    m.finish().expect("write bench JSON");
    Ok(())
}
