//! Micro-benchmarks of the individual algorithm stages: accuracy
//! evaluation (`EVALACC`), noise-gain analysis, SLP candidate rounds,
//! Tabu WLO and the VLIW list scheduler.
//!
//! Run with: `cargo bench -p slpwlo-bench --bench algorithms`

use slpwlo_accuracy::{AccuracyEvaluator, AnalyticalEvaluator};
use slpwlo_bench::Micro;
use slpwlo_core::{cycles_per_activation, lower_scalar, prepare, tabu_wlo, TabuOptions};
use slpwlo_driver::Optimizer;
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::blocks::blocks_by_priority;
use slpwlo_ir::dfg::Dfg;
use slpwlo_kernels::{conv3x3, fir64};
use slpwlo_slp::{extract_plain, Round};
use slpwlo_targets::xentium;

fn main() {
    let mut m = Micro::for_bench("algorithms");

    let prep = prepare(fir64());
    let spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, 32);
    m.bench("evalacc_fir64", || prep.eval.noise_db(&spec));

    m.bench("gain_analysis_conv3x3", || {
        AnalyticalEvaluator::with_defaults(&conv3x3())
    });

    let kernel = conv3x3();
    let target = xentium();
    let blocks = blocks_by_priority(&kernel);
    let dfg = Dfg::from_block(&kernel, &blocks[0]);
    m.bench("slp_round_conv3x3", || Round::new(&dfg, &target, &[]));
    m.bench("slp_extract_plain_conv3x3", || {
        extract_plain(&dfg, &target, &|_| 16)
    });

    m.bench("tabu_wlo_fir64", || {
        let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, 32);
        tabu_wlo(
            &prep.kernel,
            &mut spec,
            &prep.eval,
            -40.0,
            &target.scalar_wls,
            &TabuOptions::default(),
        )
    });

    let prog = lower_scalar(&prep.kernel, &spec, &target);
    m.bench("vliw_schedule_fir64", || {
        cycles_per_activation(&target, &prog)
    });

    // True end-to-end runs: kernel in, optimized report out — range
    // analysis, gain measurement, WLO-SLP search, scheduling, the lot.
    // These keep the full pipeline honest; a regression anywhere in the
    // front-end or search shows up here even if every stage micro-bench
    // above stays flat.
    m.bench("optimize_e2e_fir64", || {
        Optimizer::for_kernel(fir64())
            .expect("valid kernel")
            .target(xentium())
            .constraint_db(-40.0)
            .run()
            .expect("e2e optimize")
    });
    m.bench("optimize_e2e_conv3x3", || {
        Optimizer::for_kernel(conv3x3())
            .expect("valid kernel")
            .target(xentium())
            .constraint_db(-40.0)
            .run()
            .expect("e2e optimize")
    });

    m.finish().expect("write bench JSON");
}
