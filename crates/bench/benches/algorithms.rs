//! Micro-benchmarks of the individual algorithm stages: accuracy
//! evaluation (`EVALACC`), noise-gain analysis, SLP candidate rounds,
//! Tabu WLO and the VLIW list scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use slpwlo_accuracy::{AccuracyEvaluator, AnalyticalEvaluator};
use slpwlo_core::{lower_scalar, prepare, tabu_wlo, TabuOptions};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::blocks::blocks_by_priority;
use slpwlo_ir::dfg::Dfg;
use slpwlo_kernels::{conv3x3, fir64};
use slpwlo_sim::cycles_per_activation;
use slpwlo_slp::{extract_plain, Round};
use slpwlo_targets::xentium;

fn bench_evalacc(c: &mut Criterion) {
    let prep = prepare(fir64());
    let spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, 32);
    c.bench_function("evalacc_fir64", |b| b.iter(|| prep.eval.noise_db(&spec)));
}

fn bench_gain_analysis(c: &mut Criterion) {
    c.bench_function("gain_analysis_conv3x3", |b| {
        b.iter(|| AnalyticalEvaluator::with_defaults(&conv3x3()))
    });
}

fn bench_slp_round(c: &mut Criterion) {
    let kernel = conv3x3();
    let target = xentium();
    let blocks = blocks_by_priority(&kernel);
    let dfg = Dfg::from_block(&kernel, &blocks[0]);
    c.bench_function("slp_round_conv3x3", |b| b.iter(|| Round::new(&dfg, &target, &[])));
    c.bench_function("slp_extract_plain_conv3x3", |b| {
        b.iter(|| extract_plain(&dfg, &target, &|_| 16))
    });
}

fn bench_tabu(c: &mut Criterion) {
    let prep = prepare(fir64());
    let target = xentium();
    c.bench_function("tabu_wlo_fir64", |b| {
        b.iter(|| {
            let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, 32);
            tabu_wlo(
                &prep.kernel,
                &mut spec,
                &prep.eval,
                -40.0,
                &target.scalar_wls,
                &TabuOptions::default(),
            )
        })
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let prep = prepare(fir64());
    let target = xentium();
    let spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, 32);
    let prog = lower_scalar(&prep.kernel, &spec, &target);
    c.bench_function("vliw_schedule_fir64", |b| {
        b.iter(|| cycles_per_activation(&target, &prog))
    });
}

criterion_group!(
    benches,
    bench_evalacc,
    bench_gain_analysis,
    bench_slp_round,
    bench_tabu,
    bench_scheduler
);
criterion_main!(benches);
