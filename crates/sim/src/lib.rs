//! VLIW cycle-count simulation.
//!
//! Substitutes for the vendor cycle-accurate simulators of the paper's
//! evaluation: lowered machine programs are list-scheduled onto the
//! target's issue slots and functional units, respecting operation
//! latencies, macro-op expansions (e.g. 32-bit multiplies on a 16x16
//! multiplier array) and the machine-serializing nature of soft-float
//! library calls. Loop blocks pay a per-iteration control overhead.
//!
//! Absolute cycle counts are approximations of the real cores; the
//! *relative* comparisons the paper draws (SIMD vs scalar code produced
//! by the two flows, fixed-point vs floating point) are what this model
//! preserves.

pub mod exec;

/// Resource-constrained list scheduling, hosted in `slpwlo-core` (so the
/// compilation flows can consult the schedule when pruning unprofitable
/// packs) and re-exported here unchanged.
pub use slpwlo_core::sched;

pub use exec::{execute_fixed, ExecError, Machine};
pub use slpwlo_core::sched::{
    block_cycles, cycles_per_activation, schedule_block, total_cycles, Schedule,
};

/// Speedup of `cycles` relative to `baseline` (equation (2) of the
/// paper: `baseline / cycles`).
///
/// # Panics
///
/// Panics if `cycles` is zero.
pub fn speedup(baseline: u64, cycles: u64) -> f64 {
    assert!(cycles > 0, "cycle count must be positive");
    baseline as f64 / cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ratio() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(50, 100), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycles_panics() {
        let _ = speedup(1, 0);
    }
}
