//! Bit-accurate execution of lowered machine programs.
//!
//! Substitutes for the vendor instruction-set simulators of the paper's
//! evaluation: [`execute_fixed`] interprets a lowered fixed-point
//! program operation by operation, reproducing the exact arithmetic the
//! generated C would perform. Cycle counting (list and modulo
//! scheduling onto the target's issue slots and functional units) lives
//! in `slpwlo-core`'s `sched` module, where the compilation flows can
//! consult schedules when pruning unprofitable packs — use
//! `slpwlo_core::{schedule_block, total_cycles, ...}` directly.

pub mod exec;

pub use exec::{execute_fixed, ExecError, Machine};

/// Speedup of `cycles` relative to `baseline` (equation (2) of the
/// paper: `baseline / cycles`).
///
/// # Panics
///
/// Panics if `cycles` is zero.
pub fn speedup(baseline: u64, cycles: u64) -> f64 {
    assert!(cycles > 0, "cycle count must be positive");
    baseline as f64 / cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ratio() {
        assert_eq!(speedup(100, 50), 2.0);
        assert_eq!(speedup(50, 100), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycles_panics() {
        let _ = speedup(1, 0);
    }
}
