//! Bit-accurate execution of lowered machine programs.
//!
//! The [`Machine`] interprets the [`MopKind`] view of a
//! [`MachineProgram`] — scalar *and* vector — with exactly the
//! fixed-point semantics of the reference simulation
//! (`slpwlo-accuracy`'s `simulate_fixed`): truncation toward negative
//! infinity when bits are discarded, saturation at every result format,
//! exact integer intermediates. This makes the interpreter the golden
//! reference for any code-generation back-end: whatever a backend emits
//! for a program must reproduce the interpreter's outputs bit for bit.
//!
//! Values are `(raw, format)` pairs. Superwords are lane vectors of
//! such pairs — formats may legitimately differ between lanes (the
//! whole point of the fig. 2 scaling discussion), and the per-lane
//! formats recorded by the lowering drive every requantization.

use slpwlo_core::{
    broadcast_lane, loop_forest, product_fmt, Loc, LoopNest, MachineBlock, MachineProgram, MopKind,
    Operand,
};
use slpwlo_fixedpoint::quantize::{OverflowMode, QuantizeMode};
use slpwlo_fixedpoint::{FxValue, QFormat};
use slpwlo_ir::types::{BinOp, LoopId};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while executing a machine program.
#[derive(Debug)]
pub enum ExecError {
    /// The program contains an operation without executable semantics
    /// (floating-point lowerings are cost-model-only).
    Opaque,
    /// The number of input streams does not match the program.
    InputCount {
        /// Streams the program declares.
        expected: usize,
        /// Streams supplied.
        got: usize,
    },
    /// Input streams have unequal lengths.
    RaggedInputs,
    /// An exact intermediate (a full-precision product kept on its
    /// natural grid) does not fit the 64-bit value representation.
    Overflow,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Opaque => {
                write!(f, "program contains cost-model-only (opaque) operations")
            }
            ExecError::InputCount { expected, got } => {
                write!(f, "program expects {expected} input stream(s), got {got}")
            }
            ExecError::RaggedInputs => write!(f, "input streams must have equal lengths"),
            ExecError::Overflow => {
                write!(
                    f,
                    "exact intermediate exceeds the 64-bit value representation"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// A fixed-point value: raw two's-complement integer on a format grid.
#[derive(Debug, Clone, Copy)]
struct Fx {
    raw: i64,
    fmt: QFormat,
}

impl Fx {
    fn zero(fmt: QFormat) -> Self {
        Fx { raw: 0, fmt }
    }

    fn to_f64(self) -> f64 {
        self.raw as f64 * f64::powi(2.0, -self.fmt.fwl)
    }
}

/// Truncating (floor) grid change without saturation — the
/// pre-alignment of additive operands, where overflow is impossible.
fn grid_align(v: Fx, fwl: i32) -> i128 {
    let s = v.fmt.fwl - fwl;
    if s > 0 {
        (v.raw as i128) >> s.min(126)
    } else {
        (v.raw as i128) << (-s).min(126)
    }
}

/// Requantizes a raw value on grid `2^-from_fwl` onto `to`: truncation
/// toward negative infinity, then saturation at the format bounds.
fn requant(raw: i128, from_fwl: i32, to: QFormat) -> Fx {
    let shift = from_fwl - to.fwl;
    let v = if shift > 0 {
        raw >> shift.min(126) as u32
    } else {
        raw << (-shift).min(126) as u32
    };
    let raw = v.clamp(to.min_raw() as i128, to.max_raw() as i128) as i64;
    Fx { raw, fmt: to }
}

/// Quantizes an incoming f64 sample — the reference simulation's input
/// conversion, delegated to `FxValue` so the two can never drift.
fn quantize_input(x: f64, to: QFormat) -> Fx {
    let v = FxValue::from_f64(x, to, QuantizeMode::Truncate, OverflowMode::Saturate);
    Fx {
        raw: v.raw(),
        fmt: to,
    }
}

/// One register value: a vector of lanes (scalars have one lane).
type Slot = Vec<Fx>;

fn lane_of(slot: &Slot, lane: usize) -> Fx {
    broadcast_lane(slot, lane)
}

/// Interprets a lowered [`MachineProgram`] bit-accurately.
///
/// State arrays and variables persist across activations, mirroring the
/// kernel execution model (delay lines, feedback).
#[derive(Debug)]
pub struct Machine<'p> {
    prog: &'p MachineProgram,
    /// Shared loop structure over the blocks: loops common to several
    /// blocks (inner loop + unroll remainder under one outer loop) must
    /// be entered once, interleaving the blocks per iteration like the
    /// source program does.
    forest: Vec<LoopNest>,
    arrays: Vec<Vec<Fx>>,
    vars: Vec<Fx>,
    outputs: Vec<Fx>,
}

impl<'p> Machine<'p> {
    /// Creates a machine with zeroed state.
    pub fn new(prog: &'p MachineProgram) -> Self {
        let arrays = prog
            .storage
            .arrays
            .iter()
            .map(|a| vec![Fx::zero(a.fmt); a.len])
            .collect();
        let vars = prog
            .storage
            .vars
            .iter()
            .map(|_| Fx::zero(QFormat::new(1, 30)))
            .collect();
        let outputs = prog
            .storage
            .outputs
            .iter()
            .map(|_| Fx::zero(QFormat::new(1, 30)))
            .collect();
        Machine {
            prog,
            forest: loop_forest(&prog.blocks),
            arrays,
            vars,
            outputs,
        }
    }

    /// Resets arrays, variables and outputs to the initial state.
    pub fn reset(&mut self) {
        for arr in &mut self.arrays {
            for v in arr.iter_mut() {
                v.raw = 0;
            }
        }
        for v in &mut self.vars {
            *v = Fx::zero(QFormat::new(1, 30));
        }
        for o in &mut self.outputs {
            *o = Fx::zero(QFormat::new(1, 30));
        }
    }

    /// Runs the program over `inputs[i][n]` (stream `i`, activation `n`)
    /// and returns `outputs[o][n]`.
    pub fn run(&mut self, inputs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ExecError> {
        let expected = self.prog.storage.inputs.len();
        if inputs.len() != expected {
            return Err(ExecError::InputCount {
                expected,
                got: inputs.len(),
            });
        }
        let n = inputs.first().map_or(0, |v| v.len());
        if inputs.iter().any(|v| v.len() != n) {
            return Err(ExecError::RaggedInputs);
        }
        let mut out = vec![Vec::with_capacity(n); self.prog.storage.outputs.len()];
        let mut sample = vec![0.0; inputs.len()];
        for a in 0..n {
            for (i, s) in inputs.iter().enumerate() {
                sample[i] = s[a];
            }
            let vals = self.step(&sample)?;
            for (o, v) in vals.into_iter().enumerate() {
                out[o].push(v);
            }
        }
        Ok(out)
    }

    /// Executes one activation and returns the output values.
    pub fn step(&mut self, sample: &[f64]) -> Result<Vec<f64>, ExecError> {
        let forest = std::mem::take(&mut self.forest);
        let mut env: HashMap<LoopId, i64> = HashMap::new();
        let result = self.exec_forest(&forest, &mut env, sample);
        self.forest = forest;
        result?;
        Ok(self.outputs.iter().map(|v| v.to_f64()).collect())
    }

    /// Walks the shared loop structure: loops iterate once over their
    /// whole body (all blocks and nested loops, interleaved per
    /// iteration like the source program's statement order).
    fn exec_forest(
        &mut self,
        nests: &[LoopNest],
        env: &mut HashMap<LoopId, i64>,
        sample: &[f64],
    ) -> Result<(), ExecError> {
        let prog = self.prog;
        for nest in nests {
            match nest {
                LoopNest::Block(bi) => {
                    self.exec_block_once(&prog.blocks[*bi], env, sample)?;
                }
                LoopNest::Loop { var, count, body } => {
                    for trip in 0..*count {
                        env.insert(*var, trip as i64);
                        self.exec_forest(body, env, sample)?;
                    }
                    env.remove(var);
                }
            }
        }
        Ok(())
    }

    fn exec_block_once(
        &mut self,
        block: &MachineBlock,
        env: &HashMap<LoopId, i64>,
        sample: &[f64],
    ) -> Result<(), ExecError> {
        // Live-in reads see the variable state at iteration entry.
        let snapshot = self.vars.clone();
        let mut regs: Vec<Option<Slot>> = Vec::with_capacity(block.ops.len());
        let value_of = |regs: &[Option<Slot>], snapshot: &[Fx], o: &Operand| -> Slot {
            match o {
                Operand::Op(i) => regs[*i].clone().expect("operand op produces a value"),
                Operand::Imm { raw, fmt } => vec![Fx {
                    raw: *raw,
                    fmt: *fmt,
                }],
                Operand::Var(v) => vec![snapshot[v.index()]],
            }
        };
        for op in &block.ops {
            let result: Option<Slot> = match &op.kind {
                MopKind::Opaque => return Err(ExecError::Opaque),
                MopKind::Nop => None,
                MopKind::ReadInput { input, to } => {
                    Some(vec![quantize_input(sample[input.index()], *to)])
                }
                MopKind::Load { loc } => Some(vec![self.load(loc, env)]),
                MopKind::VLoad { locs } => Some(locs.iter().map(|l| self.load(l, env)).collect()),
                MopKind::Store { loc, src, to } => {
                    let v = lane_of(&value_of(&regs, &snapshot, src), 0);
                    self.store(loc, env, requant(v.raw as i128, v.fmt.fwl, *to));
                    None
                }
                MopKind::VStore { locs, src, to } => {
                    let v = value_of(&regs, &snapshot, src);
                    for (lane, loc) in locs.iter().enumerate() {
                        let x = lane_of(&v, lane);
                        self.store(loc, env, requant(x.raw as i128, x.fmt.fwl, *to));
                    }
                    None
                }
                MopKind::ShiftIn { array, src, to } => {
                    let v = lane_of(&value_of(&regs, &snapshot, src), 0);
                    let q = requant(v.raw as i128, v.fmt.fwl, *to);
                    let arr = &mut self.arrays[array.index()];
                    for i in (1..arr.len()).rev() {
                        arr[i] = arr[i - 1];
                    }
                    arr[0] = q;
                    None
                }
                MopKind::Output { index, src } => {
                    let v = lane_of(&value_of(&regs, &snapshot, src), 0);
                    self.outputs[*index] = v;
                    None
                }
                MopKind::Bin { op, a, b, to } => {
                    let av = lane_of(&value_of(&regs, &snapshot, a), 0);
                    let bv = lane_of(&value_of(&regs, &snapshot, b), 0);
                    Some(vec![exec_bin(*op, av, bv, to.as_ref().copied())?])
                }
                MopKind::VBin { op, a, b, to } => {
                    let av = value_of(&regs, &snapshot, a);
                    let bv = value_of(&regs, &snapshot, b);
                    let lanes = av.len().max(bv.len());
                    Some(
                        (0..lanes)
                            .map(|l| {
                                let t = to.as_ref().map(|t| t[l]);
                                exec_bin(*op, lane_of(&av, l), lane_of(&bv, l), t)
                            })
                            .collect::<Result<_, _>>()?,
                    )
                }
                MopKind::Un { src, to } => {
                    let v = lane_of(&value_of(&regs, &snapshot, src), 0);
                    Some(vec![requant(-(v.raw as i128), v.fmt.fwl, *to)])
                }
                MopKind::VUn { src, to } => {
                    let v = value_of(&regs, &snapshot, src);
                    Some(
                        to.iter()
                            .enumerate()
                            .map(|(l, t)| {
                                let x = lane_of(&v, l);
                                requant(-(x.raw as i128), x.fmt.fwl, *t)
                            })
                            .collect(),
                    )
                }
                MopKind::Requant { src, to } => {
                    let v = lane_of(&value_of(&regs, &snapshot, src), 0);
                    Some(vec![requant(v.raw as i128, v.fmt.fwl, *to)])
                }
                MopKind::VRequant { src, to, negate } => {
                    let v = value_of(&regs, &snapshot, src);
                    Some(
                        to.iter()
                            .enumerate()
                            .map(|(l, t)| {
                                let x = lane_of(&v, l);
                                let raw = if *negate {
                                    -(x.raw as i128)
                                } else {
                                    x.raw as i128
                                };
                                requant(raw, x.fmt.fwl, *t)
                            })
                            .collect(),
                    )
                }
                MopKind::Copy { src } => Some(value_of(&regs, &snapshot, src)),
                MopKind::Pack { lanes } => Some(
                    lanes
                        .iter()
                        .map(|o| lane_of(&value_of(&regs, &snapshot, o), 0))
                        .collect(),
                ),
                MopKind::Splat { src, lanes } => {
                    let v = lane_of(&value_of(&regs, &snapshot, src), 0);
                    Some(vec![v; *lanes as usize])
                }
                MopKind::Extract {
                    src,
                    lane,
                    negate,
                    to,
                } => {
                    let v = lane_of(&value_of(&regs, &snapshot, src), *lane as usize);
                    let raw = if *negate {
                        -(v.raw as i128)
                    } else {
                        v.raw as i128
                    };
                    Some(vec![match to {
                        Some(t) => requant(raw, v.fmt.fwl, *t),
                        None => Fx {
                            raw: i64::try_from(raw).map_err(|_| ExecError::Overflow)?,
                            fmt: v.fmt,
                        },
                    }])
                }
            };
            regs.push(result);
        }
        // Commit the iteration's variable definitions (last write wins,
        // reads above saw the entry snapshot — live-in semantics).
        for (v, def) in &block.var_defs {
            let val = lane_of(&value_of(&regs, &snapshot, def), 0);
            self.vars[v.index()] = val;
        }
        Ok(())
    }

    fn load(&self, loc: &Loc, env: &HashMap<LoopId, i64>) -> Fx {
        match loc {
            Loc::Array(a, ix) => {
                let arr = &self.arrays[a.index()];
                let idx = ix
                    .eval(&|l| env.get(&l).copied().unwrap_or(0))
                    .rem_euclid(arr.len() as i64) as usize;
                arr[idx]
            }
            Loc::Param(p, ix) => {
                let decl = &self.prog.storage.params[p.index()];
                let idx = ix
                    .eval(&|l| env.get(&l).copied().unwrap_or(0))
                    .rem_euclid(decl.raws.len() as i64) as usize;
                Fx {
                    raw: decl.raws[idx],
                    fmt: decl.fmt,
                }
            }
        }
    }

    fn store(&mut self, loc: &Loc, env: &HashMap<LoopId, i64>, v: Fx) {
        match loc {
            Loc::Array(a, ix) => {
                let arr = &mut self.arrays[a.index()];
                let idx = ix
                    .eval(&|l| env.get(&l).copied().unwrap_or(0))
                    .rem_euclid(arr.len() as i64) as usize;
                arr[idx] = v;
            }
            Loc::Param(..) => unreachable!("parameter tables are read-only"),
        }
    }
}

/// Scalar arithmetic with the reference fixed-point semantics.
fn exec_bin(op: BinOp, a: Fx, b: Fx, to: Option<QFormat>) -> Result<Fx, ExecError> {
    match op {
        BinOp::Add | BinOp::Sub => {
            let t = to.expect("additive ops always carry a result format");
            let aa = grid_align(a, t.fwl);
            let bb = grid_align(b, t.fwl);
            let sum = if matches!(op, BinOp::Sub) {
                aa - bb
            } else {
                aa + bb
            };
            Ok(requant(sum, t.fwl, t))
        }
        BinOp::Mul => {
            let prod = a.raw as i128 * b.raw as i128;
            let from = a.fmt.fwl + b.fmt.fwl;
            match to {
                Some(t) => Ok(requant(prod, from, t)),
                // Full-precision product kept on `product_fmt`'s grid.
                // When the operands are wide (covering variable storage
                // formats), that grid is coarser than the natural
                // product grid so the raw value fits 64 bits; the floor
                // shift composes exactly with the follow-up requant (the
                // C back-ends do the same through `slpwlo_mul_shr`).
                None => {
                    let pf = product_fmt(a.fmt, b.fmt);
                    let shifted = prod >> (from - pf.fwl).clamp(0, 126);
                    Ok(Fx {
                        raw: i64::try_from(shifted).map_err(|_| ExecError::Overflow)?,
                        fmt: pf,
                    })
                }
            }
        }
    }
}

/// Executes a fixed-point machine program over input streams and
/// returns `outputs[o][n]` — the bit-accurate golden reference for any
/// backend consuming the same program.
pub fn execute_fixed(
    prog: &MachineProgram,
    inputs: &[Vec<f64>],
) -> Result<Vec<Vec<f64>>, ExecError> {
    Machine::new(prog).run(inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_core::lower_float;
    use slpwlo_ir::parser::parse_kernel;

    #[test]
    fn float_programs_are_opaque() {
        let k = parse_kernel(
            "kernel k { input x range [-1, 1]; output y; var t; t = 0.5 * x; y = t; }",
        )
        .unwrap();
        let prog = lower_float(&k);
        let err = execute_fixed(&prog, &[vec![0.5]]).unwrap_err();
        assert!(matches!(err, ExecError::Opaque), "{err}");
    }

    #[test]
    fn input_shape_is_checked() {
        let k = parse_kernel(
            "kernel k { input x range [-1, 1]; output y; var t; t = 0.5 * x; y = t; }",
        )
        .unwrap();
        let prog = lower_float(&k);
        let err = execute_fixed(&prog, &[]).unwrap_err();
        assert!(matches!(
            err,
            ExecError::InputCount {
                expected: 1,
                got: 0
            }
        ));
    }
}
