//! The workspace-wide structured error type.
//!
//! Every fallible user-input path of the tool-chain — kernel parsing and
//! validation, input-range sanity, builder configuration, constraint
//! feasibility, artifact export — surfaces as one [`Error`] variant
//! instead of a panic, so drivers (CLIs, benches, services) can match on
//! the failure class and react.

use slpwlo_ir::IrError;
use std::fmt;
use std::path::PathBuf;

/// Errors produced by the [`Optimizer`](crate::Optimizer) driver API.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The kernel DSL source failed to lex or parse.
    Parse(IrError),
    /// The kernel parsed (or was built programmatically) but failed
    /// structural validation.
    InvalidKernel(IrError),
    /// An input's declared value range is unusable for range analysis
    /// (non-finite bound, or `lo > hi`).
    Range {
        /// Name of the offending input.
        input: String,
        /// Declared lower bound.
        lo: f64,
        /// Declared upper bound.
        hi: f64,
    },
    /// The builder was configured inconsistently.
    Config {
        /// The builder field at fault (e.g. `"constraint_db"`).
        field: &'static str,
        /// What is wrong with it.
        message: String,
    },
    /// The accuracy constraint cannot be met even with every node at the
    /// target's maximum word length.
    Unsatisfiable {
        /// Flow that was about to run.
        flow: String,
        /// The requested output-noise bound (dB).
        constraint_db: f64,
        /// The best (lowest) noise the target can reach (dB).
        floor_db: f64,
    },
    /// A flow name did not match any registered flow.
    UnknownFlow(String),
    /// Writing a generated artifact to disk failed.
    Export {
        /// Destination path.
        path: PathBuf,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// A C back-end could not render the program.
    Codegen(slpwlo_codegen::CodegenError),
    /// A pass-boundary static check failed: some stage produced an
    /// artifact that violates one of its invariants (see
    /// [`slpwlo_verify::verify_boundary`]).
    Verify(slpwlo_verify::VerifyError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "kernel parse error: {e}"),
            Error::InvalidKernel(e) => write!(f, "invalid kernel: {e}"),
            Error::Range { input, lo, hi } => {
                write!(f, "unusable range [{lo}, {hi}] on input `{input}`")
            }
            Error::Config { field, message } => {
                write!(f, "invalid optimizer configuration ({field}): {message}")
            }
            Error::Unsatisfiable {
                flow,
                constraint_db,
                floor_db,
            } => write!(
                f,
                "constraint {constraint_db} dB is unsatisfiable for flow `{flow}`: \
                 the target's maximum word length bottoms out at {floor_db:.1} dB"
            ),
            Error::UnknownFlow(name) => {
                write!(
                    f,
                    "unknown flow `{name}` (built-in flows: wlo-slp, wlo-first, float)"
                )
            }
            Error::Export { path, source } => {
                write!(f, "failed to export `{}`: {source}", path.display())
            }
            Error::Codegen(e) => write!(f, "code generation failed: {e}"),
            Error::Verify(e) => write!(f, "static verification failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) | Error::InvalidKernel(e) => Some(e),
            Error::Export { source, .. } => Some(source),
            Error::Codegen(e) => Some(e),
            Error::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for Error {
    fn from(e: IrError) -> Self {
        Error::Parse(e)
    }
}

impl From<slpwlo_codegen::CodegenError> for Error {
    fn from(e: slpwlo_codegen::CodegenError) -> Self {
        Error::Codegen(e)
    }
}

impl From<slpwlo_verify::VerifyError> for Error {
    fn from(e: slpwlo_verify::VerifyError) -> Self {
        Error::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_essentials() {
        let e = Error::Unsatisfiable {
            flow: "wlo-slp".into(),
            constraint_db: -160.0,
            floor_db: -131.4,
        };
        let s = e.to_string();
        assert!(s.contains("-160"));
        assert!(s.contains("-131.4"));
        assert!(s.contains("wlo-slp"));

        let e = Error::Config {
            field: "constraint_db",
            message: "must be finite".into(),
        };
        assert!(e.to_string().contains("constraint_db"));

        let e = Error::Range {
            input: "x".into(),
            lo: 1.0,
            hi: -1.0,
        };
        assert!(e.to_string().contains("`x`"));
    }

    #[test]
    fn source_chains_to_ir_errors() {
        use std::error::Error as _;
        let e = Error::Parse(IrError::Parse {
            line: 1,
            col: 2,
            msg: "boom".into(),
        });
        assert!(e.source().is_some());
        assert!(e.source().unwrap().to_string().contains("boom"));
    }
}
