//! First-class compilation flows.
//!
//! The paper compares three ways of producing code for one kernel:
//! the joint **`WLO-SLP`** flow (fig. 3), the **`WLO-First`** baseline
//! (fig. 5, Tabu WLO then accuracy-unaware SLP) and the original
//! **floating-point** version. Each is a [`CompilationFlow`] strategy; the
//! [`Optimizer`](crate::Optimizer) runs whichever is configured, and new
//! flows (different WLO searches, different extraction policies, new
//! back-ends) plug in through the same trait without touching the driver.

use crate::error::Error;
use slpwlo_core::{
    lower_float, wlo_first_flow_checked, wlo_slp_flow_checked, BenefitKind, MachineProgram,
    PassArtifact, Prepared, ProgramRole, SelectStats, TabuOptions,
};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_targets::{SchedKind, TargetModel};
use slpwlo_verify::{verify_boundary, VerifyLevel};

/// Everything a flow needs to run on one (kernel, target, constraint)
/// point. Borrowed from the [`Optimizer`](crate::Optimizer), so sweeps
/// amortize the expensive per-kernel analyses.
pub struct FlowContext<'a> {
    /// The kernel with its once-per-kernel analyses.
    pub prep: &'a Prepared,
    /// The processor model to compile for.
    pub target: &'a TargetModel,
    /// The output-noise bound in dB; `None` for flows that do not
    /// quantize (the float baseline).
    pub constraint_db: Option<f64>,
    /// Options for Tabu-search based flows.
    pub tabu: &'a TabuOptions,
    /// SLP candidate-pricing strategy for flows that extract groups.
    pub benefit: BenefitKind,
    /// Block-scheduling strategy: flat list scheduling or modulo
    /// scheduling (software pipelining) of in-loop blocks.
    pub sched: SchedKind,
    /// How much pass-boundary static verification to run.
    pub verify: VerifyLevel,
}

impl FlowContext<'_> {
    /// The pass-boundary callback built-in flows thread through the
    /// checked core flows: `slpwlo-verify`'s [`verify_boundary`] at the
    /// configured level, lifted into the driver's [`Error`]. Custom
    /// [`CompilationFlow`] implementations that call the core
    /// `*_flow_checked` entry points should pass this.
    pub fn boundary_check(&self) -> impl FnMut(PassArtifact<'_>) -> Result<(), Error> + '_ {
        |artifact| verify_boundary(self.verify, &artifact).map_err(Error::Verify)
    }
}

/// What a flow produces for one point.
#[derive(Debug)]
pub struct FlowOutput {
    /// The fixed-point specification; `None` for non-quantizing flows.
    pub spec: Option<FixedPointSpec>,
    /// The optimized (possibly SIMD) machine program.
    pub program: MachineProgram,
    /// An all-scalar program under the same specification, used as the
    /// in-report speedup denominator.
    pub scalar: MachineProgram,
    /// Number of SIMD groups realised in `program`.
    pub group_count: usize,
    /// Predicted output noise power of `spec` (dB); `None` when exact.
    pub noise_db: Option<f64>,
    /// Exact-selector search statistics (all zeros under the greedy
    /// benefit kinds and for flows that do not extract groups).
    pub select: SelectStats,
}

/// A pluggable compilation strategy.
///
/// Implementations must be deterministic for a given context (the whole
/// reproduction is seeded) and must *not* panic on unsatisfiable
/// constraints — the driver pre-checks feasibility and expects flows to
/// return structured errors for anything else.
pub trait CompilationFlow {
    /// Stable machine-readable name (also the registry key).
    fn name(&self) -> &'static str;

    /// `true` when the flow quantizes and therefore needs a noise
    /// constraint; the driver enforces presence/absence accordingly.
    fn needs_constraint(&self) -> bool {
        true
    }

    /// Runs the flow on one point.
    fn run(&self, ctx: &FlowContext<'_>) -> Result<FlowOutput, Error>;
}

/// The built-in flows, in the paper's order of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FlowKind {
    /// The paper's joint SLP-aware WLO (fig. 3).
    WloSlp,
    /// The `WLO-First` baseline: Tabu WLO, then plain SLP (fig. 5).
    WloFirst,
    /// The original floating-point version (no quantization, no SLP).
    Float,
}

impl FlowKind {
    /// All built-in flows.
    pub fn all() -> [FlowKind; 3] {
        [FlowKind::WloSlp, FlowKind::WloFirst, FlowKind::Float]
    }

    /// The registry key of this flow.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::WloSlp => "wlo-slp",
            FlowKind::WloFirst => "wlo-first",
            FlowKind::Float => "float",
        }
    }

    /// Looks a built-in flow up by its registry key.
    pub fn from_name(name: &str) -> Result<FlowKind, Error> {
        FlowKind::all()
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| Error::UnknownFlow(name.to_string()))
    }

    /// Instantiates the strategy object for this kind.
    pub fn instantiate(self) -> Box<dyn CompilationFlow + Send + Sync> {
        match self {
            FlowKind::WloSlp => Box::new(WloSlpFlow),
            FlowKind::WloFirst => Box::new(WloFirstFlow),
            FlowKind::Float => Box::new(FloatFlow),
        }
    }
}

impl std::fmt::Display for FlowKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The canonical "quantizing flow without a constraint" error — the one
/// copy of its field/message pair.
pub(crate) fn missing_constraint(flow: &str) -> Error {
    Error::Config {
        field: "constraint_db",
        message: format!("flow `{flow}` quantizes and needs a noise constraint"),
    }
}

/// Extracts the noise constraint a quantizing flow needs, with the
/// canonical [`Error::Config`] when absent. Custom [`CompilationFlow`]
/// implementations should use this instead of hand-rolling the error.
pub fn required_constraint(ctx: &FlowContext<'_>, flow: &str) -> Result<f64, Error> {
    ctx.constraint_db.ok_or_else(|| missing_constraint(flow))
}

/// The paper's joint flow as a strategy.
pub struct WloSlpFlow;

impl CompilationFlow for WloSlpFlow {
    fn name(&self) -> &'static str {
        FlowKind::WloSlp.name()
    }

    fn run(&self, ctx: &FlowContext<'_>) -> Result<FlowOutput, Error> {
        let db = required_constraint(ctx, self.name())?;
        let res = wlo_slp_flow_checked(
            ctx.prep,
            ctx.target,
            db,
            ctx.benefit,
            ctx.sched,
            &mut ctx.boundary_check(),
        )?;
        Ok(FlowOutput {
            spec: Some(res.spec),
            program: res.simd,
            scalar: res.scalar,
            group_count: res.group_count,
            noise_db: Some(res.noise_db),
            select: res.select,
        })
    }
}

/// The `WLO-First` baseline as a strategy.
pub struct WloFirstFlow;

impl CompilationFlow for WloFirstFlow {
    fn name(&self) -> &'static str {
        FlowKind::WloFirst.name()
    }

    fn run(&self, ctx: &FlowContext<'_>) -> Result<FlowOutput, Error> {
        let db = required_constraint(ctx, self.name())?;
        let res = wlo_first_flow_checked(
            ctx.prep,
            ctx.target,
            db,
            ctx.tabu,
            ctx.benefit,
            ctx.sched,
            &mut ctx.boundary_check(),
        )?;
        Ok(FlowOutput {
            spec: Some(res.spec),
            program: res.simd,
            scalar: res.scalar,
            group_count: res.group_count,
            noise_db: Some(res.noise_db),
            select: res.select,
        })
    }
}

/// The original floating-point version as a strategy.
pub struct FloatFlow;

impl CompilationFlow for FloatFlow {
    fn name(&self) -> &'static str {
        FlowKind::Float.name()
    }

    fn needs_constraint(&self) -> bool {
        false
    }

    fn run(&self, ctx: &FlowContext<'_>) -> Result<FlowOutput, Error> {
        let mut check = ctx.boundary_check();
        check(PassArtifact::Kernel {
            kernel: &ctx.prep.kernel,
        })?;
        let program = lower_float(&ctx.prep.kernel);
        check(PassArtifact::Program {
            program: &program,
            target: ctx.target,
            role: ProgramRole::Simd,
            sched: ctx.sched,
        })?;
        let scalar = program.clone();
        Ok(FlowOutput {
            spec: None,
            program,
            scalar,
            group_count: 0,
            noise_db: None,
            select: SelectStats::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips() {
        for kind in FlowKind::all() {
            assert_eq!(FlowKind::from_name(kind.name()).unwrap(), kind);
            assert_eq!(kind.instantiate().name(), kind.name());
        }
    }

    #[test]
    fn unknown_flow_is_a_typed_error() {
        match FlowKind::from_name("superopt") {
            Err(Error::UnknownFlow(n)) => assert_eq!(n, "superopt"),
            other => panic!("expected UnknownFlow, got {other:?}"),
        }
    }

    #[test]
    fn only_float_skips_the_constraint() {
        assert!(FlowKind::WloSlp.instantiate().needs_constraint());
        assert!(FlowKind::WloFirst.instantiate().needs_constraint());
        assert!(!FlowKind::Float.instantiate().needs_constraint());
    }
}
