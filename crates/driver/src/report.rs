//! The unified result of one flow run.

use crate::error::Error;
use slpwlo_codegen::{emit_fixed_c, emit_intrinsics_header, emit_simd_c};
use slpwlo_core::{MachineProgram, SelectStats};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::Kernel;
use slpwlo_sim::speedup;
use slpwlo_targets::{SchedKind, TargetModel};
use std::path::{Path, PathBuf};

/// Everything one [`Optimizer::run`](crate::Optimizer::run) produces:
/// the specification, both machine programs, cycle counts under the
/// target's VLIW model, and the predicted noise.
#[derive(Debug)]
pub struct Report {
    /// Kernel name.
    pub kernel_name: String,
    /// Registry name of the flow that produced this report.
    pub flow: String,
    /// The target compiled for (owned copy, so the report is
    /// self-contained for export and later inspection).
    pub target: TargetModel,
    /// The kernel compiled (owned copy, for export).
    pub kernel: Kernel,
    /// The noise constraint this point ran at; `None` for the float flow.
    pub constraint_db: Option<f64>,
    /// Final fixed-point specification; `None` for the float flow.
    pub spec: Option<FixedPointSpec>,
    /// The optimized (possibly SIMD) machine program.
    pub simd: MachineProgram,
    /// All-scalar program under the same specification.
    pub scalar: MachineProgram,
    /// SIMD groups realised in [`Report::simd`].
    pub group_count: usize,
    /// Predicted output noise power (dB); `None` for the float flow.
    pub noise_db: Option<f64>,
    /// Activations used for the cycle counts below.
    pub activations: u64,
    /// Scheduler kind the cycle counts were priced under.
    pub sched: SchedKind,
    /// Cycles of the optimized program over `activations`, under
    /// [`Report::sched`].
    pub cycles_simd: u64,
    /// Cycles of the scalar program over `activations`, under
    /// [`Report::sched`].
    pub cycles_scalar: u64,
    /// Cycles of the optimized program under flat list scheduling.
    /// Equal to [`Report::cycles_simd`] when `sched` is
    /// [`SchedKind::List`]; under [`SchedKind::Modulo`] the gap is what
    /// software pipelining bought.
    pub cycles_simd_list: u64,
    /// Cycles of the scalar program under flat list scheduling.
    pub cycles_scalar_list: u64,
    /// Exact-selector search statistics: rounds searched, rounds where
    /// the search improved on the greedy incumbent, and every fallback
    /// taken (budget exhaustion, accuracy veto on replay, portfolio
    /// arbitration). All zeros under the greedy benefit kinds.
    pub select: SelectStats,
}

/// Paths written by [`Report::export_c`].
#[derive(Debug, Clone)]
pub struct ExportedC {
    /// Scalar fixed-point C file.
    pub fixed_c: PathBuf,
    /// SIMD C file over the abstract macro API.
    pub simd_c: PathBuf,
    /// Per-target macro-implementation header.
    pub intrinsics_h: PathBuf,
}

impl Report {
    /// Speedup of the optimized program over its own scalar lowering.
    ///
    /// Total even for degenerate programs: a kernel whose lowering has
    /// no operations (zero cycles) reports a speedup of `1.0` rather
    /// than tripping the cycle model's positivity assertion.
    pub fn speedup(&self) -> f64 {
        self.guarded_speedup(self.cycles_scalar)
    }

    /// Speedup of the optimized program over an external baseline cycle
    /// count (e.g. another report's scalar program — equation (2) of the
    /// paper uses `WLO-First`'s scalar code as denominator).
    pub fn speedup_over(&self, baseline_cycles: u64) -> f64 {
        self.guarded_speedup(baseline_cycles)
    }

    fn guarded_speedup(&self, baseline_cycles: u64) -> f64 {
        if self.cycles_simd == 0 {
            return if baseline_cycles == 0 {
                1.0
            } else {
                f64::INFINITY
            };
        }
        speedup(baseline_cycles, self.cycles_simd)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let noise = match self.noise_db {
            Some(db) => format!("{db:.1} dB"),
            None => "exact".to_string(),
        };
        let pipelined = match self.sched {
            SchedKind::List => String::new(),
            SchedKind::Modulo { .. } => format!(" pipelined (list {})", self.cycles_simd_list),
        };
        format!(
            "{} [{}] on {}: {} cycles{} ({} scalar, speedup {:.2}), {} groups, noise {}",
            self.kernel_name,
            self.flow,
            self.target.name,
            self.cycles_simd,
            pipelined,
            self.cycles_scalar,
            self.speedup(),
            self.group_count,
            noise,
        )
    }

    /// Exports the paper's three C artifacts — scalar fixed-point C,
    /// SIMD C over the abstract macro API, and the target's macro
    /// implementations — into `dir` (created if missing).
    ///
    /// Returns [`Error::Config`] when the report has no fixed-point
    /// specification (float flow) and [`Error::Export`] on I/O failure.
    pub fn export_c(&self, dir: impl AsRef<Path>) -> Result<ExportedC, Error> {
        let dir = dir.as_ref();
        if self.spec.is_none() {
            return Err(Error::Config {
                field: "flow",
                message: "the float flow has no fixed-point specification to export".into(),
            });
        }
        let write = |path: PathBuf, contents: String| -> Result<PathBuf, Error> {
            std::fs::write(&path, contents).map_err(|source| Error::Export {
                path: path.clone(),
                source,
            })?;
            Ok(path)
        };
        std::fs::create_dir_all(dir).map_err(|source| Error::Export {
            path: dir.to_path_buf(),
            source,
        })?;
        let stem = self.kernel_name.to_lowercase();
        let target_tag = self.target.name.to_lowercase().replace('-', "_");
        Ok(ExportedC {
            fixed_c: write(
                dir.join(format!("{stem}_fixed.c")),
                emit_fixed_c(&self.scalar)?,
            )?,
            simd_c: write(
                dir.join(format!("{stem}_simd.c")),
                emit_simd_c(&self.simd, &self.target.name)?,
            )?,
            intrinsics_h: write(
                dir.join(format!("slpwlo_simd_{target_tag}.h")),
                emit_intrinsics_header(&self.target),
            )?,
        })
    }
}
