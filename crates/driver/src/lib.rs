//! Unified driver API for the `slpwlo` tool-chain.
//!
//! This crate is the public face of the workspace: a builder-pattern
//! [`Optimizer`] that runs any registered [`CompilationFlow`] — the
//! paper's joint `WLO-SLP` flow, the `WLO-First` baseline, or the
//! floating-point original — on a kernel and returns a unified
//! [`Report`] (fixed-point specification, SIMD and scalar machine
//! programs, cycle counts, speedups, predicted noise).
//!
//! ```
//! use slpwlo_driver::{FlowKind, Optimizer};
//! use slpwlo_targets::xentium;
//!
//! let report = Optimizer::for_source(
//!     "kernel k { input x range [-1, 1]; output y; var t; t = 0.5 * x; y = t; }",
//! )?
//! .target(xentium())
//! .constraint_db(-50.0)
//! .flow(FlowKind::WloSlp)
//! .run()?;
//! println!("{}", report.summary());
//! # Ok::<(), slpwlo_driver::Error>(())
//! ```
//!
//! Every fallible user-input path — parsing, kernel validation, range
//! sanity, builder configuration, constraint feasibility, C export —
//! returns a structured [`Error`] instead of panicking. Constraint
//! sweeps ([`Optimizer::sweep`]) amortize the expensive once-per-kernel
//! analyses across points, which is how the paper's Fig. 4/6 grids are
//! produced.

pub mod error;
pub mod flow;
pub mod optimizer;
pub mod report;

pub use error::Error;
pub use flow::{
    required_constraint, CompilationFlow, FloatFlow, FlowContext, FlowKind, FlowOutput,
    WloFirstFlow, WloSlpFlow,
};
pub use optimizer::Optimizer;
pub use report::{ExportedC, Report};
pub use slpwlo_core::{BenefitKind, SelectStats};
pub use slpwlo_verify::{VerifyError, VerifyLevel};
