//! The builder-pattern driver.

use crate::error::Error;
use crate::flow::{CompilationFlow, FlowContext, FlowKind};
use crate::report::Report;
use slpwlo_accuracy::{AccuracyEvaluator, EvalOptions};
use slpwlo_core::{prepare, prepare_with, total_cycles_cached, BenefitKind, Prepared, TabuOptions};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::parser::parse_kernel;
use slpwlo_ir::Kernel;
use slpwlo_targets::{xentium, CycleCache, SchedKind, TargetModel};
use slpwlo_verify::VerifyLevel;

/// Default activations for cycle reporting (the paper's FIR/IIR workload
/// size).
const DEFAULT_ACTIVATIONS: u64 = 2048;

/// The unified driver: one kernel, one target, one flow, any number of
/// constraint points.
///
/// Construction runs the expensive once-per-kernel analyses (range
/// analysis, noise-gain measurement); [`Optimizer::run`] and
/// [`Optimizer::sweep`] reuse them across constraint points, which is
/// what makes Fig. 4/6-style experiments affordable.
///
/// ```
/// use slpwlo_driver::{FlowKind, Optimizer};
/// use slpwlo_targets::xentium;
///
/// let report = Optimizer::for_source(
///     "kernel k { input x range [-1, 1]; output y; var t; t = 0.5 * x; y = t; }",
/// )?
/// .target(xentium())
/// .constraint_db(-50.0)
/// .flow(FlowKind::WloSlp)
/// .run()?;
/// assert!(report.noise_db.unwrap() <= -50.0);
/// # Ok::<(), slpwlo_driver::Error>(())
/// ```
pub struct Optimizer {
    prep: Prepared,
    target: TargetModel,
    constraint_db: Option<f64>,
    flow: Box<dyn CompilationFlow + Send + Sync>,
    tabu: TabuOptions,
    benefit: BenefitKind,
    sched: SchedKind,
    verify: VerifyLevel,
    activations: u64,
    /// Worker-thread override for [`Optimizer::sweep`]; `None` follows
    /// the machine's available parallelism.
    sweep_threads: Option<usize>,
    /// Memoized [`Optimizer::noise_floor_db`] for the current target
    /// (one widest-spec noise evaluation); reset by `target()`.
    /// `OnceLock` rather than `Cell` keeps the `Optimizer` `Sync` so
    /// grids can be parallelized over one shared instance.
    floor_db: std::sync::OnceLock<f64>,
}

impl std::fmt::Debug for Optimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Optimizer")
            .field("kernel", &self.prep.kernel.name())
            .field("target", &self.target.name)
            .field("constraint_db", &self.constraint_db)
            .field("flow", &self.flow.name())
            .field("activations", &self.activations)
            .finish_non_exhaustive()
    }
}

impl Optimizer {
    /// Parses, validates and prepares a kernel written in the textual
    /// DSL.
    pub fn for_source(src: &str) -> Result<Self, Error> {
        let kernel = parse_kernel(src).map_err(Error::Parse)?;
        Self::for_kernel(kernel)
    }

    /// Validates and prepares an already-built kernel.
    pub fn for_kernel(kernel: Kernel) -> Result<Self, Error> {
        // `Kernel::validate` holds the single copy of the range-validity
        // predicate; its range failure is lifted to the richer
        // `Error::Range` here.
        if let Err(e) = kernel.validate() {
            if let slpwlo_ir::IrError::InvalidRange { ref input, .. } = e {
                if let Some(i) = kernel.inputs().iter().find(|i| &i.name == input) {
                    return Err(Error::Range {
                        input: input.clone(),
                        lo: i.lo,
                        hi: i.hi,
                    });
                }
            }
            return Err(Error::InvalidKernel(e));
        }
        Ok(Optimizer {
            prep: prepare(kernel),
            target: xentium(),
            constraint_db: None,
            flow: FlowKind::WloSlp.instantiate(),
            tabu: TabuOptions::default(),
            benefit: BenefitKind::default(),
            sched: SchedKind::default(),
            verify: VerifyLevel::default(),
            activations: DEFAULT_ACTIVATIONS,
            sweep_threads: None,
            floor_db: std::sync::OnceLock::new(),
        })
    }

    /// Sets the processor model to compile for (default: XENTIUM).
    pub fn target(mut self, target: TargetModel) -> Self {
        self.target = target;
        self.floor_db = std::sync::OnceLock::new();
        self
    }

    /// Sets the output-noise constraint in dB (required by quantizing
    /// flows; validated at [`Optimizer::run`]).
    pub fn constraint_db(mut self, db: f64) -> Self {
        self.constraint_db = Some(db);
        self
    }

    /// Selects a built-in flow (default: [`FlowKind::WloSlp`]).
    pub fn flow(mut self, kind: FlowKind) -> Self {
        self.flow = kind.instantiate();
        self
    }

    /// Selects a built-in flow by its registry name (`"wlo-slp"`,
    /// `"wlo-first"`, `"float"`).
    pub fn flow_named(self, name: &str) -> Result<Self, Error> {
        Ok(self.flow(FlowKind::from_name(name)?))
    }

    /// Installs a custom [`CompilationFlow`] strategy.
    pub fn custom_flow(mut self, flow: Box<dyn CompilationFlow + Send + Sync>) -> Self {
        self.flow = flow;
        self
    }

    /// Sets Tabu-search options for flows that use them.
    pub fn tabu(mut self, tabu: TabuOptions) -> Self {
        self.tabu = tabu;
        self
    }

    /// Selects the SLP candidate-pricing strategy (default:
    /// [`BenefitKind::Cycles`], which prices every candidate through
    /// `TargetModel::cost` at its current word lengths;
    /// [`BenefitKind::Slots`] keeps the historical target-blind
    /// slot-counting model for ablations; [`BenefitKind::Optimal`]
    /// replaces the greedy per-round selection with an exact
    /// branch-and-bound over the same cycle prices — never worse than
    /// greedy, with search statistics and fallbacks reported in
    /// [`Report::select`](crate::Report)).
    pub fn benefit_kind(mut self, benefit: BenefitKind) -> Self {
        self.benefit = benefit;
        self
    }

    /// Selects the block-scheduling strategy (default:
    /// [`SchedKind::List`], the paper's flat in-order model).
    /// [`SchedKind::Modulo`] software-pipelines profitable in-loop
    /// blocks: cycle reports price them at `prologue + II·(trip−1) +
    /// epilogue`, candidate pricing drops its latency hedge, and blocks
    /// the exact search cannot improve (or that exhaust the search
    /// budget) keep their list schedules.
    pub fn sched_kind(mut self, sched: SchedKind) -> Self {
        self.sched = sched;
        self
    }

    /// Sets how much pass-boundary static verification the flows run
    /// (default: [`VerifyLevel::Boundaries`] in debug builds,
    /// [`VerifyLevel::Off`] in release builds). At
    /// [`VerifyLevel::Paranoid`] every intermediate artifact — seed
    /// specs, pre-prune groupings, candidate lowerings — is checked too.
    pub fn verify_level(mut self, level: VerifyLevel) -> Self {
        self.verify = level;
        self
    }

    /// Sets the workload size used for reported cycle counts.
    pub fn activations(mut self, n: u64) -> Self {
        self.activations = n;
        self
    }

    /// Caps (or forces) the number of worker threads [`Optimizer::sweep`]
    /// uses. Defaults to the machine's available parallelism; `1` makes
    /// sweeps fully serial.
    pub fn sweep_threads(mut self, n: usize) -> Self {
        self.sweep_threads = Some(n.max(1));
        self
    }

    /// Caps (or forces) the worker threads of the once-per-kernel
    /// noise-gain measurement (`0` = one per available core, the
    /// default). Gains are bitwise identical for any thread count; this
    /// only trades construction latency against CPU use. Re-runs the
    /// per-kernel analyses, so call it before anything that reads
    /// [`Optimizer::prepared`].
    pub fn gain_threads(mut self, n: usize) -> Self {
        let mut opts = EvalOptions::default();
        opts.gains.threads = n;
        self.prep = prepare_with(self.prep.kernel, &opts);
        self.floor_db = std::sync::OnceLock::new();
        self
    }

    /// Toggles cone-restricted impulse evaluation in the noise-gain
    /// measurement (on by default). Gains are bitwise identical either
    /// way; off trades the analysis speedup for the simpler dense
    /// executor — useful for differential debugging. Re-runs the
    /// per-kernel analyses, so call it before anything that reads
    /// [`Optimizer::prepared`].
    pub fn gain_cone(mut self, on: bool) -> Self {
        let mut opts = EvalOptions::default();
        opts.gains.cone = on;
        self.prep = prepare_with(self.prep.kernel, &opts);
        self.floor_db = std::sync::OnceLock::new();
        self
    }

    /// The kernel under optimization.
    pub fn kernel(&self) -> &Kernel {
        &self.prep.kernel
    }

    /// The shared per-kernel analyses (ranges + accuracy model).
    pub fn prepared(&self) -> &Prepared {
        &self.prep
    }

    /// The configured target model.
    pub fn target_model(&self) -> &TargetModel {
        &self.target
    }

    /// The lowest output noise (dB) any fixed-point specification can
    /// reach on the configured target: every node at maximum word
    /// length. Constraints below this are unsatisfiable. Memoized per
    /// target, so repeated `run()` calls pay it once.
    pub fn noise_floor_db(&self) -> f64 {
        *self.floor_db.get_or_init(|| {
            let widest = FixedPointSpec::from_ranges(
                &self.prep.kernel,
                &self.prep.ranges,
                self.target.max_wl(),
            );
            self.prep.eval.noise_db(&widest)
        })
    }

    /// One constraint point checked against finiteness and the target's
    /// noise floor — the single copy of this validation.
    fn check_point(&self, flow_name: &str, db: f64) -> Result<(), Error> {
        if !db.is_finite() {
            return Err(Error::Config {
                field: "constraint_db",
                message: format!("must be finite, got {db}"),
            });
        }
        let floor = self.noise_floor_db();
        if db < floor {
            return Err(Error::Unsatisfiable {
                flow: flow_name.to_string(),
                constraint_db: db,
                floor_db: floor,
            });
        }
        Ok(())
    }

    fn validated_constraint(&self, flow: &dyn CompilationFlow) -> Result<Option<f64>, Error> {
        match (flow.needs_constraint(), self.constraint_db) {
            (false, _) => Ok(None),
            (true, None) => Err(crate::flow::missing_constraint(flow.name())),
            (true, Some(db)) => {
                self.check_point(flow.name(), db)?;
                Ok(Some(db))
            }
        }
    }

    fn run_checked(
        &self,
        flow: &dyn CompilationFlow,
        constraint_db: Option<f64>,
    ) -> Result<Report, Error> {
        if self.activations == 0 {
            return Err(Error::Config {
                field: "activations",
                message: "cycle reporting needs at least one activation".into(),
            });
        }
        let ctx = FlowContext {
            prep: &self.prep,
            target: &self.target,
            constraint_db,
            tabu: &self.tabu,
            benefit: self.benefit,
            sched: self.sched,
            verify: self.verify,
        };
        let out = flow.run(&ctx)?;
        // One shared price cache for all four cycle counts; the list
        // counts ride along so pipelined reports can show what software
        // pipelining bought without a second run.
        let costs = CycleCache::new(&self.target);
        Ok(Report {
            kernel_name: self.prep.kernel.name().to_string(),
            flow: flow.name().to_string(),
            target: self.target.clone(),
            kernel: self.prep.kernel.clone(),
            constraint_db,
            spec: out.spec,
            sched: self.sched,
            cycles_simd: total_cycles_cached(&costs, &out.program, self.activations, self.sched),
            cycles_scalar: total_cycles_cached(&costs, &out.scalar, self.activations, self.sched),
            cycles_simd_list: total_cycles_cached(
                &costs,
                &out.program,
                self.activations,
                SchedKind::List,
            ),
            cycles_scalar_list: total_cycles_cached(
                &costs,
                &out.scalar,
                self.activations,
                SchedKind::List,
            ),
            simd: out.program,
            scalar: out.scalar,
            group_count: out.group_count,
            noise_db: out.noise_db,
            activations: self.activations,
            select: out.select,
        })
    }

    fn run_flow(&self, flow: &dyn CompilationFlow) -> Result<Report, Error> {
        let constraint = self.validated_constraint(flow)?;
        self.run_checked(flow, constraint)
    }

    /// Runs the configured flow at the configured constraint point.
    pub fn run(&self) -> Result<Report, Error> {
        self.run_flow(self.flow.as_ref())
    }

    /// Runs a built-in flow at the configured constraint point without
    /// changing the configured strategy — the cheap way to compare flows
    /// on one prepared kernel (the paper's whole evaluation does this).
    pub fn run_with(&self, kind: FlowKind) -> Result<Report, Error> {
        self.run_flow(kind.instantiate().as_ref())
    }

    /// Runs the configured flow at one explicit constraint point, leaving
    /// the builder-configured constraint untouched. This is the serial
    /// unit [`Optimizer::sweep`] parallelizes over.
    pub fn run_at(&self, db: f64) -> Result<Report, Error> {
        let flow = self.flow.as_ref();
        if !flow.needs_constraint() {
            return Err(Self::constraint_free_flow_error(flow.name()));
        }
        self.check_point(flow.name(), db)?;
        self.run_checked(flow, Some(db))
    }

    fn constraint_free_flow_error(flow: &str) -> Error {
        Error::Config {
            field: "flow",
            message: format!("flow `{flow}` ignores constraints; use run() instead of sweep()"),
        }
    }

    /// Runs the configured flow once per constraint point, reusing the
    /// per-kernel analyses (Fig. 4/6-style experiments). The feasibility
    /// of every point is checked up front, so either all points run or
    /// none do.
    ///
    /// Points are independent and every flow is deterministic, so they
    /// run **in parallel** across OS threads, sharing the once-per-kernel
    /// [`Prepared`] analyses immutably; reports come back in constraint
    /// order, identical to running each point serially with
    /// [`Optimizer::run_at`]. On any per-point error the first failing
    /// point (in constraint order) is returned.
    pub fn sweep(&self, constraints_db: &[f64]) -> Result<Vec<Report>, Error> {
        let flow = self.flow.as_ref();
        if !flow.needs_constraint() {
            return Err(Self::constraint_free_flow_error(flow.name()));
        }
        for &db in constraints_db {
            self.check_point(flow.name(), db)?;
        }
        let n = constraints_db.len();
        let workers = self
            .sweep_threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .min(n);
        if workers <= 1 {
            return constraints_db
                .iter()
                .map(|&db| self.run_checked(flow, Some(db)))
                .collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<Report, Error>>> = Vec::new();
        slots.resize_with(n, || None);
        std::thread::scope(|scope| {
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= n {
                                return done;
                            }
                            done.push((i, self.run_checked(flow, Some(constraints_db[i]))));
                        }
                    })
                })
                .collect();
            for handle in handles {
                for (i, report) in handle.join().expect("sweep worker panicked") {
                    slots[i] = Some(report);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every sweep point was claimed by a worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = r#"
kernel tiny {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.25, -0.5, 0.125, 0.0625 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..4 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    #[test]
    fn builder_happy_path() {
        let report = Optimizer::for_source(TINY)
            .unwrap()
            .constraint_db(-40.0)
            .flow(FlowKind::WloSlp)
            .run()
            .unwrap();
        assert_eq!(report.flow, "wlo-slp");
        assert_eq!(report.kernel_name, "tiny");
        assert!(report.noise_db.unwrap() <= -40.0);
        assert!(report.cycles_simd > 0);
        assert!(report.summary().contains("tiny"));
    }

    #[test]
    fn parse_errors_are_typed() {
        match Optimizer::for_source("kernel { nope") {
            Err(Error::Parse(_)) => {}
            other => panic!("expected Parse error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn missing_constraint_is_a_config_error() {
        let err = Optimizer::for_source(TINY).unwrap().run().unwrap_err();
        match err {
            Error::Config { field, .. } => assert_eq!(field, "constraint_db"),
            other => panic!("expected Config, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_constraint_is_a_config_error() {
        let err = Optimizer::for_source(TINY)
            .unwrap()
            .constraint_db(f64::NAN)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Config {
                field: "constraint_db",
                ..
            }
        ));
    }

    #[test]
    fn unsatisfiable_constraint_is_typed() {
        let opt = Optimizer::for_source(TINY).unwrap();
        let floor = opt.noise_floor_db();
        let err = opt.constraint_db(floor - 30.0).run().unwrap_err();
        match err {
            Error::Unsatisfiable {
                constraint_db,
                floor_db,
                ..
            } => {
                assert!(constraint_db < floor_db);
            }
            other => panic!("expected Unsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn float_flow_needs_no_constraint() {
        let report = Optimizer::for_source(TINY)
            .unwrap()
            .flow(FlowKind::Float)
            .run()
            .unwrap();
        assert!(report.spec.is_none());
        assert!(report.noise_db.is_none());
        assert_eq!(report.group_count, 0);
    }

    #[test]
    fn sweep_amortizes_and_orders() {
        let opt = Optimizer::for_source(TINY).unwrap().flow(FlowKind::WloSlp);
        let reports = opt.sweep(&[-20.0, -40.0, -60.0]).unwrap();
        assert_eq!(reports.len(), 3);
        for (r, db) in reports.iter().zip([-20.0, -40.0, -60.0]) {
            assert_eq!(r.constraint_db, Some(db));
            assert!(r.noise_db.unwrap() <= db);
        }
    }

    #[test]
    fn run_with_matches_the_configured_flow() {
        let opt = Optimizer::for_source(TINY).unwrap().constraint_db(-40.0);
        // `run_with` must agree with running the same flow configured
        // through the builder, without mutating the configured strategy.
        let via_builder = Optimizer::for_source(TINY)
            .unwrap()
            .constraint_db(-40.0)
            .flow(FlowKind::WloFirst)
            .run()
            .unwrap();
        let via_run_with = opt.run_with(FlowKind::WloFirst).unwrap();
        assert_eq!(via_run_with.flow, via_builder.flow);
        assert_eq!(via_run_with.cycles_simd, via_builder.cycles_simd);
        assert_eq!(via_run_with.noise_db, via_builder.noise_db);
        // The configured flow (default wlo-slp) is untouched.
        assert_eq!(opt.run().unwrap().flow, "wlo-slp");
    }

    #[test]
    fn sweep_parallel_matches_serial_run_at() {
        // The parallel sweep must return reports in constraint order,
        // indistinguishable from running each point serially. Forcing
        // three workers exercises the threaded path even on one CPU.
        let opt = Optimizer::for_source(TINY)
            .unwrap()
            .flow(FlowKind::WloSlp)
            .sweep_threads(3);
        let grid = [-20.0, -30.0, -40.0, -50.0, -60.0];
        let swept = opt.sweep(&grid).unwrap();
        assert_eq!(swept.len(), grid.len());
        for (parallel, &db) in swept.iter().zip(&grid) {
            assert_eq!(parallel.constraint_db, Some(db), "constraint order");
            let serial = opt.run_at(db).unwrap();
            assert_eq!(parallel.cycles_simd, serial.cycles_simd);
            assert_eq!(parallel.cycles_scalar, serial.cycles_scalar);
            assert_eq!(parallel.group_count, serial.group_count);
            assert_eq!(
                parallel.noise_db.unwrap().to_bits(),
                serial.noise_db.unwrap().to_bits(),
                "noise must be bit-identical at {db} dB"
            );
            // The full spec and both lowered programs must match exactly.
            assert_eq!(format!("{:?}", parallel.spec), format!("{:?}", serial.spec));
            assert_eq!(format!("{:?}", parallel.simd), format!("{:?}", serial.simd));
            assert_eq!(
                format!("{:?}", parallel.scalar),
                format!("{:?}", serial.scalar)
            );
        }
    }

    #[test]
    fn run_at_leaves_the_configured_constraint_alone() {
        let opt = Optimizer::for_source(TINY)
            .unwrap()
            .constraint_db(-40.0)
            .flow(FlowKind::WloSlp);
        let at = opt.run_at(-60.0).unwrap();
        assert_eq!(at.constraint_db, Some(-60.0));
        assert_eq!(opt.run().unwrap().constraint_db, Some(-40.0));
    }

    #[test]
    fn run_at_rejects_the_float_flow() {
        let err = Optimizer::for_source(TINY)
            .unwrap()
            .flow(FlowKind::Float)
            .run_at(-20.0)
            .unwrap_err();
        assert!(matches!(err, Error::Config { field: "flow", .. }));
    }

    #[test]
    fn sweep_rejects_the_float_flow() {
        let err = Optimizer::for_source(TINY)
            .unwrap()
            .flow(FlowKind::Float)
            .sweep(&[-20.0])
            .unwrap_err();
        assert!(matches!(err, Error::Config { field: "flow", .. }));
    }

    #[test]
    fn zero_activations_rejected() {
        let err = Optimizer::for_source(TINY)
            .unwrap()
            .constraint_db(-30.0)
            .activations(0)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Config {
                field: "activations",
                ..
            }
        ));
    }

    #[test]
    fn empty_kernels_report_without_panicking() {
        // A kernel that lowers to zero operations used to trip the cycle
        // model's `cycles > 0` assertion inside `Report::speedup`.
        let report = Optimizer::for_source("kernel empty { }")
            .unwrap()
            .constraint_db(-20.0)
            .run()
            .unwrap();
        assert_eq!(report.cycles_simd, 0);
        assert_eq!(report.speedup(), 1.0);
        assert!(report.summary().contains("empty"));
    }

    #[test]
    fn verification_is_configurable_and_clean_at_paranoid() {
        use slpwlo_verify::VerifyLevel;
        for level in [
            VerifyLevel::Off,
            VerifyLevel::Boundaries,
            VerifyLevel::Paranoid,
        ] {
            for kind in [FlowKind::WloSlp, FlowKind::WloFirst] {
                let report = Optimizer::for_source(TINY)
                    .unwrap()
                    .constraint_db(-40.0)
                    .flow(kind)
                    .verify_level(level)
                    .run()
                    .unwrap();
                assert!(report.cycles_simd > 0);
            }
        }
    }

    #[test]
    fn gain_threads_do_not_change_results() {
        let base = Optimizer::for_source(TINY)
            .unwrap()
            .constraint_db(-40.0)
            .run()
            .unwrap();
        let threaded = Optimizer::for_source(TINY)
            .unwrap()
            .gain_threads(2)
            .constraint_db(-40.0)
            .run()
            .unwrap();
        assert_eq!(base.cycles_simd, threaded.cycles_simd);
        assert_eq!(base.group_count, threaded.group_count);
        assert_eq!(
            base.noise_db.unwrap().to_bits(),
            threaded.noise_db.unwrap().to_bits(),
            "gain measurement must be thread-count invariant"
        );
    }

    #[test]
    fn gain_cone_does_not_change_results() {
        let base = Optimizer::for_source(TINY)
            .unwrap()
            .constraint_db(-40.0)
            .run()
            .unwrap();
        let dense = Optimizer::for_source(TINY)
            .unwrap()
            .gain_cone(false)
            .constraint_db(-40.0)
            .run()
            .unwrap();
        assert_eq!(base.cycles_simd, dense.cycles_simd);
        assert_eq!(base.group_count, dense.group_count);
        assert_eq!(
            base.noise_db.unwrap().to_bits(),
            dense.noise_db.unwrap().to_bits(),
            "gain measurement must be cone-toggle invariant"
        );
    }

    #[test]
    fn custom_flows_plug_in() {
        struct CountingFlow;
        impl CompilationFlow for CountingFlow {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn needs_constraint(&self) -> bool {
                false
            }
            fn run(&self, ctx: &FlowContext<'_>) -> Result<crate::flow::FlowOutput, Error> {
                let program = slpwlo_core::lower_float(&ctx.prep.kernel);
                Ok(crate::flow::FlowOutput {
                    spec: None,
                    scalar: program.clone(),
                    program,
                    group_count: 0,
                    noise_db: None,
                    select: Default::default(),
                })
            }
        }
        let report = Optimizer::for_source(TINY)
            .unwrap()
            .custom_flow(Box::new(CountingFlow))
            .run()
            .unwrap();
        assert_eq!(report.flow, "counting");
    }
}
