//! The SLP legality verifier: structural soundness of a grouping.
//!
//! Promotes the invariants that used to live in the
//! `tests/slp_invariants.rs` harness into a reusable library pass, so
//! that any selector — the current greedy rounds or a future exact
//! (`BenefitKind::Optimal`) one — can be checked independently of its
//! own bookkeeping:
//!
//! * every group has ≥ 2 lanes, and a lane count the target can
//!   realise (equation (1) of the paper);
//! * lanes are isomorphic operations with consistent operand
//!   positions;
//! * no DFG node is claimed by two groups;
//! * lanes are pairwise independent (no intra-group dependence);
//! * realising all groups keeps the *coarsened* dependence graph
//!   acyclic — the invariant the lowering's topological sort relies
//!   on, and the one pairwise checks cannot see (three groups can
//!   form a cycle with every pair clean).

use crate::{Invariant, Pass, VerifyError};
use slpwlo_ir::Dfg;
use slpwlo_slp::{closes_cycle, SimdGroup};
use slpwlo_targets::TargetModel;
use std::collections::HashSet;

fn err(
    ctx: &str,
    invariant: Invariant,
    node: Option<String>,
    detail: impl Into<String>,
) -> VerifyError {
    VerifyError::new(Pass::Slp, invariant, ctx, node, detail)
}

/// Verifies that a set of selected SIMD groups is legal for `target`
/// over the given DFG. `ctx` names the artifact (e.g. `"block b0"`) in
/// errors.
pub fn verify_groups(
    dfg: &Dfg,
    groups: &[SimdGroup],
    target: &TargetModel,
    ctx: &str,
) -> Result<(), VerifyError> {
    let mut seen: HashSet<_> = HashSet::new();
    for (gi, g) in groups.iter().enumerate() {
        let gn = || Some(format!("group #{gi} {g}"));
        if g.lanes() < 2 {
            return Err(err(ctx, Invariant::LaneCount, gn(), "single-lane group"));
        }
        if target.simd_element_wl(g.lanes()).is_none() {
            return Err(err(
                ctx,
                Invariant::UnsupportedWidth,
                gn(),
                format!(
                    "{} has no {}-lane SIMD configuration",
                    target.name,
                    g.lanes()
                ),
            ));
        }
        let kind = &dfg.node(g.elems[0]).kind;
        let arity = dfg.node(g.elems[0]).operands.len();
        for &e in &g.elems {
            if e.index() >= dfg.len() {
                return Err(err(
                    ctx,
                    Invariant::BadOperand,
                    gn(),
                    format!("lane {e} outside the DFG"),
                ));
            }
            if !dfg.node(e).kind.isomorphic(kind) {
                return Err(err(
                    ctx,
                    Invariant::NonIsomorphic,
                    gn(),
                    format!("lane {e} is {:?}, lane 0 is {kind:?}", dfg.node(e).kind),
                ));
            }
            if dfg.node(e).operands.len() != arity {
                return Err(err(
                    ctx,
                    Invariant::NonIsomorphic,
                    gn(),
                    format!(
                        "lane {e} has {} operands, lane 0 has {arity}",
                        dfg.node(e).operands.len()
                    ),
                ));
            }
        }
        for (i, &a) in g.elems.iter().enumerate() {
            if !seen.insert(a) {
                return Err(err(
                    ctx,
                    Invariant::DuplicateNode,
                    gn(),
                    format!("node {a} already claimed by an earlier group"),
                ));
            }
            for &b in &g.elems[i + 1..] {
                if !dfg.independent(a, b) {
                    return Err(err(
                        ctx,
                        Invariant::DependentLanes,
                        gn(),
                        format!("lanes {a} and {b} are dependent"),
                    ));
                }
            }
        }
    }
    for (gi, g) in groups.iter().enumerate() {
        let others: Vec<SimdGroup> = groups
            .iter()
            .enumerate()
            .filter(|&(oi, _)| oi != gi)
            .map(|(_, o)| o.clone())
            .collect();
        if closes_cycle(dfg, &others, g) {
            return Err(err(
                ctx,
                Invariant::GroupCycle,
                Some(format!("group #{gi} {g}")),
                "realising this group closes a coarsened dependency cycle",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::dfg::NodeKind;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_ir::{BinOp, NodeId};
    use slpwlo_targets::xentium;

    fn fir_dfg() -> Dfg {
        let k = parse_kernel(
            r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    acc = acc + c[0] * dl[0];
    acc = acc + c[1] * dl[1];
    acc = acc + c[2] * dl[2];
    acc = acc + c[3] * dl[3];
    y = acc;
}
"#,
        )
        .unwrap();
        let blocks = collect_blocks(&k);
        Dfg::from_block(&k, &blocks[0])
    }

    fn muls(dfg: &Dfg) -> Vec<NodeId> {
        dfg.iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Mul)))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn accepts_independent_isomorphic_pairs() {
        let dfg = fir_dfg();
        let m = muls(&dfg);
        let groups = vec![
            SimdGroup {
                elems: vec![m[0], m[1]],
            },
            SimdGroup {
                elems: vec![m[2], m[3]],
            },
        ];
        verify_groups(&dfg, &groups, &xentium(), "t").unwrap();
    }

    #[test]
    fn kills_duplicate_nodes() {
        let dfg = fir_dfg();
        let m = muls(&dfg);
        let groups = vec![
            SimdGroup {
                elems: vec![m[0], m[1]],
            },
            SimdGroup {
                elems: vec![m[1], m[2]],
            },
        ];
        let e = verify_groups(&dfg, &groups, &xentium(), "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::DuplicateNode);
    }

    #[test]
    fn kills_dependent_lanes() {
        let dfg = fir_dfg();
        let adds: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Add)))
            .map(|(i, _)| i)
            .collect();
        let groups = vec![SimdGroup {
            elems: vec![adds[0], adds[1]],
        }];
        let e = verify_groups(&dfg, &groups, &xentium(), "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::DependentLanes);
    }

    #[test]
    fn kills_unsupported_widths() {
        let dfg = fir_dfg();
        let m = muls(&dfg);
        let groups = vec![SimdGroup {
            elems: vec![m[0], m[1], m[2]],
        }];
        let e = verify_groups(&dfg, &groups, &xentium(), "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::UnsupportedWidth);
    }

    #[test]
    fn kills_mixed_kinds() {
        let dfg = fir_dfg();
        let m = muls(&dfg);
        let loads: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::LoadArray(..)))
            .map(|(i, _)| i)
            .collect();
        let groups = vec![SimdGroup {
            elems: vec![m[0], loads[0]],
        }];
        let e = verify_groups(&dfg, &groups, &xentium(), "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::NonIsomorphic);
    }
}
