//! The SLP legality verifier: structural soundness of a grouping.
//!
//! Promotes the invariants that used to live in the
//! `tests/slp_invariants.rs` harness into a reusable library pass, so
//! that any selector — the current greedy rounds or a future exact
//! (`BenefitKind::Optimal`) one — can be checked independently of its
//! own bookkeeping:
//!
//! * every group has ≥ 2 lanes, and a lane count the target can
//!   realise (equation (1) of the paper);
//! * lanes are isomorphic operations with consistent operand
//!   positions;
//! * no DFG node is claimed by two groups;
//! * lanes are pairwise independent (no intra-group dependence);
//! * realising all groups keeps the *coarsened* dependence graph
//!   acyclic — the invariant the lowering's topological sort relies
//!   on, and the one pairwise checks cannot see (three groups can
//!   form a cycle with every pair clean).

use crate::{Invariant, Pass, VerifyError};
use slpwlo_ir::{Dfg, NodeId};
use slpwlo_slp::{
    closes_cycle, exhaustive_best, set_value, BenefitKind, BenefitModel, Round, SimdGroup,
};
use slpwlo_targets::TargetModel;
use std::collections::HashSet;

fn err(
    ctx: &str,
    invariant: Invariant,
    node: Option<String>,
    detail: impl Into<String>,
) -> VerifyError {
    VerifyError::new(Pass::Slp, invariant, ctx, node, detail)
}

/// Verifies that a set of selected SIMD groups is legal for `target`
/// over the given DFG. `ctx` names the artifact (e.g. `"block b0"`) in
/// errors.
pub fn verify_groups(
    dfg: &Dfg,
    groups: &[SimdGroup],
    target: &TargetModel,
    ctx: &str,
) -> Result<(), VerifyError> {
    let mut seen: HashSet<_> = HashSet::new();
    for (gi, g) in groups.iter().enumerate() {
        let gn = || Some(format!("group #{gi} {g}"));
        if g.lanes() < 2 {
            return Err(err(ctx, Invariant::LaneCount, gn(), "single-lane group"));
        }
        if target.simd_element_wl(g.lanes()).is_none() {
            return Err(err(
                ctx,
                Invariant::UnsupportedWidth,
                gn(),
                format!(
                    "{} has no {}-lane SIMD configuration",
                    target.name,
                    g.lanes()
                ),
            ));
        }
        let kind = &dfg.node(g.elems[0]).kind;
        let arity = dfg.node(g.elems[0]).operands.len();
        for &e in &g.elems {
            if e.index() >= dfg.len() {
                return Err(err(
                    ctx,
                    Invariant::BadOperand,
                    gn(),
                    format!("lane {e} outside the DFG"),
                ));
            }
            if !dfg.node(e).kind.isomorphic(kind) {
                return Err(err(
                    ctx,
                    Invariant::NonIsomorphic,
                    gn(),
                    format!("lane {e} is {:?}, lane 0 is {kind:?}", dfg.node(e).kind),
                ));
            }
            if dfg.node(e).operands.len() != arity {
                return Err(err(
                    ctx,
                    Invariant::NonIsomorphic,
                    gn(),
                    format!(
                        "lane {e} has {} operands, lane 0 has {arity}",
                        dfg.node(e).operands.len()
                    ),
                ));
            }
        }
        for (i, &a) in g.elems.iter().enumerate() {
            if !seen.insert(a) {
                return Err(err(
                    ctx,
                    Invariant::DuplicateNode,
                    gn(),
                    format!("node {a} already claimed by an earlier group"),
                ));
            }
            for &b in &g.elems[i + 1..] {
                if !dfg.independent(a, b) {
                    return Err(err(
                        ctx,
                        Invariant::DependentLanes,
                        gn(),
                        format!("lanes {a} and {b} are dependent"),
                    ));
                }
            }
        }
    }
    for (gi, g) in groups.iter().enumerate() {
        let others: Vec<SimdGroup> = groups
            .iter()
            .enumerate()
            .filter(|&(oi, _)| oi != gi)
            .map(|(_, o)| o.clone())
            .collect();
        if closes_cycle(dfg, &others, g) {
            return Err(err(
                ctx,
                Invariant::GroupCycle,
                Some(format!("group #{gi} {g}")),
                "realising this group closes a coarsened dependency cycle",
            ));
        }
    }
    Ok(())
}

/// Spot-checks one *round* of the exact selector against brute force:
/// rebuilds the round's candidates from `(dfg, target, prior)`, prices
/// them under the fixed word-length oracle `wl` with the
/// [`BenefitKind::Cycles`] model (the pricing the exact kind searches),
/// and verifies that the round's `chosen` groups are (a) genuine
/// candidates of the round and (b) valued no worse than the exhaustive
/// optimum over the live candidates.
///
/// Candidate liveness mirrors the frozen-spec selection hooks: a
/// candidate is live when every lane's current word length fits the
/// candidate's per-lane container on the target. Rounds with more than
/// `max_candidates` live candidates are skipped (enumeration is
/// exponential) — callers gate the size, `Ok(())` means "checked or too
/// big", never "silently wrong".
///
/// This check is sound only for selections driven by the *same* fixed
/// oracle (e.g. `extract_plain`-style hooks); under evolving-spec hooks
/// the selector legitimately prices against intermediate states the
/// verifier cannot see.
pub fn verify_optimal_selection(
    dfg: &Dfg,
    target: &TargetModel,
    prior: &[SimdGroup],
    chosen: &[SimdGroup],
    wl: &dyn Fn(NodeId) -> i32,
    max_candidates: usize,
    ctx: &str,
) -> Result<(), VerifyError> {
    let round = Round::new(dfg, target, prior);
    let n = round.candidates.len();
    let alive: Vec<bool> = (0..n)
        .map(|i| {
            let view = round.view(target, i);
            view.group
                .elems
                .iter()
                .all(|&e| match target.container_wl(wl(e)) {
                    Some(c) => c <= view.elem_wl,
                    None => false,
                })
        })
        .collect();
    if alive.iter().filter(|&&a| a).count() > max_candidates {
        return Ok(());
    }
    let mut chosen_idx = Vec::with_capacity(chosen.len());
    for g in chosen {
        match (0..n).find(|&i| round.merged(i).elems == g.elems) {
            Some(i) => chosen_idx.push(i),
            None => {
                return Err(err(
                    ctx,
                    Invariant::SelectionSuboptimal,
                    Some(format!("{g}")),
                    "chosen group is not a candidate of the reconstructed round",
                ));
            }
        }
    }
    let model = BenefitModel::with_kind(dfg, &round, target, BenefitKind::Cycles, wl);
    let v = set_value(&model, &round, prior, &chosen_idx);
    let (best_set, best_v) = exhaustive_best(dfg, &model, &round, prior, &alive);
    if v + 1e-6 < best_v {
        return Err(err(
            ctx,
            Invariant::SelectionSuboptimal,
            None,
            format!(
                "chosen set valued {v}, exhaustive optimum {best_v} via candidates {best_set:?}"
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::dfg::NodeKind;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_ir::{BinOp, NodeId};
    use slpwlo_targets::xentium;

    fn fir_dfg() -> Dfg {
        let k = parse_kernel(
            r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    acc = acc + c[0] * dl[0];
    acc = acc + c[1] * dl[1];
    acc = acc + c[2] * dl[2];
    acc = acc + c[3] * dl[3];
    y = acc;
}
"#,
        )
        .unwrap();
        let blocks = collect_blocks(&k);
        Dfg::from_block(&k, &blocks[0])
    }

    fn muls(dfg: &Dfg) -> Vec<NodeId> {
        dfg.iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Mul)))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn accepts_independent_isomorphic_pairs() {
        let dfg = fir_dfg();
        let m = muls(&dfg);
        let groups = vec![
            SimdGroup {
                elems: vec![m[0], m[1]],
            },
            SimdGroup {
                elems: vec![m[2], m[3]],
            },
        ];
        verify_groups(&dfg, &groups, &xentium(), "t").unwrap();
    }

    #[test]
    fn kills_duplicate_nodes() {
        let dfg = fir_dfg();
        let m = muls(&dfg);
        let groups = vec![
            SimdGroup {
                elems: vec![m[0], m[1]],
            },
            SimdGroup {
                elems: vec![m[1], m[2]],
            },
        ];
        let e = verify_groups(&dfg, &groups, &xentium(), "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::DuplicateNode);
    }

    #[test]
    fn kills_dependent_lanes() {
        let dfg = fir_dfg();
        let adds: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Add)))
            .map(|(i, _)| i)
            .collect();
        let groups = vec![SimdGroup {
            elems: vec![adds[0], adds[1]],
        }];
        let e = verify_groups(&dfg, &groups, &xentium(), "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::DependentLanes);
    }

    #[test]
    fn kills_unsupported_widths() {
        let dfg = fir_dfg();
        let m = muls(&dfg);
        let groups = vec![SimdGroup {
            elems: vec![m[0], m[1], m[2]],
        }];
        let e = verify_groups(&dfg, &groups, &xentium(), "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::UnsupportedWidth);
    }

    #[test]
    fn optimal_selection_spot_check_accepts_exact_and_rejects_empty() {
        use slpwlo_slp::{run_selection_stats, CandidateView, SelectHooks, SelectStats};
        // Frozen 16-bit word lengths, mirroring `extract_plain`'s hooks.
        struct FixedWl<'a> {
            target: &'a TargetModel,
        }
        impl SelectHooks for FixedWl<'_> {
            fn validate(&mut self, view: &CandidateView) -> bool {
                match self.target.container_wl(16) {
                    Some(c) => c <= view.elem_wl,
                    None => false,
                }
            }
            fn current_wl(&self, _n: NodeId) -> Option<i32> {
                Some(16)
            }
        }
        let k = parse_kernel(
            r#"
kernel g {
    input x range [-1, 1];
    output y;
    param c[2] = { 0.5, 0.25 };
    array dl[2];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0];
    t1 = c[1] * dl[1];
    y = t0 + t1;
}
"#,
        )
        .unwrap();
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_block(&k, &blocks[0]);
        let target = slpwlo_targets::st240();
        let wl = |_: NodeId| 16;
        let round = Round::new(&dfg, &target, &[]);
        let mut stats = SelectStats::default();
        let mut hooks = FixedWl { target: &target };
        let chosen = run_selection_stats(
            &dfg,
            &target,
            &round,
            &[],
            &mut hooks,
            BenefitKind::optimal(),
            &mut stats,
        );
        assert!(!chosen.is_empty(), "ST240 must pack this round");
        verify_optimal_selection(&dfg, &target, &[], &chosen, &wl, 20, "t").unwrap();
        // An empty selection on a profitable round is provably below the
        // enumerated optimum.
        let e = verify_optimal_selection(&dfg, &target, &[], &[], &wl, 20, "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::SelectionSuboptimal);
    }

    #[test]
    fn kills_mixed_kinds() {
        let dfg = fir_dfg();
        let m = muls(&dfg);
        let loads: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::LoadArray(..)))
            .map(|(i, _)| i)
            .collect();
        let groups = vec![SimdGroup {
            elems: vec![m[0], loads[0]],
        }];
        let e = verify_groups(&dfg, &groups, &xentium(), "t").unwrap_err();
        assert_eq!(e.invariant, Invariant::NonIsomorphic);
    }
}
