//! # slpwlo-verify — static pipeline verification
//!
//! One independent checker per pipeline artifact, each proving that
//! artifact's invariants *without running anything*:
//!
//! * [`verify_kernel`] — IR sanity: input ranges, operand bounds,
//!   arena acyclicity/sharing, def-before-use, outputs set exactly
//!   once and reachable.
//! * [`verify_spec`] — fixed-point soundness: every chosen `(wl, fmt)`
//!   covers the value range the analysis established, word lengths are
//!   machine-representable, and (at [`VerifyLevel::Paranoid`]) the
//!   declared ranges are re-derived by interval abstract interpretation
//!   and checked for enclosure — a static overflow-freedom proof.
//! * [`verify_groups`] — SLP legality: lane counts realisable on the
//!   target, isomorphic lanes with consistent operand positions, no
//!   node in two groups, pairwise lane independence, and no dependency
//!   cycle through the coarsened group graph.
//! * [`verify_program`] — machine-program well-formedness: SSA-like
//!   def-before-use over operations and virtual registers, vector-lane
//!   index bounds under loop trip counts (scalar accesses wrap, vector
//!   lanes are read contiguously), storage formats covering
//!   their definitions, supported SIMD widths, and a full re-check of
//!   the list schedule (dependences respected by issue cycles,
//!   per-cycle functional-unit and issue-width budgets, serialized ops
//!   exclusive).
//!
//! The checkers are deliberately *redundant* with the passes that build
//! the artifacts: they share no state with them, so a bug in a pass
//! cannot hide itself. The driver runs them at every pass boundary
//! (`Optimizer::verify_level`); the fuzz harness runs them at
//! [`VerifyLevel::Paranoid`] so an invariant break names the offending
//! pass instead of surfacing as a bit-mismatch three stages later.
//!
//! Every rejection is a structured [`VerifyError`] carrying the pass,
//! the violated [`Invariant`], the artifact, and (when known) the
//! offending node — enough to localize the bug without a debugger.

use std::fmt;

pub mod ir;
pub mod machine;
pub mod slp;
pub mod spec;

pub use ir::verify_kernel;
pub use machine::{audit_block_schedule, verify_program, verify_program_sched};
pub use slp::{verify_groups, verify_optimal_selection};
pub use spec::verify_spec;

use slpwlo_core::{PassArtifact, ProgramRole};

/// How much pass-boundary verification the pipeline performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyLevel {
    /// No verification.
    Off,
    /// Verify the kernel on entry and every *final* artifact a pass
    /// hands to the next one (spec, grouping, SIMD and scalar
    /// programs). Cheap enough to leave on in debug builds.
    Boundaries,
    /// Additionally verify intermediate artifacts (pre-prune groupings,
    /// candidate lowerings the pruner only prices) and re-derive value
    /// ranges by interval analysis to prove the spec's declared ranges
    /// are enclosing. Meant for fuzzing and CI, not production runs.
    Paranoid,
}

impl Default for VerifyLevel {
    /// `Boundaries` under `debug_assertions`, `Off` in release builds.
    fn default() -> Self {
        if cfg!(debug_assertions) {
            VerifyLevel::Boundaries
        } else {
            VerifyLevel::Off
        }
    }
}

impl fmt::Display for VerifyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VerifyLevel::Off => "off",
            VerifyLevel::Boundaries => "boundaries",
            VerifyLevel::Paranoid => "paranoid",
        })
    }
}

/// The pipeline stage whose output artifact failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// The kernel IR (parser / builder output).
    Ir,
    /// The fixed-point specification (range analysis + WLO).
    Spec,
    /// The SLP grouping (candidate extraction + selection).
    Slp,
    /// The lowered machine program and its schedule.
    Machine,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Ir => "ir",
            Pass::Spec => "spec",
            Pass::Slp => "slp",
            Pass::Machine => "machine",
        })
    }
}

/// The specific invariant a checker found violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Invariant {
    // --- IR ---
    /// An input's declared range is empty or non-finite.
    InputRange,
    /// An expression operand references a node outside the arena.
    OperandBounds,
    /// An expression references a node at or after itself (the arena
    /// must be in topological order — acyclicity outside declared
    /// feedback through arrays/variables).
    ExprAcyclic,
    /// An arena node is referenced by two consumers (the arena is a
    /// forest; sharing happens through variables).
    ExprShared,
    /// A variable is read before any assignment defines it (in document
    /// order — cross-activation feedback must go through arrays).
    UseBeforeDef,
    /// A vector lane's array/parameter index can leave `[0, len)` under
    /// the enclosing loops' trip counts. Scalar accesses are exempt:
    /// they wrap with the Euclidean semantics every backend shares, but
    /// vector locations are read contiguously and must be statically
    /// in-bounds (the lowering demotes wrapping groups to gathers).
    IndexOutOfBounds,
    /// An `output` statement names an index outside the declared
    /// output list.
    OutputIndex,
    /// A declared output is never assigned.
    OutputUnset,
    // --- Spec ---
    /// A chosen format cannot represent the value range the analysis
    /// established for that site (static overflow).
    FormatOverflow,
    /// A word length is outside `[1, max_wl]` or not machine-
    /// representable (≤ 63 bits with the sign).
    WordLength,
    /// Re-derived interval ranges are not enclosed by the declared
    /// ranges even though the analysis claimed interval convergence.
    RangeDrift,
    // --- SLP ---
    /// A group has fewer than two lanes.
    LaneCount,
    /// A group's lane count (or a vector op's width) has no supported
    /// SIMD configuration on the target.
    UnsupportedWidth,
    /// A group mixes non-isomorphic operations (or lanes disagree on
    /// operand positions).
    NonIsomorphic,
    /// A DFG node appears in two groups.
    DuplicateNode,
    /// Two lanes of one group depend on each other.
    DependentLanes,
    /// The coarsened group graph has a dependency cycle.
    GroupCycle,
    /// The exact selector committed a round whose in-set value falls
    /// below the exhaustive optimum over the same candidates (or chose
    /// a group that is not a candidate of the round at all).
    SelectionSuboptimal,
    // --- Machine ---
    /// An operation's predecessor or operand references a later (or
    /// itself as an) operation — def must precede use.
    PredOrder,
    /// An operand references a register, variable or storage slot that
    /// does not exist.
    BadOperand,
    /// A virtual register (variable) is defined twice in one block.
    Redefinition,
    /// A storage slot's declared format does not cover the format of a
    /// value stored into it.
    FormatNotCovering,
    /// The schedule issues an operation before its operands are ready.
    IssueBeforeReady,
    /// A cycle oversubscribes a functional unit or the issue width.
    ResourceOverflow,
    /// A serializing operation shares the machine with another op.
    SerializedOverlap,
    /// A modulo schedule issues an op before a loop-carried dependence
    /// (shifted by the initiation interval) is satisfied: iteration
    /// `k+1`'s consumer starts before iteration `k`'s producer finished.
    LoopCarriedOrder,
    /// A modulo schedule's steady state oversubscribes the machine: the
    /// issue log folded modulo the II exceeds a per-residue unit/issue
    /// budget, the loop-control ops no longer fit beside it, or the
    /// prologue/epilogue split does not reassemble the makespan.
    SteadyStateOverflow,
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Invariant::InputRange => "input range must be finite and ordered",
            Invariant::OperandBounds => "expression operand must be in the arena",
            Invariant::ExprAcyclic => "expression arena must be topologically ordered",
            Invariant::ExprShared => "arena nodes must have a single consumer",
            Invariant::UseBeforeDef => "variable must be assigned before it is read",
            Invariant::IndexOutOfBounds => "index must stay within the declared length",
            Invariant::OutputIndex => "output index must name a declared output",
            Invariant::OutputUnset => "every declared output must be assigned",
            Invariant::FormatOverflow => "format must cover the established value range",
            Invariant::WordLength => "word length must be within [1, max_wl] and ≤ 63",
            Invariant::RangeDrift => "declared ranges must enclose re-derived interval ranges",
            Invariant::LaneCount => "SIMD group needs at least two lanes",
            Invariant::UnsupportedWidth => {
                "lane count must have a SIMD configuration on the target"
            }
            Invariant::NonIsomorphic => "group lanes must be isomorphic operations",
            Invariant::DuplicateNode => "a node may belong to at most one group",
            Invariant::DependentLanes => "group lanes must be pairwise independent",
            Invariant::GroupCycle => "coarsened group graph must stay acyclic",
            Invariant::SelectionSuboptimal => {
                "exact selection must match the exhaustive optimum on small rounds"
            }
            Invariant::PredOrder => "operation dependences must point backwards",
            Invariant::BadOperand => "operand must reference an existing def or slot",
            Invariant::Redefinition => "virtual register must have a single definition",
            Invariant::FormatNotCovering => "storage format must cover the stored value's format",
            Invariant::IssueBeforeReady => "op must not issue before its operands are ready",
            Invariant::ResourceOverflow => "per-cycle unit and issue budgets must be respected",
            Invariant::SerializedOverlap => "serialized ops must occupy the machine alone",
            Invariant::LoopCarriedOrder => {
                "loop-carried dependences must be satisfied across the initiation interval"
            }
            Invariant::SteadyStateOverflow => {
                "the steady state must respect per-residue budgets and the prologue/epilogue split"
            }
        };
        f.write_str(s)
    }
}

/// A structured verification failure: which pass produced the broken
/// artifact, which invariant broke, and where.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// The pipeline stage whose output is broken.
    pub pass: Pass,
    /// The violated invariant.
    pub invariant: Invariant,
    /// The artifact (kernel, block, program) being verified.
    pub artifact: String,
    /// The offending node/op/site within the artifact, when known.
    pub node: Option<String>,
    /// Human-readable specifics (expected vs found).
    pub detail: String,
}

impl VerifyError {
    pub(crate) fn new(
        pass: Pass,
        invariant: Invariant,
        artifact: impl Into<String>,
        node: Option<String>,
        detail: impl Into<String>,
    ) -> Self {
        VerifyError {
            pass,
            invariant,
            artifact: artifact.into(),
            node,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} pass] {}: {}",
            self.pass, self.artifact, self.invariant
        )?;
        if let Some(node) = &self.node {
            write!(f, " at {node}")?;
        }
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Verifies one pass-boundary artifact at the given level.
///
/// This is the adapter the flows call through
/// `slpwlo_core::wlo_slp_flow_checked` /
/// `slpwlo_core::wlo_first_flow_checked`: the core hands every artifact
/// it produces to the callback; this function decides — by level and by
/// whether the artifact is final or intermediate — which checker to
/// run. At [`VerifyLevel::Off`] it is free.
pub fn verify_boundary(level: VerifyLevel, artifact: &PassArtifact<'_>) -> Result<(), VerifyError> {
    if level == VerifyLevel::Off {
        return Ok(());
    }
    let paranoid = level >= VerifyLevel::Paranoid;
    match artifact {
        PassArtifact::Kernel { kernel } => verify_kernel(kernel),
        PassArtifact::Spec {
            kernel,
            ranges,
            spec,
            is_final,
        } => {
            if *is_final || paranoid {
                verify_spec(kernel, ranges, spec, paranoid)
            } else {
                Ok(())
            }
        }
        PassArtifact::Groups {
            dfg,
            groups,
            target,
            block,
            is_final,
        } => {
            if *is_final || paranoid {
                verify_groups(dfg, groups, target, &format!("block {block}"))
            } else {
                Ok(())
            }
        }
        PassArtifact::Program {
            program,
            target,
            role,
            sched,
        } => {
            if *role != ProgramRole::Candidate || paranoid {
                verify_program_sched(program, target, *sched)
            } else {
                Ok(())
            }
        }
    }
}
