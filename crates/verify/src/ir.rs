//! The IR verifier: structural sanity of a [`Kernel`].
//!
//! Subsumes `Kernel::validate` (input ranges, arena single-use, output
//! coverage) and extends it with the checks the downstream passes
//! silently rely on:
//!
//! * **def-before-use** — every `ReadVar` is preceded (in document
//!   order) by an `Assign` of that variable; cross-activation feedback
//!   must be expressed through state arrays, never stale variables;
//! * **output indices** — `Output(idx, _)` statements name declared
//!   outputs (`validate` ignores stray indices silently).
//!
//! Array/param indices leaving `[0, len)` are deliberately *not*
//! flagged here: every backend (reference interpreter, machine
//! interpreter, both C emitters) shares the Euclidean wrap semantics,
//! the kernel generator deliberately produces wrapping accesses, and
//! empty tables are unrepresentable — so any index addresses a defined
//! element. What must *not* wrap is a vector lane's location, and that
//! is the machine verifier's job ([`Invariant::IndexOutOfBounds`]).

use crate::{Invariant, Pass, VerifyError};
use slpwlo_ir::{ExprNode, Kernel, LoopId, Stmt};

fn err(
    kernel: &Kernel,
    invariant: Invariant,
    node: Option<String>,
    detail: impl Into<String>,
) -> VerifyError {
    VerifyError::new(
        Pass::Ir,
        invariant,
        format!("kernel {}", kernel.name()),
        node,
        detail,
    )
}

/// Verifies a kernel's structural invariants.
///
/// Runs [`Kernel::validate`] first (ranges, arena topology, single-use,
/// output coverage) and maps its findings onto [`VerifyError`], then
/// layers the stricter checks on top. Any kernel accepted here is safe
/// for every downstream pass: range analysis, DFG construction,
/// lowering and interpretation.
pub fn verify_kernel(kernel: &Kernel) -> Result<(), VerifyError> {
    use slpwlo_ir::IrError;
    if let Err(e) = kernel.validate() {
        let invariant = match &e {
            IrError::InvalidRange { .. } => Invariant::InputRange,
            IrError::InvalidExpr(_) => Invariant::OperandBounds,
            IrError::ExprCycle(_) => Invariant::ExprAcyclic,
            IrError::ExprReused(_) => Invariant::ExprShared,
            IrError::OutputUnset(_) => Invariant::OutputUnset,
            _ => Invariant::OperandBounds,
        };
        return Err(err(kernel, invariant, None, e.to_string()));
    }

    // Document-order walk: collect each statement with its loop stack.
    let mut stmts: Vec<(&Stmt, Vec<(LoopId, u32)>)> = Vec::new();
    kernel.visit_stmts(&mut |s, stack| stmts.push((s, stack.to_vec())));

    let mut defined = vec![false; kernel.vars().len()];
    for (stmt, _loops) in &stmts {
        let root = match stmt {
            Stmt::Assign(_, e) | Stmt::Store(_, _, e) | Stmt::ShiftIn(_, e) => Some(*e),
            Stmt::Output(idx, e) => {
                if *idx >= kernel.outputs().len() {
                    return Err(err(
                        kernel,
                        Invariant::OutputIndex,
                        Some(format!("output #{idx}")),
                        format!("kernel declares {} outputs", kernel.outputs().len()),
                    ));
                }
                Some(*e)
            }
            Stmt::For { .. } => None,
        };
        // Uses first: `v = f(v)` reads the *previous* value of `v`.
        if let Some(root) = root {
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                match kernel.expr(id) {
                    ExprNode::ReadVar(v) => {
                        if !defined[v.index()] {
                            return Err(err(
                                kernel,
                                Invariant::UseBeforeDef,
                                Some(format!("var {}", kernel.vars()[v.index()].name)),
                                "read before any assignment in document order",
                            ));
                        }
                    }
                    ExprNode::LoadArray(..) | ExprNode::LoadParam(..) => {}
                    node => stack.extend(node.operands()),
                }
            }
        }
        if let Stmt::Assign(v, _) = stmt {
            defined[v.index()] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::builder::KernelBuilder;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_ir::IndexExpr;

    #[test]
    fn accepts_the_paper_fir() {
        let k = parse_kernel(
            r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    acc = acc + c[0] * dl[0];
    acc = acc + c[1] * dl[1];
    acc = acc + c[2] * dl[2];
    acc = acc + c[3] * dl[3];
    y = acc;
}
"#,
        )
        .unwrap();
        verify_kernel(&k).unwrap();
    }

    #[test]
    fn rejects_read_before_assignment() {
        let mut b = KernelBuilder::new("k");
        let y = b.output("y");
        let v = b.var("t");
        let r = b.read_var(v);
        b.set_output(y, r);
        let k = b.finish();
        assert!(k.validate().is_ok(), "validate misses use-before-def");
        let e = verify_kernel(&k).unwrap_err();
        assert_eq!(e.invariant, Invariant::UseBeforeDef);
        assert_eq!(e.pass, Pass::Ir);
    }

    /// Indices leaving `[0, len)` are defined (Euclidean wrap) across
    /// every backend, so the IR checker must accept them — rejecting
    /// them here would kill kernels the generator deliberately emits.
    #[test]
    fn accepts_wrapping_indices() {
        let mut b = KernelBuilder::new("k");
        let x = b.input("x", -1.0, 1.0);
        let y = b.output("y");
        let a = b.array("dl", 4);
        let acc = b.var("acc");
        let xv = b.read_input(x);
        b.shift_in(a, xv);
        let z = b.load(a, 4); // one past the end: wraps to dl[0]
        b.assign(acc, z);
        let i = b.begin_for(8); // i in 0..8 over dl[4]: wraps twice
        let av = b.read_var(acc);
        let ix = IndexExpr::affine(i, 1, -1); // and below zero at i = 0
        let l = b.load_ix(a, ix);
        let s = b.add(av, l);
        b.assign(acc, s);
        b.end_for(i);
        let fin = b.read_var(acc);
        b.set_output(y, fin);
        let k = b.finish();
        verify_kernel(&k).unwrap();
    }

    #[test]
    fn lifts_validate_findings() {
        let k = parse_kernel("kernel k { input x range [-1, 1]; output y; var t; t = x; y = t; }")
            .unwrap();
        verify_kernel(&k).unwrap();
    }
}
