//! The machine-program verifier: well-formedness of a lowered
//! [`MachineProgram`] and a full independent audit of its schedule.
//!
//! Structural checks (per block):
//!
//! * dependence predecessors and `Op` operands point strictly
//!   backwards (the op list is a topological order — the SSA-like
//!   discipline the C emitters' register numbering relies on);
//! * every data operand is *ordered* by the dependence edges (a path
//!   of `preds` reaches the defining op — otherwise the scheduler may
//!   legally issue a use before its def);
//! * every operand references an existing value: in-range op results
//!   that actually produce a value, declared variables, declared
//!   storage;
//! * vector lanes' array/param indices stay inside `[0, len)` under
//!   the block's loop trip counts (scalar accesses may wrap — the
//!   Euclidean semantics every backend shares); stores never target
//!   coefficient tables;
//! * store/shift-in formats equal the destination's storage format,
//!   and each variable's canonical storage format covers the format of
//!   every definition assigned to it (modulo the 62-bit container cap
//!   the lowering applies);
//! * a variable is defined at most once per block;
//! * vector widths have a SIMD configuration on the target, and
//!   requantization shifts fit the 63-bit grid on every lane.
//!
//! Schedule checks (per block, against the scheduler's issue log — the
//! list scheduler's, or the modulo scheduler's when the flow pipelines):
//!
//! * no op issues before every predecessor's result is available;
//! * per cycle, no functional-unit class exceeds its capacity and the
//!   total stays within the issue width (for a pipelined schedule the
//!   usage is folded modulo the initiation interval and re-totaled
//!   per residue);
//! * every op's logged slots add up to its full cost;
//! * serializing ops (soft-float calls) share no cycle with any other
//!   op — and never appear in a pipelined schedule at all;
//! * a pipelined schedule satisfies every loop-carried dependence
//!   across the II (`start[to] + ii ≥ finish[from]`) over carried
//!   edges this checker re-derives itself from `var_defs` and the
//!   block's array accesses, leaves headroom for the loop-control ops
//!   in the steady state, and splits its makespan exactly into
//!   prologue + epilogue.

use crate::{Invariant, Pass, VerifyError};
use slpwlo_core::{
    broadcast_lane, ix_bounds, operand_fmts, result_fmt, schedule_block_with, Loc, MachineBlock,
    MachineProgram, ModuloSchedule, MopKind, Operand, Schedule,
};
use slpwlo_fixedpoint::QFormat;
use slpwlo_targets::{OpClass, OpCost, OpQuery, SchedKind, TargetModel};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

struct Ctx<'a> {
    program: &'a MachineProgram,
    block: usize,
}

impl Ctx<'_> {
    fn err(
        &self,
        invariant: Invariant,
        op: Option<usize>,
        detail: impl Into<String>,
    ) -> VerifyError {
        VerifyError::new(
            Pass::Machine,
            invariant,
            format!("program {} block {}", self.program.name, self.block),
            op.map(|i| format!("op {i}")),
            detail,
        )
    }
}

/// Value operands of an operation's executable semantics.
fn kind_operands(kind: &MopKind) -> Vec<&Operand> {
    match kind {
        MopKind::ReadInput { .. }
        | MopKind::Load { .. }
        | MopKind::VLoad { .. }
        | MopKind::Nop
        | MopKind::Opaque => Vec::new(),
        MopKind::Store { src, .. }
        | MopKind::ShiftIn { src, .. }
        | MopKind::Output { src, .. }
        | MopKind::Un { src, .. }
        | MopKind::Requant { src, .. }
        | MopKind::Copy { src }
        | MopKind::VStore { src, .. }
        | MopKind::VUn { src, .. }
        | MopKind::VRequant { src, .. }
        | MopKind::Splat { src, .. }
        | MopKind::Extract { src, .. } => vec![src],
        MopKind::Bin { a, b, .. } | MopKind::VBin { a, b, .. } => vec![a, b],
        MopKind::Pack { lanes } => lanes.iter().collect(),
    }
}

/// Locations an operation touches, as `(loc, writes, vector)`.
fn kind_locs(kind: &MopKind) -> Vec<(&Loc, bool, bool)> {
    match kind {
        MopKind::Load { loc } => vec![(loc, false, false)],
        MopKind::Store { loc, .. } => vec![(loc, true, false)],
        MopKind::VLoad { locs } => locs.iter().map(|l| (l, false, true)).collect(),
        MopKind::VStore { locs, .. } => locs.iter().map(|l| (l, true, true)).collect(),
        _ => Vec::new(),
    }
}

fn query_lanes(q: OpQuery) -> Option<u32> {
    match q {
        OpQuery::VAdd(l)
        | OpQuery::VMul(l)
        | OpQuery::VShift(l)
        | OpQuery::VLoad(l)
        | OpQuery::VStore(l)
        | OpQuery::VLoadU(l)
        | OpQuery::VStoreU(l) => Some(l),
        _ => None,
    }
}

/// Verifies a lowered program's structural invariants and re-audits its
/// list schedule against `target`'s resource model.
pub fn verify_program(program: &MachineProgram, target: &TargetModel) -> Result<(), VerifyError> {
    verify_program_sched(program, target, SchedKind::List)
}

/// [`verify_program`] auditing the schedule the flow actually prices:
/// under [`SchedKind::Modulo`], blocks the scheduler pipelines are
/// checked against the modulo invariants (II-shifted dependences,
/// per-residue steady-state budgets) instead of the flat-cycle audit.
pub fn verify_program_sched(
    program: &MachineProgram,
    target: &TargetModel,
    kind: SchedKind,
) -> Result<(), VerifyError> {
    for (bi, block) in program.blocks.iter().enumerate() {
        let ctx = Ctx { program, block: bi };
        verify_block_structure(&ctx, block, target)?;
        let sched = schedule_block_with(target, block, kind);
        audit_schedule(&ctx, block, target, &sched)?;
    }
    Ok(())
}

/// Audits an externally supplied schedule of `program`'s block
/// `block_index` against `target`'s resource model — the same audit
/// [`verify_program_sched`] applies to the schedules it computes
/// itself. Public so tests can prove the checker *rejects* corrupted
/// schedules (a hand-shifted steady state, a decremented II) rather
/// than merely accepting everything the scheduler emits.
pub fn audit_block_schedule(
    program: &MachineProgram,
    block_index: usize,
    target: &TargetModel,
    sched: &Schedule,
) -> Result<(), VerifyError> {
    let ctx = Ctx {
        program,
        block: block_index,
    };
    audit_schedule(&ctx, &program.blocks[block_index], target, sched)
}

/// Checks one location access. Scalar accesses are free to leave
/// `[0, len)` — every backend wraps them with the shared Euclidean
/// semantics — but a *vector* lane must be statically in-bounds: the
/// lowering demotes wrapping groups to gathers, and the SIMD C emitter
/// reads `VLOADn(&arr[base])` contiguously, so a wrapping lane would
/// run off the end of the table.
fn check_loc(
    ctx: &Ctx<'_>,
    i: usize,
    block: &MachineBlock,
    loc: &Loc,
    vector: bool,
) -> Result<(), VerifyError> {
    let storage = &ctx.program.storage;
    let (name, len, ix) = match loc {
        Loc::Array(a, ix) => {
            let Some(decl) = storage.arrays.get(a.index()) else {
                return Err(ctx.err(Invariant::BadOperand, Some(i), format!("undeclared {a}")));
            };
            (&decl.name, decl.len, ix)
        }
        Loc::Param(p, ix) => {
            let Some(decl) = storage.params.get(p.index()) else {
                return Err(ctx.err(Invariant::BadOperand, Some(i), format!("undeclared {p}")));
            };
            (&decl.name, decl.raws.len(), ix)
        }
    };
    let (lo, hi) = ix_bounds(ix, &block.loops);
    if vector && (lo < 0 || hi >= len as i64) {
        return Err(ctx.err(
            Invariant::IndexOutOfBounds,
            Some(i),
            format!("vector lane index of {name} spans [{lo}, {hi}] but length is {len}"),
        ));
    }
    Ok(())
}

fn verify_block_structure(
    ctx: &Ctx<'_>,
    block: &MachineBlock,
    target: &TargetModel,
) -> Result<(), VerifyError> {
    let storage = &ctx.program.storage;
    let n = block.ops.len();
    let words = n.div_ceil(64);
    // Transitive closure over `preds` as bitsets: `reach[i]` holds every
    // op a dependence path from `i` leads back to. Cheap because preds
    // point strictly backwards.
    let mut reach: Vec<Vec<u64>> = Vec::with_capacity(n);

    let check_operand = |i: usize, o: &Operand| -> Result<(), VerifyError> {
        match o {
            Operand::Op(j) => {
                if *j >= i {
                    return Err(ctx.err(
                        Invariant::PredOrder,
                        Some(i),
                        format!("operand references op {j}, which does not precede it"),
                    ));
                }
            }
            Operand::Var(v) => {
                if v.index() >= storage.vars.len() {
                    return Err(ctx.err(
                        Invariant::BadOperand,
                        Some(i),
                        format!("undeclared variable {v}"),
                    ));
                }
            }
            Operand::Imm { .. } => {}
        }
        Ok(())
    };

    let mut fmts: Vec<Vec<QFormat>> = Vec::with_capacity(n);
    for (i, op) in block.ops.iter().enumerate() {
        let mut row = vec![0u64; words];
        for &p in &op.preds {
            if p >= i {
                return Err(ctx.err(
                    Invariant::PredOrder,
                    Some(i),
                    format!("dependence on op {p}, which does not precede it"),
                ));
            }
            row[p / 64] |= 1 << (p % 64);
            for (w, r) in row.iter_mut().zip(&reach[p]) {
                *w |= r;
            }
        }

        for o in kind_operands(&op.kind) {
            check_operand(i, o)?;
            if let Operand::Op(j) = o {
                if row[j / 64] & (1 << (j % 64)) == 0 {
                    return Err(ctx.err(
                        Invariant::PredOrder,
                        Some(i),
                        format!("data operand op {j} is not ordered by any dependence path"),
                    ));
                }
                if fmts[*j].is_empty() {
                    return Err(ctx.err(
                        Invariant::BadOperand,
                        Some(i),
                        format!("operand op {j} produces no value"),
                    ));
                }
            }
        }
        reach.push(row);

        for (loc, writes, vector) in kind_locs(&op.kind) {
            check_loc(ctx, i, block, loc, vector)?;
            if writes && matches!(loc, Loc::Param(..)) {
                return Err(ctx.err(
                    Invariant::BadOperand,
                    Some(i),
                    "store targets a coefficient table",
                ));
            }
        }

        match &op.kind {
            MopKind::ReadInput { input, .. } if input.index() >= storage.inputs.len() => {
                return Err(ctx.err(
                    Invariant::BadOperand,
                    Some(i),
                    format!("undeclared input {input}"),
                ));
            }
            MopKind::Output { index, .. } if *index >= storage.outputs.len() => {
                return Err(ctx.err(
                    Invariant::BadOperand,
                    Some(i),
                    format!(
                        "output #{index} of {} declared outputs",
                        storage.outputs.len()
                    ),
                ));
            }
            MopKind::ShiftIn { array, to, .. } => {
                let Some(decl) = storage.arrays.get(array.index()) else {
                    return Err(ctx.err(
                        Invariant::BadOperand,
                        Some(i),
                        format!("undeclared {array}"),
                    ));
                };
                if *to != decl.fmt {
                    return Err(ctx.err(
                        Invariant::FormatNotCovering,
                        Some(i),
                        format!(
                            "shift-in writes Q{}.{} into {} stored as Q{}.{}",
                            to.iwl, to.fwl, decl.name, decl.fmt.iwl, decl.fmt.fwl
                        ),
                    ));
                }
            }
            MopKind::Store { loc, to, .. } => {
                check_store_fmt(ctx, i, storage.loc_fmt(loc), *to)?;
            }
            MopKind::VStore { locs, to, .. } => {
                for loc in locs {
                    check_store_fmt(ctx, i, storage.loc_fmt(loc), *to)?;
                }
            }
            _ => {}
        }

        if let Some(l) = query_lanes(op.query) {
            if !target.simd.iter().any(|c| c.lanes == l) {
                return Err(ctx.err(
                    Invariant::UnsupportedWidth,
                    Some(i),
                    format!("{} has no {l}-lane SIMD configuration", target.name),
                ));
            }
        }

        // Requantization shifts stay on the 63-bit grid (per lane —
        // the vector shift macro takes one amount per lane, so lanes
        // may legitimately differ).
        if let MopKind::Requant { src, to } = &op.kind {
            let from = operand_fmts(src, &fmts, storage)[0];
            check_shift(ctx, i, from.fwl - to.fwl)?;
        }
        if let MopKind::VRequant { src, to, .. } = &op.kind {
            let from = operand_fmts(src, &fmts, storage);
            for (lane, t) in to.iter().enumerate() {
                let f = broadcast_lane(&from, lane);
                check_shift(ctx, i, f.fwl - t.fwl)?;
            }
        }

        fmts.push(result_fmt(&op.kind, &fmts, storage));
    }

    // Variable definitions: declared, unique, and covered by storage.
    let mut seen: HashSet<usize> = HashSet::new();
    for (v, o) in &block.var_defs {
        let Some(decl) = storage.vars.get(v.index()) else {
            return Err(ctx.err(
                Invariant::BadOperand,
                None,
                format!("var_defs names undeclared variable {v}"),
            ));
        };
        if !seen.insert(v.index()) {
            return Err(ctx.err(
                Invariant::Redefinition,
                None,
                format!("variable {} defined twice in one block", decl.name),
            ));
        }
        if let Operand::Op(j) = o {
            if *j >= block.ops.len() {
                return Err(ctx.err(
                    Invariant::BadOperand,
                    None,
                    format!("var_defs for {} references op {j} of {}", decl.name, n),
                ));
            }
        }
        let def = operand_fmts(o, &fmts, storage);
        if let Some(f) = def.first() {
            let vf = decl.fmt;
            let capped = vf.iwl + vf.fwl >= 62 && vf.fwl >= f.fwl;
            if !vf.covers(*f) && !capped {
                return Err(ctx.err(
                    Invariant::FormatNotCovering,
                    None,
                    format!(
                        "variable {} stored as Q{}.{} cannot cover definition Q{}.{}",
                        decl.name, vf.iwl, vf.fwl, f.iwl, f.fwl
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn check_store_fmt(
    ctx: &Ctx<'_>,
    i: usize,
    storage_fmt: QFormat,
    to: QFormat,
) -> Result<(), VerifyError> {
    if to != storage_fmt {
        return Err(ctx.err(
            Invariant::FormatNotCovering,
            Some(i),
            format!(
                "store requantizes to Q{}.{} but the location is stored as Q{}.{}",
                to.iwl, to.fwl, storage_fmt.iwl, storage_fmt.fwl
            ),
        ));
    }
    Ok(())
}

fn check_shift(ctx: &Ctx<'_>, i: usize, shift: i32) -> Result<(), VerifyError> {
    if shift.abs() > 62 {
        return Err(ctx.err(
            Invariant::FormatNotCovering,
            Some(i),
            format!("requantization shift {shift} exceeds the 63-bit grid"),
        ));
    }
    Ok(())
}

/// The verifier's own loop-carried (distance-1) dependence derivation,
/// deliberately re-coded rather than shared with the scheduler's:
/// `var_defs` commits make next-iteration readers depend on the
/// defining op, and every array *written* in the block (stores, vector
/// stores, shift-ins) conservatively conflicts writer↔toucher across
/// iterations, including an op against its own next copy.
fn carried_edges(block: &MachineBlock) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (v, def) in &block.var_defs {
        let Operand::Op(j) = def else { continue };
        for (i, op) in block.ops.iter().enumerate() {
            if kind_operands(&op.kind)
                .into_iter()
                .any(|o| matches!(o, Operand::Var(r) if r == v))
            {
                edges.push((*j, i));
            }
        }
    }
    // (array, writes) pairs per op; `kind_locs` covers loads/stores,
    // shift-in rewrites its whole array.
    let touches = |op: &slpwlo_core::Mop| -> Vec<(usize, bool)> {
        let mut t: Vec<(usize, bool)> = kind_locs(&op.kind)
            .into_iter()
            .filter_map(|(loc, writes, _)| match loc {
                Loc::Array(a, _) => Some((a.index(), writes)),
                Loc::Param(..) => None,
            })
            .collect();
        if let MopKind::ShiftIn { array, .. } = &op.kind {
            t.push((array.index(), true));
        }
        t
    };
    let per_op: Vec<Vec<(usize, bool)>> = block.ops.iter().map(touches).collect();
    let written: BTreeSet<usize> = per_op
        .iter()
        .flatten()
        .filter(|(_, w)| *w)
        .map(|(a, _)| *a)
        .collect();
    for &a in &written {
        let touchers: Vec<usize> = (0..block.ops.len())
            .filter(|&i| per_op[i].iter().any(|&(t, _)| t == a))
            .collect();
        for &w in touchers
            .iter()
            .filter(|&&i| per_op[i].iter().any(|&(t, wr)| t == a && wr))
        {
            for &t in &touchers {
                edges.push((w, t));
                edges.push((t, w));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

fn audit_schedule(
    ctx: &Ctx<'_>,
    block: &MachineBlock,
    target: &TargetModel,
    sched: &Schedule,
) -> Result<(), VerifyError> {
    let costs: Vec<_> = block.ops.iter().map(|op| target.cost(op.query)).collect();

    for (i, op) in block.ops.iter().enumerate() {
        for &p in &op.preds {
            if sched.start[i] < sched.finish[p] {
                return Err(ctx.err(
                    Invariant::IssueBeforeReady,
                    Some(i),
                    format!(
                        "issues at cycle {} but op {p} finishes at {}",
                        sched.start[i], sched.finish[p]
                    ),
                ));
            }
        }
        if sched.finish[i] < sched.start[i] {
            return Err(ctx.err(
                Invariant::IssueBeforeReady,
                Some(i),
                format!(
                    "finish {} precedes start {}",
                    sched.finish[i], sched.start[i]
                ),
            ));
        }
    }

    // Re-total the issue log against per-cycle budgets.
    let mut per_cycle: BTreeMap<u64, Vec<(usize, u32)>> = BTreeMap::new();
    let mut slots_of = vec![0u32; block.ops.len()];
    for &(i, cycle, slots) in &sched.issues {
        per_cycle.entry(cycle).or_default().push((i, slots));
        if !costs[i].serialize {
            slots_of[i] += slots;
        }
    }
    for (i, cost) in costs.iter().enumerate() {
        if !cost.serialize && slots_of[i] != cost.slots {
            return Err(ctx.err(
                Invariant::ResourceOverflow,
                Some(i),
                format!(
                    "schedule placed {} of {} unit slots",
                    slots_of[i], cost.slots
                ),
            ));
        }
    }
    if let Some(m) = &sched.modulo {
        return audit_modulo_overlay(ctx, block, target, sched, &costs, m);
    }
    for (cycle, entries) in &per_cycle {
        let serialized = entries.iter().find(|&&(i, _)| costs[i].serialize);
        if let Some(&(si, _)) = serialized {
            if entries.iter().any(|&(i, _)| i != si) {
                return Err(ctx.err(
                    Invariant::SerializedOverlap,
                    Some(si),
                    format!("cycle {cycle} shares the machine with other ops"),
                ));
            }
            continue;
        }
        let mut class_used: HashMap<OpClass, u32> = HashMap::new();
        let mut total = 0u32;
        for &(i, slots) in entries {
            *class_used.entry(costs[i].class).or_default() += slots;
            total += slots;
        }
        if total > target.issue_width {
            return Err(ctx.err(
                Invariant::ResourceOverflow,
                None,
                format!(
                    "cycle {cycle} issues {total} ops on a {}-wide machine",
                    target.issue_width
                ),
            ));
        }
        for (class, used) in class_used {
            let cap = target.units.of(class);
            if used > cap {
                return Err(ctx.err(
                    Invariant::ResourceOverflow,
                    None,
                    format!("cycle {cycle} uses {used} {class:?} slots of {cap}"),
                ));
            }
        }
    }
    Ok(())
}

/// The modulo-specific half of the schedule audit: everything the flat
/// per-cycle check cannot see once iterations overlap. The steady-state
/// resource usage is re-derived here from the issue log alone — folded
/// modulo the II per residue — never read back from the scheduler's
/// reservation table.
fn audit_modulo_overlay(
    ctx: &Ctx<'_>,
    block: &MachineBlock,
    target: &TargetModel,
    sched: &Schedule,
    costs: &[OpCost],
    m: &ModuloSchedule,
) -> Result<(), VerifyError> {
    if m.ii == 0 {
        return Err(ctx.err(
            Invariant::SteadyStateOverflow,
            None,
            "initiation interval must be at least 1",
        ));
    }
    if m.prologue + m.epilogue != sched.makespan {
        return Err(ctx.err(
            Invariant::SteadyStateOverflow,
            None,
            format!(
                "prologue {} + epilogue {} must reassemble makespan {}",
                m.prologue, m.epilogue, sched.makespan
            ),
        ));
    }
    // A serializing op blocks the whole machine and cannot overlap with
    // any other iteration's ops — it has no place in a pipeline.
    if let Some(i) = costs.iter().position(|c| c.serialize) {
        return Err(ctx.err(
            Invariant::SerializedOverlap,
            Some(i),
            "serializing op inside a pipelined schedule",
        ));
    }
    // II-shifted loop-carried dependences: iteration k+1's consumer
    // (start + ii in absolute cycles) must not precede iteration k's
    // producer finishing.
    for (from, to) in carried_edges(block) {
        if sched.start[to] + m.ii < sched.finish[from] {
            return Err(ctx.err(
                Invariant::LoopCarriedOrder,
                Some(to),
                format!(
                    "starts at {} (+ II {}) but carried producer op {from} finishes at {}",
                    sched.start[to], m.ii, sched.finish[from]
                ),
            ));
        }
    }
    // Steady-state budgets: fold the issue log per residue and re-check
    // every cap; in the steady state one copy of every logged slot is
    // in flight per II window.
    let mut residue_class: HashMap<(u64, OpClass), u32> = HashMap::new();
    let mut residue_issue: HashMap<u64, u32> = HashMap::new();
    let mut total_slots = 0u64;
    for &(i, cycle, slots) in &sched.issues {
        let r = cycle % m.ii;
        *residue_class.entry((r, costs[i].class)).or_default() += slots;
        *residue_issue.entry(r).or_default() += slots;
        total_slots += slots as u64;
    }
    for ((r, class), used) in residue_class {
        let cap = target.units.of(class);
        if used > cap {
            return Err(ctx.err(
                Invariant::SteadyStateOverflow,
                None,
                format!("residue {r} uses {used} {class:?} slots of {cap}"),
            ));
        }
    }
    for (r, used) in residue_issue {
        if used > target.issue_width {
            return Err(ctx.err(
                Invariant::SteadyStateOverflow,
                None,
                format!(
                    "residue {r} issues {used} ops on a {}-wide machine",
                    target.issue_width
                ),
            ));
        }
    }
    // The loop-control ops run every iteration too; the steady state
    // must leave them aggregate issue headroom inside one II window.
    let window = m.ii * target.issue_width as u64;
    if total_slots + target.loop_overhead_ops as u64 > window {
        return Err(ctx.err(
            Invariant::SteadyStateOverflow,
            None,
            format!(
                "{total_slots} slots + {} loop-control ops exceed the II window of {window}",
                target.loop_overhead_ops
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Invariant;
    use slpwlo_core::{prepare, wlo_slp_flow};
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::{st240, xentium};

    const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    fn programs(target: &TargetModel) -> (MachineProgram, MachineProgram) {
        let prep = prepare(parse_kernel(FIR8).unwrap());
        let res = wlo_slp_flow(&prep, target, -40.0);
        (res.simd, res.scalar)
    }

    #[test]
    fn accepts_flow_lowerings() {
        for target in [xentium(), st240()] {
            let (simd, scalar) = programs(&target);
            verify_program(&simd, &target).unwrap();
            verify_program(&scalar, &target).unwrap();
        }
    }

    #[test]
    fn kills_reordered_dependent_ops() {
        let target = xentium();
        let (_, mut scalar) = programs(&target);
        // Swap some op with one of its own predecessors: the dependence
        // (or a data operand) now points forward.
        let mut swapped = false;
        'outer: for block in &mut scalar.blocks {
            for i in 0..block.ops.len() {
                if let Some(&p) = block.ops[i].preds.first() {
                    block.ops.swap(i, p);
                    swapped = true;
                    break 'outer;
                }
            }
        }
        assert!(swapped, "FIR must have at least one dependence");
        let e = verify_program(&scalar, &target).unwrap_err();
        assert_eq!(e.invariant, Invariant::PredOrder);
    }

    #[test]
    fn kills_a_corrupted_store_format() {
        let target = xentium();
        let (_, mut scalar) = programs(&target);
        let mut corrupted = false;
        'outer: for block in &mut scalar.blocks {
            for op in &mut block.ops {
                if let MopKind::ShiftIn { to, .. } | MopKind::Store { to, .. } = &mut op.kind {
                    *to = QFormat::new(to.iwl + 1, to.fwl - 1);
                    corrupted = true;
                    break 'outer;
                }
            }
        }
        assert!(corrupted, "FIR must store into its delay line");
        let e = verify_program(&scalar, &target).unwrap_err();
        assert_eq!(e.invariant, Invariant::FormatNotCovering);
    }

    #[test]
    fn kills_an_unsupported_vector_width() {
        let target = st240();
        let (mut simd, _) = programs(&target);
        let mut corrupted = false;
        'outer: for block in &mut simd.blocks {
            for op in &mut block.ops {
                if let Some(l) = query_lanes(op.query) {
                    op.query = match op.query {
                        OpQuery::VLoad(_) => OpQuery::VLoad(l + 13),
                        OpQuery::VAdd(_) => OpQuery::VAdd(l + 13),
                        OpQuery::VMul(_) => OpQuery::VMul(l + 13),
                        q => q,
                    };
                    corrupted = true;
                    break 'outer;
                }
            }
        }
        assert!(corrupted, "ST240 flow must vectorize FIR");
        let e = verify_program(&simd, &target).unwrap_err();
        assert_eq!(e.invariant, Invariant::UnsupportedWidth);
    }

    /// Scalar accesses wrap (defined Euclidean semantics); only vector
    /// lanes must be statically in-bounds.
    #[test]
    fn scalar_locs_may_wrap_but_vector_lanes_must_not() {
        use slpwlo_ir::IndexExpr;
        let target = xentium();
        let (_, scalar) = programs(&target);

        // Scalar leg: push a Load's index past the end — still clean.
        let mut wrapped = scalar.clone();
        let mut mutated = false;
        'outer: for block in &mut wrapped.blocks {
            for op in &mut block.ops {
                if let MopKind::Load { loc } = &mut op.kind {
                    let (Loc::Array(_, ix) | Loc::Param(_, ix)) = loc;
                    *ix = IndexExpr::constant(-1);
                    mutated = true;
                    break 'outer;
                }
            }
        }
        assert!(mutated, "FIR must load from a table");
        verify_program(&wrapped, &target).unwrap();

        // SIMD leg: a wrapping vector lane is a hard error (the C
        // emitter reads vector locs contiguously). Not every target's
        // grouping realises a vector load on FIR, so probe both.
        let mut mutated = false;
        for target in [xentium(), st240()] {
            let (simd, _) = programs(&target);
            let mut wrapped = simd.clone();
            'outer: for block in &mut wrapped.blocks {
                for op in &mut block.ops {
                    if let MopKind::VLoad { locs } | MopKind::VStore { locs, .. } = &mut op.kind {
                        let (Loc::Array(_, ix) | Loc::Param(_, ix)) = &mut locs[0];
                        *ix = IndexExpr::constant(-1);
                        mutated = true;
                        break 'outer;
                    }
                }
            }
            if !mutated {
                continue;
            }
            let e = verify_program(&wrapped, &target).unwrap_err();
            assert_eq!(e.invariant, Invariant::IndexOutOfBounds);
            break;
        }
        assert!(mutated, "no target's FIR lowering emitted a vector access");
    }
}
