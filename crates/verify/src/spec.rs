//! The spec verifier: static overflow-freedom of a [`FixedPointSpec`].
//!
//! The paper's guarantee is that the chosen word lengths are *provably*
//! sufficient: every site's integer word length covers the dynamic
//! range the analysis established, so no saturation occurs beyond the
//! declared power-of-two envelope. This checker re-states that proof
//! independently of the optimizer that produced the spec:
//!
//! * every optimizable site's format covers the established range
//!   (`iwl >= iwl_for_range(lo, hi)` — the WLO only ever trades
//!   fractional bits, the scaling optimizer only ever *adds* integer
//!   bits, so this must hold after every transformation);
//! * every word length is positive, within the spec's budget and
//!   machine-representable (≤ 63 bits including the sign — beyond that
//!   the `i64` interpretation and the C backends are meaningless);
//! * in deep (paranoid) mode, the value ranges themselves are
//!   re-derived by interval abstract interpretation over
//!   `slpwlo_fixedpoint::interval` and the declared ranges are checked
//!   to *enclose* the re-derived fixpoint. Simulation-derived ranges
//!   (the fallback when interval iteration diverges on feedback) are
//!   exempt: they are deliberately narrower than any sound static
//!   bound, which is a modelling choice, not an invariant break.

use crate::{Invariant, Pass, VerifyError};
use slpwlo_fixedpoint::range::{interval_ranges, RangeMethod, RangeOptions, Ranges};
use slpwlo_fixedpoint::spec::SpecKey;
use slpwlo_fixedpoint::{FixedPointSpec, Interval, QFormat};
use slpwlo_ir::Kernel;

fn err(
    kernel: &Kernel,
    invariant: Invariant,
    node: Option<String>,
    detail: impl Into<String>,
) -> VerifyError {
    VerifyError::new(
        Pass::Spec,
        invariant,
        format!("spec for kernel {}", kernel.name()),
        node,
        detail,
    )
}

fn key_range(ranges: &Ranges, key: SpecKey) -> Interval {
    match key {
        SpecKey::Expr(e) => ranges.expr(e),
        SpecKey::Array(a) => ranges.arrays[a.index()],
        SpecKey::Param(p) => ranges.params[p.index()],
    }
}

/// Verifies a fixed-point spec against the ranges it was derived from.
///
/// With `deep` set, additionally re-derives the ranges by interval
/// analysis and proves the declared ranges enclose the fixpoint
/// (skipped for simulation-derived ranges, where no convergent interval
/// fixpoint exists).
pub fn verify_spec(
    kernel: &Kernel,
    ranges: &Ranges,
    spec: &FixedPointSpec,
    deep: bool,
) -> Result<(), VerifyError> {
    let max_wl = spec.max_wl();
    for key in spec.optimizable_keys(kernel) {
        let fmt = spec.format(key);
        let wl = fmt.wl();
        if wl < 1 || wl > max_wl || wl > 63 {
            return Err(err(
                kernel,
                Invariant::WordLength,
                Some(key.to_string()),
                format!("wl {wl} outside [1, {}]", max_wl.min(63)),
            ));
        }
        let range = key_range(ranges, key);
        let need = QFormat::iwl_for_range(range.lo, range.hi);
        if fmt.iwl < need {
            return Err(err(
                kernel,
                Invariant::FormatOverflow,
                Some(key.to_string()),
                format!(
                    "format Q{}.{} cannot hold [{}, {}] (needs iwl {need})",
                    fmt.iwl, fmt.fwl, range.lo, range.hi
                ),
            ));
        }
    }
    if deep {
        verify_range_enclosure(kernel, ranges)?;
    }
    Ok(())
}

/// Re-derives interval ranges from the kernel's declared input ranges
/// and proves the declared [`Ranges`] enclose the fixpoint.
fn verify_range_enclosure(kernel: &Kernel, ranges: &Ranges) -> Result<(), VerifyError> {
    if !matches!(ranges.method, RangeMethod::Interval) {
        // Simulation ranges under-approximate by design; there is no
        // static fixpoint to compare against.
        return Ok(());
    }
    let Some(derived) = interval_ranges(kernel, &RangeOptions::default()) else {
        return Err(err(
            kernel,
            Invariant::RangeDrift,
            None,
            "ranges claim interval convergence but re-derivation diverges",
        ));
    };
    for (id, _) in kernel.exprs() {
        let declared = ranges.expr(id);
        let re = derived.expr(id);
        if !declared.encloses(re) {
            return Err(err(
                kernel,
                Invariant::RangeDrift,
                Some(id.to_string()),
                format!(
                    "declared [{}, {}] does not enclose re-derived [{}, {}]",
                    declared.lo, declared.hi, re.lo, re.hi
                ),
            ));
        }
    }
    for (i, (declared, re)) in ranges.arrays.iter().zip(&derived.arrays).enumerate() {
        if !declared.encloses(*re) {
            return Err(err(
                kernel,
                Invariant::RangeDrift,
                Some(format!("array #{i}")),
                format!(
                    "declared [{}, {}] does not enclose re-derived [{}, {}]",
                    declared.lo, declared.hi, re.lo, re.hi
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_fixedpoint::range::determine_ranges;
    use slpwlo_ir::parser::parse_kernel;

    fn fir() -> Kernel {
        parse_kernel(
            r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[2] = { 0.5, 0.25 };
    array dl[2];
    var acc;
    shiftin dl <- x;
    acc = c[0] * dl[0] + c[1] * dl[1];
    y = acc;
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn accepts_freshly_derived_specs_at_every_wl() {
        let k = fir();
        let ranges = determine_ranges(&k, &RangeOptions::default());
        for wl in [8, 12, 16, 24, 32] {
            let spec = FixedPointSpec::from_ranges(&k, &ranges, wl);
            verify_spec(&k, &ranges, &spec, true).unwrap();
        }
    }

    #[test]
    fn kills_a_shrunk_iwl() {
        let k = fir();
        let ranges = determine_ranges(&k, &RangeOptions::default());
        let mut spec = FixedPointSpec::from_ranges(&k, &ranges, 16);
        let key = spec
            .optimizable_keys(&k)
            .into_iter()
            .find(|&key| {
                let r = key_range(&ranges, key);
                spec.format(key).iwl == QFormat::iwl_for_range(r.lo, r.hi)
            })
            .expect("some site sits exactly at its minimal iwl");
        let fmt = spec.format(key);
        spec.set_format(key, QFormat::new(fmt.iwl - 1, fmt.fwl));
        let e = verify_spec(&k, &ranges, &spec, false).unwrap_err();
        assert_eq!(e.invariant, Invariant::FormatOverflow);
        assert_eq!(e.pass, Pass::Spec);
    }

    #[test]
    fn kills_a_zero_word_length() {
        let k = fir();
        let ranges = determine_ranges(&k, &RangeOptions::default());
        let mut spec = FixedPointSpec::from_ranges(&k, &ranges, 16);
        let key = spec.optimizable_keys(&k)[0];
        let fmt = spec.format(key);
        spec.set_format(key, QFormat::new(fmt.iwl, -fmt.iwl));
        let e = verify_spec(&k, &ranges, &spec, false).unwrap_err();
        assert_eq!(e.invariant, Invariant::WordLength);
    }
}
