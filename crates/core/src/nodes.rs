//! Helpers mapping DFG nodes onto fixed-point specification keys.

use slpwlo_fixedpoint::{FixedPointSpec, QFormat, SpecKey};
use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use slpwlo_slp::resolve_producer;

/// The specification key carrying a node's *own* format, if any.
///
/// Loads map to their array/param storage; wiring nodes (`VarUse`,
/// `LiveIn`, `Const`) and sinks (`Output`, `ShiftIn`) carry none.
pub fn node_key(dfg: &Dfg, n: NodeId) -> Option<SpecKey> {
    let node = dfg.node(n);
    match &node.kind {
        NodeKind::Bin(_) | NodeKind::Un(_) | NodeKind::ReadInput(_) => node.expr.map(SpecKey::Expr),
        NodeKind::LoadArray(a, _) => Some(SpecKey::Array(*a)),
        NodeKind::StoreArray(a, _) => Some(SpecKey::Array(*a)),
        NodeKind::LoadParam(p, _) => Some(SpecKey::Param(*p)),
        _ => None,
    }
}

/// Format of the *value* a node delivers, resolving `VarUse` wiring to the
/// producer. Exact values (constants, initial zeros) report a very fine
/// format that never forces scaling.
pub fn value_format(spec: &FixedPointSpec, dfg: &Dfg, n: NodeId) -> QFormat {
    let p = resolve_producer(dfg, n);
    match node_key(dfg, p) {
        Some(key) => spec.format(key),
        None => QFormat::new(1, 61), // exact: constants / live-in zeros
    }
}

/// Current word length of a node's value.
pub fn value_wl(spec: &FixedPointSpec, dfg: &Dfg, n: NodeId) -> i32 {
    value_format(spec, dfg, n).wl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;

    #[test]
    fn keys_and_value_formats() {
        let src = r#"
kernel k {
    input x range [-1, 1];
    output y;
    param c[2] = { 0.4, 0.2 };
    array dl[2];
    var m;
    shiftin dl <- x;
    m = c[0] * dl[0];
    y = m + c[1] * dl[1];
}
"#;
        let k = parse_kernel(src).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = slpwlo_fixedpoint::FixedPointSpec::from_ranges(&k, &r, 32);
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_stmts(&k, &blocks[0].stmts);
        for (id, node) in dfg.iter() {
            match &node.kind {
                NodeKind::LoadArray(..) => {
                    assert!(matches!(node_key(&dfg, id), Some(SpecKey::Array(_))));
                }
                NodeKind::LoadParam(..) => {
                    assert!(matches!(node_key(&dfg, id), Some(SpecKey::Param(_))));
                    assert_eq!(value_wl(&spec, &dfg, id), 32);
                }
                NodeKind::VarUse(_) => {
                    // Resolves to the mul's expression format.
                    assert_eq!(value_wl(&spec, &dfg, id), 32);
                }
                NodeKind::Const(_) => {
                    assert!(node_key(&dfg, id).is_none());
                    assert_eq!(value_format(&spec, &dfg, id).fwl, 61);
                }
                _ => {}
            }
        }
    }
}
