//! Lowering to a machine program.
//!
//! Turns (kernel, fixed-point specification, SIMD groups) into per-block
//! operation lists with explicit dependences — the form both the
//! `slpwlo-sim` VLIW cycle model and the C back-ends consume. This stage
//! materialises everything the paper's performance discussion hinges on:
//!
//! * **scaling operations** (alignment shifts) derived from the formats,
//! * **vectorized scalings** when all lanes shift by the same amount,
//!   versus the **unpack/shift/repack** sequence of fig. 2 when they do
//!   not,
//! * **pack/unpack** operations wherever operand superwords are not
//!   produced (or results not consumed) as superwords,
//! * vector loads for contiguous aligned access, gathers otherwise,
//! * the soft-float/hardware-float split for the original floating-point
//!   code (fig. 6's baseline).

use crate::nodes::value_format;
use slpwlo_fixedpoint::{FixedPointSpec, SpecKey};
use slpwlo_ir::blocks::{collect_blocks, Block};
use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use slpwlo_ir::types::BinOp;
use slpwlo_ir::Kernel;
use slpwlo_slp::{mem_status, resolve_producer, MemStatus, SimdGroup};
use slpwlo_targets::{OpQuery, TargetModel};
use std::collections::HashMap;

/// One machine operation with its dependence predecessors.
#[derive(Debug, Clone)]
pub struct Mop {
    /// Cost/class query answered by the target model.
    pub query: OpQuery,
    /// Indices of operations this one must wait for.
    pub preds: Vec<usize>,
}

/// A lowered basic block.
#[derive(Debug, Clone)]
pub struct MachineBlock {
    /// Operations in a valid topological order.
    pub ops: Vec<Mop>,
    /// Executions per kernel activation.
    pub trip: u64,
    /// Whether the block body sits inside a loop (loop control overhead
    /// applies per execution).
    pub in_loop: bool,
}

/// A lowered kernel.
#[derive(Debug, Clone)]
pub struct MachineProgram {
    /// Kernel name, for reports.
    pub name: String,
    /// Lowered blocks.
    pub blocks: Vec<MachineBlock>,
}

impl MachineProgram {
    /// Total operation count over one activation (trip-weighted).
    pub fn ops_per_activation(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.ops.len() as u64 * b.trip)
            .sum()
    }
}

/// Lowers a kernel with its specification and per-block SIMD groups.
///
/// `groups_of` returns the groups of a block (empty slice for pure scalar
/// code).
pub fn lower_fixed(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
    blocks: &[(Block, Dfg, Vec<SimdGroup>)],
) -> MachineProgram {
    let lowered = blocks
        .iter()
        .map(|(block, dfg, groups)| {
            let mut lw = FixedLowerer::new(kernel, spec, target, dfg, groups);
            lw.run();
            MachineBlock {
                ops: lw.ops,
                trip: block.trip(),
                in_loop: block.in_loop(),
            }
        })
        .collect();
    MachineProgram {
        name: kernel.name().to_string(),
        blocks: lowered,
    }
}

/// Lowers the all-scalar fixed-point version of a kernel (the baseline
/// denominator of the paper's speedups).
pub fn lower_scalar(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
) -> MachineProgram {
    let blocks: Vec<(Block, Dfg, Vec<SimdGroup>)> = collect_blocks(kernel)
        .into_iter()
        .map(|b| {
            let dfg = Dfg::from_block(kernel, &b);
            (b, dfg, Vec::new())
        })
        .collect();
    lower_fixed(kernel, spec, target, &blocks)
}

/// Lowers the original floating-point version (fig. 6's reference).
pub fn lower_float(kernel: &Kernel) -> MachineProgram {
    let blocks = collect_blocks(kernel);
    let lowered = blocks
        .into_iter()
        .map(|b| {
            let dfg = Dfg::from_block(kernel, &b);
            let ops = lower_float_block(&dfg);
            MachineBlock {
                ops,
                trip: b.trip(),
                in_loop: b.in_loop(),
            }
        })
        .collect();
    MachineProgram {
        name: format!("{}_float", kernel.name()),
        blocks: lowered,
    }
}

// ---------------------------------------------------------------------------
// Fixed-point lowering
// ---------------------------------------------------------------------------

struct FixedLowerer<'a> {
    spec: &'a FixedPointSpec,
    target: &'a TargetModel,
    dfg: &'a Dfg,
    groups: &'a [SimdGroup],
    node_group: HashMap<NodeId, usize>,
    ops: Vec<Mop>,
    /// Scalar value producers: node -> op index (absent for constants and
    /// live-ins, which cost nothing).
    produced: HashMap<NodeId, usize>,
    /// Vector result op of each emitted group.
    group_result: HashMap<usize, usize>,
    /// Cached unpack ops for grouped values consumed by scalar code.
    unpacked: HashMap<NodeId, usize>,
    /// Main op of every node (for memory-order dependences).
    main_op: HashMap<NodeId, usize>,
}

impl<'a> FixedLowerer<'a> {
    fn new(
        _kernel: &'a Kernel,
        spec: &'a FixedPointSpec,
        target: &'a TargetModel,
        dfg: &'a Dfg,
        groups: &'a [SimdGroup],
    ) -> Self {
        let mut node_group = HashMap::new();
        for (gi, g) in groups.iter().enumerate() {
            for &e in &g.elems {
                node_group.insert(e, gi);
            }
        }
        FixedLowerer {
            spec,
            target,
            dfg,
            groups,
            node_group,
            ops: Vec::new(),
            produced: HashMap::new(),
            group_result: HashMap::new(),
            unpacked: HashMap::new(),
            main_op: HashMap::new(),
        }
    }

    fn run(&mut self) {
        // Scalar consumers may interleave with a group's elements in the
        // node order, so emission follows a coarsened topological order
        // where each group is one super-node (valid groups guarantee this
        // graph is acyclic: a cycle through a scalar node would make two
        // group elements dependent).
        let n_groups = self.groups.len();
        let unit_of = |lw: &Self, id: NodeId| -> usize {
            match lw.node_group.get(&id) {
                Some(&gi) => gi,
                None => n_groups + id.index(),
            }
        };
        let n_units = n_groups + self.dfg.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n_units];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_units];
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); n_units];
        for (id, node) in self.dfg.iter() {
            let u = unit_of(self, id);
            members[u].push(id);
            for p in node.operands.iter().chain(node.deps.iter()) {
                let pu = unit_of(self, *p);
                if pu != u && !preds[u].contains(&pu) {
                    preds[u].push(pu);
                    succs[pu].push(u);
                }
            }
        }
        // Kahn's algorithm; ready units fire in ascending first-member
        // order for determinism.
        let mut indeg: Vec<usize> = preds.iter().map(|p| p.len()).collect();
        let mut ready: std::collections::BTreeSet<(NodeId, usize)> = (0..n_units)
            .filter(|&u| indeg[u] == 0 && !members[u].is_empty())
            .map(|u| (members[u][0], u))
            .collect();
        let mut emitted = 0usize;
        while let Some(&(first, u)) = ready.iter().next() {
            ready.remove(&(first, u));
            if u < n_groups {
                self.emit_group(u);
            } else {
                self.emit_scalar(members[u][0]);
            }
            emitted += 1;
            for &s in &succs[u] {
                indeg[s] -= 1;
                if indeg[s] == 0 && !members[s].is_empty() {
                    ready.insert((members[s][0], s));
                }
            }
        }
        let total_units = members.iter().filter(|m| !m.is_empty()).count();
        assert_eq!(emitted, total_units, "coarsened graph must be acyclic");
    }

    fn push(&mut self, query: OpQuery, preds: Vec<usize>) -> usize {
        let idx = self.ops.len();
        self.ops.push(Mop { query, preds });
        idx
    }

    /// Container word length of a node's value.
    fn wl_of(&self, n: NodeId) -> i32 {
        let wl = value_format(self.spec, self.dfg, n)
            .wl()
            .clamp(1, self.target.datapath);
        self.target.container_wl(wl).unwrap_or(self.target.datapath)
    }

    fn fwl_of(&self, n: NodeId) -> i32 {
        value_format(self.spec, self.dfg, n).fwl
    }

    /// Op index producing the scalar value of `n` (resolving variable
    /// wiring and unpacking grouped values). `None` for free values.
    fn scalar_value(&mut self, n: NodeId) -> Option<usize> {
        let p = resolve_producer(self.dfg, n);
        if let Some(&gi) = self.node_group.get(&p) {
            if let Some(&u) = self.unpacked.get(&p) {
                return Some(u);
            }
            let src = *self
                .group_result
                .get(&gi)
                .expect("group result emitted before scalar consumers (topo order)");
            let u = self.push(OpQuery::Unpack, vec![src]);
            self.unpacked.insert(p, u);
            return Some(u);
        }
        self.produced.get(&p).copied()
    }

    /// Memory-order predecessors of a node.
    fn mem_deps(&self, n: NodeId) -> Vec<usize> {
        self.dfg
            .node(n)
            .deps
            .iter()
            .filter_map(|d| self.main_op.get(d).copied())
            .collect()
    }

    fn emit_scalar(&mut self, n: NodeId) {
        let kind = self.dfg.node(n).kind.clone();
        match kind {
            NodeKind::Const(_) | NodeKind::LiveIn(_) | NodeKind::VarUse(_) => {
                // Free: immediates and register wiring.
            }
            NodeKind::ReadInput(_) => {
                let wl = self.wl_of(n);
                let idx = self.push(OpQuery::Load(wl), vec![]);
                self.produced.insert(n, idx);
                self.main_op.insert(n, idx);
            }
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => {
                let wl = self.wl_of(n);
                let deps = self.mem_deps(n);
                let idx = self.push(OpQuery::Load(wl), deps);
                self.produced.insert(n, idx);
                self.main_op.insert(n, idx);
            }
            NodeKind::Bin(op) => {
                let operands = self.dfg.node(n).operands.clone();
                let out_fwl = self.fwl_of(n);
                let out_wl = self.wl_of(n);
                let mut deps = Vec::new();
                match op {
                    BinOp::Add | BinOp::Sub => {
                        for &o in &operands {
                            let src = self.scalar_value(o);
                            let s = self.fwl_of(o) - out_fwl;
                            let dep = if s != 0 && !is_exact(self.dfg, o) {
                                Some(self.push(OpQuery::Shift(out_wl), src.into_iter().collect()))
                            } else {
                                src
                            };
                            deps.extend(dep);
                        }
                        let idx = self.push(OpQuery::Add(out_wl), deps);
                        self.produced.insert(n, idx);
                        self.main_op.insert(n, idx);
                    }
                    BinOp::Mul => {
                        let mut in_wl = 0;
                        let mut full_fwl = 0;
                        for &o in &operands {
                            deps.extend(self.scalar_value(o));
                            in_wl = in_wl.max(self.wl_of(o));
                            full_fwl += self.fwl_of(o);
                        }
                        let idx = self.push(OpQuery::Mul(in_wl), deps);
                        let exact = operands.iter().all(|&o| is_exact(self.dfg, o));
                        let idx = if full_fwl != out_fwl && !exact {
                            self.push(OpQuery::Shift(out_wl), vec![idx])
                        } else {
                            idx
                        };
                        self.produced.insert(n, idx);
                        self.main_op.insert(n, idx);
                    }
                }
            }
            NodeKind::Un(_) => {
                let o = self.dfg.node(n).operands[0];
                let src = self.scalar_value(o);
                let out_wl = self.wl_of(n);
                let s = self.fwl_of(o) - self.fwl_of(n);
                let mut dep = src;
                if s != 0 && !is_exact(self.dfg, o) {
                    dep = Some(self.push(OpQuery::Shift(out_wl), src.into_iter().collect()));
                }
                let idx = self.push(OpQuery::Add(out_wl), dep.into_iter().collect());
                self.produced.insert(n, idx);
                self.main_op.insert(n, idx);
            }
            NodeKind::StoreArray(a, _) => {
                let o = self.dfg.node(n).operands[0];
                let src = self.scalar_value(o);
                let arr_fmt = self.spec.format(SpecKey::Array(a));
                let wl = self
                    .target
                    .container_wl(arr_fmt.wl().clamp(1, self.target.datapath))
                    .unwrap_or(self.target.datapath);
                let s = self.fwl_of(o) - arr_fmt.fwl;
                let val = if s != 0 && !is_exact(self.dfg, o) {
                    Some(self.push(OpQuery::Shift(wl), src.into_iter().collect()))
                } else {
                    src
                };
                let mut deps: Vec<usize> = val.into_iter().collect();
                deps.extend(self.mem_deps(n));
                let idx = self.push(OpQuery::Store(wl), deps);
                self.main_op.insert(n, idx);
            }
            NodeKind::ShiftIn(a) => {
                let o = self.dfg.node(n).operands[0];
                let src = self.scalar_value(o);
                let arr_fmt = self.spec.format(SpecKey::Array(a));
                let wl = self
                    .target
                    .container_wl(arr_fmt.wl().clamp(1, self.target.datapath))
                    .unwrap_or(self.target.datapath);
                let s = self.fwl_of(o) - arr_fmt.fwl;
                let val = if s != 0 && !is_exact(self.dfg, o) {
                    Some(self.push(OpQuery::Shift(wl), src.into_iter().collect()))
                } else {
                    src
                };
                let mut deps: Vec<usize> = val.into_iter().collect();
                deps.extend(self.mem_deps(n));
                // Circular buffer: one store plus one pointer update.
                let st = self.push(OpQuery::Store(wl), deps);
                let _ptr = self.push(OpQuery::Add(32), vec![]);
                self.main_op.insert(n, st);
            }
            NodeKind::Output(_) => {
                let o = self.dfg.node(n).operands[0];
                let src = self.scalar_value(o);
                let wl = self.wl_of(o);
                let idx = self.push(OpQuery::Store(wl), src.into_iter().collect());
                self.main_op.insert(n, idx);
            }
        }
    }

    fn emit_group(&mut self, gi: usize) {
        let group = self.groups[gi].clone();
        let lanes = group.lanes();
        let kind = group.kind(self.dfg).clone();
        match kind {
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => {
                let mut deps = Vec::new();
                for &e in &group.elems {
                    deps.extend(self.mem_deps(e));
                }
                let idx = match mem_status(self.dfg, &group) {
                    MemStatus::ContiguousAligned => self.push(OpQuery::VLoad(lanes), deps),
                    MemStatus::ContiguousUnaligned => {
                        let l = self.push(OpQuery::VLoad(lanes), deps);
                        self.push(OpQuery::Add(32), vec![l]) // realign
                    }
                    _ => {
                        // Gather: scalar loads plus a pack.
                        let mut loaded = Vec::new();
                        for &e in &group.elems {
                            let d = self.mem_deps(e);
                            loaded.push(self.push(OpQuery::Load(16), d));
                        }
                        self.push(OpQuery::Pack(lanes), loaded)
                    }
                };
                self.finish_group(gi, &group, idx);
            }
            NodeKind::Bin(op) => {
                let arity = 2;
                let mut operand_srcs = Vec::new();
                for pos in 0..arity {
                    operand_srcs.push(self.vector_operand(&group, pos));
                }
                let mut deps: Vec<usize> = operand_srcs.iter().flatten().copied().collect();
                // Pre-scaling for additive ops.
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    for (pos, &src) in operand_srcs.iter().enumerate() {
                        let amounts: Vec<i32> = group
                            .elems
                            .iter()
                            .map(|&e| {
                                let o = self.dfg.node(e).operands[pos];
                                self.fwl_of(o) - self.fwl_of(e)
                            })
                            .collect();
                        if let Some(d) = self.emit_vector_scaling(&amounts, src, lanes) {
                            deps.push(d);
                        }
                    }
                }
                let main = match op {
                    BinOp::Add | BinOp::Sub => self.push(OpQuery::VAdd(lanes), deps),
                    BinOp::Mul => self.push(OpQuery::VMul(lanes), deps),
                };
                // Result scaling for multiplies.
                let mut result = main;
                if matches!(op, BinOp::Mul) {
                    let amounts: Vec<i32> = group
                        .elems
                        .iter()
                        .map(|&e| {
                            let ops = &self.dfg.node(e).operands;
                            self.fwl_of(ops[0]) + self.fwl_of(ops[1]) - self.fwl_of(e)
                        })
                        .collect();
                    if let Some(d) = self.emit_vector_scaling(&amounts, Some(main), lanes) {
                        result = d;
                    }
                }
                self.finish_group(gi, &group, result);
            }
            NodeKind::Un(_) => {
                let src = self.vector_operand(&group, 0);
                let amounts: Vec<i32> = group
                    .elems
                    .iter()
                    .map(|&e| {
                        let o = self.dfg.node(e).operands[0];
                        self.fwl_of(o) - self.fwl_of(e)
                    })
                    .collect();
                let mut deps: Vec<usize> = src.into_iter().collect();
                if let Some(d) = self.emit_vector_scaling(&amounts, src, lanes) {
                    deps.push(d);
                }
                let idx = self.push(OpQuery::VAdd(lanes), deps);
                self.finish_group(gi, &group, idx);
            }
            NodeKind::StoreArray(a, _) => {
                let src = self.vector_operand(&group, 0);
                let arr_fwl = self.spec.format(SpecKey::Array(a)).fwl;
                let amounts: Vec<i32> = group
                    .elems
                    .iter()
                    .map(|&e| {
                        let o = self.dfg.node(e).operands[0];
                        self.fwl_of(o) - arr_fwl
                    })
                    .collect();
                let mut deps: Vec<usize> = src.into_iter().collect();
                if let Some(d) = self.emit_vector_scaling(&amounts, src, lanes) {
                    deps.push(d);
                }
                for &e in &group.elems {
                    deps.extend(self.mem_deps(e));
                }
                let idx = match mem_status(self.dfg, &group) {
                    MemStatus::ContiguousAligned | MemStatus::ContiguousUnaligned => {
                        self.push(OpQuery::VStore(lanes), deps)
                    }
                    _ => {
                        // Scatter: per-lane extract + store.
                        let mut last = None;
                        for _ in 0..lanes {
                            let u = self.push(OpQuery::Unpack, deps.clone());
                            last = Some(self.push(OpQuery::Store(16), vec![u]));
                        }
                        last.expect("lanes >= 2")
                    }
                };
                for &e in &group.elems {
                    self.main_op.insert(e, idx);
                }
                self.group_result.insert(gi, idx);
            }
            other => unreachable!("ungroupable kind {other:?} in group"),
        }
    }

    /// Emits the scaling needed to move a superword across grids.
    ///
    /// Uniform non-zero amounts become a single vector shift; mismatched
    /// amounts pay the fig. 2 penalty (unpack each lane, shift, repack).
    /// Returns the op to depend on, or `None` when no scaling is needed.
    fn emit_vector_scaling(
        &mut self,
        amounts: &[i32],
        src: Option<usize>,
        lanes: u32,
    ) -> Option<usize> {
        if amounts.iter().all(|&a| a == 0) {
            return None;
        }
        let deps: Vec<usize> = src.into_iter().collect();
        if amounts.iter().all(|&a| a == amounts[0]) {
            return Some(self.push(OpQuery::VShift(lanes), deps));
        }
        // Fig. 2: unpack, shift lanes individually, repack.
        let mut shifted = Vec::new();
        for &a in amounts {
            let u = self.push(OpQuery::Unpack, deps.clone());
            let s = if a != 0 {
                self.push(OpQuery::Shift(16), vec![u])
            } else {
                u
            };
            shifted.push(s);
        }
        Some(self.push(OpQuery::Pack(lanes), shifted))
    }

    /// Materialises the operand superword of a group at `pos`; returns the
    /// producing op, or `None` when the operand is free (constants).
    fn vector_operand(&mut self, group: &SimdGroup, pos: usize) -> Option<usize> {
        let sw: Vec<NodeId> = group
            .elems
            .iter()
            .map(|&e| resolve_producer(self.dfg, self.dfg.node(e).operands[pos]))
            .collect();
        // Produced by another emitted group with identical lanes?
        for (gi, g) in self.groups.iter().enumerate() {
            if g.elems == sw {
                return self.group_result.get(&gi).copied();
            }
        }
        // Splat: broadcast one scalar.
        if sw.iter().all(|&n| n == sw[0]) {
            let src = self.scalar_value(sw[0]);
            return Some(self.push(OpQuery::Pack(1), src.into_iter().collect()));
        }
        // General case: gather scalars and pack.
        let mut deps = Vec::new();
        for &n in &sw {
            deps.extend(self.scalar_value(n));
        }
        Some(self.push(OpQuery::Pack(group.lanes()), deps))
    }

    fn finish_group(&mut self, gi: usize, group: &SimdGroup, result: usize) {
        self.group_result.insert(gi, result);
        for &e in &group.elems {
            self.main_op.insert(e, result);
        }
    }
}

/// `true` for operands whose value is exact (constants, initial zeros):
/// no scaling is ever materialised for them.
fn is_exact(dfg: &Dfg, n: NodeId) -> bool {
    matches!(
        dfg.node(resolve_producer(dfg, n)).kind,
        NodeKind::Const(_) | NodeKind::LiveIn(_)
    )
}

// ---------------------------------------------------------------------------
// Floating-point lowering
// ---------------------------------------------------------------------------

fn lower_float_block(dfg: &Dfg) -> Vec<Mop> {
    let mut ops: Vec<Mop> = Vec::new();
    let mut produced: HashMap<NodeId, usize> = HashMap::new();
    let mut main_op: HashMap<NodeId, usize> = HashMap::new();
    let push = |ops: &mut Vec<Mop>, query: OpQuery, preds: Vec<usize>| -> usize {
        ops.push(Mop { query, preds });
        ops.len() - 1
    };
    for (id, node) in dfg.iter() {
        let value_of = |produced: &HashMap<NodeId, usize>, n: NodeId| -> Option<usize> {
            produced.get(&resolve_producer(dfg, n)).copied()
        };
        let mem_deps = |main_op: &HashMap<NodeId, usize>, n: NodeId| -> Vec<usize> {
            dfg.node(n)
                .deps
                .iter()
                .filter_map(|d| main_op.get(d).copied())
                .collect()
        };
        match &node.kind {
            NodeKind::Const(_) | NodeKind::LiveIn(_) | NodeKind::VarUse(_) => {}
            NodeKind::ReadInput(_) => {
                let i = push(&mut ops, OpQuery::FLoad, vec![]);
                produced.insert(id, i);
                main_op.insert(id, i);
            }
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => {
                let deps = mem_deps(&main_op, id);
                let i = push(&mut ops, OpQuery::FLoad, deps);
                produced.insert(id, i);
                main_op.insert(id, i);
            }
            NodeKind::Bin(op) => {
                let deps: Vec<usize> = node
                    .operands
                    .iter()
                    .filter_map(|&o| value_of(&produced, o))
                    .collect();
                let q = match op {
                    BinOp::Mul => OpQuery::FMul,
                    _ => OpQuery::FAdd,
                };
                let i = push(&mut ops, q, deps);
                produced.insert(id, i);
                main_op.insert(id, i);
            }
            NodeKind::Un(_) => {
                let deps: Vec<usize> = node
                    .operands
                    .iter()
                    .filter_map(|&o| value_of(&produced, o))
                    .collect();
                // Float negation: sign-bit flip on an ALU.
                let i = push(&mut ops, OpQuery::Add(32), deps);
                produced.insert(id, i);
                main_op.insert(id, i);
            }
            NodeKind::StoreArray(..) | NodeKind::Output(_) => {
                let mut deps: Vec<usize> = node
                    .operands
                    .iter()
                    .filter_map(|&o| value_of(&produced, o))
                    .collect();
                deps.extend(mem_deps(&main_op, id));
                let i = push(&mut ops, OpQuery::FStore, deps);
                main_op.insert(id, i);
            }
            NodeKind::ShiftIn(_) => {
                let mut deps: Vec<usize> = node
                    .operands
                    .iter()
                    .filter_map(|&o| value_of(&produced, o))
                    .collect();
                deps.extend(mem_deps(&main_op, id));
                let st = push(&mut ops, OpQuery::FStore, deps);
                let _ptr = push(&mut ops, OpQuery::Add(32), vec![]);
                main_op.insert(id, st);
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_accuracy::AnalyticalEvaluator;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::xentium;

    const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    fn lowered(db: f64) -> (MachineProgram, MachineProgram) {
        let k = parse_kernel(FIR8).unwrap();
        let ranges = determine_ranges(&k, &RangeOptions::default());
        let eval = AnalyticalEvaluator::with_defaults(&k);
        let target = xentium();
        let res = crate::wlo_slp(&k, &target, &eval, db, &ranges);
        let blocks: Vec<_> = res
            .blocks
            .into_iter()
            .map(|b| (b.block, b.dfg, b.groups))
            .collect();
        let simd = lower_fixed(&k, &res.spec, &target, &blocks);
        let scalar = lower_scalar(&k, &res.spec, &target);
        (simd, scalar)
    }

    #[test]
    fn deps_point_backwards() {
        let (simd, scalar) = lowered(-40.0);
        for prog in [&simd, &scalar] {
            for b in &prog.blocks {
                for (i, op) in b.ops.iter().enumerate() {
                    for &p in &op.preds {
                        assert!(p < i, "dep {p} of op {i} must precede it");
                    }
                }
            }
        }
    }

    #[test]
    fn simd_lowering_emits_vector_ops() {
        let (simd, scalar) = lowered(-40.0);
        let has_vector = simd.blocks.iter().any(|b| {
            b.ops
                .iter()
                .any(|o| matches!(o.query, OpQuery::VMul(_) | OpQuery::VLoad(_)))
        });
        assert!(has_vector, "SIMD program must contain vector ops");
        let scalar_has_vector = scalar.blocks.iter().any(|b| {
            b.ops
                .iter()
                .any(|o| matches!(o.query, OpQuery::VMul(_) | OpQuery::VLoad(_)))
        });
        assert!(!scalar_has_vector);
    }

    #[test]
    fn simd_reduces_trip_weighted_ops_in_hot_block() {
        let (simd, scalar) = lowered(-30.0);
        // The loop block (trip > 1) must shrink.
        let hot = |p: &MachineProgram| -> u64 {
            p.blocks
                .iter()
                .filter(|b| b.trip > 1)
                .map(|b| b.ops.len() as u64 * b.trip)
                .sum()
        };
        assert!(
            hot(&simd) < hot(&scalar),
            "simd {} vs scalar {}",
            hot(&simd),
            hot(&scalar)
        );
    }

    #[test]
    fn float_lowering_uses_float_ops_only() {
        let k = parse_kernel(FIR8).unwrap();
        let f = lower_float(&k);
        let mut fadds = 0;
        let mut fmuls = 0;
        for b in &f.blocks {
            for op in &b.ops {
                match op.query {
                    OpQuery::FAdd => fadds += 1,
                    OpQuery::FMul => fmuls += 1,
                    OpQuery::FLoad | OpQuery::FStore | OpQuery::Add(_) => {}
                    other => panic!("unexpected op {other:?} in float lowering"),
                }
            }
        }
        assert!(fadds >= 4 && fmuls >= 4, "fadds {fadds} fmuls {fmuls}");
    }

    #[test]
    fn tight_constraint_degenerates_to_scalar() {
        let (simd, scalar) = lowered(-160.0);
        assert_eq!(
            simd.ops_per_activation(),
            scalar.ops_per_activation(),
            "no groups at -160 dB: identical programs"
        );
    }
}

#[cfg(test)]
mod fig2_tests {
    //! The fig. 2 scaling paths: uniform lane amounts vectorize into one
    //! shift; mismatched amounts pay unpack/shift/repack.
    use super::*;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_fixedpoint::QFormat;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_slp::SimdGroup;
    use slpwlo_targets::xentium;

    /// Two muls feeding two adds lane-wise, groups built by hand so the
    /// lane formats are fully controlled.
    fn setup() -> (Kernel, FixedPointSpec, Dfg, Vec<SimdGroup>, Block) {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var m0;
    var m1;
    var s0;
    var s1;
    shiftin dl <- x;
    m0 = c[0] * dl[0];
    m1 = c[1] * dl[1];
    s0 = m0 + c[2] * dl[2];
    s1 = m1 + c[3] * dl[3];
    y = s0 + s1;
}
"#;
        let k = parse_kernel(src).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, 32);
        let blocks = collect_blocks(&k);
        let block = blocks.into_iter().next().unwrap();
        let dfg = Dfg::from_block(&k, &block);
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let adds: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Add)))
            .map(|(i, _)| i)
            .collect();
        let groups = vec![
            SimdGroup {
                elems: vec![muls[0], muls[1]],
            },
            SimdGroup {
                elems: vec![adds[0], adds[1]],
            },
        ];
        (k, spec, dfg, groups, block)
    }

    fn count(prog: &MachineProgram, pred: impl Fn(&OpQuery) -> bool) -> usize {
        prog.blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .filter(|o| pred(&o.query))
            .count()
    }

    /// Sets every arithmetic node (including the scalar muls feeding the
    /// add group's second operand) to one format, so all lane scaling
    /// amounts match.
    fn uniformize(spec: &mut FixedPointSpec, dfg: &Dfg, fmt: QFormat) {
        for (id, node) in dfg.iter() {
            if matches!(node.kind, NodeKind::Bin(_)) {
                let key = crate::nodes::node_key(dfg, id).unwrap();
                spec.set_format(key, fmt);
            }
        }
    }

    #[test]
    fn uniform_lane_amounts_vectorize_the_scaling() {
        let (k, mut spec, dfg, groups, block) = setup();
        uniformize(&mut spec, &dfg, QFormat::new(2, 14));
        let target = xentium();
        let prog = lower_fixed(&k, &spec, &target, &[(block, dfg, groups)]);
        assert_eq!(
            count(&prog, |q| matches!(q, OpQuery::Unpack)),
            2,
            "only the final scalar reduction unpacks the add pair"
        );
    }

    #[test]
    fn mismatched_lane_amounts_pay_unpack_shift_repack() {
        let (k, mut spec, dfg, groups, block) = setup();
        // Uniform everywhere except the two grouped mul lanes: their
        // outputs now need different right shifts to reach the adds.
        uniformize(&mut spec, &dfg, QFormat::new(2, 14));
        let k0 = crate::nodes::node_key(&dfg, groups[0].elems[0]).unwrap();
        let k1 = crate::nodes::node_key(&dfg, groups[0].elems[1]).unwrap();
        spec.set_format(k0, QFormat::new(2, 20));
        spec.set_format(k1, QFormat::new(2, 17));
        let target = xentium();
        let uniform = {
            let (k2, mut spec2, dfg2, groups2, block2) = setup();
            uniformize(&mut spec2, &dfg2, QFormat::new(2, 14));
            let p = lower_fixed(&k2, &spec2, &target, &[(block2, dfg2, groups2)]);
            count(&p, |q| matches!(q, OpQuery::Unpack))
        };
        let prog = lower_fixed(&k, &spec, &target, &[(block, dfg, groups)]);
        let mismatched = count(&prog, |q| matches!(q, OpQuery::Unpack));
        assert!(
            mismatched >= uniform + 2,
            "mismatched lane scalings must unpack each lane ({mismatched} vs {uniform})"
        );
        assert!(count(&prog, |q| matches!(q, OpQuery::Pack(_))) >= 1);
    }
}
