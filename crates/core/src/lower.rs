//! Lowering to a machine program.
//!
//! Turns (kernel, fixed-point specification, SIMD groups) into per-block
//! operation lists with explicit dependences — the form the `slpwlo-sim`
//! VLIW cycle model, the `slpwlo-sim` bit-accurate interpreter and the C
//! back-ends all consume. This stage materialises everything the paper's
//! performance discussion hinges on:
//!
//! * **scaling operations** (alignment shifts) derived from the formats,
//! * **vectorized scalings** when all lanes shift by the same amount,
//!   versus the **unpack/shift/repack** sequence of fig. 2 when they do
//!   not,
//! * **pack/unpack** operations wherever operand superwords are not
//!   produced (or results not consumed) as superwords,
//! * vector loads for contiguous aligned access, gathers otherwise,
//! * the soft-float/hardware-float split for the original floating-point
//!   code (fig. 6's baseline).
//!
//! Every operation carries two views:
//!
//! * [`Mop::query`] — the abstract cost query answered by the target
//!   model (scheduling / cycle counting);
//! * [`Mop::kind`] — the executable semantics: which storage location is
//!   accessed, which operands flow in (previous results, quantized
//!   immediates, live-in variables), and the **absolute** fixed-point
//!   format every requantization lands on. The [`slpwlo-sim`]
//!   interpreter and the C back-ends are driven entirely by this view,
//!   so emitted code never has to invent undeclared symbols.

use crate::nodes::value_format;
use slpwlo_fixedpoint::quantize::{OverflowMode, QuantizeMode};
use slpwlo_fixedpoint::{FixedPointSpec, FxValue, QFormat, SpecKey};
use slpwlo_ir::blocks::{collect_blocks, Block};
use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use slpwlo_ir::kernel::Stmt;
use slpwlo_ir::types::{ArrayId, BinOp, IndexExpr, InputId, LoopId, ParamId, VarId};
use slpwlo_ir::Kernel;
use slpwlo_slp::{mem_status, resolve_producer, MemStatus, SimdGroup};
use slpwlo_targets::{OpQuery, TargetModel};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// The executable machine-program data model
// ---------------------------------------------------------------------------

/// A storage location addressed by a memory operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Loc {
    /// `array[index]` — a state-array element.
    Array(ArrayId, IndexExpr),
    /// `param[index]` — a coefficient-table element.
    Param(ParamId, IndexExpr),
}

/// A value operand of a machine operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// Result of an earlier operation in the same block.
    Op(usize),
    /// A compile-time constant, already quantized onto its grid.
    Imm {
        /// Raw two's-complement integer on the `fmt` grid.
        raw: i64,
        /// The constant's fixed-point format.
        fmt: QFormat,
    },
    /// Current value of a kernel variable at block entry (live-in).
    Var(VarId),
}

/// Executable semantics of one machine operation.
///
/// All formats are **absolute** targets: a requantization lands on `to`
/// no matter which grid its operand currently sits on, which is what
/// makes interpreter and generated C agree bit-for-bit with the
/// reference fixed-point simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum MopKind {
    /// Converts an incoming sample (f64) onto the `to` grid
    /// (truncation + saturation — the paper's input conversion site).
    ReadInput {
        /// Which input stream is read.
        input: InputId,
        /// Conversion target format.
        to: QFormat,
    },
    /// Scalar load; the value arrives on the location's storage format.
    Load {
        /// Accessed location.
        loc: Loc,
    },
    /// Scalar store: requantizes `src` to `to` (the storage format) and
    /// writes it.
    Store {
        /// Accessed location.
        loc: Loc,
        /// Stored value.
        src: Operand,
        /// Storage format of the location.
        to: QFormat,
    },
    /// Delay-line push: requantizes `src` to `to`, shifts the array by
    /// one and writes element 0.
    ShiftIn {
        /// The delay-line array.
        array: ArrayId,
        /// Pushed value.
        src: Operand,
        /// Storage format of the array.
        to: QFormat,
    },
    /// Emits the activation's value for an output.
    Output {
        /// Output index.
        index: usize,
        /// Emitted value.
        src: Operand,
    },
    /// Scalar arithmetic. Additive ops align both operands onto
    /// `to.fwl`, add exactly, and saturate to `to`. A multiply computes
    /// the exact product; `to = None` leaves it on its natural grid
    /// (a separate scaling op follows), `Some` requantizes in place.
    Bin {
        /// Operation.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Result format (`None` only for multiplies whose scaling is a
        /// separate operation).
        to: Option<QFormat>,
    },
    /// Scalar negation: negates exactly, then requantizes to `to`.
    Un {
        /// Operand.
        src: Operand,
        /// Result format.
        to: QFormat,
    },
    /// Explicit scaling: requantizes `src` onto `to` (truncation toward
    /// negative infinity, saturation at the format bounds).
    Requant {
        /// Operand.
        src: Operand,
        /// Target format.
        to: QFormat,
    },
    /// Value pass-through (realignment copies, the ALU half of a
    /// shift+negate pair).
    Copy {
        /// Operand.
        src: Operand,
    },
    /// No dataflow effect (pointer bookkeeping charged by the cost
    /// model).
    Nop,
    /// Vector load of one lane per location.
    VLoad {
        /// Per-lane locations (contiguous by construction).
        locs: Vec<Loc>,
    },
    /// Vector store: per lane, requantize to `to` and write.
    VStore {
        /// Per-lane locations.
        locs: Vec<Loc>,
        /// Stored superword.
        src: Operand,
        /// Storage format of the array.
        to: QFormat,
    },
    /// Lane-wise arithmetic; `to` as in [`MopKind::Bin`], per lane.
    VBin {
        /// Operation.
        op: BinOp,
        /// Left superword.
        a: Operand,
        /// Right superword.
        b: Operand,
        /// Per-lane result formats (`None` only for multiplies whose
        /// scaling follows separately).
        to: Option<Vec<QFormat>>,
    },
    /// Lane-wise negation then requantization to the per-lane formats.
    VUn {
        /// Operand superword.
        src: Operand,
        /// Per-lane result formats.
        to: Vec<QFormat>,
    },
    /// Lane-wise scaling: per-lane shift amounts (usually but not
    /// necessarily uniform — the vector shift macro takes one amount
    /// per lane) and per-lane saturation bounds. With `negate`, lanes
    /// are negated exactly before requantization (vectorized negation).
    VRequant {
        /// Operand superword.
        src: Operand,
        /// Per-lane target formats.
        to: Vec<QFormat>,
        /// Negate lanes before requantizing.
        negate: bool,
    },
    /// Builds a superword from scalar operands (lane 0 first).
    Pack {
        /// Lane values.
        lanes: Vec<Operand>,
    },
    /// Broadcasts one scalar into every lane.
    Splat {
        /// The scalar.
        src: Operand,
        /// Lane count.
        lanes: u32,
    },
    /// Extracts one lane as a scalar; optionally negates exactly and/or
    /// requantizes to `to` on the way out (fig. 2 lane scaling).
    Extract {
        /// Source superword.
        src: Operand,
        /// Lane index.
        lane: u32,
        /// Negate the extracted value.
        negate: bool,
        /// Requantization target, if any.
        to: Option<QFormat>,
    },
    /// Cost-model-only operation with no executable semantics
    /// (floating-point lowering).
    Opaque,
}

/// One machine operation with its dependence predecessors.
#[derive(Debug, Clone)]
pub struct Mop {
    /// Cost/class query answered by the target model.
    pub query: OpQuery,
    /// Indices of operations this one must wait for.
    pub preds: Vec<usize>,
    /// Executable semantics (see [`MopKind`]).
    pub kind: MopKind,
}

impl Mop {
    /// A cost-model-only operation without executable semantics.
    pub fn opaque(query: OpQuery, preds: Vec<usize>) -> Self {
        Mop {
            query,
            preds,
            kind: MopKind::Opaque,
        }
    }
}

/// A lowered basic block.
#[derive(Debug, Clone)]
pub struct MachineBlock {
    /// Operations in a valid topological order.
    pub ops: Vec<Mop>,
    /// Executions per kernel activation.
    pub trip: u64,
    /// Whether the block body sits inside a loop (loop control overhead
    /// applies per execution).
    pub in_loop: bool,
    /// Enclosing loops, outermost first, with trip counts; index
    /// expressions inside [`Loc`]s refer to these variables.
    pub loops: Vec<(LoopId, u32)>,
    /// Final per-variable definitions of the block, in first-definition
    /// order: after the ops execute, each variable takes the value of
    /// its operand (evaluated against this execution's results and the
    /// block-entry variable snapshot).
    pub var_defs: Vec<(VarId, Operand)>,
}

/// A quantized coefficient table of the program.
#[derive(Debug, Clone)]
pub struct ParamDecl {
    /// Source-level name.
    pub name: String,
    /// Storage format.
    pub fmt: QFormat,
    /// Values quantized onto `fmt` (round-half-up at compile time).
    pub raws: Vec<i64>,
}

/// A state array of the program.
#[derive(Debug, Clone)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Storage format.
    pub fmt: QFormat,
    /// Element count.
    pub len: usize,
}

/// A scalar variable of the program.
#[derive(Debug, Clone)]
pub struct VarDecl {
    /// Source-level name.
    pub name: String,
    /// Canonical storage format: covers the format of every definition,
    /// so storing any definition in it is an exact left alignment and
    /// all downstream requantizations agree bit-for-bit with the
    /// dynamic-format reference semantics.
    pub fmt: QFormat,
}

/// Everything a machine program owns besides its code: inputs, outputs,
/// quantized coefficient storage, state arrays and variables. Makes the
/// program a self-contained executable artifact for the interpreter and
/// the C back-ends.
#[derive(Debug, Clone, Default)]
pub struct ProgramStorage {
    /// Input stream names, in declaration order.
    pub inputs: Vec<String>,
    /// Output names, in declaration order.
    pub outputs: Vec<String>,
    /// Coefficient tables.
    pub params: Vec<ParamDecl>,
    /// State arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Scalar variables.
    pub vars: Vec<VarDecl>,
}

impl ProgramStorage {
    /// Storage format of a location.
    pub fn loc_fmt(&self, loc: &Loc) -> QFormat {
        match loc {
            Loc::Array(a, _) => self.arrays[a.index()].fmt,
            Loc::Param(p, _) => self.params[p.index()].fmt,
        }
    }
}

/// A lowered kernel.
#[derive(Debug, Clone)]
pub struct MachineProgram {
    /// Kernel name, for reports.
    pub name: String,
    /// Lowered blocks, in document (execution) order.
    pub blocks: Vec<MachineBlock>,
    /// The program's storage declarations.
    pub storage: ProgramStorage,
}

impl MachineProgram {
    /// Total operation count over one activation (trip-weighted).
    pub fn ops_per_activation(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.ops.len() as u64 * b.trip)
            .sum()
    }
}

/// A wide-integer-range format on the `2^-fwl` grid: alignment shifts
/// land here, where saturation is unreachable for any value a lowered
/// program produces (pre-alignment before an addition never overflows —
/// truncation cannot grow a value's magnitude).
pub fn align_fmt(fwl: i32) -> QFormat {
    QFormat::new(62 - fwl, fwl)
}

/// Joins two formats into the finest common cover.
fn join_fmt(a: QFormat, b: QFormat) -> QFormat {
    let mut iwl = a.iwl.max(b.iwl);
    let fwl = a.fwl.max(b.fwl);
    // Keep raw values representable in 63 bits; the integer range is
    // bookkeeping only (variable stores never saturate).
    if iwl + fwl > 62 {
        iwl = 62 - fwl;
    }
    QFormat::new(iwl, fwl)
}

/// Format of an *unrequantized* product of two operand formats: the
/// true integer width `a.iwl + b.iwl`, with the fractional length
/// capped so the whole format fits a 62-bit container. When the cap
/// bites (two covering variable formats can multiply past 64 bits),
/// every backend floor-shifts the exact product onto this coarser grid;
/// the following requantization is another floor shift, and
/// `floor(floor(x / 2^a) / 2^b) = floor(x / 2^(a+b))`, so the two-step
/// result stays bit-identical to the reference's single-step `i128`
/// requantization. Keeping the IWL honest (rather than capping it, as
/// this function once did) also makes downstream saturation decisions
/// sound.
pub fn product_fmt(a: QFormat, b: QFormat) -> QFormat {
    let iwl = a.iwl + b.iwl;
    let fwl = (a.fwl + b.fwl).min(62 - iwl);
    QFormat::new(iwl, fwl)
}

/// One node of a program's reconstructed loop structure.
///
/// A [`MachineBlock`] records the full loop stack it executes under,
/// but consecutive blocks may *share* enclosing loops (an unrolled
/// inner loop and its remainder inside a common outer loop). Executing
/// each block's nest independently would run the first block's outer
/// iterations to completion before the second block starts — the wrong
/// interleaving whenever state or variables flow across iterations, and
/// order-sensitive quantization makes even pure reductions diverge
/// bitwise. Backends must instead walk this forest, entering each
/// shared loop exactly once.
#[derive(Debug, Clone)]
pub enum LoopNest {
    /// A leaf: index of a block in the program's document-order list,
    /// executed once per enclosing-iteration.
    Block(usize),
    /// A loop whose body (blocks and nested loops) executes `count`
    /// times.
    Loop {
        /// The induction variable.
        var: slpwlo_ir::LoopId,
        /// Trip count.
        count: u32,
        /// Loop body in document order.
        body: Vec<LoopNest>,
    },
}

/// Reconstructs the shared loop structure of document-order blocks by
/// merging the longest common prefixes of consecutive blocks' loop
/// stacks (loops are contiguous in document order, so a prefix match on
/// induction variables is exact).
pub fn loop_forest(blocks: &[MachineBlock]) -> Vec<LoopNest> {
    let mut roots: Vec<LoopNest> = Vec::new();
    // Stack of open loops as (var, count); children accumulate in the
    // deepest open node reachable through `roots`.
    let mut open: Vec<(slpwlo_ir::LoopId, u32)> = Vec::new();
    fn children_at(roots: &mut Vec<LoopNest>, depth: usize) -> &mut Vec<LoopNest> {
        let mut cur = roots;
        for _ in 0..depth {
            let Some(LoopNest::Loop { body, .. }) = cur.last_mut() else {
                unreachable!("open stack tracks Loop nodes");
            };
            cur = body;
        }
        cur
    }
    for (bi, block) in blocks.iter().enumerate() {
        let common = open
            .iter()
            .zip(&block.loops)
            .take_while(|(a, b)| a == b)
            .count();
        open.truncate(common);
        for &(var, count) in &block.loops[common..] {
            children_at(&mut roots, open.len()).push(LoopNest::Loop {
                var,
                count,
                body: Vec::new(),
            });
            open.push((var, count));
        }
        children_at(&mut roots, open.len()).push(LoopNest::Block(bi));
    }
    roots
}

/// Static bounds of an affine index over a block's loop nest
/// (`loops` as carried by [`MachineBlock::loops`]): the smallest and
/// largest value the index can take across all iterations. Shared by
/// the lowering's gather/scatter decision and the C emitters' wrap
/// analysis so the two can never disagree.
pub fn ix_bounds(ix: &slpwlo_ir::IndexExpr, loops: &[(slpwlo_ir::LoopId, u32)]) -> (i64, i64) {
    let mut lo = ix.offset();
    let mut hi = ix.offset();
    for &(var, c) in ix.terms() {
        let count = loops
            .iter()
            .find(|&&(v, _)| v == var)
            .map(|&(_, n)| n as i64)
            .unwrap_or(1);
        let span = (count - 1).max(0);
        if c >= 0 {
            hi += c * span;
        } else {
            lo += c * span;
        }
    }
    (lo, hi)
}

/// Static per-lane result formats of every operation in a block
/// (an empty vector for operations producing no value). Variable
/// operands read their canonical storage format from `storage`.
pub fn block_result_fmts(block: &MachineBlock, storage: &ProgramStorage) -> Vec<Vec<QFormat>> {
    let mut out: Vec<Vec<QFormat>> = Vec::with_capacity(block.ops.len());
    for op in &block.ops {
        let f = result_fmt(&op.kind, &out, storage);
        out.push(f);
    }
    out
}

/// Static per-lane result formats of one operation given the formats of
/// earlier results (the incremental step of [`block_result_fmts`],
/// exposed so independent checkers can interleave format computation
/// with their own per-op validation).
pub fn result_fmt(kind: &MopKind, fmts: &[Vec<QFormat>], storage: &ProgramStorage) -> Vec<QFormat> {
    result_fmt_of(kind, fmts, storage)
}

/// Static per-lane formats of one operand given the formats of earlier
/// results.
pub fn operand_fmts(o: &Operand, fmts: &[Vec<QFormat>], storage: &ProgramStorage) -> Vec<QFormat> {
    match o {
        Operand::Op(i) => fmts[*i].clone(),
        Operand::Imm { fmt, .. } => vec![*fmt],
        Operand::Var(v) => vec![storage.vars[v.index()].fmt],
    }
}

/// The lane-broadcast rule shared by every consumer of per-lane data:
/// single-lane slots (splats) broadcast their only lane to any index.
pub fn broadcast_lane<T: Copy>(lanes: &[T], lane: usize) -> T {
    lanes[lane.min(lanes.len().saturating_sub(1))]
}

fn lane_of(fmts: &[QFormat], lane: usize) -> QFormat {
    broadcast_lane(fmts, lane)
}

fn result_fmt_of(kind: &MopKind, fmts: &[Vec<QFormat>], storage: &ProgramStorage) -> Vec<QFormat> {
    let opnd = |o: &Operand| operand_fmts(o, fmts, storage);
    match kind {
        MopKind::ReadInput { to, .. } => vec![*to],
        MopKind::Load { loc } => vec![storage.loc_fmt(loc)],
        MopKind::VLoad { locs } => locs.iter().map(|l| storage.loc_fmt(l)).collect(),
        MopKind::Bin { a, b, to, .. } => match to {
            Some(t) => vec![*t],
            None => vec![product_fmt(opnd(a)[0], opnd(b)[0])],
        },
        MopKind::VBin { a, b, to, .. } => match to {
            Some(t) => t.clone(),
            None => {
                let fa = opnd(a);
                let fb = opnd(b);
                let lanes = fa.len().max(fb.len());
                (0..lanes)
                    .map(|l| product_fmt(lane_of(&fa, l), lane_of(&fb, l)))
                    .collect()
            }
        },
        MopKind::Un { to, .. } | MopKind::Requant { to, .. } => vec![*to],
        MopKind::VUn { to, .. } | MopKind::VRequant { to, .. } => to.clone(),
        MopKind::Copy { src } => opnd(src),
        MopKind::Extract { src, lane, to, .. } => match to {
            Some(t) => vec![*t],
            None => vec![lane_of(&opnd(src), *lane as usize)],
        },
        MopKind::Pack { lanes } => lanes.iter().map(|o| opnd(o)[0]).collect(),
        MopKind::Splat { src, lanes } => vec![opnd(src)[0]; *lanes as usize],
        MopKind::Store { .. }
        | MopKind::VStore { .. }
        | MopKind::ShiftIn { .. }
        | MopKind::Output { .. }
        | MopKind::Nop
        | MopKind::Opaque => Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Lowers a kernel with its specification and per-block SIMD groups.
///
/// `blocks` pairs each basic block with its DFG and the groups realised
/// in it (empty slice for pure scalar code).
pub fn lower_fixed(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
    blocks: &[(Block, Dfg, Vec<SimdGroup>)],
) -> MachineProgram {
    // Variables consumed outside their defining block (or across loop
    // iterations) appear as `LiveIn` nodes somewhere; only those need
    // cross-block state — dead definitions would otherwise materialise
    // unpacks the cost model never charged.
    let live_vars: std::collections::HashSet<VarId> = blocks
        .iter()
        .flat_map(|(_, dfg, _)| {
            dfg.iter().filter_map(|(_, n)| match n.kind {
                NodeKind::LiveIn(v) => Some(v),
                _ => None,
            })
        })
        .collect();
    // Callers may hand blocks over in priority order (the WLO-SLP visit
    // order); the machine program executes in document order.
    let mut lowered: Vec<(slpwlo_ir::blocks::BlockId, MachineBlock)> = blocks
        .iter()
        .map(|(block, dfg, groups)| {
            let mut lw = FixedLowerer::new(kernel, &block.loops, spec, target, dfg, groups);
            lw.run();
            let var_defs = lw.collect_var_defs(&block.stmts, &live_vars);
            (
                block.id,
                MachineBlock {
                    ops: lw.ops,
                    trip: block.trip(),
                    in_loop: block.in_loop(),
                    loops: block.loops.clone(),
                    var_defs,
                },
            )
        })
        .collect();
    lowered.sort_by_key(|(id, _)| *id);
    let lowered: Vec<MachineBlock> = lowered.into_iter().map(|(_, b)| b).collect();
    let storage = build_storage(kernel, spec, &lowered);
    MachineProgram {
        name: kernel.name().to_string(),
        blocks: lowered,
        storage,
    }
}

/// Lowers the all-scalar fixed-point version of a kernel (the baseline
/// denominator of the paper's speedups).
pub fn lower_scalar(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
) -> MachineProgram {
    let blocks: Vec<(Block, Dfg, Vec<SimdGroup>)> = collect_blocks(kernel)
        .into_iter()
        .map(|b| {
            let dfg = Dfg::from_block(kernel, &b);
            (b, dfg, Vec::new())
        })
        .collect();
    lower_fixed(kernel, spec, target, &blocks)
}

/// Lowers the original floating-point version (fig. 6's reference).
///
/// Floating-point programs drive the cycle model only; their operations
/// carry no executable semantics ([`MopKind::Opaque`]).
pub fn lower_float(kernel: &Kernel) -> MachineProgram {
    let blocks = collect_blocks(kernel);
    let lowered = blocks
        .into_iter()
        .map(|b| {
            let dfg = Dfg::from_block(kernel, &b);
            let ops = lower_float_block(&dfg);
            MachineBlock {
                ops,
                trip: b.trip(),
                in_loop: b.in_loop(),
                loops: b.loops.clone(),
                var_defs: Vec::new(),
            }
        })
        .collect();
    MachineProgram {
        name: format!("{}_float", kernel.name()),
        blocks: lowered,
        storage: float_storage(kernel),
    }
}

/// Quantizes a coefficient/constant at compile time: round-half-up with
/// saturation, exactly as the bit-accurate simulation does.
pub fn quantize_const(v: f64, fmt: QFormat) -> i64 {
    FxValue::from_f64(v, fmt, QuantizeMode::Round, OverflowMode::Saturate).raw()
}

fn build_storage(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    blocks: &[MachineBlock],
) -> ProgramStorage {
    let params = kernel
        .params()
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let fmt = spec.format(SpecKey::Param(ParamId(pi as u32)));
            ParamDecl {
                name: p.name.clone(),
                fmt,
                raws: p.values.iter().map(|&v| quantize_const(v, fmt)).collect(),
            }
        })
        .collect();
    let arrays = kernel
        .arrays()
        .iter()
        .enumerate()
        .map(|(ai, a)| ArrayDecl {
            name: a.name.clone(),
            fmt: spec.format(SpecKey::Array(ArrayId(ai as u32))),
            len: a.len,
        })
        .collect();
    let mut storage = ProgramStorage {
        inputs: kernel.inputs().iter().map(|i| i.name.clone()).collect(),
        outputs: kernel.outputs().iter().map(|o| o.name.clone()).collect(),
        params,
        arrays,
        vars: kernel
            .vars()
            .iter()
            .map(|v| VarDecl {
                name: v.name.clone(),
                // The interpreter's zero-initialization format; refined
                // below to cover every definition.
                fmt: QFormat::new(1, 30),
            })
            .collect(),
    };
    // Fixpoint over the canonical variable formats: a definition's
    // format may itself depend on variable formats (through live-in
    // operands), so iterate until the joins stabilise. Joins are
    // monotone (non-decreasing iwl/fwl, both capped at 62 total bits)
    // on a finite lattice, so convergence is guaranteed — two rounds in
    // practice; running to convergence (not a fixed round count)
    // preserves the "canonical covers every definition" invariant the
    // emitters rely on even for long variable-to-variable chains.
    loop {
        let mut next: Vec<QFormat> = storage.vars.iter().map(|v| v.fmt).collect();
        for block in blocks {
            let fmts = block_result_fmts(block, &storage);
            for (v, def) in &block.var_defs {
                let f = operand_fmts(def, &fmts, &storage)[0];
                next[v.index()] = join_fmt(next[v.index()], f);
            }
        }
        let changed = storage
            .vars
            .iter()
            .zip(&next)
            .any(|(cur, &new)| cur.fmt != new);
        for (decl, f) in storage.vars.iter_mut().zip(next) {
            decl.fmt = f;
        }
        if !changed {
            break;
        }
    }
    storage
}

fn float_storage(kernel: &Kernel) -> ProgramStorage {
    let wide = QFormat::new(1, 30);
    ProgramStorage {
        inputs: kernel.inputs().iter().map(|i| i.name.clone()).collect(),
        outputs: kernel.outputs().iter().map(|o| o.name.clone()).collect(),
        params: kernel
            .params()
            .iter()
            .map(|p| ParamDecl {
                name: p.name.clone(),
                fmt: wide,
                raws: p.values.iter().map(|&v| quantize_const(v, wide)).collect(),
            })
            .collect(),
        arrays: kernel
            .arrays()
            .iter()
            .map(|a| ArrayDecl {
                name: a.name.clone(),
                fmt: wide,
                len: a.len,
            })
            .collect(),
        vars: kernel
            .vars()
            .iter()
            .map(|v| VarDecl {
                name: v.name.clone(),
                fmt: wide,
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Fixed-point lowering
// ---------------------------------------------------------------------------

/// Which semantics the per-lane scaling of a superword carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScaleSem {
    /// Pre-alignment of an additive operand: pure grid change, no
    /// saturation (an [`align_fmt`] target).
    Align,
    /// Full requantization (multiply results, store conversions):
    /// truncate and saturate at the target format.
    Requant,
    /// Negate exactly, then requantize (vectorized negation).
    Neg,
}

struct FixedLowerer<'a> {
    kernel: &'a Kernel,
    /// Enclosing loops of the block being lowered (for static index
    /// bounds: a vector access whose lane indices may wrap must fall
    /// back to gather/scatter form).
    loops: &'a [(slpwlo_ir::LoopId, u32)],
    spec: &'a FixedPointSpec,
    target: &'a TargetModel,
    dfg: &'a Dfg,
    groups: &'a [SimdGroup],
    node_group: HashMap<NodeId, usize>,
    ops: Vec<Mop>,
    /// Scalar value producers: node -> op index (absent for constants and
    /// live-ins, which cost nothing).
    produced: HashMap<NodeId, usize>,
    /// Vector result op of each emitted group.
    group_result: HashMap<usize, usize>,
    /// Cached unpack ops for grouped values consumed by scalar code.
    unpacked: HashMap<NodeId, usize>,
    /// Main op of every node (for memory-order dependences).
    main_op: HashMap<NodeId, usize>,
}

impl<'a> FixedLowerer<'a> {
    fn new(
        kernel: &'a Kernel,
        loops: &'a [(slpwlo_ir::LoopId, u32)],
        spec: &'a FixedPointSpec,
        target: &'a TargetModel,
        dfg: &'a Dfg,
        groups: &'a [SimdGroup],
    ) -> Self {
        let mut node_group = HashMap::new();
        for (gi, g) in groups.iter().enumerate() {
            for &e in &g.elems {
                node_group.insert(e, gi);
            }
        }
        FixedLowerer {
            kernel,
            loops,
            spec,
            target,
            dfg,
            groups,
            node_group,
            ops: Vec::new(),
            produced: HashMap::new(),
            group_result: HashMap::new(),
            unpacked: HashMap::new(),
            main_op: HashMap::new(),
        }
    }

    fn run(&mut self) {
        // Scalar consumers may interleave with a group's elements in the
        // node order, so emission follows a coarsened topological order
        // where each group is one super-node (valid groups guarantee this
        // graph is acyclic: a cycle through a scalar node would make two
        // group elements dependent).
        let n_groups = self.groups.len();
        let unit_of = |lw: &Self, id: NodeId| -> usize {
            match lw.node_group.get(&id) {
                Some(&gi) => gi,
                None => n_groups + id.index(),
            }
        };
        let n_units = n_groups + self.dfg.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n_units];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_units];
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); n_units];
        for (id, node) in self.dfg.iter() {
            let u = unit_of(self, id);
            members[u].push(id);
            for p in node.operands.iter().chain(node.deps.iter()) {
                let pu = unit_of(self, *p);
                if pu != u && !preds[u].contains(&pu) {
                    preds[u].push(pu);
                    succs[pu].push(u);
                }
            }
        }
        // Kahn's algorithm; ready units fire in ascending first-member
        // order for determinism.
        let mut indeg: Vec<usize> = preds.iter().map(|p| p.len()).collect();
        let mut ready: std::collections::BTreeSet<(NodeId, usize)> = (0..n_units)
            .filter(|&u| indeg[u] == 0 && !members[u].is_empty())
            .map(|u| (members[u][0], u))
            .collect();
        let mut emitted = 0usize;
        while let Some(&(first, u)) = ready.iter().next() {
            ready.remove(&(first, u));
            if u < n_groups {
                self.emit_group(u);
            } else {
                self.emit_scalar(members[u][0]);
            }
            emitted += 1;
            for &s in &succs[u] {
                indeg[s] -= 1;
                if indeg[s] == 0 && !members[s].is_empty() {
                    ready.insert((members[s][0], s));
                }
            }
        }
        let total_units = members.iter().filter(|m| !m.is_empty()).count();
        assert_eq!(emitted, total_units, "coarsened graph must be acyclic");
    }

    fn push(&mut self, query: OpQuery, preds: Vec<usize>, kind: MopKind) -> usize {
        let idx = self.ops.len();
        self.ops.push(Mop { query, preds, kind });
        idx
    }

    /// Element word length the target grants `lanes`-wide groups (for
    /// cost queries on per-lane scalar ops of gathers/scatters/fig. 2
    /// scalings — selection guarantees the lane count is supported).
    fn elem_wl(&self, lanes: u32) -> i32 {
        self.target
            .simd_element_wl(lanes)
            .unwrap_or(self.target.datapath)
    }

    /// Container word length of a node's value.
    fn wl_of(&self, n: NodeId) -> i32 {
        let wl = value_format(self.spec, self.dfg, n)
            .wl()
            .clamp(1, self.target.datapath);
        self.target.container_wl(wl).unwrap_or(self.target.datapath)
    }

    fn fwl_of(&self, n: NodeId) -> i32 {
        value_format(self.spec, self.dfg, n).fwl
    }

    /// The specification format of a node's own value (the format the
    /// bit-accurate simulation assigns to it).
    fn fmt_of(&self, n: NodeId) -> QFormat {
        value_format(self.spec, self.dfg, n)
    }

    /// Op index producing the scalar value of `n` (resolving variable
    /// wiring and unpacking grouped values). `None` for free values.
    fn scalar_value(&mut self, n: NodeId) -> Option<usize> {
        let p = resolve_producer(self.dfg, n);
        if let Some(&gi) = self.node_group.get(&p) {
            if let Some(&u) = self.unpacked.get(&p) {
                return Some(u);
            }
            let src = *self
                .group_result
                .get(&gi)
                .expect("group result emitted before scalar consumers (topo order)");
            let lane = self.groups[gi]
                .elems
                .iter()
                .position(|&e| e == p)
                .expect("node_group points into its group") as u32;
            let u = self.push(
                OpQuery::Extract,
                vec![src],
                MopKind::Extract {
                    src: Operand::Op(src),
                    lane,
                    negate: false,
                    to: None,
                },
            );
            self.unpacked.insert(p, u);
            return Some(u);
        }
        self.produced.get(&p).copied()
    }

    /// The executable operand delivering `n`'s value: a prior op, a
    /// quantized immediate, or a live-in variable.
    fn operand_of(&mut self, n: NodeId) -> Operand {
        if let Some(idx) = self.scalar_value(n) {
            return Operand::Op(idx);
        }
        let p = resolve_producer(self.dfg, n);
        match &self.dfg.node(p).kind {
            NodeKind::Const(v) => {
                let fmt = match self.dfg.node(p).expr {
                    Some(e) => self.spec.format(SpecKey::Expr(e)),
                    None => QFormat::new(2, 30),
                };
                Operand::Imm {
                    raw: quantize_const(*v, fmt),
                    fmt,
                }
            }
            NodeKind::LiveIn(v) => Operand::Var(*v),
            other => unreachable!("node {other:?} produces no value and no op"),
        }
    }

    /// Memory-order predecessors of a node.
    fn mem_deps(&self, n: NodeId) -> Vec<usize> {
        self.dfg
            .node(n)
            .deps
            .iter()
            .filter_map(|d| self.main_op.get(d).copied())
            .collect()
    }

    /// The location accessed by a memory node.
    fn loc_of(&self, n: NodeId) -> Loc {
        match &self.dfg.node(n).kind {
            NodeKind::LoadArray(a, ix) | NodeKind::StoreArray(a, ix) => Loc::Array(*a, ix.clone()),
            NodeKind::LoadParam(p, ix) => Loc::Param(*p, ix.clone()),
            other => unreachable!("{other:?} accesses no location"),
        }
    }

    /// [`mem_status`], downgraded to [`MemStatus::Gather`] when any lane
    /// index may leave `[0, len)`. Out-of-range indices wrap with
    /// Euclidean semantics, which a single-base-pointer vector access
    /// cannot express — such groups must go through the scalar
    /// gather/scatter path every backend implements with wrapped
    /// per-lane accesses.
    fn wrap_aware_mem_status(&self, group: &SimdGroup) -> MemStatus {
        let status = mem_status(self.dfg, group);
        if matches!(status, MemStatus::Gather | MemStatus::NotMemory) {
            return status;
        }
        let wraps = group.elems.iter().any(|&e| {
            let (len, ix) = match &self.dfg.node(e).kind {
                NodeKind::LoadArray(a, ix) | NodeKind::StoreArray(a, ix) => {
                    (self.kernel.arrays()[a.index()].len as i64, ix)
                }
                NodeKind::LoadParam(p, ix) => {
                    (self.kernel.params()[p.index()].values.len() as i64, ix)
                }
                _ => return false,
            };
            let (lo, hi) = ix_bounds(ix, self.loops);
            lo < 0 || hi >= len
        });
        if wraps {
            MemStatus::Gather
        } else {
            status
        }
    }

    /// Final definitions of the block's live variables, as executable
    /// operands (appends unpacks for grouped definitions if needed).
    fn collect_var_defs(
        &mut self,
        stmts: &[Stmt],
        live: &std::collections::HashSet<VarId>,
    ) -> Vec<(VarId, Operand)> {
        let mut defs: Vec<(VarId, Operand)> = Vec::new();
        for s in stmts {
            if let Stmt::Assign(v, e) = s {
                if !live.contains(v) {
                    continue;
                }
                let n = self
                    .dfg
                    .node_of_expr(*e)
                    .expect("assigned expression lowered with its block");
                let opnd = self.operand_of(n);
                match defs.iter_mut().find(|(w, _)| w == v) {
                    Some(slot) => slot.1 = opnd,
                    None => defs.push((*v, opnd)),
                }
            }
        }
        defs
    }

    fn emit_scalar(&mut self, n: NodeId) {
        let kind = self.dfg.node(n).kind.clone();
        match kind {
            NodeKind::Const(_) | NodeKind::LiveIn(_) | NodeKind::VarUse(_) => {
                // Free: immediates and register wiring.
            }
            NodeKind::ReadInput(i) => {
                let wl = self.wl_of(n);
                let to = self.fmt_of(n);
                let idx = self.push(
                    OpQuery::Load(wl),
                    vec![],
                    MopKind::ReadInput { input: i, to },
                );
                self.produced.insert(n, idx);
                self.main_op.insert(n, idx);
            }
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => {
                let wl = self.wl_of(n);
                let deps = self.mem_deps(n);
                let loc = self.loc_of(n);
                let idx = self.push(OpQuery::Load(wl), deps, MopKind::Load { loc });
                self.produced.insert(n, idx);
                self.main_op.insert(n, idx);
            }
            NodeKind::Bin(op) => {
                let operands = self.dfg.node(n).operands.clone();
                let out_fwl = self.fwl_of(n);
                let out_wl = self.wl_of(n);
                let out_fmt = self.fmt_of(n);
                let mut deps = Vec::new();
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let mut ins: Vec<Operand> = Vec::new();
                        for &o in &operands {
                            let src = self.scalar_value(o);
                            let opnd = self.operand_of(o);
                            let s = self.fwl_of(o) - out_fwl;
                            let (dep, opnd) = if s != 0 && !is_exact(self.dfg, o) {
                                let sh = self.push(
                                    OpQuery::Shift(out_wl),
                                    src.into_iter().collect(),
                                    MopKind::Requant {
                                        src: opnd,
                                        to: align_fmt(out_fwl),
                                    },
                                );
                                (Some(sh), Operand::Op(sh))
                            } else {
                                (src, opnd)
                            };
                            deps.extend(dep);
                            ins.push(opnd);
                        }
                        let b = ins.pop().expect("binary op has two operands");
                        let a = ins.pop().expect("binary op has two operands");
                        let idx = self.push(
                            OpQuery::Add(out_wl),
                            deps,
                            MopKind::Bin {
                                op,
                                a,
                                b,
                                to: Some(out_fmt),
                            },
                        );
                        self.produced.insert(n, idx);
                        self.main_op.insert(n, idx);
                    }
                    BinOp::Mul => {
                        let mut in_wl = 0;
                        let mut full_fwl = 0;
                        let mut ins: Vec<Operand> = Vec::new();
                        for &o in &operands {
                            deps.extend(self.scalar_value(o));
                            ins.push(self.operand_of(o));
                            in_wl = in_wl.max(self.wl_of(o));
                            full_fwl += self.fwl_of(o);
                        }
                        let exact = operands.iter().all(|&o| is_exact(self.dfg, o));
                        let scaled = full_fwl != out_fwl && !exact;
                        let b = ins.pop().expect("binary op has two operands");
                        let a = ins.pop().expect("binary op has two operands");
                        let idx = self.push(
                            OpQuery::Mul(in_wl),
                            deps,
                            MopKind::Bin {
                                op,
                                a,
                                b,
                                to: if scaled { None } else { Some(out_fmt) },
                            },
                        );
                        let idx = if scaled {
                            self.push(
                                OpQuery::Shift(out_wl),
                                vec![idx],
                                MopKind::Requant {
                                    src: Operand::Op(idx),
                                    to: out_fmt,
                                },
                            )
                        } else {
                            idx
                        };
                        self.produced.insert(n, idx);
                        self.main_op.insert(n, idx);
                    }
                }
            }
            NodeKind::Un(_) => {
                let o = self.dfg.node(n).operands[0];
                let src = self.scalar_value(o);
                let opnd = self.operand_of(o);
                let out_wl = self.wl_of(n);
                let out_fmt = self.fmt_of(n);
                let s = self.fwl_of(o) - self.fwl_of(n);
                let idx = if s != 0 && !is_exact(self.dfg, o) {
                    // The shifter negates-and-requantizes; the ALU op is
                    // the cost model's move.
                    let sh = self.push(
                        OpQuery::Shift(out_wl),
                        src.into_iter().collect(),
                        MopKind::Un {
                            src: opnd,
                            to: out_fmt,
                        },
                    );
                    self.push(
                        OpQuery::Add(out_wl),
                        vec![sh],
                        MopKind::Copy {
                            src: Operand::Op(sh),
                        },
                    )
                } else {
                    self.push(
                        OpQuery::Add(out_wl),
                        src.into_iter().collect(),
                        MopKind::Un {
                            src: opnd,
                            to: out_fmt,
                        },
                    )
                };
                self.produced.insert(n, idx);
                self.main_op.insert(n, idx);
            }
            NodeKind::StoreArray(a, ref ix) => {
                let o = self.dfg.node(n).operands[0];
                let src = self.scalar_value(o);
                let opnd = self.operand_of(o);
                let arr_fmt = self.spec.format(SpecKey::Array(a));
                let wl = self
                    .target
                    .container_wl(arr_fmt.wl().clamp(1, self.target.datapath))
                    .unwrap_or(self.target.datapath);
                let s = self.fwl_of(o) - arr_fmt.fwl;
                let (val, opnd) = if s != 0 && !is_exact(self.dfg, o) {
                    let sh = self.push(
                        OpQuery::Shift(wl),
                        src.into_iter().collect(),
                        MopKind::Requant {
                            src: opnd,
                            to: arr_fmt,
                        },
                    );
                    (Some(sh), Operand::Op(sh))
                } else {
                    (src, opnd)
                };
                let mut deps: Vec<usize> = val.into_iter().collect();
                deps.extend(self.mem_deps(n));
                let idx = self.push(
                    OpQuery::Store(wl),
                    deps,
                    MopKind::Store {
                        loc: Loc::Array(a, ix.clone()),
                        src: opnd,
                        to: arr_fmt,
                    },
                );
                self.main_op.insert(n, idx);
            }
            NodeKind::ShiftIn(a) => {
                let o = self.dfg.node(n).operands[0];
                let src = self.scalar_value(o);
                let opnd = self.operand_of(o);
                let arr_fmt = self.spec.format(SpecKey::Array(a));
                let wl = self
                    .target
                    .container_wl(arr_fmt.wl().clamp(1, self.target.datapath))
                    .unwrap_or(self.target.datapath);
                let s = self.fwl_of(o) - arr_fmt.fwl;
                let (val, opnd) = if s != 0 && !is_exact(self.dfg, o) {
                    let sh = self.push(
                        OpQuery::Shift(wl),
                        src.into_iter().collect(),
                        MopKind::Requant {
                            src: opnd,
                            to: arr_fmt,
                        },
                    );
                    (Some(sh), Operand::Op(sh))
                } else {
                    (src, opnd)
                };
                let mut deps: Vec<usize> = val.into_iter().collect();
                deps.extend(self.mem_deps(n));
                // Circular buffer: one store plus one pointer update.
                let st = self.push(
                    OpQuery::Store(wl),
                    deps,
                    MopKind::ShiftIn {
                        array: a,
                        src: opnd,
                        to: arr_fmt,
                    },
                );
                let _ptr = self.push(OpQuery::Add(32), vec![], MopKind::Nop);
                self.main_op.insert(n, st);
            }
            NodeKind::Output(o_idx) => {
                let o = self.dfg.node(n).operands[0];
                let src = self.scalar_value(o);
                let opnd = self.operand_of(o);
                let wl = self.wl_of(o);
                let idx = self.push(
                    OpQuery::Store(wl),
                    src.into_iter().collect(),
                    MopKind::Output {
                        index: o_idx,
                        src: opnd,
                    },
                );
                self.main_op.insert(n, idx);
            }
        }
    }

    fn emit_group(&mut self, gi: usize) {
        let group = self.groups[gi].clone();
        let lanes = group.lanes();
        let kind = group.kind(self.dfg).clone();
        match kind {
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => {
                let mut deps = Vec::new();
                for &e in &group.elems {
                    deps.extend(self.mem_deps(e));
                }
                let locs: Vec<Loc> = group.elems.iter().map(|&e| self.loc_of(e)).collect();
                let idx = match self.wrap_aware_mem_status(&group) {
                    MemStatus::ContiguousAligned => {
                        self.push(OpQuery::VLoad(lanes), deps, MopKind::VLoad { locs })
                    }
                    MemStatus::ContiguousUnaligned => {
                        let l = self.push(OpQuery::VLoad(lanes), deps, MopKind::VLoad { locs });
                        // Realign: cost only, the value passes through.
                        // Together the two ops carry exactly the
                        // `OpQuery::VLoadU` price of the cost model.
                        self.push(
                            OpQuery::Add(self.target.datapath),
                            vec![l],
                            MopKind::Copy {
                                src: Operand::Op(l),
                            },
                        )
                    }
                    _ => {
                        // Gather: scalar loads plus a pack (the
                        // `OpQuery::Gather` price of the cost model).
                        let elem_wl = self.elem_wl(lanes);
                        let mut loaded = Vec::new();
                        for (&e, loc) in group.elems.iter().zip(locs) {
                            let d = self.mem_deps(e);
                            loaded.push(self.push(
                                OpQuery::Load(elem_wl),
                                d,
                                MopKind::Load { loc },
                            ));
                        }
                        let lane_ops = loaded.iter().map(|&l| Operand::Op(l)).collect();
                        self.push(
                            OpQuery::Pack(lanes),
                            loaded,
                            MopKind::Pack { lanes: lane_ops },
                        )
                    }
                };
                self.finish_group(gi, &group, idx);
            }
            NodeKind::Bin(op) => {
                let arity = 2;
                let mut operand_srcs = Vec::new();
                for pos in 0..arity {
                    operand_srcs.push(self.vector_operand(&group, pos));
                }
                let mut deps: Vec<usize> = operand_srcs.to_vec();
                let mut ins: Vec<Operand> = operand_srcs.iter().map(|&s| Operand::Op(s)).collect();
                // Pre-scaling for additive ops.
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    for (pos, &src) in operand_srcs.iter().enumerate() {
                        let amounts: Vec<i32> = group
                            .elems
                            .iter()
                            .map(|&e| {
                                let o = self.dfg.node(e).operands[pos];
                                self.fwl_of(o) - self.fwl_of(e)
                            })
                            .collect();
                        let targets: Vec<QFormat> = group
                            .elems
                            .iter()
                            .map(|&e| align_fmt(self.fwl_of(e)))
                            .collect();
                        if let Some(d) = self.emit_vector_scaling(
                            &amounts,
                            src,
                            lanes,
                            ScaleSem::Align,
                            &targets,
                        ) {
                            deps.push(d);
                            ins[pos] = Operand::Op(d);
                        }
                    }
                }
                let lane_fmts: Vec<QFormat> = group.elems.iter().map(|&e| self.fmt_of(e)).collect();
                let b_in = ins.pop().expect("binary group has two operands");
                let a_in = ins.pop().expect("binary group has two operands");
                let mul_scaled = matches!(op, BinOp::Mul) && {
                    // A result scaling follows iff some lane amount is
                    // non-zero (mirrors emit_vector_scaling's decision).
                    group.elems.iter().any(|&e| {
                        let ops = &self.dfg.node(e).operands;
                        self.fwl_of(ops[0]) + self.fwl_of(ops[1]) - self.fwl_of(e) != 0
                    })
                };
                let main = match op {
                    BinOp::Add | BinOp::Sub => self.push(
                        OpQuery::VAdd(lanes),
                        deps,
                        MopKind::VBin {
                            op,
                            a: a_in,
                            b: b_in,
                            to: Some(lane_fmts.clone()),
                        },
                    ),
                    BinOp::Mul => self.push(
                        OpQuery::VMul(lanes),
                        deps,
                        MopKind::VBin {
                            op,
                            a: a_in,
                            b: b_in,
                            to: if mul_scaled {
                                None
                            } else {
                                Some(lane_fmts.clone())
                            },
                        },
                    ),
                };
                // Result scaling for multiplies.
                let mut result = main;
                if matches!(op, BinOp::Mul) {
                    let amounts: Vec<i32> = group
                        .elems
                        .iter()
                        .map(|&e| {
                            let ops = &self.dfg.node(e).operands;
                            self.fwl_of(ops[0]) + self.fwl_of(ops[1]) - self.fwl_of(e)
                        })
                        .collect();
                    if let Some(d) = self.emit_vector_scaling(
                        &amounts,
                        main,
                        lanes,
                        ScaleSem::Requant,
                        &lane_fmts,
                    ) {
                        result = d;
                    }
                }
                self.finish_group(gi, &group, result);
            }
            NodeKind::Un(_) => {
                let src = self.vector_operand(&group, 0);
                let amounts: Vec<i32> = group
                    .elems
                    .iter()
                    .map(|&e| {
                        let o = self.dfg.node(e).operands[0];
                        self.fwl_of(o) - self.fwl_of(e)
                    })
                    .collect();
                let lane_fmts: Vec<QFormat> = group.elems.iter().map(|&e| self.fmt_of(e)).collect();
                let mut deps: Vec<usize> = vec![src];
                let idx =
                    match self.emit_vector_scaling(&amounts, src, lanes, ScaleSem::Neg, &lane_fmts)
                    {
                        Some(d) => {
                            // The scaling already negated and requantized;
                            // the VAdd is the cost model's move.
                            deps.push(d);
                            self.push(
                                OpQuery::VAdd(lanes),
                                deps,
                                MopKind::Copy {
                                    src: Operand::Op(d),
                                },
                            )
                        }
                        None => self.push(
                            OpQuery::VAdd(lanes),
                            deps,
                            MopKind::VUn {
                                src: Operand::Op(src),
                                to: lane_fmts,
                            },
                        ),
                    };
                self.finish_group(gi, &group, idx);
            }
            NodeKind::StoreArray(a, _) => {
                let src = self.vector_operand(&group, 0);
                let arr_fmt = self.spec.format(SpecKey::Array(a));
                let amounts: Vec<i32> = group
                    .elems
                    .iter()
                    .map(|&e| {
                        let o = self.dfg.node(e).operands[0];
                        self.fwl_of(o) - arr_fmt.fwl
                    })
                    .collect();
                let targets = vec![arr_fmt; lanes as usize];
                let mut deps: Vec<usize> = vec![src];
                let mut value = Operand::Op(src);
                if let Some(d) =
                    self.emit_vector_scaling(&amounts, src, lanes, ScaleSem::Requant, &targets)
                {
                    deps.push(d);
                    value = Operand::Op(d);
                }
                for &e in &group.elems {
                    deps.extend(self.mem_deps(e));
                }
                let locs: Vec<Loc> = group.elems.iter().map(|&e| self.loc_of(e)).collect();
                let idx = match self.wrap_aware_mem_status(&group) {
                    MemStatus::ContiguousAligned => self.push(
                        OpQuery::VStore(lanes),
                        deps,
                        MopKind::VStore {
                            locs,
                            src: value,
                            to: arr_fmt,
                        },
                    ),
                    MemStatus::ContiguousUnaligned => {
                        // Pre-align the register before the misaligned
                        // access: together the two ops carry exactly the
                        // `OpQuery::VStoreU` price of the cost model.
                        let a = self.push(
                            OpQuery::Add(self.target.datapath),
                            deps.clone(),
                            MopKind::Copy { src: value },
                        );
                        let mut st_deps = deps;
                        st_deps.push(a);
                        self.push(
                            OpQuery::VStore(lanes),
                            st_deps,
                            MopKind::VStore {
                                locs,
                                src: Operand::Op(a),
                                to: arr_fmt,
                            },
                        )
                    }
                    _ => {
                        // Scatter: per-lane extract + store (the
                        // `OpQuery::Scatter` price of the cost model).
                        let elem_wl = self.elem_wl(lanes);
                        let mut last = None;
                        for (lane, loc) in locs.into_iter().enumerate() {
                            let u = self.push(
                                OpQuery::Extract,
                                deps.clone(),
                                MopKind::Extract {
                                    src: value.clone(),
                                    lane: lane as u32,
                                    negate: false,
                                    to: None,
                                },
                            );
                            last = Some(self.push(
                                OpQuery::Store(elem_wl),
                                vec![u],
                                MopKind::Store {
                                    loc,
                                    src: Operand::Op(u),
                                    to: arr_fmt,
                                },
                            ));
                        }
                        last.expect("lanes >= 2")
                    }
                };
                for &e in &group.elems {
                    self.main_op.insert(e, idx);
                }
                self.group_result.insert(gi, idx);
            }
            other => unreachable!("ungroupable kind {other:?} in group"),
        }
    }

    /// Emits the scaling needed to move a superword across grids.
    ///
    /// Uniform non-zero amounts become a single vector shift; mismatched
    /// amounts pay the fig. 2 penalty (unpack each lane, shift, repack).
    /// Returns the op to depend on, or `None` when no scaling is needed.
    /// `targets[lane]` is the absolute format lane `lane` lands on, and
    /// `sem` selects pure alignment, saturating requantization, or
    /// negate-then-requantize semantics.
    fn emit_vector_scaling(
        &mut self,
        amounts: &[i32],
        src: usize,
        lanes: u32,
        sem: ScaleSem,
        targets: &[QFormat],
    ) -> Option<usize> {
        if amounts.iter().all(|&a| a == 0) {
            return None;
        }
        if amounts.iter().all(|&a| a == amounts[0]) {
            return Some(self.push(
                OpQuery::VShift(lanes),
                vec![src],
                MopKind::VRequant {
                    src: Operand::Op(src),
                    to: targets.to_vec(),
                    negate: sem == ScaleSem::Neg,
                },
            ));
        }
        // Fig. 2: unpack, shift lanes individually, repack.
        let elem_wl = self.elem_wl(lanes);
        let mut shifted = Vec::new();
        for (lane, &a) in amounts.iter().enumerate() {
            let u = self.push(
                OpQuery::Extract,
                vec![src],
                MopKind::Extract {
                    src: Operand::Op(src),
                    lane: lane as u32,
                    negate: sem == ScaleSem::Neg && a == 0,
                    to: if a == 0 { Some(targets[lane]) } else { None },
                },
            );
            let s = if a != 0 {
                let kind = match sem {
                    ScaleSem::Neg => MopKind::Un {
                        src: Operand::Op(u),
                        to: targets[lane],
                    },
                    _ => MopKind::Requant {
                        src: Operand::Op(u),
                        to: targets[lane],
                    },
                };
                self.push(OpQuery::Shift(elem_wl), vec![u], kind)
            } else {
                u
            };
            shifted.push(s);
        }
        let lane_ops = shifted.iter().map(|&s| Operand::Op(s)).collect();
        Some(self.push(
            OpQuery::Pack(lanes),
            shifted,
            MopKind::Pack { lanes: lane_ops },
        ))
    }

    /// Materialises the operand superword of a group at `pos`; returns
    /// the producing op.
    fn vector_operand(&mut self, group: &SimdGroup, pos: usize) -> usize {
        let sw: Vec<NodeId> = group
            .elems
            .iter()
            .map(|&e| resolve_producer(self.dfg, self.dfg.node(e).operands[pos]))
            .collect();
        // Produced by another emitted group with identical lanes?
        for (gi, g) in self.groups.iter().enumerate() {
            if g.elems == sw {
                return *self
                    .group_result
                    .get(&gi)
                    .expect("producing group emitted before consumers (topo order)");
            }
        }
        // Splat: broadcast one scalar.
        if sw.iter().all(|&n| n == sw[0]) {
            let deps: Vec<usize> = self.scalar_value(sw[0]).into_iter().collect();
            let src = self.operand_of(sw[0]);
            return self.push(
                OpQuery::Splat(group.lanes()),
                deps,
                MopKind::Splat {
                    src,
                    lanes: group.lanes(),
                },
            );
        }
        // General case: gather scalars and pack.
        let mut deps = Vec::new();
        let mut lane_ops = Vec::new();
        for &n in &sw {
            deps.extend(self.scalar_value(n));
            lane_ops.push(self.operand_of(n));
        }
        self.push(
            OpQuery::Pack(group.lanes()),
            deps,
            MopKind::Pack { lanes: lane_ops },
        )
    }

    fn finish_group(&mut self, gi: usize, group: &SimdGroup, result: usize) {
        self.group_result.insert(gi, result);
        for &e in &group.elems {
            self.main_op.insert(e, result);
        }
    }
}

/// `true` for operands whose value is exact (constants, initial zeros):
/// no scaling is ever materialised for them.
fn is_exact(dfg: &Dfg, n: NodeId) -> bool {
    matches!(
        dfg.node(resolve_producer(dfg, n)).kind,
        NodeKind::Const(_) | NodeKind::LiveIn(_)
    )
}

// ---------------------------------------------------------------------------
// Floating-point lowering
// ---------------------------------------------------------------------------

fn lower_float_block(dfg: &Dfg) -> Vec<Mop> {
    let mut ops: Vec<Mop> = Vec::new();
    let mut produced: HashMap<NodeId, usize> = HashMap::new();
    let mut main_op: HashMap<NodeId, usize> = HashMap::new();
    let push = |ops: &mut Vec<Mop>, query: OpQuery, preds: Vec<usize>| -> usize {
        ops.push(Mop::opaque(query, preds));
        ops.len() - 1
    };
    for (id, node) in dfg.iter() {
        let value_of = |produced: &HashMap<NodeId, usize>, n: NodeId| -> Option<usize> {
            produced.get(&resolve_producer(dfg, n)).copied()
        };
        let mem_deps = |main_op: &HashMap<NodeId, usize>, n: NodeId| -> Vec<usize> {
            dfg.node(n)
                .deps
                .iter()
                .filter_map(|d| main_op.get(d).copied())
                .collect()
        };
        match &node.kind {
            NodeKind::Const(_) | NodeKind::LiveIn(_) | NodeKind::VarUse(_) => {}
            NodeKind::ReadInput(_) => {
                let i = push(&mut ops, OpQuery::FLoad, vec![]);
                produced.insert(id, i);
                main_op.insert(id, i);
            }
            NodeKind::LoadArray(..) | NodeKind::LoadParam(..) => {
                let deps = mem_deps(&main_op, id);
                let i = push(&mut ops, OpQuery::FLoad, deps);
                produced.insert(id, i);
                main_op.insert(id, i);
            }
            NodeKind::Bin(op) => {
                let deps: Vec<usize> = node
                    .operands
                    .iter()
                    .filter_map(|&o| value_of(&produced, o))
                    .collect();
                let q = match op {
                    BinOp::Mul => OpQuery::FMul,
                    _ => OpQuery::FAdd,
                };
                let i = push(&mut ops, q, deps);
                produced.insert(id, i);
                main_op.insert(id, i);
            }
            NodeKind::Un(_) => {
                let deps: Vec<usize> = node
                    .operands
                    .iter()
                    .filter_map(|&o| value_of(&produced, o))
                    .collect();
                // Float negation: sign-bit flip on an ALU.
                let i = push(&mut ops, OpQuery::Add(32), deps);
                produced.insert(id, i);
                main_op.insert(id, i);
            }
            NodeKind::StoreArray(..) | NodeKind::Output(_) => {
                let mut deps: Vec<usize> = node
                    .operands
                    .iter()
                    .filter_map(|&o| value_of(&produced, o))
                    .collect();
                deps.extend(mem_deps(&main_op, id));
                let i = push(&mut ops, OpQuery::FStore, deps);
                main_op.insert(id, i);
            }
            NodeKind::ShiftIn(_) => {
                let mut deps: Vec<usize> = node
                    .operands
                    .iter()
                    .filter_map(|&o| value_of(&produced, o))
                    .collect();
                deps.extend(mem_deps(&main_op, id));
                let st = push(&mut ops, OpQuery::FStore, deps);
                let _ptr = push(&mut ops, OpQuery::Add(32), vec![]);
                main_op.insert(id, st);
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_accuracy::AnalyticalEvaluator;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::xentium;

    const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    fn lowered(db: f64) -> (MachineProgram, MachineProgram) {
        let k = parse_kernel(FIR8).unwrap();
        let ranges = determine_ranges(&k, &RangeOptions::default());
        let eval = AnalyticalEvaluator::with_defaults(&k);
        let target = xentium();
        let res = crate::wlo_slp(&k, &target, &eval, db, &ranges);
        let blocks: Vec<_> = res
            .blocks
            .into_iter()
            .map(|b| (b.block, b.dfg, b.groups))
            .collect();
        let simd = lower_fixed(&k, &res.spec, &target, &blocks);
        let scalar = lower_scalar(&k, &res.spec, &target);
        (simd, scalar)
    }

    #[test]
    fn deps_point_backwards() {
        let (simd, scalar) = lowered(-40.0);
        for prog in [&simd, &scalar] {
            for b in &prog.blocks {
                for (i, op) in b.ops.iter().enumerate() {
                    for &p in &op.preds {
                        assert!(p < i, "dep {p} of op {i} must precede it");
                    }
                }
            }
        }
    }

    #[test]
    fn simd_lowering_emits_vector_ops() {
        let (simd, scalar) = lowered(-40.0);
        let has_vector = simd.blocks.iter().any(|b| {
            b.ops
                .iter()
                .any(|o| matches!(o.query, OpQuery::VMul(_) | OpQuery::VLoad(_)))
        });
        assert!(has_vector, "SIMD program must contain vector ops");
        let scalar_has_vector = scalar.blocks.iter().any(|b| {
            b.ops
                .iter()
                .any(|o| matches!(o.query, OpQuery::VMul(_) | OpQuery::VLoad(_)))
        });
        assert!(!scalar_has_vector);
    }

    #[test]
    fn simd_reduces_trip_weighted_ops_in_hot_block() {
        let (simd, scalar) = lowered(-30.0);
        // The loop block (trip > 1) must shrink.
        let hot = |p: &MachineProgram| -> u64 {
            p.blocks
                .iter()
                .filter(|b| b.trip > 1)
                .map(|b| b.ops.len() as u64 * b.trip)
                .sum()
        };
        assert!(
            hot(&simd) < hot(&scalar),
            "simd {} vs scalar {}",
            hot(&simd),
            hot(&scalar)
        );
    }

    #[test]
    fn float_lowering_uses_float_ops_only() {
        let k = parse_kernel(FIR8).unwrap();
        let f = lower_float(&k);
        let mut fadds = 0;
        let mut fmuls = 0;
        for b in &f.blocks {
            for op in &b.ops {
                match op.query {
                    OpQuery::FAdd => fadds += 1,
                    OpQuery::FMul => fmuls += 1,
                    OpQuery::FLoad | OpQuery::FStore | OpQuery::Add(_) => {}
                    other => panic!("unexpected op {other:?} in float lowering"),
                }
            }
        }
        assert!(fadds >= 4 && fmuls >= 4, "fadds {fadds} fmuls {fmuls}");
    }

    #[test]
    fn tight_constraint_degenerates_to_scalar() {
        let (simd, scalar) = lowered(-160.0);
        assert_eq!(
            simd.ops_per_activation(),
            scalar.ops_per_activation(),
            "no groups at -160 dB: identical programs"
        );
    }

    #[test]
    fn every_fixed_op_carries_executable_semantics() {
        let (simd, scalar) = lowered(-40.0);
        for prog in [&simd, &scalar] {
            for b in &prog.blocks {
                for op in &b.ops {
                    assert!(
                        !matches!(op.kind, MopKind::Opaque),
                        "fixed-point lowering must attach semantics to {:?}",
                        op.query
                    );
                }
            }
        }
    }

    #[test]
    fn operands_reference_declared_values_only() {
        // Every Operand::Op points at an earlier op that produces a
        // value; every Var points at a declared variable.
        let (simd, scalar) = lowered(-40.0);
        for prog in [&simd, &scalar] {
            for b in &prog.blocks {
                let fmts = block_result_fmts(b, &prog.storage);
                for (i, op) in b.ops.iter().enumerate() {
                    let mut check = |o: &Operand| match o {
                        Operand::Op(p) => {
                            assert!(*p < i, "operand {p} of op {i} must precede it");
                            assert!(
                                !fmts[*p].is_empty(),
                                "operand {p} of op {i} produces no value"
                            );
                        }
                        Operand::Var(v) => {
                            assert!(v.index() < prog.storage.vars.len());
                        }
                        Operand::Imm { .. } => {}
                    };
                    match &op.kind {
                        MopKind::Bin { a, b, .. } | MopKind::VBin { a, b, .. } => {
                            check(a);
                            check(b);
                        }
                        MopKind::Un { src, .. }
                        | MopKind::VUn { src, .. }
                        | MopKind::Requant { src, .. }
                        | MopKind::VRequant { src, .. }
                        | MopKind::Copy { src }
                        | MopKind::Splat { src, .. }
                        | MopKind::Extract { src, .. }
                        | MopKind::Store { src, .. }
                        | MopKind::VStore { src, .. }
                        | MopKind::ShiftIn { src, .. }
                        | MopKind::Output { src, .. } => check(src),
                        MopKind::Pack { lanes } => lanes.iter().for_each(&mut check),
                        MopKind::ReadInput { .. }
                        | MopKind::Load { .. }
                        | MopKind::VLoad { .. }
                        | MopKind::Nop
                        | MopKind::Opaque => {}
                    }
                }
            }
        }
    }

    #[test]
    fn storage_quantizes_coefficients_round_half_up() {
        let (_, scalar) = lowered(-40.0);
        let c = &scalar.storage.params[0];
        assert_eq!(c.raws.len(), 8);
        for (&raw, &v) in c
            .raws
            .iter()
            .zip([0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07].iter())
        {
            let expected = quantize_const(v, c.fmt);
            assert_eq!(raw, expected);
        }
    }

    #[test]
    fn canonical_var_format_covers_definitions() {
        let (simd, scalar) = lowered(-40.0);
        for prog in [&simd, &scalar] {
            for b in &prog.blocks {
                let fmts = block_result_fmts(b, &prog.storage);
                for (v, def) in &b.var_defs {
                    let f = operand_fmts(def, &fmts, &prog.storage)[0];
                    let canon = prog.storage.vars[v.index()].fmt;
                    assert!(
                        canon.covers(f),
                        "canonical {canon} must cover definition {f} of {}",
                        prog.storage.vars[v.index()].name
                    );
                }
            }
        }
    }

    #[test]
    fn loop_blocks_carry_their_nest() {
        let (_, scalar) = lowered(-40.0);
        let hot: Vec<_> = scalar.blocks.iter().filter(|b| b.trip > 1).collect();
        assert!(!hot.is_empty());
        for b in hot {
            let product: u64 = b.loops.iter().map(|&(_, c)| c as u64).product();
            assert_eq!(product, b.trip, "loop nest must explain the trip count");
        }
    }
}

#[cfg(test)]
mod fig2_tests {
    //! The fig. 2 scaling paths: uniform lane amounts vectorize into one
    //! shift; mismatched amounts pay unpack/shift/repack.
    use super::*;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_fixedpoint::QFormat;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_slp::SimdGroup;
    use slpwlo_targets::xentium;

    /// Two muls feeding two adds lane-wise, groups built by hand so the
    /// lane formats are fully controlled.
    fn setup() -> (Kernel, FixedPointSpec, Dfg, Vec<SimdGroup>, Block) {
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var m0;
    var m1;
    var s0;
    var s1;
    shiftin dl <- x;
    m0 = c[0] * dl[0];
    m1 = c[1] * dl[1];
    s0 = m0 + c[2] * dl[2];
    s1 = m1 + c[3] * dl[3];
    y = s0 + s1;
}
"#;
        let k = parse_kernel(src).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, 32);
        let blocks = collect_blocks(&k);
        let block = blocks.into_iter().next().unwrap();
        let dfg = Dfg::from_block(&k, &block);
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let adds: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Add)))
            .map(|(i, _)| i)
            .collect();
        let groups = vec![
            SimdGroup {
                elems: vec![muls[0], muls[1]],
            },
            SimdGroup {
                elems: vec![adds[0], adds[1]],
            },
        ];
        (k, spec, dfg, groups, block)
    }

    fn count(prog: &MachineProgram, pred: impl Fn(&OpQuery) -> bool) -> usize {
        prog.blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .filter(|o| pred(&o.query))
            .count()
    }

    /// Sets every arithmetic node (including the scalar muls feeding the
    /// add group's second operand) to one format, so all lane scaling
    /// amounts match.
    fn uniformize(spec: &mut FixedPointSpec, dfg: &Dfg, fmt: QFormat) {
        for (id, node) in dfg.iter() {
            if matches!(node.kind, NodeKind::Bin(_)) {
                let key = crate::nodes::node_key(dfg, id).unwrap();
                spec.set_format(key, fmt);
            }
        }
    }

    #[test]
    fn uniform_lane_amounts_vectorize_the_scaling() {
        let (k, mut spec, dfg, groups, block) = setup();
        uniformize(&mut spec, &dfg, QFormat::new(2, 14));
        let target = xentium();
        let prog = lower_fixed(&k, &spec, &target, &[(block, dfg, groups)]);
        assert_eq!(
            count(&prog, |q| matches!(q, OpQuery::Extract)),
            2,
            "only the final scalar reduction unpacks the add pair"
        );
    }

    #[test]
    fn mismatched_lane_amounts_pay_unpack_shift_repack() {
        let (k, mut spec, dfg, groups, block) = setup();
        // Uniform everywhere except the two grouped mul lanes: their
        // outputs now need different right shifts to reach the adds.
        uniformize(&mut spec, &dfg, QFormat::new(2, 14));
        let k0 = crate::nodes::node_key(&dfg, groups[0].elems[0]).unwrap();
        let k1 = crate::nodes::node_key(&dfg, groups[0].elems[1]).unwrap();
        spec.set_format(k0, QFormat::new(2, 20));
        spec.set_format(k1, QFormat::new(2, 17));
        let target = xentium();
        let uniform = {
            let (k2, mut spec2, dfg2, groups2, block2) = setup();
            uniformize(&mut spec2, &dfg2, QFormat::new(2, 14));
            let p = lower_fixed(&k2, &spec2, &target, &[(block2, dfg2, groups2)]);
            count(&p, |q| matches!(q, OpQuery::Extract))
        };
        let prog = lower_fixed(&k, &spec, &target, &[(block, dfg, groups)]);
        let mismatched = count(&prog, |q| matches!(q, OpQuery::Extract));
        assert!(
            mismatched >= uniform + 2,
            "mismatched lane scalings must unpack each lane ({mismatched} vs {uniform})"
        );
        assert!(count(&prog, |q| matches!(q, OpQuery::Pack(_))) >= 1);
    }
}
