//! Accuracy-aware SLP extraction policy (fig. 1c of the paper).
//!
//! Implements `SETMAXWL` and the three accuracy-awareness points injected
//! into the structural selection loop of `slpwlo-slp`:
//!
//! * **candidate validation** (lines 4–12): a candidate whose selection —
//!   with everything else untouched — violates the accuracy constraint can
//!   never be realised and is eliminated up-front;
//! * **accuracy conflicts** (lines 13–25): two individually valid
//!   candidates whose *joint* selection violates the constraint cannot
//!   coexist;
//! * **selection** (lines 26–35): `SETMAXWL` permanently shrinks the
//!   selected group's word lengths per equation (1); should the cumulative
//!   effect of a selection break the constraint after all (the paper's
//!   pairwise conflicts cannot rule this out), the selection is vetoed and
//!   rolled back.

use crate::nodes::{node_key, value_format, value_wl};
use slpwlo_accuracy::AccuracyEvaluator;
use slpwlo_fixedpoint::{FixedPointSpec, SpecKey};
use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use slpwlo_slp::{resolved_operands, CandidateView, SelectHooks, SimdGroup};
use slpwlo_targets::SchedKind;

/// Selection hooks enforcing the accuracy constraint.
pub struct AccuracyHooks<'a> {
    dfg: &'a Dfg,
    spec: &'a mut FixedPointSpec,
    eval: &'a dyn AccuracyEvaluator,
    /// Accuracy constraint in dB (maximum tolerable output noise power).
    constraint_db: f64,
    /// Scheduler the flow prices blocks under (relayed to the benefit
    /// model, which relaxes its latency hedge when iterations overlap).
    sched: SchedKind,
    /// Whole-spec snapshot for the exact selector's checkpoint/restore
    /// protocol. `FixedPointSpec::commit` truncates the undo journal, so
    /// a committed greedy probe cannot be unwound through the journal —
    /// a clone of the spec is the only sound checkpoint.
    saved: Option<FixedPointSpec>,
}

impl<'a> AccuracyHooks<'a> {
    /// Creates the hooks over the working specification and synchronizes
    /// the evaluator's incremental caches with it.
    pub fn new(
        dfg: &'a Dfg,
        spec: &'a mut FixedPointSpec,
        eval: &'a dyn AccuracyEvaluator,
        constraint_db: f64,
    ) -> Self {
        eval.begin(spec);
        AccuracyHooks {
            dfg,
            spec,
            eval,
            constraint_db,
            sched: SchedKind::List,
            saved: None,
        }
    }

    /// Declares which scheduler the flow prices blocks under.
    pub fn with_sched(mut self, sched: SchedKind) -> Self {
        self.sched = sched;
        self
    }

    /// One `SETMAXWL` trial: evaluates the spec with the writes since
    /// `mark` open, via the evaluator's incremental trial path.
    fn trial_meets(&self, mark: usize) -> bool {
        self.eval.trial_meets(self.spec, mark, self.constraint_db)
    }
}

impl SelectHooks for AccuracyHooks<'_> {
    fn validate(&mut self, view: &CandidateView) -> bool {
        let mark = self.spec.mark();
        set_max_wl(self.spec, self.dfg, &view.group, view.elem_wl);
        let ok = self.trial_meets(mark);
        self.spec.rollback(mark);
        self.eval.rollback_trial();
        ok
    }

    fn accuracy_conflict(&mut self, a: &CandidateView, b: &CandidateView) -> bool {
        let mark = self.spec.mark();
        set_max_wl(self.spec, self.dfg, &a.group, a.elem_wl);
        set_max_wl(self.spec, self.dfg, &b.group, b.elem_wl);
        let ok = self.trial_meets(mark);
        self.spec.rollback(mark);
        self.eval.rollback_trial();
        !ok
    }

    fn on_select(&mut self, view: &CandidateView) -> bool {
        let mark = self.spec.mark();
        set_max_wl(self.spec, self.dfg, &view.group, view.elem_wl);
        if self.trial_meets(mark) {
            self.spec.commit(mark);
            self.eval.commit_trial();
            true
        } else {
            self.spec.rollback(mark);
            self.eval.rollback_trial();
            false
        }
    }

    /// The evolving spec is the word-length oracle of the WLO↔SLP loop:
    /// cycle-priced benefit estimation sees every `SETMAXWL` shrink, so
    /// live candidates are re-priced as selections commit.
    fn current_wl(&self, node: NodeId) -> Option<i32> {
        Some(value_wl(self.spec, self.dfg, node))
    }

    /// Current fractional word lengths let the cycle-priced model see
    /// per-lane scaling amounts (and price fig. 2 mismatches) instead of
    /// assuming uniform scalings.
    fn current_fwl(&self, node: NodeId) -> Option<i32> {
        Some(value_format(self.spec, self.dfg, node).fwl)
    }

    /// The joint flow runs fig. 1b scaling equalization after
    /// extraction, so reachable mismatches will be repaired.
    fn equalization_follows(&self) -> bool {
        true
    }

    fn sched_kind(&self) -> SchedKind {
        self.sched
    }

    /// Snapshot the working spec so the exact selector can probe a whole
    /// greedy round — `on_select` commits included — speculatively.
    fn checkpoint(&mut self) {
        self.saved = Some(self.spec.clone());
    }

    /// Restore the last snapshot and re-synchronize the evaluator's
    /// incremental caches with the restored spec (the same contract as
    /// construction).
    fn restore(&mut self) {
        if let Some(saved) = self.saved.take() {
            *self.spec = saved;
            self.eval.begin(self.spec);
        }
    }
}

/// `SETMAXWL(c, SPEC)`: sets every element of the group to the maximum
/// word length `m` the target grants the group (equation (1)), and caps
/// the *data delivered to the group's lanes* at `m` as well — a SIMD
/// instruction over `m`-bit sub-words consumes `m`-bit superwords, so the
/// operand producers (arrays, coefficient tables, feeding operations)
/// must narrow too. For truncation chains this is equivalent to
/// narrowing at pack time, applied conservatively to all consumers.
pub fn set_max_wl(spec: &mut FixedPointSpec, dfg: &Dfg, group: &SimdGroup, m: i32) {
    for &e in &group.elems {
        let node = dfg.node(e);
        if let Some(key) = node_key(dfg, e) {
            cap(spec, key, m);
        }
        match &node.kind {
            NodeKind::Bin(_) | NodeKind::Un(_) | NodeKind::StoreArray(..) => {
                for op in resolved_operands(dfg, e) {
                    cap_node(spec, dfg, op, m);
                }
            }
            _ => {}
        }
    }
}

fn cap_node(spec: &mut FixedPointSpec, dfg: &Dfg, n: NodeId, m: i32) {
    if let Some(key) = node_key(dfg, n) {
        cap(spec, key, m);
    }
}

fn cap(spec: &mut FixedPointSpec, key: SpecKey, m: i32) {
    if spec.wl(key) > m {
        spec.set_wl(key, m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_accuracy::AnalyticalEvaluator;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_ir::types::ArrayId;
    use slpwlo_ir::Kernel;
    use slpwlo_slp::{extract_rounds, mem_status};
    use slpwlo_targets::xentium;

    const SRC: &str = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;

    fn setup() -> (Kernel, Dfg, FixedPointSpec, AnalyticalEvaluator) {
        let k = parse_kernel(SRC).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, 32);
        let eval = AnalyticalEvaluator::with_defaults(&k);
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_stmts(&k, &blocks[0].stmts);
        (k, dfg, spec, eval)
    }

    #[test]
    fn set_max_wl_shrinks_group_and_feeding_data() {
        let (_, dfg, mut spec, _) = setup();
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(slpwlo_ir::BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let g = SimdGroup {
            elems: vec![muls[0], muls[1]],
        };
        set_max_wl(&mut spec, &dfg, &g, 16);
        // The muls themselves.
        for &m in &g.elems {
            let key = node_key(&dfg, m).unwrap();
            assert_eq!(spec.wl(key), 16);
        }
        // The coefficient table and delay line feeding them.
        assert_eq!(spec.wl(SpecKey::Array(ArrayId(0))), 16);
    }

    #[test]
    fn loose_constraint_allows_groups_tight_constraint_blocks_them() {
        let (_, dfg, mut spec, eval) = setup();
        let target = xentium();
        // Loose constraint: everything packs.
        let mut hooks = AccuracyHooks::new(&dfg, &mut spec, &eval, -40.0);
        let groups = extract_rounds(&dfg, &target, &mut hooks);
        assert!(!groups.is_empty(), "-40 dB must allow 16-bit SIMD groups");
        assert!(
            eval.meets(&spec, -40.0),
            "constraint must hold after extraction"
        );

        // Impossibly tight constraint: nothing packs (16-bit data cannot
        // reach -200 dB).
        let (_, dfg2, mut spec2, eval2) = setup();
        let before = eval2.noise_db(&spec2);
        let mut hooks2 = AccuracyHooks::new(&dfg2, &mut spec2, &eval2, -200.0);
        let groups2 = extract_rounds(&dfg2, &target, &mut hooks2);
        assert!(groups2.is_empty(), "-200 dB must block all 16-bit grouping");
        // The spec is untouched (all rollbacks).
        assert_eq!(eval2.noise_db(&spec2), before);
    }

    #[test]
    fn extraction_prefers_contiguous_load_groups() {
        let (_, dfg, mut spec, eval) = setup();
        let target = xentium();
        let mut hooks = AccuracyHooks::new(&dfg, &mut spec, &eval, -40.0);
        let groups = extract_rounds(&dfg, &target, &mut hooks);
        for g in &groups {
            if matches!(
                g.kind(&dfg),
                NodeKind::LoadArray(..) | NodeKind::LoadParam(..)
            ) {
                assert_ne!(
                    mem_status(&dfg, g),
                    slpwlo_slp::MemStatus::Gather,
                    "benefit model must avoid gathered load groups here"
                );
            }
        }
    }

    #[test]
    fn spec_meets_constraint_after_any_extraction() {
        for db in [-20.0, -45.0, -70.0, -90.0] {
            let (_, dfg, mut spec, eval) = setup();
            let mut hooks = AccuracyHooks::new(&dfg, &mut spec, &eval, db);
            let _ = extract_rounds(&dfg, &xentium(), &mut hooks);
            assert!(
                eval.meets(&spec, db),
                "constraint {db} dB violated: got {}",
                eval.noise_db(&spec)
            );
        }
    }
}
