//! Block scheduling: resource-constrained list scheduling and iterative
//! modulo scheduling (software pipelining).
//!
//! Two schedulers share one [`Schedule`] artifact, selected by
//! [`SchedKind`]:
//!
//! * [`SchedKind::List`] — sequential issue: each loop iteration runs to
//!   completion before the next starts. This is the historical model and
//!   stays bit-identical to what it always produced.
//! * [`SchedKind::Modulo`] — software pipelining for in-loop blocks: a
//!   branch-and-bound search places one iteration's ops so that copies
//!   started every `ii` cycles (the initiation interval) respect both the
//!   II-shifted dependences (including loop-carried variable and memory
//!   dependences) and the per-cycle unit/issue budgets folded modulo
//!   `ii`. The search starts at the `max(ResMII, RecMII)` lower bound and
//!   walks candidate IIs upward; a trial budget caps the search **per
//!   candidate II**, and any failure — every II abandoned or infeasible,
//!   no profitable II — falls back to the list schedule, so pricing is
//!   always defined.
//!
//! A pipelined block's trip-weighted cost is
//! `prologue + ii·(trip−1) + epilogue` (fill, steady state, drain) plus
//! the loop-control overhead charged **once**: in the steady state the
//! loop-control ops share issue slots with the overlapped iterations (the
//! modulo reservation table pre-reserves them), instead of serializing
//! after every iteration as they do under sequential issue.

use crate::lower::{Loc, MachineBlock, MachineProgram, MopKind, Operand};
use slpwlo_targets::{CycleCache, OpClass, OpCost, SchedKind, TargetModel};

/// The pipelined overlay of a modulo schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuloSchedule {
    /// Initiation interval: a new iteration starts every `ii` cycles.
    pub ii: u64,
    /// Fill cycles before the first iteration completes
    /// (`makespan − ii`, saturating).
    pub prologue: u64,
    /// Drain cycles of the last iteration (`makespan − prologue`), so
    /// `prologue + epilogue == makespan` exactly — an audited identity.
    pub epilogue: u64,
}

/// Schedule of one block: per-op issue cycles and the block makespan.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Cycle at which each operation issues (first slot for macro-ops).
    pub start: Vec<u64>,
    /// Cycle at which each operation's result is available.
    pub finish: Vec<u64>,
    /// Total cycles for one execution of the block (one iteration's
    /// placement under a modulo schedule).
    pub makespan: u64,
    /// Issue log: one `(op index, cycle, slots)` entry per cycle in
    /// which an operation occupies unit slots. Serializing operations
    /// log their whole blocked window at full issue width. This is the
    /// raw material an independent checker (`slpwlo-verify`) audits
    /// against the target's per-cycle budgets (folded modulo `ii` for
    /// pipelined schedules).
    pub issues: Vec<(usize, u64, u32)>,
    /// Pipelined overlay: `Some` when the block was modulo-scheduled,
    /// `None` for a flat list schedule (including every modulo
    /// fallback).
    pub modulo: Option<ModuloSchedule>,
}

/// Resource usage tracker with growable per-cycle counters.
struct Resources<'t> {
    target: &'t TargetModel,
    issue: Vec<u32>,
    alu: Vec<u32>,
    mul: Vec<u32>,
    mem: Vec<u32>,
    shift: Vec<u32>,
    fpu: Vec<u32>,
    /// Cycles fully blocked by a serializing operation.
    blocked: Vec<bool>,
}

impl<'t> Resources<'t> {
    fn new(target: &'t TargetModel) -> Self {
        Resources {
            target,
            issue: Vec::new(),
            alu: Vec::new(),
            mul: Vec::new(),
            mem: Vec::new(),
            shift: Vec::new(),
            fpu: Vec::new(),
            blocked: Vec::new(),
        }
    }

    fn grow(&mut self, cycle: usize) {
        let need = cycle + 1;
        if self.issue.len() < need {
            self.issue.resize(need, 0);
            self.alu.resize(need, 0);
            self.mul.resize(need, 0);
            self.mem.resize(need, 0);
            self.shift.resize(need, 0);
            self.fpu.resize(need, 0);
            self.blocked.resize(need, false);
        }
    }

    fn class_used(&mut self, class: OpClass, cycle: usize) -> &mut u32 {
        match class {
            OpClass::Alu => &mut self.alu[cycle],
            OpClass::Mul => &mut self.mul[cycle],
            OpClass::Mem => &mut self.mem[cycle],
            OpClass::Shift => &mut self.shift[cycle],
            OpClass::Fpu => &mut self.fpu[cycle],
        }
    }

    /// Free issue+unit slots of `class` at `cycle`.
    fn free_slots(&mut self, class: OpClass, cycle: usize) -> u32 {
        self.grow(cycle);
        if self.blocked[cycle] {
            return 0;
        }
        let cap = self.target.units.of(class);
        let width = self.target.issue_width;
        let used_class = *self.class_used(class, cycle);
        let used_issue = self.issue[cycle];
        (cap.saturating_sub(used_class)).min(width.saturating_sub(used_issue))
    }

    fn take(&mut self, class: OpClass, cycle: usize, n: u32) {
        self.grow(cycle);
        *self.class_used(class, cycle) += n;
        self.issue[cycle] += n;
        debug_assert!(self.issue[cycle] <= self.target.issue_width);
    }

    /// Finds the earliest window of `len` completely idle cycles starting
    /// at or after `from`, and blocks it (soft-float call).
    fn take_serialized(&mut self, from: u64, len: u64) -> u64 {
        let mut t = from;
        'outer: loop {
            let mut c = t;
            while c < t + len {
                self.grow(c as usize);
                if self.issue[c as usize] > 0 || self.blocked[c as usize] {
                    t = c + 1;
                    continue 'outer;
                }
                c += 1;
            }
            for c in t..t + len {
                self.blocked[c as usize] = true;
                self.issue[c as usize] = self.target.issue_width;
            }
            return t;
        }
    }
}

/// List-schedules one block onto the target.
pub fn schedule_block(target: &TargetModel, block: &MachineBlock) -> Schedule {
    schedule_block_cached(&CycleCache::new(target), block, SchedKind::List)
}

/// Schedules one block under an explicit [`SchedKind`].
pub fn schedule_block_with(
    target: &TargetModel,
    block: &MachineBlock,
    kind: SchedKind,
) -> Schedule {
    schedule_block_cached(&CycleCache::new(target), block, kind)
}

/// Schedules one block, pricing ops through a shared [`CycleCache`] and
/// dispatching on `kind`.
///
/// A block of `n` machine ops asks for at most a handful of distinct
/// `(op kind, word length)` costs; callers that schedule many blocks (or
/// the same program under many group subsets, as group pruning does)
/// should thread one cache through every call so each distinct query is
/// folded once.
///
/// Under [`SchedKind::Modulo`], a pipelined schedule (with
/// [`Schedule::modulo`] set) is returned only when the block is
/// pipelinable *and* the search finds an II that strictly beats the list
/// schedule's trip-weighted cost within the trial budget; every other
/// outcome returns the list schedule unchanged.
pub fn schedule_block_cached(
    costs: &CycleCache<'_>,
    block: &MachineBlock,
    kind: SchedKind,
) -> Schedule {
    match kind {
        SchedKind::List => list_schedule_cached(costs, block),
        SchedKind::Modulo { budget } => match modulo_attempt_cached(costs, block, budget) {
            ModuloAttempt::Pipelined(s) => s,
            _ => list_schedule_cached(costs, block),
        },
    }
}

/// The resource-constrained list scheduler (sequential issue).
fn list_schedule_cached(costs: &CycleCache<'_>, block: &MachineBlock) -> Schedule {
    let target = costs.target();
    let n = block.ops.len();
    let mut start = vec![0u64; n];
    let mut finish = vec![0u64; n];
    let mut res = Resources::new(target);
    let mut makespan = 0u64;
    let mut issues = Vec::new();

    for (i, op) in block.ops.iter().enumerate() {
        let est = op.preds.iter().map(|&p| finish[p]).max().unwrap_or(0);
        let cost = costs.cost(op.query);
        if cost.serialize {
            let t = res.take_serialized(est, cost.latency as u64);
            start[i] = t;
            finish[i] = t + cost.latency as u64;
            for c in t..finish[i] {
                issues.push((i, c, target.issue_width));
            }
        } else {
            // Place `slots` unit issues greedily from the earliest cycle
            // with capacity.
            let mut remaining = cost.slots;
            let mut t = est;
            // Find first cycle with any capacity.
            while res.free_slots(cost.class, t as usize) == 0 {
                t += 1;
            }
            start[i] = t;
            let mut cur = t;
            while remaining > 0 {
                let free = res.free_slots(cost.class, cur as usize);
                if free == 0 {
                    cur += 1;
                    continue;
                }
                let take = free.min(remaining);
                res.take(cost.class, cur as usize, take);
                issues.push((i, cur, take));
                remaining -= take;
                if remaining > 0 {
                    cur += 1;
                }
            }
            finish[i] = cur + cost.latency as u64;
        }
        makespan = makespan.max(finish[i]);
    }
    Schedule {
        start,
        finish,
        makespan,
        issues,
        modulo: None,
    }
}

/// Per-iteration loop-control overhead of the target, in cycles.
fn loop_overhead(target: &TargetModel) -> u64 {
    let w = target.issue_width.max(1);
    (target.loop_overhead_ops.div_ceil(w) as u64) + 1
}

/// Cycles for one execution of a block, including loop control overhead
/// for in-loop blocks.
pub fn block_cycles(target: &TargetModel, block: &MachineBlock) -> u64 {
    block_cycles_cached(&CycleCache::new(target), block, SchedKind::List)
}

/// [`block_cycles`] pricing ops through a shared [`CycleCache`],
/// dispatching on `kind`.
///
/// Under a pipelined modulo schedule this is the **steady-state** cost of
/// one iteration — the initiation interval — not a trip-multipliable
/// quantity (fill/drain and the once-per-loop control overhead live
/// outside it); trip-weighted totals must use
/// [`block_activation_cycles_cached`].
pub fn block_cycles_cached(costs: &CycleCache<'_>, block: &MachineBlock, kind: SchedKind) -> u64 {
    let sched = schedule_block_cached(costs, block, kind);
    match sched.modulo {
        Some(m) => m.ii,
        None => {
            let overhead = if block.in_loop {
                loop_overhead(costs.target())
            } else {
                0
            };
            sched.makespan + overhead
        }
    }
}

/// Trip-weighted cycles one kernel activation spends in `block`.
///
/// List-scheduled blocks pay `(makespan + overhead) · trip`. Pipelined
/// blocks pay `overhead + prologue + ii·(trip−1) + epilogue`: iterations
/// overlap at the initiation interval, and the loop-control overhead is
/// charged once (its ops are folded into the steady state by the modulo
/// reservation table) instead of per iteration.
pub fn block_activation_cycles_cached(
    costs: &CycleCache<'_>,
    block: &MachineBlock,
    kind: SchedKind,
) -> u64 {
    let sched = schedule_block_cached(costs, block, kind);
    match sched.modulo {
        Some(m) => {
            loop_overhead(costs.target()) + m.prologue + m.ii * (block.trip - 1) + m.epilogue
        }
        None => {
            let overhead = if block.in_loop {
                loop_overhead(costs.target())
            } else {
                0
            };
            (sched.makespan + overhead) * block.trip
        }
    }
}

/// Cycles for one kernel activation (all blocks, trip-weighted).
pub fn cycles_per_activation(target: &TargetModel, program: &MachineProgram) -> u64 {
    cycles_per_activation_cached(&CycleCache::new(target), program, SchedKind::List)
}

/// [`cycles_per_activation`] pricing ops through a shared [`CycleCache`],
/// dispatching on `kind`.
pub fn cycles_per_activation_cached(
    costs: &CycleCache<'_>,
    program: &MachineProgram,
    kind: SchedKind,
) -> u64 {
    program
        .blocks
        .iter()
        .map(|b| block_activation_cycles_cached(costs, b, kind))
        .sum()
}

/// Total cycles for a workload of `activations` kernel activations.
pub fn total_cycles(target: &TargetModel, program: &MachineProgram, activations: u64) -> u64 {
    total_cycles_cached(
        &CycleCache::new(target),
        program,
        activations,
        SchedKind::List,
    )
}

/// [`total_cycles`] pricing ops through a shared [`CycleCache`],
/// dispatching on `kind` — callers reporting several workloads (or both
/// scheduler kinds) over one target should share a cache instead of
/// re-folding the same op costs per call.
pub fn total_cycles_cached(
    costs: &CycleCache<'_>,
    program: &MachineProgram,
    activations: u64,
    kind: SchedKind,
) -> u64 {
    cycles_per_activation_cached(costs, program, kind) * activations
}

// --- loop-carried dependences -------------------------------------------

/// Value operands of an operation (the scheduler's own walk — the
/// verifier deliberately re-derives this independently).
fn value_operands(kind: &MopKind) -> Vec<&Operand> {
    match kind {
        MopKind::ReadInput { .. }
        | MopKind::Load { .. }
        | MopKind::VLoad { .. }
        | MopKind::Nop
        | MopKind::Opaque => Vec::new(),
        MopKind::Store { src, .. }
        | MopKind::ShiftIn { src, .. }
        | MopKind::Output { src, .. }
        | MopKind::Un { src, .. }
        | MopKind::Requant { src, .. }
        | MopKind::Copy { src }
        | MopKind::VStore { src, .. }
        | MopKind::VUn { src, .. }
        | MopKind::VRequant { src, .. }
        | MopKind::Splat { src, .. }
        | MopKind::Extract { src, .. } => vec![src],
        MopKind::Bin { a, b, .. } | MopKind::VBin { a, b, .. } => vec![a, b],
        MopKind::Pack { lanes } => lanes.iter().collect(),
    }
}

/// Arrays an operation touches, as `(array index, writes)`. `ShiftIn`
/// rewrites the whole array; loads/stores touch one element but are
/// treated whole-array here (the carried-dependence analysis does not
/// reason about indices).
fn touched_arrays(kind: &MopKind) -> Vec<(usize, bool)> {
    let of_loc = |loc: &Loc, writes: bool| match loc {
        Loc::Array(a, _) => Some((a.index(), writes)),
        Loc::Param(..) => None,
    };
    match kind {
        MopKind::Load { loc } => of_loc(loc, false).into_iter().collect(),
        MopKind::Store { loc, .. } => of_loc(loc, true).into_iter().collect(),
        MopKind::VLoad { locs } => locs.iter().filter_map(|l| of_loc(l, false)).collect(),
        MopKind::VStore { locs, .. } => locs.iter().filter_map(|l| of_loc(l, true)).collect(),
        MopKind::ShiftIn { array, .. } => vec![(array.index(), true)],
        _ => Vec::new(),
    }
}

/// Distance-1 (loop-carried) dependence edges `(from, to)` of a block:
/// iteration `k`'s `from` must finish before iteration `k+1`'s `to`
/// issues (`start[to] + ii ≥ finish[from]` under a modulo schedule).
///
/// Two conservative sources:
///
/// * **variables** — `var_defs` commits op results to variables at end
///   of iteration; every op reading that variable next iteration
///   depends on the defining op;
/// * **memory** — for each array *written* in the block, every ordered
///   pair of a writer and any toucher (reader or writer, including the
///   writer against its own next-iteration copy) conflicts; no index
///   analysis is attempted.
pub fn loop_carried_deps(block: &MachineBlock) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Variable commits: def op -> next-iteration readers.
    for (v, def) in &block.var_defs {
        let Operand::Op(j) = def else { continue };
        for (i, op) in block.ops.iter().enumerate() {
            let reads = value_operands(&op.kind)
                .into_iter()
                .any(|o| matches!(o, Operand::Var(r) if r == v));
            if reads {
                edges.push((*j, i));
            }
        }
    }
    // Memory conflicts on arrays written in the block.
    let touched: Vec<Vec<(usize, bool)>> = block
        .ops
        .iter()
        .map(|op| touched_arrays(&op.kind))
        .collect();
    let written: std::collections::BTreeSet<usize> = touched
        .iter()
        .flatten()
        .filter(|(_, w)| *w)
        .map(|(a, _)| *a)
        .collect();
    for &a in &written {
        let touchers: Vec<usize> = (0..block.ops.len())
            .filter(|&i| touched[i].iter().any(|&(t, _)| t == a))
            .collect();
        for &w in touchers
            .iter()
            .filter(|&&i| touched[i].iter().any(|&(t, wr)| t == a && wr))
        {
            for &t in &touchers {
                edges.push((w, t));
                edges.push((t, w));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

// --- modulo scheduling ---------------------------------------------------

/// Outcome of one modulo-scheduling attempt (see
/// [`modulo_attempt_cached`]).
#[derive(Debug, Clone)]
pub enum ModuloAttempt {
    /// The block cannot be pipelined: not an in-loop block, a single
    /// trip, empty, or it contains a machine-serializing operation.
    Ineligible,
    /// The search completed but no II strictly beats the list
    /// schedule's trip-weighted cost; the list schedule stands.
    NotProfitable,
    /// At least one candidate II had to be abandoned with its trial
    /// budget spent, and no other II yielded a placement; the list
    /// schedule stands.
    BudgetExhausted,
    /// A pipelined schedule at the smallest II the budget could decide,
    /// strictly beating the list schedule.
    Pipelined(Schedule),
}

/// Whether `block` is a candidate for software pipelining at all.
fn pipelinable(costs: &CycleCache<'_>, block: &MachineBlock) -> bool {
    block.in_loop
        && block.trip > 1
        && !block.ops.is_empty()
        && !block.ops.iter().any(|op| costs.cost(op.query).serialize)
}

/// The `(ResMII, RecMII)` lower bounds of a pipelinable block, `None`
/// when the block is not pipelinable.
///
/// * **ResMII** — per functional-unit class, the slots the iteration
///   needs divided by the class's per-cycle capacity; and over all
///   classes, the total slots plus the loop-control ops divided by the
///   issue width.
/// * **RecMII** — the smallest II at which no dependence cycle (through
///   loop-carried edges) has positive weight under edge weights
///   `latency − II·distance`, found by binary search with Bellman–Ford
///   positive-cycle detection. Monotone because intra-iteration edges
///   point strictly forward, so every cycle crosses at least one
///   distance-1 edge.
pub fn modulo_bounds_cached(costs: &CycleCache<'_>, block: &MachineBlock) -> Option<(u64, u64)> {
    if !pipelinable(costs, block) {
        return None;
    }
    let op_costs: Vec<OpCost> = block.ops.iter().map(|op| costs.cost(op.query)).collect();
    Some((
        res_mii(costs.target(), &op_costs),
        rec_mii(block, &op_costs),
    ))
}

fn res_mii(target: &TargetModel, op_costs: &[OpCost]) -> u64 {
    let mut mii = 1u64;
    let mut total = 0u64;
    for class in [
        OpClass::Alu,
        OpClass::Mul,
        OpClass::Mem,
        OpClass::Shift,
        OpClass::Fpu,
    ] {
        let slots: u64 = op_costs
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.slots as u64)
            .sum();
        total += slots;
        if slots > 0 {
            let cap = target.units.of(class).max(1) as u64;
            mii = mii.max(slots.div_ceil(cap));
        }
    }
    let width = target.issue_width.max(1) as u64;
    mii.max((total + target.loop_overhead_ops as u64).div_ceil(width))
}

fn rec_mii(block: &MachineBlock, op_costs: &[OpCost]) -> u64 {
    let carried = loop_carried_deps(block);
    if carried.is_empty() {
        return 1;
    }
    // Edges as (from, to, latency, distance).
    let mut edges: Vec<(usize, usize, u64, u64)> = Vec::new();
    for (i, op) in block.ops.iter().enumerate() {
        for &p in &op.preds {
            edges.push((p, i, op_costs[p].latency as u64, 0));
        }
    }
    for &(from, to) in &carried {
        edges.push((from, to, op_costs[from].latency as u64, 1));
    }
    let n = block.ops.len();
    let has_positive_cycle = |ii: u64| -> bool {
        // Bellman–Ford longest-path relaxation: if distances still
        // change after `n` full rounds, a positive-weight cycle exists.
        let mut d = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for &(u, v, lat, dist) in &edges {
                let w = lat as i64 - (ii as i64) * (dist as i64);
                if d[u] + w > d[v] {
                    d[v] = d[u] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        true
    };
    let mut lo = 1u64;
    let mut hi = op_costs
        .iter()
        .map(|c| c.latency as u64)
        .sum::<u64>()
        .max(1);
    // `hi` is always feasible: a cycle's latency sum is at most the
    // whole block's, and every cycle crosses a distance-1 edge.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Per-residue reservation table of one candidate II.
struct ModuloTable<'t> {
    target: &'t TargetModel,
    ii: u64,
    issue: Vec<u32>,
    alu: Vec<u32>,
    mul: Vec<u32>,
    mem: Vec<u32>,
    shift: Vec<u32>,
    fpu: Vec<u32>,
}

impl<'t> ModuloTable<'t> {
    fn new(target: &'t TargetModel, ii: u64) -> Self {
        let n = ii as usize;
        ModuloTable {
            target,
            ii,
            issue: vec![0; n],
            alu: vec![0; n],
            mul: vec![0; n],
            mem: vec![0; n],
            shift: vec![0; n],
            fpu: vec![0; n],
        }
    }

    fn class_used(&mut self, class: OpClass, r: usize) -> &mut u32 {
        match class {
            OpClass::Alu => &mut self.alu[r],
            OpClass::Mul => &mut self.mul[r],
            OpClass::Mem => &mut self.mem[r],
            OpClass::Shift => &mut self.shift[r],
            OpClass::Fpu => &mut self.fpu[r],
        }
    }

    /// Free issue+unit slots of `class` at absolute `cycle`, with usage
    /// folded modulo the II.
    fn free_slots(&mut self, class: OpClass, cycle: u64) -> u32 {
        let r = (cycle % self.ii) as usize;
        let cap = self.target.units.of(class);
        let width = self.target.issue_width;
        let used_class = *self.class_used(class, r);
        let used_issue = self.issue[r];
        (cap.saturating_sub(used_class)).min(width.saturating_sub(used_issue))
    }

    fn take(&mut self, class: OpClass, cycle: u64, n: u32) {
        let r = (cycle % self.ii) as usize;
        *self.class_used(class, r) += n;
        self.issue[r] += n;
        debug_assert!(self.issue[r] <= self.target.issue_width);
    }

    fn untake(&mut self, class: OpClass, cycle: u64, n: u32) {
        let r = (cycle % self.ii) as usize;
        *self.class_used(class, r) -= n;
        self.issue[r] -= n;
    }

    /// Pre-reserves the loop-control ops as issue-only slots, spread over
    /// the least-used residues. Returns `false` when they cannot fit (the
    /// II is infeasible).
    fn reserve_overhead(&mut self) -> bool {
        for _ in 0..self.target.loop_overhead_ops {
            let r = (0..self.issue.len())
                .min_by_key(|&r| self.issue[r])
                .expect("II is at least 1");
            if self.issue[r] >= self.target.issue_width {
                return false;
            }
            self.issue[r] += 1;
        }
        true
    }
}

/// What ended a branch-and-bound descent.
enum Descent {
    Placed,
    Failed,
    OutOfBudget,
}

struct ModuloSearch<'a, 't> {
    ops: &'a [crate::lower::Mop],
    op_costs: &'a [OpCost],
    /// Distance-1 predecessors with `from < to` (lower-bound the EST).
    carried_in: Vec<Vec<usize>>,
    /// Distance-1 successors with `to ≤ from` (checked after placement).
    carried_back: Vec<Vec<usize>>,
    table: ModuloTable<'t>,
    start: Vec<u64>,
    finish: Vec<u64>,
    issues: Vec<(usize, u64, u32)>,
    budget: &'a mut u64,
}

impl ModuloSearch<'_, '_> {
    /// Places op `i` and recursively everything after it.
    fn place(&mut self, i: usize) -> Descent {
        if i == self.ops.len() {
            return Descent::Placed;
        }
        let ii = self.table.ii;
        let cost = self.op_costs[i];
        let est_pred = self.ops[i]
            .preds
            .iter()
            .map(|&p| self.finish[p])
            .max()
            .unwrap_or(0);
        let est_carried = self.carried_in[i]
            .iter()
            .map(|&j| self.finish[j].saturating_sub(ii))
            .max()
            .unwrap_or(0);
        let est = est_pred.max(est_carried);
        // Only `ii` start cycles are distinct modulo the II; requiring
        // the first slot to land at `t` itself keeps the windows
        // disjoint.
        for t in est..est + ii {
            if *self.budget == 0 {
                return Descent::OutOfBudget;
            }
            *self.budget -= 1;
            if self.table.free_slots(cost.class, t) == 0 {
                continue;
            }
            // Greedy slot spread from `t`, as in the list scheduler but
            // against the folded table.
            let placed_at = self.issues.len();
            let mut remaining = cost.slots;
            let mut cur = t;
            let mut zero_run = 0u64;
            let mut ok = true;
            while remaining > 0 {
                let free = self.table.free_slots(cost.class, cur);
                if free == 0 {
                    zero_run += 1;
                    if zero_run >= ii {
                        // Every residue is saturated for this class.
                        ok = false;
                        break;
                    }
                    cur += 1;
                    continue;
                }
                zero_run = 0;
                let take = free.min(remaining);
                self.table.take(cost.class, cur, take);
                self.issues.push((i, cur, take));
                remaining -= take;
                if remaining > 0 {
                    cur += 1;
                }
            }
            if ok {
                self.start[i] = t;
                self.finish[i] = cur + cost.latency as u64;
                // Loop-carried edges back to already-placed ops: the
                // next iteration's copy of `k` must not need this
                // result before it exists.
                let legal = self.carried_back[i]
                    .iter()
                    .all(|&k| self.finish[i] <= self.start[k] + ii);
                if legal {
                    match self.place(i + 1) {
                        Descent::Placed => return Descent::Placed,
                        Descent::OutOfBudget => return Descent::OutOfBudget,
                        Descent::Failed => {}
                    }
                }
            }
            for &(op, cycle, n) in &self.issues[placed_at..] {
                debug_assert_eq!(op, i);
                self.table.untake(cost.class, cycle, n);
            }
            self.issues.truncate(placed_at);
        }
        Descent::Failed
    }
}

/// Attempts to modulo-schedule one block, pricing ops through a shared
/// [`CycleCache`].
///
/// Searches candidate IIs upward from `max(ResMII, RecMII)`, placing one
/// iteration's ops by branch and bound against a reservation table
/// folded modulo the II. The trial `budget` is **per candidate II**
/// (Rau's iterative-modulo-scheduling discipline): an II whose search
/// exhausts its budget is abandoned and the walk moves on — near the
/// resource bound the table is a perfect-packing instance whose
/// infeasibility proof can cost exponential trials, while a slightly
/// looser II often places in a handful. After an abandoned II the walk's
/// stride doubles, so undecidable regions cost at most a logarithmic
/// number of budget refills before the cap. Adopts the first placement
/// found (the smallest II the budget could *decide* — the exact minimum
/// whenever no II was abandoned), and only when its trip-weighted cost
/// strictly beats the list schedule's — ties and everything else keep
/// the list schedule, so the scheduler and the pricer can never disagree
/// about which schedule a block runs.
pub fn modulo_attempt_cached(
    costs: &CycleCache<'_>,
    block: &MachineBlock,
    budget: u32,
) -> ModuloAttempt {
    let target = costs.target();
    if !pipelinable(costs, block) {
        return ModuloAttempt::Ineligible;
    }
    let list = list_schedule_cached(costs, block);
    let overhead = loop_overhead(target);
    let list_total = (list.makespan + overhead) * block.trip;
    let op_costs: Vec<OpCost> = block.ops.iter().map(|op| costs.cost(op.query)).collect();
    let mii = res_mii(target, &op_costs).max(rec_mii(block, &op_costs));
    // An II at or past the list schedule's per-iteration cost cannot
    // win: the steady state alone would already match sequential issue.
    let ii_cap = list.makespan + overhead;
    let carried = loop_carried_deps(block);
    let n = block.ops.len();
    let mut carried_in: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut carried_back: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in &carried {
        if from < to {
            carried_in[to].push(from);
        } else {
            carried_back[from].push(to);
        }
    }
    let mut abandoned = false;
    let mut step = 1u64;
    let mut ii = mii;
    while ii < ii_cap {
        let mut table = ModuloTable::new(target, ii);
        if !table.reserve_overhead() {
            ii += step;
            continue;
        }
        let mut remaining = budget as u64;
        let mut search = ModuloSearch {
            ops: &block.ops,
            op_costs: &op_costs,
            carried_in: carried_in.clone(),
            carried_back: carried_back.clone(),
            table,
            start: vec![0; n],
            finish: vec![0; n],
            issues: Vec::new(),
            budget: &mut remaining,
        };
        match search.place(0) {
            Descent::OutOfBudget => {
                abandoned = true;
                ii += step;
                step *= 2;
            }
            Descent::Failed => {
                ii += step;
            }
            Descent::Placed => {
                let makespan = search.finish.iter().copied().max().unwrap_or(0);
                let prologue = makespan.saturating_sub(ii);
                let epilogue = makespan - prologue;
                let total = overhead + prologue + ii * (block.trip - 1) + epilogue;
                if total >= list_total {
                    return ModuloAttempt::NotProfitable;
                }
                return ModuloAttempt::Pipelined(Schedule {
                    start: search.start,
                    finish: search.finish,
                    makespan,
                    issues: search.issues,
                    modulo: Some(ModuloSchedule {
                        ii,
                        prologue,
                        epilogue,
                    }),
                });
            }
        }
    }
    if abandoned {
        ModuloAttempt::BudgetExhausted
    } else {
        ModuloAttempt::NotProfitable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::Mop;
    use slpwlo_targets::{st240, vex, xentium, OpQuery};

    fn block(ops: Vec<Mop>, in_loop: bool) -> MachineBlock {
        block_t(ops, 1, in_loop)
    }

    fn block_t(ops: Vec<Mop>, trip: u64, in_loop: bool) -> MachineBlock {
        MachineBlock {
            ops,
            trip,
            in_loop,
            loops: Vec::new(),
            var_defs: Vec::new(),
        }
    }

    fn op(query: OpQuery, preds: Vec<usize>) -> Mop {
        Mop::opaque(query, preds)
    }

    #[test]
    fn single_issue_serializes() {
        let target = vex(1);
        let ops: Vec<Mop> = (0..6).map(|_| op(OpQuery::Add(32), vec![])).collect();
        let s = schedule_block(&target, &block(ops, false));
        // Six independent adds on a 1-issue machine: one per cycle.
        assert_eq!(s.makespan, 6);
    }

    #[test]
    fn wide_issue_parallelizes() {
        let target = xentium(); // 4 ALUs
        let ops: Vec<Mop> = (0..8).map(|_| op(OpQuery::Add(32), vec![])).collect();
        let s = schedule_block(&target, &block(ops, false));
        // 8 adds over 4 ALUs: 2 cycles of issue + 1 latency left-over.
        assert!(s.makespan <= 3, "makespan {}", s.makespan);
    }

    #[test]
    fn memory_ports_limit_loads() {
        let target = xentium(); // 2 mem ports, load latency 2
        let ops: Vec<Mop> = (0..8).map(|_| op(OpQuery::Load(32), vec![])).collect();
        let s = schedule_block(&target, &block(ops, false));
        // 8 loads over 2 ports: last issues at cycle 3, finishes at 5.
        assert_eq!(s.makespan, 4 + target.load_latency as u64 - 1);
    }

    #[test]
    fn dependence_chain_bounds_makespan() {
        let target = xentium();
        let mut ops = vec![op(OpQuery::Add(32), vec![])];
        for i in 1..10 {
            ops.push(op(OpQuery::Add(32), vec![i - 1]));
        }
        let s = schedule_block(&target, &block(ops, false));
        assert_eq!(
            s.makespan, 10,
            "a 10-add chain takes 10 cycles regardless of width"
        );
    }

    #[test]
    fn wide_mul_occupies_multiplier_longer() {
        let target = xentium();
        let narrow: Vec<Mop> = (0..4).map(|_| op(OpQuery::Mul(16), vec![])).collect();
        let wide: Vec<Mop> = (0..4).map(|_| op(OpQuery::Mul(32), vec![])).collect();
        let sn = schedule_block(&target, &block(narrow, false));
        let sw = schedule_block(&target, &block(wide, false));
        assert!(
            sw.makespan > sn.makespan,
            "32-bit muls ({}c) must be slower than 16-bit ({}c)",
            sw.makespan,
            sn.makespan
        );
    }

    #[test]
    fn soft_float_blocks_the_machine() {
        let target = xentium();
        let ops = vec![
            op(OpQuery::FAdd, vec![]),
            op(OpQuery::Add(32), vec![]), // independent, but machine is blocked
        ];
        let s = schedule_block(&target, &block(ops, false));
        assert!(
            s.start[1] >= target.fadd_cycles as u64,
            "nothing issues during a soft-float call (start {})",
            s.start[1]
        );
    }

    #[test]
    fn hw_float_pipelines_on_st240() {
        let target = st240();
        let ops = vec![op(OpQuery::FAdd, vec![]), op(OpQuery::Add(32), vec![])];
        let s = schedule_block(&target, &block(ops, false));
        assert_eq!(s.start[1], 0, "hardware float does not serialize");
    }

    #[test]
    fn loop_overhead_added_per_iteration() {
        let target = vex(1);
        let ops = vec![op(OpQuery::Add(32), vec![])];
        let inside = block_cycles(&target, &block_t(ops.clone(), 4, true));
        let outside = block_cycles(&target, &block_t(ops, 1, false));
        assert!(inside > outside);
    }

    #[test]
    fn trips_multiply_cycles() {
        let target = xentium();
        let b1 = block_t(vec![op(OpQuery::Add(32), vec![])], 16, true);
        let prog = MachineProgram {
            name: "t".into(),
            blocks: vec![b1],
            storage: crate::lower::ProgramStorage::default(),
        };
        let per_act = cycles_per_activation(&target, &prog);
        assert_eq!(total_cycles(&target, &prog, 10), per_act * 10);
        let single = block_cycles(
            &target,
            &block_t(vec![op(OpQuery::Add(32), vec![])], 1, true),
        );
        assert_eq!(per_act, single * 16);
    }

    #[test]
    fn pack_macro_op_consumes_multiple_slots() {
        let target = vex(1); // 1 ALU per cycle
        let ops = vec![op(OpQuery::Pack(4), vec![])];
        let s = schedule_block(&target, &block(ops, false));
        // 4 insert slots on a single ALU: at least 4 cycles of occupancy.
        assert!(s.makespan >= 4, "makespan {}", s.makespan);
    }

    // --- modulo scheduling ------------------------------------------------

    #[test]
    fn modulo_reaches_res_mii_on_independent_loads() {
        // 8 independent loads over XENTIUM's 2 memory ports: ResMII 4,
        // no recurrence. The search must land exactly on II 4.
        let target = xentium();
        let costs = CycleCache::new(&target);
        let ops: Vec<Mop> = (0..8).map(|_| op(OpQuery::Load(32), vec![])).collect();
        let b = block_t(ops, 16, true);
        let (res, rec) = modulo_bounds_cached(&costs, &b).unwrap();
        assert_eq!((res, rec), (4, 1));
        let s = schedule_block_cached(&costs, &b, SchedKind::modulo());
        let m = s.modulo.expect("loads must pipeline");
        assert_eq!(m.ii, 4, "achieved II must match max(ResMII, RecMII)");
        assert_eq!(m.prologue + m.epilogue, s.makespan);
    }

    #[test]
    fn modulo_hides_loop_overhead_on_single_issue() {
        // On 1-issue VEX the loop-control overhead serializes every
        // iteration under list scheduling; the pipeline folds it into
        // the steady state and wins.
        let target = vex(1);
        let costs = CycleCache::new(&target);
        let ops: Vec<Mop> = (0..4).map(|_| op(OpQuery::Add(32), vec![])).collect();
        let b = block_t(ops, 8, true);
        let list = block_activation_cycles_cached(&costs, &b, SchedKind::List);
        let modulo = block_activation_cycles_cached(&costs, &b, SchedKind::modulo());
        assert!(
            modulo < list,
            "pipelining must beat sequential issue ({modulo} vs {list})"
        );
        let s = schedule_block_cached(&costs, &b, SchedKind::modulo());
        let m = s.modulo.unwrap();
        let (res, rec) = modulo_bounds_cached(&costs, &b).unwrap();
        assert_eq!(m.ii, res.max(rec));
    }

    #[test]
    fn recurrence_bounds_the_ii() {
        // A 4-add recurrence carried through a variable: RecMII 4.
        use crate::lower::MopKind;
        use slpwlo_fixedpoint::QFormat;
        use slpwlo_ir::types::VarId;
        let target = xentium();
        let costs = CycleCache::new(&target);
        let v = VarId(0);
        let mut ops = vec![Mop {
            query: OpQuery::Add(16),
            preds: vec![],
            kind: MopKind::Bin {
                op: slpwlo_ir::BinOp::Add,
                a: Operand::Var(v),
                b: Operand::Imm {
                    raw: 1,
                    fmt: QFormat::new(1, 14),
                },
                to: Some(QFormat::new(1, 14)),
            },
        }];
        for i in 1..4 {
            ops.push(op(OpQuery::Add(16), vec![i - 1]));
        }
        let mut b = block_t(ops, 16, true);
        b.var_defs.push((v, Operand::Op(3)));
        assert_eq!(loop_carried_deps(&b), vec![(3, 0)]);
        let (_, rec) = modulo_bounds_cached(&costs, &b).unwrap();
        assert_eq!(rec, 4, "a 4-cycle recurrence forces II >= 4");
        if let Some(m) = schedule_block_cached(&costs, &b, SchedKind::modulo()).modulo {
            assert!(m.ii >= 4);
        }
    }

    #[test]
    fn exhausted_budget_falls_back_to_the_list_schedule() {
        let target = xentium();
        let costs = CycleCache::new(&target);
        let ops: Vec<Mop> = (0..8).map(|_| op(OpQuery::Load(32), vec![])).collect();
        let b = block_t(ops, 16, true);
        assert!(matches!(
            modulo_attempt_cached(&costs, &b, 1),
            ModuloAttempt::BudgetExhausted
        ));
        let starved = schedule_block_cached(&costs, &b, SchedKind::Modulo { budget: 1 });
        let list = schedule_block_cached(&costs, &b, SchedKind::List);
        assert!(starved.modulo.is_none());
        assert_eq!(starved.start, list.start);
        assert_eq!(starved.finish, list.finish);
        assert_eq!(starved.issues, list.issues);
        assert_eq!(
            block_activation_cycles_cached(&costs, &b, SchedKind::Modulo { budget: 1 }),
            block_activation_cycles_cached(&costs, &b, SchedKind::List),
        );
    }

    #[test]
    fn non_loop_blocks_never_pipeline() {
        let target = xentium();
        let costs = CycleCache::new(&target);
        let ops: Vec<Mop> = (0..8).map(|_| op(OpQuery::Load(32), vec![])).collect();
        for b in [
            block(ops.clone(), false),     // straight-line
            block_t(ops.clone(), 1, true), // single trip
            block_t(Vec::new(), 16, true), // empty
        ] {
            assert!(modulo_bounds_cached(&costs, &b).is_none());
            assert!(matches!(
                modulo_attempt_cached(&costs, &b, u32::MAX),
                ModuloAttempt::Ineligible
            ));
        }
        // Serializing soft-float ops block the whole machine and cannot
        // overlap with anything.
        let soft = block_t(vec![op(OpQuery::FAdd, vec![])], 16, true);
        assert!(modulo_bounds_cached(&costs, &soft).is_none());
    }

    #[test]
    fn pipelined_issue_log_respects_folded_budgets() {
        // Independently re-total the issue log per residue class.
        let target = xentium();
        let costs = CycleCache::new(&target);
        let ops: Vec<Mop> = (0..8)
            .map(|i| {
                op(
                    if i % 2 == 0 {
                        OpQuery::Load(16)
                    } else {
                        OpQuery::Mul(16)
                    },
                    vec![],
                )
            })
            .collect();
        let b = block_t(ops, 16, true);
        let s = schedule_block_cached(&costs, &b, SchedKind::modulo());
        let m = s.modulo.expect("mixed loads/muls must pipeline");
        let mut per_residue: std::collections::HashMap<(u64, OpClass), u32> =
            std::collections::HashMap::new();
        let mut issue: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for &(i, cycle, slots) in &s.issues {
            let class = costs.cost(b.ops[i].query).class;
            *per_residue.entry((cycle % m.ii, class)).or_default() += slots;
            *issue.entry(cycle % m.ii).or_default() += slots;
        }
        for ((_, class), used) in per_residue {
            assert!(used <= target.units.of(class));
        }
        for (_, used) in issue {
            assert!(used < target.issue_width); // room for the overhead op
        }
    }

    #[test]
    fn memory_conflicts_are_carried_conservatively() {
        use crate::lower::MopKind;
        use slpwlo_fixedpoint::QFormat;
        use slpwlo_ir::types::ArrayId;
        use slpwlo_ir::IndexExpr;
        let fmt = QFormat::new(1, 14);
        let a = ArrayId(0);
        let load = Mop {
            query: OpQuery::Load(16),
            preds: vec![],
            kind: MopKind::Load {
                loc: Loc::Array(a, IndexExpr::constant(0)),
            },
        };
        let store = Mop {
            query: OpQuery::Store(16),
            preds: vec![0],
            kind: MopKind::Store {
                loc: Loc::Array(a, IndexExpr::constant(1)),
                src: Operand::Op(0),
                to: fmt,
            },
        };
        let b = block_t(vec![load, store], 8, true);
        let deps = loop_carried_deps(&b);
        // The store conflicts with the load and with its own next copy.
        assert!(deps.contains(&(1, 0)), "store -> next-iteration load");
        assert!(deps.contains(&(0, 1)), "load -> next-iteration store");
        assert!(deps.contains(&(1, 1)), "store -> its own next copy");
    }
}
