//! Resource-constrained list scheduling.

use crate::lower::{MachineBlock, MachineProgram};
use slpwlo_targets::{CycleCache, OpClass, TargetModel};

/// Schedule of one block: per-op issue cycles and the block makespan.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Cycle at which each operation issues (first slot for macro-ops).
    pub start: Vec<u64>,
    /// Cycle at which each operation's result is available.
    pub finish: Vec<u64>,
    /// Total cycles for one execution of the block.
    pub makespan: u64,
    /// Issue log: one `(op index, cycle, slots)` entry per cycle in
    /// which an operation occupies unit slots. Serializing operations
    /// log their whole blocked window at full issue width. This is the
    /// raw material an independent checker (`slpwlo-verify`) audits
    /// against the target's per-cycle budgets.
    pub issues: Vec<(usize, u64, u32)>,
}

/// Resource usage tracker with growable per-cycle counters.
struct Resources<'t> {
    target: &'t TargetModel,
    issue: Vec<u32>,
    alu: Vec<u32>,
    mul: Vec<u32>,
    mem: Vec<u32>,
    shift: Vec<u32>,
    fpu: Vec<u32>,
    /// Cycles fully blocked by a serializing operation.
    blocked: Vec<bool>,
}

impl<'t> Resources<'t> {
    fn new(target: &'t TargetModel) -> Self {
        Resources {
            target,
            issue: Vec::new(),
            alu: Vec::new(),
            mul: Vec::new(),
            mem: Vec::new(),
            shift: Vec::new(),
            fpu: Vec::new(),
            blocked: Vec::new(),
        }
    }

    fn grow(&mut self, cycle: usize) {
        let need = cycle + 1;
        if self.issue.len() < need {
            self.issue.resize(need, 0);
            self.alu.resize(need, 0);
            self.mul.resize(need, 0);
            self.mem.resize(need, 0);
            self.shift.resize(need, 0);
            self.fpu.resize(need, 0);
            self.blocked.resize(need, false);
        }
    }

    fn class_used(&mut self, class: OpClass, cycle: usize) -> &mut u32 {
        match class {
            OpClass::Alu => &mut self.alu[cycle],
            OpClass::Mul => &mut self.mul[cycle],
            OpClass::Mem => &mut self.mem[cycle],
            OpClass::Shift => &mut self.shift[cycle],
            OpClass::Fpu => &mut self.fpu[cycle],
        }
    }

    /// Free issue+unit slots of `class` at `cycle`.
    fn free_slots(&mut self, class: OpClass, cycle: usize) -> u32 {
        self.grow(cycle);
        if self.blocked[cycle] {
            return 0;
        }
        let cap = self.target.units.of(class);
        let width = self.target.issue_width;
        let used_class = *self.class_used(class, cycle);
        let used_issue = self.issue[cycle];
        (cap.saturating_sub(used_class)).min(width.saturating_sub(used_issue))
    }

    fn take(&mut self, class: OpClass, cycle: usize, n: u32) {
        self.grow(cycle);
        *self.class_used(class, cycle) += n;
        self.issue[cycle] += n;
        debug_assert!(self.issue[cycle] <= self.target.issue_width);
    }

    /// Finds the earliest window of `len` completely idle cycles starting
    /// at or after `from`, and blocks it (soft-float call).
    fn take_serialized(&mut self, from: u64, len: u64) -> u64 {
        let mut t = from;
        'outer: loop {
            let mut c = t;
            while c < t + len {
                self.grow(c as usize);
                if self.issue[c as usize] > 0 || self.blocked[c as usize] {
                    t = c + 1;
                    continue 'outer;
                }
                c += 1;
            }
            for c in t..t + len {
                self.blocked[c as usize] = true;
                self.issue[c as usize] = self.target.issue_width;
            }
            return t;
        }
    }
}

/// List-schedules one block onto the target.
pub fn schedule_block(target: &TargetModel, block: &MachineBlock) -> Schedule {
    schedule_block_cached(&CycleCache::new(target), block)
}

/// List-schedules one block, pricing ops through a shared [`CycleCache`].
///
/// A block of `n` machine ops asks for at most a handful of distinct
/// `(op kind, word length)` costs; callers that schedule many blocks (or
/// the same program under many group subsets, as group pruning does)
/// should thread one cache through every call so each distinct query is
/// folded once.
pub fn schedule_block_cached(costs: &CycleCache<'_>, block: &MachineBlock) -> Schedule {
    let target = costs.target();
    let n = block.ops.len();
    let mut start = vec![0u64; n];
    let mut finish = vec![0u64; n];
    let mut res = Resources::new(target);
    let mut makespan = 0u64;
    let mut issues = Vec::new();

    for (i, op) in block.ops.iter().enumerate() {
        let est = op.preds.iter().map(|&p| finish[p]).max().unwrap_or(0);
        let cost = costs.cost(op.query);
        if cost.serialize {
            let t = res.take_serialized(est, cost.latency as u64);
            start[i] = t;
            finish[i] = t + cost.latency as u64;
            for c in t..finish[i] {
                issues.push((i, c, target.issue_width));
            }
        } else {
            // Place `slots` unit issues greedily from the earliest cycle
            // with capacity.
            let mut remaining = cost.slots;
            let mut t = est;
            // Find first cycle with any capacity.
            while res.free_slots(cost.class, t as usize) == 0 {
                t += 1;
            }
            start[i] = t;
            let mut cur = t;
            while remaining > 0 {
                let free = res.free_slots(cost.class, cur as usize);
                if free == 0 {
                    cur += 1;
                    continue;
                }
                let take = free.min(remaining);
                res.take(cost.class, cur as usize, take);
                issues.push((i, cur, take));
                remaining -= take;
                if remaining > 0 {
                    cur += 1;
                }
            }
            finish[i] = cur + cost.latency as u64;
        }
        makespan = makespan.max(finish[i]);
    }
    Schedule {
        start,
        finish,
        makespan,
        issues,
    }
}

/// Cycles for one execution of a block, including loop control overhead
/// for in-loop blocks.
pub fn block_cycles(target: &TargetModel, block: &MachineBlock) -> u64 {
    block_cycles_cached(&CycleCache::new(target), block)
}

/// [`block_cycles`] pricing ops through a shared [`CycleCache`].
pub fn block_cycles_cached(costs: &CycleCache<'_>, block: &MachineBlock) -> u64 {
    let target = costs.target();
    let sched = schedule_block_cached(costs, block);
    let overhead = if block.in_loop {
        let w = target.issue_width.max(1);
        (target.loop_overhead_ops.div_ceil(w) as u64) + 1
    } else {
        0
    };
    sched.makespan + overhead
}

/// Cycles for one kernel activation (all blocks, trip-weighted).
pub fn cycles_per_activation(target: &TargetModel, program: &MachineProgram) -> u64 {
    cycles_per_activation_cached(&CycleCache::new(target), program)
}

/// [`cycles_per_activation`] pricing ops through a shared [`CycleCache`].
pub fn cycles_per_activation_cached(costs: &CycleCache<'_>, program: &MachineProgram) -> u64 {
    program
        .blocks
        .iter()
        .map(|b| block_cycles_cached(costs, b) * b.trip)
        .sum()
}

/// Total cycles for a workload of `activations` kernel activations.
pub fn total_cycles(target: &TargetModel, program: &MachineProgram, activations: u64) -> u64 {
    cycles_per_activation(target, program) * activations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::Mop;
    use slpwlo_targets::{st240, vex, xentium, OpQuery};

    fn block(ops: Vec<Mop>, in_loop: bool) -> MachineBlock {
        block_t(ops, 1, in_loop)
    }

    fn block_t(ops: Vec<Mop>, trip: u64, in_loop: bool) -> MachineBlock {
        MachineBlock {
            ops,
            trip,
            in_loop,
            loops: Vec::new(),
            var_defs: Vec::new(),
        }
    }

    fn op(query: OpQuery, preds: Vec<usize>) -> Mop {
        Mop::opaque(query, preds)
    }

    #[test]
    fn single_issue_serializes() {
        let target = vex(1);
        let ops: Vec<Mop> = (0..6).map(|_| op(OpQuery::Add(32), vec![])).collect();
        let s = schedule_block(&target, &block(ops, false));
        // Six independent adds on a 1-issue machine: one per cycle.
        assert_eq!(s.makespan, 6);
    }

    #[test]
    fn wide_issue_parallelizes() {
        let target = xentium(); // 4 ALUs
        let ops: Vec<Mop> = (0..8).map(|_| op(OpQuery::Add(32), vec![])).collect();
        let s = schedule_block(&target, &block(ops, false));
        // 8 adds over 4 ALUs: 2 cycles of issue + 1 latency left-over.
        assert!(s.makespan <= 3, "makespan {}", s.makespan);
    }

    #[test]
    fn memory_ports_limit_loads() {
        let target = xentium(); // 2 mem ports, load latency 2
        let ops: Vec<Mop> = (0..8).map(|_| op(OpQuery::Load(32), vec![])).collect();
        let s = schedule_block(&target, &block(ops, false));
        // 8 loads over 2 ports: last issues at cycle 3, finishes at 5.
        assert_eq!(s.makespan, 4 + target.load_latency as u64 - 1);
    }

    #[test]
    fn dependence_chain_bounds_makespan() {
        let target = xentium();
        let mut ops = vec![op(OpQuery::Add(32), vec![])];
        for i in 1..10 {
            ops.push(op(OpQuery::Add(32), vec![i - 1]));
        }
        let s = schedule_block(&target, &block(ops, false));
        assert_eq!(
            s.makespan, 10,
            "a 10-add chain takes 10 cycles regardless of width"
        );
    }

    #[test]
    fn wide_mul_occupies_multiplier_longer() {
        let target = xentium();
        let narrow: Vec<Mop> = (0..4).map(|_| op(OpQuery::Mul(16), vec![])).collect();
        let wide: Vec<Mop> = (0..4).map(|_| op(OpQuery::Mul(32), vec![])).collect();
        let sn = schedule_block(&target, &block(narrow, false));
        let sw = schedule_block(&target, &block(wide, false));
        assert!(
            sw.makespan > sn.makespan,
            "32-bit muls ({}c) must be slower than 16-bit ({}c)",
            sw.makespan,
            sn.makespan
        );
    }

    #[test]
    fn soft_float_blocks_the_machine() {
        let target = xentium();
        let ops = vec![
            op(OpQuery::FAdd, vec![]),
            op(OpQuery::Add(32), vec![]), // independent, but machine is blocked
        ];
        let s = schedule_block(&target, &block(ops, false));
        assert!(
            s.start[1] >= target.fadd_cycles as u64,
            "nothing issues during a soft-float call (start {})",
            s.start[1]
        );
    }

    #[test]
    fn hw_float_pipelines_on_st240() {
        let target = st240();
        let ops = vec![op(OpQuery::FAdd, vec![]), op(OpQuery::Add(32), vec![])];
        let s = schedule_block(&target, &block(ops, false));
        assert_eq!(s.start[1], 0, "hardware float does not serialize");
    }

    #[test]
    fn loop_overhead_added_per_iteration() {
        let target = vex(1);
        let ops = vec![op(OpQuery::Add(32), vec![])];
        let inside = block_cycles(&target, &block_t(ops.clone(), 4, true));
        let outside = block_cycles(&target, &block_t(ops, 1, false));
        assert!(inside > outside);
    }

    #[test]
    fn trips_multiply_cycles() {
        let target = xentium();
        let b1 = block_t(vec![op(OpQuery::Add(32), vec![])], 16, true);
        let prog = MachineProgram {
            name: "t".into(),
            blocks: vec![b1],
            storage: crate::lower::ProgramStorage::default(),
        };
        let per_act = cycles_per_activation(&target, &prog);
        assert_eq!(total_cycles(&target, &prog, 10), per_act * 10);
        let single = block_cycles(
            &target,
            &block_t(vec![op(OpQuery::Add(32), vec![])], 1, true),
        );
        assert_eq!(per_act, single * 16);
    }

    #[test]
    fn pack_macro_op_consumes_multiple_slots() {
        let target = vex(1); // 1 ALU per cycle
        let ops = vec![op(OpQuery::Pack(4), vec![])];
        let s = schedule_block(&target, &block(ops, false));
        // 4 insert slots on a single ALU: at least 4 cycles of occupancy.
        assert!(s.makespan >= 4, "makespan {}", s.makespan);
    }
}
