//! The paper's contribution: **SLP-aware word-length optimization**.
//!
//! Reproduces the algorithms of El Moussawi & Derrien, *"Superword Level
//! Parallelism aware Word Length Optimization"* (DATE 2017):
//!
//! * [`wlo_slp()`](wlo_slp::wlo_slp) — the joint SLP-aware WLO driver (fig. 1a): nodes start
//!   at the target's maximum word length, basic blocks are visited in
//!   priority order, and the accuracy-aware SLP extraction shrinks exactly
//!   the operations it manages to pack;
//! * [`hooks`] — the accuracy-aware SLP extraction policy (fig. 1c):
//!   candidates that cannot meet the noise budget are eliminated,
//!   candidates that cannot *coexist* within it become conflicts, and
//!   `SETMAXWL` (equation (1)) fires on every selection;
//! * [`scalopt`] — SLP-aware scaling optimization (fig. 1b): equalizes
//!   per-lane scaling amounts inside reused superwords by trading FWL for
//!   IWL, so scalings vectorize instead of forcing unpack/shift/repack;
//! * [`tabu`] — the Tabu-search WLO of Nguyen (EUSIPCO 2011) with the
//!   Menard-style word-length-proportional cost model: the WLO used by the
//!   **`WLO-First`** baseline flow the paper compares against;
//! * [`lower`] — lowering of (kernel, fixed-point spec, SIMD groups) to a
//!   machine program with explicit scalings, packs/unpacks and vector
//!   operations, consumed by the `slpwlo-sim` cycle model and the C
//!   back-ends;
//! * [`flow`] — the end-to-end `WLO-SLP` and `WLO-First` compilation
//!   flows (figures 3 and 5 of the paper).

pub mod flow;
pub mod hooks;
pub mod lower;
pub mod nodes;
pub mod scalopt;
pub mod sched;
pub mod tabu;
pub mod wlo_slp;

pub use flow::{
    extract_on_spec, extract_on_spec_sched, extract_on_spec_stats, prepare, prepare_with,
    wlo_first_flow, wlo_first_flow_checked, wlo_first_flow_with, wlo_slp_flow,
    wlo_slp_flow_checked, wlo_slp_flow_with, FlowResult, PassArtifact, Prepared, ProgramRole,
};
pub use hooks::AccuracyHooks;
pub use lower::{
    align_fmt, block_result_fmts, broadcast_lane, ix_bounds, loop_forest, lower_fixed, lower_float,
    lower_scalar, operand_fmts, product_fmt, quantize_const, result_fmt, ArrayDecl, Loc, LoopNest,
    MachineBlock, MachineProgram, Mop, MopKind, Operand, ParamDecl, ProgramStorage, VarDecl,
};
pub use scalopt::scaling_optimize;
pub use sched::{
    block_activation_cycles_cached, block_cycles, block_cycles_cached, cycles_per_activation,
    cycles_per_activation_cached, loop_carried_deps, modulo_attempt_cached, modulo_bounds_cached,
    schedule_block, schedule_block_cached, schedule_block_with, total_cycles, total_cycles_cached,
    ModuloAttempt, ModuloSchedule, Schedule,
};
pub use slpwlo_slp::{BenefitKind, SelectStats};
pub use slpwlo_targets::SchedKind;
pub use tabu::{tabu_wlo, TabuOptions};
pub use wlo_slp::{wlo_slp, wlo_slp_sched, wlo_slp_with, BlockResult, WloSlpResult};
