//! SLP-aware scaling optimization (fig. 1b of the paper).
//!
//! Most embedded SIMD ISAs shift all vector lanes by one common amount.
//! When the lanes of a reused superword require *different* scaling
//! amounts, the vector must be unpacked, shifted per lane and repacked —
//! the overhead of fig. 2. This pass equalizes the per-lane amounts by
//! **reducing FWLs while keeping WLs intact** (IWL grows by the same
//! amount), as long as the accuracy constraint tolerates it.
//!
//! Sign convention: with `S[k]` the right-shift amount of lane `k`, we
//! equalize producer-side by reducing `FWL(e_k)` by `S[k] - min(S)`
//! (all lanes then shift by `min(S)`), or — when the producer lanes share
//! one storage format — consumer-side by reducing the consumer lane
//! formats by `max(S) - S[k]` (all lanes then shift by `max(S)`). Both
//! realise the paper's transformation; the pseudocode's `max` corresponds
//! to the consumer-side variant.

use crate::nodes::{node_key, value_format};
use slpwlo_accuracy::AccuracyEvaluator;
use slpwlo_fixedpoint::{FixedPointSpec, SpecKey};
use slpwlo_ir::dfg::{Dfg, NodeId, NodeKind};
use slpwlo_ir::types::BinOp;
use slpwlo_slp::{resolved_operands, SimdGroup};
use slpwlo_targets::{OpQuery, TargetModel};

/// One superword reuse: `producer`'s lanes feed `consumer`'s lanes (in
/// lane order) at operand position `pos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reuse {
    /// Index of the producing group.
    pub producer: usize,
    /// Index of the consuming group.
    pub consumer: usize,
    /// Operand position within the consumer.
    pub pos: usize,
}

/// Report of one scaling-optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScalOptReport {
    /// Superword reuses examined.
    pub reuses: usize,
    /// Reuses whose lane amounts already matched.
    pub already_uniform: usize,
    /// Reuses successfully equalized.
    pub equalized: usize,
    /// Equalization attempts reverted for violating the constraint.
    pub reverted: usize,
    /// Reuses skipped (mixed-sign amounts or shared-format lanes on both
    /// sides).
    pub skipped: usize,
    /// Estimated cycles saved by the equalizations, priced through
    /// [`TargetModel::cycles`] (the fig. 2 unpack/shift/repack each
    /// avoided reuse would otherwise pay, minus the uniform vector
    /// shift that replaces it).
    pub cycles_saved: f64,
}

/// The fig. 2 penalty a mismatched reuse pays if *not* equalized: per
/// lane one extract plus one scalar shift, then a repack — versus the
/// single uniform vector shift equalization leaves behind. Priced
/// through [`TargetModel::cycles`], the same source the scheduler and
/// the SLP benefit layer draw from.
fn fig2_penalty_cycles(target: &TargetModel, lanes: u32) -> f64 {
    let elem_wl = target.simd_element_wl(lanes).unwrap_or(target.datapath);
    let per_lane = target.cycles(OpQuery::Extract) + target.cycles(OpQuery::Shift(elem_wl));
    lanes as f64 * per_lane + target.cycles(OpQuery::Pack(lanes))
        - target.cycles(OpQuery::VShift(lanes))
}

/// Enumerates the superword reuses among `groups`.
pub fn superword_reuses(dfg: &Dfg, groups: &[SimdGroup]) -> Vec<Reuse> {
    let mut out = Vec::new();
    for (pi, p) in groups.iter().enumerate() {
        for (ci, c) in groups.iter().enumerate() {
            if pi == ci || p.lanes() != c.lanes() {
                continue;
            }
            let arity = match c.kind(dfg) {
                NodeKind::Bin(_) => 2,
                NodeKind::Un(_) | NodeKind::StoreArray(..) => 1,
                _ => 0,
            };
            for pos in 0..arity {
                let feeds = p
                    .elems
                    .iter()
                    .zip(&c.elems)
                    .all(|(&prod, &cons)| resolved_operands(dfg, cons).get(pos) == Some(&prod));
                if feeds {
                    out.push(Reuse {
                        producer: pi,
                        consumer: ci,
                        pos,
                    });
                }
            }
        }
    }
    out
}

/// Per-lane right-shift amounts for a reuse (positive = right shift).
pub fn scaling_amounts(
    spec: &FixedPointSpec,
    dfg: &Dfg,
    producer: &SimdGroup,
    consumer: &SimdGroup,
    pos: usize,
) -> Vec<i32> {
    producer
        .elems
        .iter()
        .zip(&consumer.elems)
        .map(|(&prod, &cons)| {
            let f1 = value_format(spec, dfg, prod).fwl;
            let f3 = consumer_input_fwl(spec, dfg, cons, pos);
            f1 - f3
        })
        .collect()
}

/// The fractional grid at which a consumer lane absorbs operand `pos`.
fn consumer_input_fwl(spec: &FixedPointSpec, dfg: &Dfg, cons: NodeId, pos: usize) -> i32 {
    let node = dfg.node(cons);
    match &node.kind {
        // Multiplication shifts at the result: the producer-side budget of
        // lane k is out_fwl - other_operand_fwl.
        NodeKind::Bin(BinOp::Mul) => {
            let out = value_format(spec, dfg, cons).fwl;
            let other_pos = 1 - pos;
            let other = resolved_operands(dfg, cons)
                .get(other_pos)
                .map(|&o| value_format(spec, dfg, o).fwl)
                .unwrap_or(0);
            out - other
        }
        // Additive operations pre-align operands on the result grid.
        NodeKind::Bin(_) | NodeKind::Un(_) => value_format(spec, dfg, cons).fwl,
        NodeKind::StoreArray(a, _) => spec.format(SpecKey::Array(*a)).fwl,
        _ => value_format(spec, dfg, cons).fwl,
    }
}

/// Runs the scaling optimization over the selected groups of one block
/// (fig. 1b), mutating `spec` where the accuracy budget allows.
pub fn scaling_optimize(
    spec: &mut FixedPointSpec,
    dfg: &Dfg,
    groups: &[SimdGroup],
    eval: &dyn AccuracyEvaluator,
    constraint_db: f64,
    target: &TargetModel,
) -> ScalOptReport {
    let mut report = ScalOptReport::default();
    // Each equalization attempt is one trial over the lane keys it
    // shrinks; incremental evaluators re-walk only those keys' sources.
    eval.begin(spec);
    // Spend the accuracy budget on the most expensive mismatches first:
    // reuses are processed in descending order of the cycle penalty their
    // lane width carries on this target (stable for equal penalties, so
    // same-width reuses keep their discovery order).
    let mut reuses = superword_reuses(dfg, groups);
    reuses.sort_by(|a, b| {
        let pa = fig2_penalty_cycles(target, groups[a.producer].lanes());
        let pb = fig2_penalty_cycles(target, groups[b.producer].lanes());
        pb.partial_cmp(&pa).expect("finite penalties")
    });
    for reuse in reuses {
        report.reuses += 1;
        let p = &groups[reuse.producer];
        let c = &groups[reuse.consumer];
        let amounts = scaling_amounts(spec, dfg, p, c, reuse.pos);
        let min = *amounts.iter().min().expect("non-empty group");
        let max = *amounts.iter().max().expect("non-empty group");
        if min == max {
            report.already_uniform += 1;
            continue;
        }
        if min < 0 {
            // Mixed or left shifts: out of scope for this transformation
            // (the paper only equalizes all-positive amounts).
            report.skipped += 1;
            continue;
        }
        let mark = spec.mark();
        let applied = if per_lane_keys(dfg, p).is_some() {
            // Producer-side: lane k shifts S[k] - min less afterwards.
            let keys = per_lane_keys(dfg, p).expect("checked above");
            for (key, &s) in keys.iter().zip(&amounts) {
                shrink(spec, *key, s - min);
            }
            true
        } else if let Some(keys) = per_lane_keys(dfg, c) {
            // Consumer-side: all lanes end up shifting by max.
            for (key, &s) in keys.iter().zip(&amounts) {
                shrink(spec, *key, max - s);
            }
            true
        } else {
            false
        };
        if !applied {
            report.skipped += 1;
            spec.rollback(mark);
            continue;
        }
        if eval.trial_meets(spec, mark, constraint_db) {
            spec.commit(mark);
            eval.commit_trial();
            report.equalized += 1;
            report.cycles_saved += fig2_penalty_cycles(target, groups[reuse.producer].lanes());
        } else {
            spec.rollback(mark);
            eval.rollback_trial();
            report.reverted += 1;
        }
    }
    report
}

/// Per-lane spec keys of a group when every lane has its own format
/// (operation groups). Memory-backed groups share one storage format and
/// return `None`.
fn per_lane_keys(dfg: &Dfg, g: &SimdGroup) -> Option<Vec<SpecKey>> {
    let mut keys = Vec::with_capacity(g.elems.len());
    for &e in &g.elems {
        match dfg.node(e).kind {
            NodeKind::Bin(_) | NodeKind::Un(_) | NodeKind::ReadInput(_) => {
                keys.push(node_key(dfg, e)?);
            }
            _ => return None,
        }
    }
    Some(keys)
}

fn shrink(spec: &mut FixedPointSpec, key: SpecKey, delta: i32) {
    if delta > 0 {
        let fmt = spec.format(key).shrink_fwl(delta);
        spec.set_format(key, fmt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_accuracy::AnalyticalEvaluator;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_fixedpoint::QFormat;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_ir::Kernel;
    use slpwlo_targets::xentium;

    /// Two muls feeding two adds lane-wise: {m0,m1} -> {s0,s1}.
    const SRC: &str = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var m0;
    var m1;
    var s0;
    var s1;
    shiftin dl <- x;
    m0 = c[0] * dl[0];
    m1 = c[1] * dl[1];
    s0 = m0 + c[2] * dl[2];
    s1 = m1 + c[3] * dl[3];
    y = s0 + s1;
}
"#;

    fn setup() -> (Kernel, Dfg, FixedPointSpec, AnalyticalEvaluator) {
        let k = parse_kernel(SRC).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, 32);
        let eval = AnalyticalEvaluator::with_defaults(&k);
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_stmts(&k, &blocks[0].stmts);
        (k, dfg, spec, eval)
    }

    fn mul_add_groups(dfg: &Dfg) -> (SimdGroup, SimdGroup) {
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let adds: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Add)))
            .map(|(i, _)| i)
            .collect();
        // m0 = muls[0], m1 = muls[1] (c2*dl2 is muls[2], c3*dl3 muls[3]);
        // s0 = adds[0], s1 = adds[1]. Lane-wise: m_k feeds s_k at pos 0.
        (
            SimdGroup {
                elems: vec![muls[0], muls[1]],
            },
            SimdGroup {
                elems: vec![adds[0], adds[1]],
            },
        )
    }

    #[test]
    fn finds_superword_reuse() {
        let (_, dfg, _, _) = setup();
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let adds: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Add)))
            .map(|(i, _)| i)
            .collect();
        let g_m = SimdGroup {
            elems: vec![muls[0], muls[1]],
        };
        let g_a = SimdGroup {
            elems: vec![adds[0], adds[1]],
        };
        let groups = vec![g_m, g_a];
        let reuses = superword_reuses(&dfg, &groups);
        assert!(
            reuses.contains(&Reuse {
                producer: 0,
                consumer: 1,
                pos: 0
            }),
            "mul pair feeds add pair at position 0: {reuses:?}"
        );
    }

    #[test]
    fn uniform_amounts_are_skipped() {
        let (_, dfg, mut spec, eval) = setup();
        let (g_m, g_a) = {
            let muls: Vec<NodeId> = dfg
                .iter()
                .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Mul)))
                .map(|(i, _)| i)
                .collect();
            let adds: Vec<NodeId> = dfg
                .iter()
                .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Add)))
                .map(|(i, _)| i)
                .collect();
            (
                SimdGroup {
                    elems: vec![muls[0], muls[1]],
                },
                SimdGroup {
                    elems: vec![adds[0], adds[1]],
                },
            )
        };
        // Make formats uniform by hand.
        for &e in g_m.elems.iter().chain(&g_a.elems) {
            let key = node_key(&dfg, e).unwrap();
            spec.set_format(key, QFormat::new(1, 15));
        }
        let groups = vec![g_m, g_a];
        let report = scaling_optimize(&mut spec, &dfg, &groups, &eval, -20.0, &xentium());
        assert!(report.already_uniform >= 1);
        assert_eq!(report.equalized, 0);
    }

    #[test]
    fn equalizes_mismatched_lanes_under_loose_constraint() {
        let (_, dfg, mut spec, eval) = setup();
        let (g_m, g_a) = mul_add_groups(&dfg);
        // Force mismatched producer fwls: lane 0 finer than lane 1.
        let k0 = node_key(&dfg, g_m.elems[0]).unwrap();
        let k1 = node_key(&dfg, g_m.elems[1]).unwrap();
        spec.set_format(k0, QFormat::new(1, 20));
        spec.set_format(k1, QFormat::new(1, 17));
        // Consumers at a coarser shared grid.
        for &e in &g_a.elems {
            spec.set_format(node_key(&dfg, e).unwrap(), QFormat::new(2, 14));
        }
        let groups = vec![g_m.clone(), g_a.clone()];
        let before = scaling_amounts(&spec, &dfg, &g_m, &g_a, 0);
        assert_ne!(before[0], before[1], "setup must create a mismatch");
        let report = scaling_optimize(&mut spec, &dfg, &groups, &eval, -10.0, &xentium());
        assert_eq!(report.equalized, 1, "{report:?}");
        let after = scaling_amounts(&spec, &dfg, &g_m, &g_a, 0);
        assert_eq!(after[0], after[1], "amounts must be equal after: {after:?}");
        // Word lengths unchanged (FWL traded for IWL).
        assert_eq!(spec.format(k0).wl(), 21);
    }

    #[test]
    fn reverts_under_impossible_constraint() {
        let (_, dfg, mut spec, eval) = setup();
        let (g_m, g_a) = mul_add_groups(&dfg);
        let k0 = node_key(&dfg, g_m.elems[0]).unwrap();
        let k1 = node_key(&dfg, g_m.elems[1]).unwrap();
        spec.set_format(k0, QFormat::new(1, 20));
        spec.set_format(k1, QFormat::new(1, 17));
        for &e in &g_a.elems {
            spec.set_format(node_key(&dfg, e).unwrap(), QFormat::new(2, 14));
        }
        let before0 = spec.format(k0);
        let groups = vec![g_m.clone(), g_a.clone()];
        let report = scaling_optimize(&mut spec, &dfg, &groups, &eval, -500.0, &xentium());
        assert_eq!(report.equalized, 0);
        assert!(report.reverted >= 1, "{report:?}");
        assert_eq!(spec.format(k0), before0, "rollback must restore formats");
    }
}

#[cfg(test)]
mod consumer_side_tests {
    //! When the producer lanes share one storage format (a load group),
    //! equalization must fall back to reducing the *consumer* lane
    //! formats (all lanes then shift by the max amount).
    use super::*;
    use slpwlo_accuracy::AnalyticalEvaluator;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_fixedpoint::QFormat;
    use slpwlo_ir::blocks::collect_blocks;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::xentium;

    #[test]
    fn load_group_reuse_equalizes_consumer_lanes() {
        // Two muls consuming an array-load pair: dl loads share the
        // array's format, so mismatched result shifts can only be fixed
        // on the mul side.
        let src = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[2] = { 0.4, 0.3 };
    array dl[2];
    var m0;
    var m1;
    shiftin dl <- x;
    m0 = c[0] * dl[0];
    m1 = c[1] * dl[1];
    y = m0 + m1;
}
"#;
        let k = parse_kernel(src).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let mut spec = FixedPointSpec::from_ranges(&k, &r, 32);
        let eval = AnalyticalEvaluator::with_defaults(&k);
        let blocks = collect_blocks(&k);
        let dfg = Dfg::from_block(&k, &blocks[0]);
        let loads: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::LoadArray(..)))
            .map(|(i, _)| i)
            .collect();
        let muls: Vec<NodeId> = dfg
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Bin(BinOp::Mul)))
            .map(|(i, _)| i)
            .collect();
        let g_load = SimdGroup {
            elems: loads.clone(),
        };
        let g_mul = SimdGroup {
            elems: muls.clone(),
        };
        // Force mismatched mul result shifts: different output fwls.
        let mk0 = node_key(&dfg, muls[0]).unwrap();
        let mk1 = node_key(&dfg, muls[1]).unwrap();
        spec.set_format(mk0, QFormat::new(0, 18));
        spec.set_format(mk1, QFormat::new(0, 15));
        let groups = vec![g_load.clone(), g_mul.clone()];
        let before = scaling_amounts(&spec, &dfg, &g_load, &g_mul, 1);
        assert_ne!(before[0], before[1], "setup must mismatch: {before:?}");
        let report = scaling_optimize(&mut spec, &dfg, &groups, &eval, -10.0, &xentium());
        assert!(report.equalized >= 1, "{report:?}");
        let after = scaling_amounts(&spec, &dfg, &g_load, &g_mul, 1);
        assert_eq!(after[0], after[1], "consumer-side equalization: {after:?}");
        // Word lengths preserved.
        assert_eq!(spec.format(mk0).wl(), 18);
        assert_eq!(spec.format(mk1).wl(), 15);
    }
}
