//! The SLP-aware WLO driver — fig. 1a of the paper.
//!
//! 1. Every node of the fixed-point specification starts at the maximum
//!    word length supported by the target (the most accurate natively
//!    implementable spec, and the least SIMD-friendly one).
//! 2. Basic blocks are visited in priority order (their contribution to
//!    execution time), so the accuracy-degradation budget is spent on the
//!    hottest code first.
//! 3. For each block, accuracy-aware SLP extraction runs to fixpoint:
//!    each selected group's word lengths shrink per equation (1)
//!    (`SETMAXWL`), wider groups absorb the narrower groups they merge
//!    (line 12), and the loop ends when a pass selects nothing.
//! 4. Scaling optimization (fig. 1b) then equalizes per-lane scaling
//!    amounts inside the block's reused superwords.

use crate::hooks::AccuracyHooks;
use crate::scalopt::{scaling_optimize, ScalOptReport};
use slpwlo_accuracy::AccuracyEvaluator;
use slpwlo_fixedpoint::{FixedPointSpec, Ranges};
use slpwlo_ir::blocks::{blocks_by_priority, Block};
use slpwlo_ir::dfg::Dfg;
use slpwlo_ir::Kernel;
use slpwlo_slp::{
    absorb_selected, run_selection_stats, BenefitKind, Round, SelectStats, SimdGroup,
};
use slpwlo_targets::{SchedKind, TargetModel};

/// Per-block outcome of the joint optimization.
#[derive(Debug)]
pub struct BlockResult {
    /// The source basic block.
    pub block: Block,
    /// Its data-flow graph.
    pub dfg: Dfg,
    /// Selected SIMD groups (final sizes, after extension rounds).
    pub groups: Vec<SimdGroup>,
    /// Scaling-optimization statistics.
    pub scalopt: ScalOptReport,
}

/// Result of the SLP-aware WLO: the fully determined fixed-point
/// specification plus the selected SIMD groups per block.
#[derive(Debug)]
pub struct WloSlpResult {
    /// The optimized specification (meets the constraint by construction).
    pub spec: FixedPointSpec,
    /// Per-block groups, in priority order.
    pub blocks: Vec<BlockResult>,
    /// Exact-selector search statistics accumulated across all rounds of
    /// all blocks (all zeros under the greedy kinds).
    pub select: SelectStats,
}

impl WloSlpResult {
    /// Total number of selected groups across blocks.
    pub fn group_count(&self) -> usize {
        self.blocks.iter().map(|b| b.groups.len()).sum()
    }
}

/// Runs the joint SLP-aware word-length optimization (fig. 1a).
///
/// `constraint_db` is the accuracy constraint: the maximum tolerable
/// output quantization-noise power in dB.
///
/// Every accuracy query inside — candidate validation, pairwise
/// conflicts, `SETMAXWL` selections, scaling equalization — goes through
/// the [`AccuracyEvaluator`] trial protocol, so passing an
/// [`slpwlo_accuracy::IncrementalEvaluator`] makes each query O(touched
/// keys) instead of O(kernel); a plain evaluator falls back to full
/// recomputes with identical results.
pub fn wlo_slp(
    kernel: &Kernel,
    target: &TargetModel,
    eval: &dyn AccuracyEvaluator,
    constraint_db: f64,
    ranges: &Ranges,
) -> WloSlpResult {
    wlo_slp_with(
        kernel,
        target,
        eval,
        constraint_db,
        ranges,
        BenefitKind::default(),
    )
}

/// [`wlo_slp`] with an explicit candidate-pricing strategy.
///
/// Under [`BenefitKind::Cycles`] the selection loop re-prices live
/// candidates against the *evolving* spec every iteration (the hooks are
/// the word-length oracle), so a pack that is only profitable at shrunk
/// word lengths is admitted in the round where the shrinks happen rather
/// than never or always.
pub fn wlo_slp_with(
    kernel: &Kernel,
    target: &TargetModel,
    eval: &dyn AccuracyEvaluator,
    constraint_db: f64,
    ranges: &Ranges,
    benefit: BenefitKind,
) -> WloSlpResult {
    wlo_slp_sched(
        kernel,
        target,
        eval,
        constraint_db,
        ranges,
        benefit,
        SchedKind::List,
    )
}

/// [`wlo_slp_with`] pricing candidates under an explicit scheduler kind:
/// when the flow will modulo-schedule in-loop blocks, the cycle-priced
/// benefit model drops its latency-boundedness hedge (overlapped
/// iterations hide pack/extract chain hops), admitting packs sequential
/// issue would reject.
pub fn wlo_slp_sched(
    kernel: &Kernel,
    target: &TargetModel,
    eval: &dyn AccuracyEvaluator,
    constraint_db: f64,
    ranges: &Ranges,
    benefit: BenefitKind,
    sched: SchedKind,
) -> WloSlpResult {
    // Lines 1-3: all nodes at the maximum supported word length.
    let mut spec = FixedPointSpec::from_ranges(kernel, ranges, target.max_wl());
    eval.begin(&spec);
    let mut results = Vec::new();
    let mut select = SelectStats::default();

    // Line 4: visit blocks in priority order.
    for block in blocks_by_priority(kernel) {
        let dfg = Dfg::from_block(kernel, &block);
        let mut groups: Vec<SimdGroup> = Vec::new();

        // Lines 6-14: iterate SLP extraction until no new groups.
        loop {
            let round = Round::new(&dfg, target, &groups);
            let selected = {
                let mut hooks =
                    AccuracyHooks::new(&dfg, &mut spec, eval, constraint_db).with_sched(sched);
                run_selection_stats(
                    &dfg,
                    target,
                    &round,
                    &groups,
                    &mut hooks,
                    benefit,
                    &mut select,
                )
            };
            if selected.is_empty() {
                break;
            }
            // Line 12: wider merges supersede the groups they absorbed.
            absorb_selected(&mut groups, selected);
        }

        // Line 15: SLP-aware scaling optimization.
        let scalopt = scaling_optimize(&mut spec, &dfg, &groups, eval, constraint_db, target);
        results.push(BlockResult {
            block,
            dfg,
            groups,
            scalopt,
        });
    }
    WloSlpResult {
        spec,
        blocks: results,
        select,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_accuracy::{AccuracyEvaluator, AnalyticalEvaluator};
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::{vex, xentium};

    const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    fn run(db: f64, target: &slpwlo_targets::TargetModel) -> (WloSlpResult, AnalyticalEvaluator) {
        let k = parse_kernel(FIR8).unwrap();
        let ranges = determine_ranges(&k, &RangeOptions::default());
        let eval = AnalyticalEvaluator::with_defaults(&k);
        let res = wlo_slp(&k, target, &eval, db, &ranges);
        (res, eval)
    }

    #[test]
    fn constraint_always_met() {
        for db in [-10.0, -30.0, -50.0, -70.0, -90.0] {
            let (res, eval) = run(db, &xentium());
            assert!(
                eval.meets(&res.spec, db),
                "constraint {db} violated: {}",
                eval.noise_db(&res.spec)
            );
        }
    }

    #[test]
    fn loose_constraints_find_more_groups() {
        let (loose, _) = run(-20.0, &xentium());
        let (tight, _) = run(-160.0, &xentium());
        assert!(
            loose.group_count() > tight.group_count(),
            "loose {} vs tight {}",
            loose.group_count(),
            tight.group_count()
        );
        assert_eq!(
            tight.group_count(),
            0,
            "no 16-bit grouping can reach -160 dB"
        );
    }

    #[test]
    fn hot_block_processed_first() {
        let (res, _) = run(-30.0, &xentium());
        // First block in results must be the unrolled loop body (highest
        // priority); it must hold the groups.
        assert!(res.blocks[0].block.in_loop());
        assert!(!res.blocks[0].groups.is_empty());
    }

    #[test]
    fn vex_extends_groups_beyond_pairs_at_loose_constraints() {
        let (res, _) = run(-15.0, &vex(4));
        let max_lanes = res
            .blocks
            .iter()
            .flat_map(|b| b.groups.iter())
            .map(|g| g.lanes())
            .max()
            .unwrap_or(0);
        // 8-bit quads are only admissible when the noise budget is loose;
        // -15 dB tolerates them for this kernel.
        assert!(max_lanes >= 2, "expected grouping, got none");
        // On XENTIUM the same constraint caps at pairs.
        let (resx, _) = run(-15.0, &xentium());
        let max_x = resx
            .blocks
            .iter()
            .flat_map(|b| b.groups.iter())
            .map(|g| g.lanes())
            .max()
            .unwrap_or(0);
        assert!(max_x <= 2);
    }

    #[test]
    fn groups_shrink_word_lengths_only_where_packed() {
        use crate::nodes::node_key;
        let (res, _) = run(-40.0, &xentium());
        let spec = &res.spec;
        for b in &res.blocks {
            let grouped: Vec<_> = b
                .groups
                .iter()
                .flat_map(|g| g.elems.iter().copied())
                .collect();
            for &n in &grouped {
                if let Some(key) = node_key(&b.dfg, n) {
                    assert!(spec.wl(key) <= 16, "grouped node must be <= 16 bits");
                }
            }
        }
    }
}
