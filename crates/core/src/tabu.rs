//! Tabu-search word-length optimization — the WLO used by the paper's
//! **`WLO-First`** baseline (Nguyen, EUSIPCO 2011), with the Menard-style
//! cost model: "the relative execution time associated to an instruction
//! is directly related to the WL of data on which it can operate" — a
//! 16-bit operation is assumed to cost half a 32-bit one.
//!
//! That assumption is exactly the *unrealistic optimism* the paper
//! criticises: it presumes every narrowed operation will later be packed
//! by SLP with no packing overhead. This module reproduces it faithfully
//! so the baseline misbehaves the way the paper reports.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use slpwlo_accuracy::gains::expr_executions;
use slpwlo_accuracy::AccuracyEvaluator;
use slpwlo_fixedpoint::{FixedPointSpec, SpecKey};
use slpwlo_ir::{ExprNode, Kernel};
use std::collections::HashMap;

/// Options for the Tabu search.
#[derive(Debug, Clone, Copy)]
pub struct TabuOptions {
    /// Maximum search iterations.
    pub max_iters: usize,
    /// Tabu tenure: iterations a reversed move stays forbidden.
    pub tenure: usize,
    /// Iterations without improvement before giving up.
    pub patience: usize,
    /// Seed for deterministic diversification.
    pub seed: u64,
}

impl Default for TabuOptions {
    fn default() -> Self {
        TabuOptions {
            max_iters: 400,
            tenure: 8,
            patience: 60,
            seed: 0x7AB0,
        }
    }
}

/// The Menard-style optimistic cost of a specification: execution-count
/// weighted `wl / max_wl` over all operation expressions.
pub fn menard_cost(kernel: &Kernel, spec: &FixedPointSpec, execs: &[u64]) -> f64 {
    let max_wl = spec.max_wl() as f64;
    let mut cost = 0.0;
    for (id, node) in kernel.exprs() {
        if matches!(node, ExprNode::Bin(..) | ExprNode::Unary(..)) {
            let wl = spec.wl(SpecKey::Expr(id)) as f64;
            cost += execs[id.index()] as f64 * (wl / max_wl);
        }
    }
    cost
}

/// Runs the Tabu-search WLO: minimizes the optimistic cost subject to the
/// accuracy constraint, mutating `spec` to the best found solution.
///
/// Moves shrink or widen one node's word length one step along the
/// supported set (e.g. 32 -> 16 -> 8). Returns the cost of the final
/// specification.
pub fn tabu_wlo(
    kernel: &Kernel,
    spec: &mut FixedPointSpec,
    eval: &dyn AccuracyEvaluator,
    constraint_db: f64,
    supported_wls: &[i32],
    opts: &TabuOptions,
) -> f64 {
    let execs = expr_executions(kernel);
    let keys = spec.optimizable_keys(kernel);
    let mut wls: Vec<i32> = supported_wls.to_vec();
    wls.sort_unstable();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    // Best-so-far bookkeeping works on explicit assignments.
    let snapshot =
        |spec: &FixedPointSpec| -> Vec<i32> { keys.iter().map(|&k| spec.wl(k)).collect() };
    let restore = |spec: &mut FixedPointSpec, snap: &[i32]| {
        for (&k, &w) in keys.iter().zip(snap) {
            if spec.wl(k) != w {
                spec.set_wl(k, w);
            }
        }
    };

    let mut best_snap = snapshot(spec);
    let mut best_cost = menard_cost(kernel, spec, &execs);
    let mut cur_cost = best_cost;
    let mut tabu: HashMap<SpecKey, usize> = HashMap::new();
    let mut stall = 0usize;

    // The neighbourhood scan evaluates one single-key move per trial; an
    // incremental evaluator re-walks only that key's noise sources.
    eval.begin(spec);

    for iter in 0..opts.max_iters {
        // Enumerate neighbour moves: one key one step down or up.
        let mut best_move: Option<(SpecKey, i32, f64)> = None;
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.shuffle(&mut rng);
        for ki in order {
            let key = keys[ki];
            if tabu.get(&key).is_some_and(|&until| until > iter) {
                continue;
            }
            let cur = spec.wl(key);
            for &next in neighbours(&wls, cur) {
                let mark = spec.mark();
                spec.set_wl(key, next);
                let feasible = eval.trial_meets(spec, mark, constraint_db);
                // Only feasible moves pay the O(kernel) cost walk.
                let cost = if feasible {
                    menard_cost(kernel, spec, &execs)
                } else {
                    f64::INFINITY
                };
                spec.rollback(mark);
                eval.rollback_trial();
                if !feasible {
                    continue;
                }
                // Aspiration: a tabu-breaking move is allowed when it
                // beats the global best (handled by the tabu skip above
                // being per-key; keep simple).
                if best_move.is_none_or(|(_, _, c)| cost < c) {
                    best_move = Some((key, next, cost));
                }
            }
        }
        match best_move {
            Some((key, wl, cost)) if cost < cur_cost => {
                apply_move(spec, eval, key, wl);
                cur_cost = cost;
                tabu.insert(key, iter + opts.tenure);
                if cost < best_cost {
                    best_cost = cost;
                    best_snap = snapshot(spec);
                    stall = 0;
                } else {
                    stall += 1;
                }
            }
            Some((key, wl, cost)) => {
                // Uphill/sideways move (diversification).
                apply_move(spec, eval, key, wl);
                cur_cost = cost;
                tabu.insert(key, iter + opts.tenure);
                stall += 1;
            }
            None => {
                stall += 1;
            }
        }
        if stall > opts.patience {
            break;
        }
    }
    let mark = spec.mark();
    restore(spec, &best_snap);
    eval.observe(spec, mark);
    best_cost
}

/// Applies an accepted move permanently, keeping incremental evaluators
/// in sync with the untrialed write.
fn apply_move(spec: &mut FixedPointSpec, eval: &dyn AccuracyEvaluator, key: SpecKey, wl: i32) {
    let mark = spec.mark();
    spec.set_wl(key, wl);
    eval.observe(spec, mark);
}

/// Word lengths one step below and above `cur` in the supported set.
fn neighbours(wls: &[i32], cur: i32) -> Vec<&i32> {
    let pos = wls.iter().position(|&w| w >= cur);
    let mut out = Vec::new();
    if let Some(p) = pos {
        if p > 0 {
            out.push(&wls[p - 1]);
        }
        if p + 1 < wls.len() {
            out.push(&wls[p + 1]);
        }
    } else if let Some(last) = wls.last() {
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_accuracy::AnalyticalEvaluator;
    use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions};
    use slpwlo_ir::parser::parse_kernel;

    const SRC: &str = r#"
kernel f {
    input x range [-1, 1];
    output y;
    param c[4] = { 0.4, 0.3, 0.2, 0.1 };
    array dl[4];
    var t0;
    var t1;
    shiftin dl <- x;
    t0 = c[0] * dl[0] + c[1] * dl[1];
    t1 = c[2] * dl[2] + c[3] * dl[3];
    y = t0 + t1;
}
"#;

    fn setup() -> (Kernel, FixedPointSpec, AnalyticalEvaluator) {
        let k = parse_kernel(SRC).unwrap();
        let r = determine_ranges(&k, &RangeOptions::default());
        let spec = FixedPointSpec::from_ranges(&k, &r, 32);
        let eval = AnalyticalEvaluator::with_defaults(&k);
        (k, spec, eval)
    }

    #[test]
    fn loose_constraint_shrinks_everything() {
        let (k, mut spec, eval) = setup();
        let cost = tabu_wlo(
            &k,
            &mut spec,
            &eval,
            -20.0,
            &[8, 16, 32],
            &TabuOptions::default(),
        );
        // At -20 dB even 8-bit often passes for this kernel; cost must be
        // far below the all-32 start.
        let execs = expr_executions(&k);
        let all32 = {
            let (_, s, _) = setup();
            menard_cost(&k, &s, &execs)
        };
        assert!(cost < all32 * 0.7, "cost {cost} vs all-32 {all32}");
        assert!(eval.meets(&spec, -20.0));
    }

    #[test]
    fn tight_constraint_keeps_wide_words() {
        let (k, mut spec, eval) = setup();
        let _ = tabu_wlo(
            &k,
            &mut spec,
            &eval,
            -170.0,
            &[8, 16, 32],
            &TabuOptions::default(),
        );
        assert!(eval.meets(&spec, -170.0), "result must stay feasible");
        // At -170 dB nothing meaningful can shrink below 32 bits.
        let narrow = spec
            .optimizable_keys(&k)
            .iter()
            .filter(|&&key| spec.wl(key) < 32)
            .count();
        assert!(
            narrow <= 2,
            "only marginal nodes may shrink at -170 dB, got {narrow}"
        );
    }

    #[test]
    fn result_is_deterministic_for_a_seed() {
        let (k, mut s1, eval) = setup();
        let (_, mut s2, _) = setup();
        let c1 = tabu_wlo(
            &k,
            &mut s1,
            &eval,
            -50.0,
            &[8, 16, 32],
            &TabuOptions::default(),
        );
        let c2 = tabu_wlo(
            &k,
            &mut s2,
            &eval,
            -50.0,
            &[8, 16, 32],
            &TabuOptions::default(),
        );
        assert_eq!(c1, c2);
        for key in s1.optimizable_keys(&k) {
            assert_eq!(s1.wl(key), s2.wl(key));
        }
    }

    #[test]
    fn cost_is_monotone_in_wl() {
        let (k, mut spec, _) = setup();
        let execs = expr_executions(&k);
        let c32 = menard_cost(&k, &spec, &execs);
        for key in spec.optimizable_keys(&k) {
            if let SpecKey::Expr(_) = key {
                spec.set_wl(key, 16);
            }
        }
        let c16 = menard_cost(&k, &spec, &execs);
        assert!(c16 < c32);
        assert!(
            (c16 - c32 / 2.0).abs() < 1e-9,
            "16-bit ops cost exactly half"
        );
    }

    #[test]
    fn neighbours_step_one_level() {
        let wls = [8, 16, 32];
        assert_eq!(neighbours(&wls, 32), vec![&16]);
        assert_eq!(neighbours(&wls, 16), vec![&8, &32]);
        assert_eq!(neighbours(&wls, 8), vec![&16]);
    }
}
