//! End-to-end compilation flows: `WLO-SLP` (fig. 3) vs `WLO-First`
//! (fig. 5).
//!
//! Both flows share the front half of the paper's tool-chain — range
//! analysis, IWL determination, the analytical accuracy model — and the
//! back half — scaling insertion, lowering. They differ exactly where the
//! paper differs:
//!
//! * **`WLO-SLP`** (this paper): joint accuracy-aware SLP extraction and
//!   word-length optimization plus scaling optimization;
//! * **`WLO-First`** (baseline): Tabu-search WLO under the optimistic
//!   word-length-proportional cost model, followed by plain
//!   accuracy-unaware SLP extraction on the frozen specification.

use crate::lower::{lower_fixed, lower_scalar, MachineProgram};
use crate::nodes::{value_format, value_wl};
use crate::tabu::{tabu_wlo, TabuOptions};
use crate::wlo_slp::wlo_slp_sched;
use slpwlo_accuracy::{AccuracyEvaluator, AnalyticalEvaluator, EvalOptions, IncrementalEvaluator};
use slpwlo_fixedpoint::range::{RangeAnalysis, RangeOptions, Ranges};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::blocks::collect_blocks;
use slpwlo_ir::dfg::{Dfg, NodeId};
use slpwlo_ir::{ConeIndex, Kernel};
use slpwlo_slp::{extract_rounds_stats, BenefitKind, CandidateView, SelectHooks, SelectStats};
use slpwlo_targets::{SchedKind, TargetModel};

/// A kernel with its once-per-kernel analyses (ranges, noise gains).
///
/// Constraint sweeps reuse one `Prepared` so the expensive gain
/// measurement runs once.
#[derive(Debug)]
pub struct Prepared {
    /// The kernel under optimization.
    pub kernel: Kernel,
    /// Value ranges of every node.
    pub ranges: Ranges,
    /// The analytical accuracy evaluator (`EVALACC`).
    pub eval: AnalyticalEvaluator,
    /// Influence-cone index of the kernel, shared by the cone-restricted
    /// gain measurement and incremental range updates.
    pub cone: ConeIndex,
    /// The journal-carrying range analysis behind [`Self::ranges`];
    /// enables bitwise-exact incremental re-analysis after
    /// structure-preserving kernel edits (see
    /// [`slpwlo_fixedpoint::range::RangeAnalysis::update`]).
    pub range_analysis: RangeAnalysis,
}

/// Runs the shared front end: range analysis plus accuracy-model
/// construction.
pub fn prepare(kernel: Kernel) -> Prepared {
    prepare_with(kernel, &EvalOptions::default())
}

/// [`prepare`] with explicit accuracy-model options (quantization mode,
/// gain-measurement batching/threading).
pub fn prepare_with(kernel: Kernel, opts: &EvalOptions) -> Prepared {
    let cone = ConeIndex::build(&kernel);
    let range_analysis = RangeAnalysis::new(&kernel, &RangeOptions::default());
    let ranges = range_analysis.ranges().clone();
    let eval = AnalyticalEvaluator::new_with_cone(&kernel, opts, Some(&cone));
    Prepared {
        kernel,
        ranges,
        eval,
        cone,
        range_analysis,
    }
}

/// Plain (accuracy-unaware) SLP extraction over a frozen specification,
/// block by block — the `WLO-First` back half's extraction. The spec
/// supplies word lengths for candidate validation *and* the full format
/// context (`current_wl`/`current_fwl`) the cycle-priced benefit model
/// reads; no scaling equalization follows, so mismatched scalings keep
/// their fig. 2 price.
pub fn extract_on_spec(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
    benefit: BenefitKind,
) -> Vec<(slpwlo_ir::blocks::Block, Dfg, Vec<slpwlo_slp::SimdGroup>)> {
    extract_on_spec_sched(kernel, spec, target, benefit, SchedKind::List)
}

/// [`extract_on_spec`] pricing candidates under an explicit scheduler
/// kind (the benefit model relaxes its latency hedge when iterations
/// will overlap).
pub fn extract_on_spec_sched(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
    benefit: BenefitKind,
    sched: SchedKind,
) -> Vec<(slpwlo_ir::blocks::Block, Dfg, Vec<slpwlo_slp::SimdGroup>)> {
    let mut stats = SelectStats::default();
    extract_on_spec_stats(kernel, spec, target, benefit, sched, &mut stats)
}

/// [`extract_on_spec_sched`] accumulating the exact selector's search
/// statistics into `stats` (untouched under the greedy kinds).
pub fn extract_on_spec_stats(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
    benefit: BenefitKind,
    sched: SchedKind,
    stats: &mut SelectStats,
) -> Vec<(slpwlo_ir::blocks::Block, Dfg, Vec<slpwlo_slp::SimdGroup>)> {
    struct FrozenSpecHooks<'a> {
        target: &'a TargetModel,
        spec: &'a FixedPointSpec,
        dfg: &'a Dfg,
        sched: SchedKind,
    }
    impl SelectHooks for FrozenSpecHooks<'_> {
        fn validate(&mut self, view: &CandidateView) -> bool {
            view.group.elems.iter().all(|&e| {
                match self.target.container_wl(value_wl(self.spec, self.dfg, e)) {
                    Some(c) => c <= view.elem_wl,
                    None => false,
                }
            })
        }
        fn current_wl(&self, node: NodeId) -> Option<i32> {
            Some(value_wl(self.spec, self.dfg, node))
        }
        fn current_fwl(&self, node: NodeId) -> Option<i32> {
            Some(value_format(self.spec, self.dfg, node).fwl)
        }
        fn sched_kind(&self) -> SchedKind {
            self.sched
        }
    }
    collect_blocks(kernel)
        .into_iter()
        .map(|b| {
            let dfg = Dfg::from_block(kernel, &b);
            let groups = {
                let mut hooks = FrozenSpecHooks {
                    target,
                    spec,
                    dfg: &dfg,
                    sched,
                };
                extract_rounds_stats(&dfg, target, &mut hooks, benefit, stats)
            };
            (b, dfg, groups)
        })
        .collect()
}

/// Why one pass handed this program to the boundary callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramRole {
    /// The final vectorized program of the flow.
    Simd,
    /// The final all-scalar program under the same specification.
    Scalar,
    /// An intermediate lowering the scheduler guard only prices
    /// (verified only at paranoid levels).
    Candidate,
}

/// One artifact crossing a pass boundary inside a flow.
///
/// The flows hand *every* artifact they produce to the boundary
/// callback of [`wlo_slp_flow_checked`] / [`wlo_first_flow_checked`];
/// the callback (typically `slpwlo-verify`'s `verify_boundary`) decides
/// what to do with each. `is_final` distinguishes the artifact a pass
/// commits to from intermediate states worth checking only under
/// paranoid verification.
#[derive(Debug)]
pub enum PassArtifact<'a> {
    /// The kernel entering the flow.
    Kernel {
        /// The kernel.
        kernel: &'a Kernel,
    },
    /// A fixed-point specification with the ranges it must cover.
    Spec {
        /// The kernel the spec formats.
        kernel: &'a Kernel,
        /// The value ranges the spec was derived from.
        ranges: &'a Ranges,
        /// The specification.
        spec: &'a FixedPointSpec,
        /// `false` for the pre-optimization seed spec.
        is_final: bool,
    },
    /// An SLP grouping for one block.
    Groups {
        /// The block's data-flow graph.
        dfg: &'a Dfg,
        /// The selected groups.
        groups: &'a [slpwlo_slp::SimdGroup],
        /// The target the grouping must be realisable on.
        target: &'a TargetModel,
        /// Which block the grouping belongs to.
        block: slpwlo_ir::BlockId,
        /// `false` before the scheduler guard prunes losing packs.
        is_final: bool,
    },
    /// A lowered machine program.
    Program {
        /// The program.
        program: &'a MachineProgram,
        /// The target it is scheduled against.
        target: &'a TargetModel,
        /// Why the flow produced it.
        role: ProgramRole,
        /// The scheduler the flow prices (and will run) the program
        /// under — the verifier audits the matching schedule kind.
        sched: SchedKind,
    },
}

/// The always-passing boundary callback of the unchecked flow entry
/// points.
fn unchecked(_: PassArtifact<'_>) -> Result<(), std::convert::Infallible> {
    Ok(())
}

fn into_ok<T>(r: Result<T, std::convert::Infallible>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// The scheduler guard: the benefit model is a per-candidate estimate;
/// the configured scheduler (`sched`) is the arbiter. Every block's
/// selected groups are kept only if the block's vectorized form
/// actually schedules faster than dropping them under the final
/// specification — otherwise the word-length decisions stand (the spec
/// is untouched) but the packs are discarded. Blocks schedule
/// independently, so the per-block greedy is exact; the returned
/// program is the cheapest keep/drop assignment and never slower than
/// the all-scalar lowering of the same spec.
fn prune_unprofitable_groups<E>(
    kernel: &Kernel,
    spec: &FixedPointSpec,
    target: &TargetModel,
    sched: SchedKind,
    blocks: &mut [(slpwlo_ir::blocks::Block, Dfg, Vec<slpwlo_slp::SimdGroup>)],
    check: &mut dyn FnMut(PassArtifact<'_>) -> Result<(), E>,
) -> Result<MachineProgram, E> {
    use crate::sched::block_activation_cycles_cached;
    use slpwlo_targets::CycleCache;
    fn candidate<'a>(
        p: &'a MachineProgram,
        target: &'a TargetModel,
        sched: SchedKind,
    ) -> PassArtifact<'a> {
        PassArtifact::Program {
            program: p,
            target,
            role: ProgramRole::Candidate,
            sched,
        }
    }
    // Sorting into document order aligns this list positionally with
    // the lowered program's blocks (lowering emits document order
    // regardless of the input's visit order), so the vectorized and
    // group-free lowerings can be compared block by block — three
    // whole-program lowerings in total, not one per block.
    blocks.sort_by_key(|(b, _, _)| b.id.0);
    let full = lower_fixed(kernel, spec, target, blocks);
    assert_eq!(
        full.blocks.len(),
        blocks.len(),
        "lowering must emit one machine block per source block"
    );
    check(candidate(&full, target, sched))?;
    if blocks.iter().all(|(_, _, g)| g.is_empty()) {
        return Ok(full);
    }
    let bare: Vec<_> = blocks
        .iter()
        .map(|(b, dfg, _)| (b.clone(), dfg.clone(), Vec::new()))
        .collect();
    let none = lower_fixed(kernel, spec, target, &bare);
    check(candidate(&none, target, sched))?;
    // One price cache for every keep/drop comparison: both lowerings of
    // every block draw from the same small set of op queries.
    let costs = CycleCache::new(target);
    let mut pruned = false;
    for (i, (_, _, groups)) in blocks.iter_mut().enumerate() {
        if groups.is_empty() {
            continue;
        }
        // Drop the block's groups only when doing so strictly improves
        // its schedule (ties keep the vector form). Trip-weighted
        // activation cycles, so pipelined steady states are compared on
        // the same footing as sequential iteration costs.
        if block_activation_cycles_cached(&costs, &none.blocks[i], sched)
            < block_activation_cycles_cached(&costs, &full.blocks[i], sched)
        {
            groups.clear();
            pruned = true;
        }
    }
    if !pruned {
        return Ok(full);
    }
    if blocks.iter().all(|(_, _, g)| g.is_empty()) {
        return Ok(none);
    }
    Ok(lower_fixed(kernel, spec, target, blocks))
}

/// Outcome of one flow on one kernel/target/constraint point.
#[derive(Debug)]
pub struct FlowResult {
    /// The final fixed-point specification.
    pub spec: FixedPointSpec,
    /// Lowered SIMD program.
    pub simd: MachineProgram,
    /// Lowered all-scalar program under the same specification.
    pub scalar: MachineProgram,
    /// Number of SIMD groups selected.
    pub group_count: usize,
    /// Predicted output noise power of the final spec (dB).
    pub noise_db: f64,
    /// Exact-selector search statistics (all zeros under the greedy
    /// kinds). Under [`BenefitKind::Optimal`] these always describe the
    /// exact leg's search, even when portfolio arbitration returns the
    /// greedy leg's program.
    pub select: SelectStats,
}

/// Portfolio arbitration for [`BenefitKind::Optimal`]: per-round
/// model-value optimality does not by itself bound the *final* scheduled
/// cycle count (rounds interact through `SETMAXWL`, and the scheduler
/// guard re-prices whole blocks), so the flow also runs the greedy
/// cycle-priced leg end to end and returns whichever program schedules
/// faster — ties go to the exact leg, keeping budget-0 runs bitwise
/// identical to greedy. A greedy win bumps `select.portfolio_fallbacks`;
/// the exact leg's search statistics are carried either way.
fn arbitrate_portfolio<E>(
    exact: FlowResult,
    benefit: BenefitKind,
    target: &TargetModel,
    sched: SchedKind,
    greedy_leg: &mut dyn FnMut(BenefitKind) -> Result<FlowResult, E>,
) -> Result<FlowResult, E> {
    if !matches!(benefit, BenefitKind::Optimal { .. }) {
        return Ok(exact);
    }
    let greedy = greedy_leg(BenefitKind::Cycles)?;
    let costs = slpwlo_targets::CycleCache::new(target);
    let exact_cycles = crate::sched::cycles_per_activation_cached(&costs, &exact.simd, sched);
    let greedy_cycles = crate::sched::cycles_per_activation_cached(&costs, &greedy.simd, sched);
    if greedy_cycles < exact_cycles {
        let mut select = exact.select;
        select.portfolio_fallbacks += 1;
        Ok(FlowResult { select, ..greedy })
    } else {
        Ok(exact)
    }
}

/// The paper's joint flow (`WLO-SLP`, fig. 3).
///
/// The search runs over an [`IncrementalEvaluator`] layered on the
/// prepared analytical model, so each accuracy trial re-walks only the
/// touched noise sources; final reporting still uses the full evaluator.
pub fn wlo_slp_flow(prep: &Prepared, target: &TargetModel, constraint_db: f64) -> FlowResult {
    wlo_slp_flow_with(prep, target, constraint_db, BenefitKind::default())
}

/// [`wlo_slp_flow`] with an explicit SLP benefit strategy.
pub fn wlo_slp_flow_with(
    prep: &Prepared,
    target: &TargetModel,
    constraint_db: f64,
    benefit: BenefitKind,
) -> FlowResult {
    into_ok(wlo_slp_flow_checked(
        prep,
        target,
        constraint_db,
        benefit,
        SchedKind::List,
        &mut unchecked,
    ))
}

/// [`wlo_slp_flow_with`] with an explicit scheduler kind and a
/// pass-boundary callback: every artifact the flow produces — the
/// kernel, the optimized spec, each block's grouping before and after
/// the scheduler guard, candidate lowerings and the final SIMD/scalar
/// programs — is handed to `check` before the flow proceeds. An `Err`
/// aborts the flow and surfaces unchanged; instantiate `E` as
/// [`std::convert::Infallible`] for a free no-op. `sched` governs both
/// the benefit model's admission hedge and the scheduler-guard pricing.
///
/// Under [`BenefitKind::Optimal`] the flow runs twice — the exact leg
/// and the greedy cycle-priced leg — and the faster-scheduling program
/// wins (ties to the exact leg), so the exact kind never returns a
/// program slower than greedy's; `check` sees both legs' artifacts.
pub fn wlo_slp_flow_checked<E>(
    prep: &Prepared,
    target: &TargetModel,
    constraint_db: f64,
    benefit: BenefitKind,
    sched: SchedKind,
    check: &mut dyn FnMut(PassArtifact<'_>) -> Result<(), E>,
) -> Result<FlowResult, E> {
    let exact = wlo_slp_flow_once(prep, target, constraint_db, benefit, sched, check)?;
    arbitrate_portfolio(exact, benefit, target, sched, &mut |kind| {
        wlo_slp_flow_once(prep, target, constraint_db, kind, sched, check)
    })
}

fn wlo_slp_flow_once<E>(
    prep: &Prepared,
    target: &TargetModel,
    constraint_db: f64,
    benefit: BenefitKind,
    sched: SchedKind,
    check: &mut dyn FnMut(PassArtifact<'_>) -> Result<(), E>,
) -> Result<FlowResult, E> {
    check(PassArtifact::Kernel {
        kernel: &prep.kernel,
    })?;
    let eval = IncrementalEvaluator::new(&prep.eval);
    let res = wlo_slp_sched(
        &prep.kernel,
        target,
        &eval,
        constraint_db,
        &prep.ranges,
        benefit,
        sched,
    );
    check(PassArtifact::Spec {
        kernel: &prep.kernel,
        ranges: &prep.ranges,
        spec: &res.spec,
        is_final: true,
    })?;
    let mut blocks: Vec<_> = res
        .blocks
        .into_iter()
        .map(|b| (b.block, b.dfg, b.groups))
        .collect();
    for (b, dfg, groups) in &blocks {
        check(PassArtifact::Groups {
            dfg,
            groups,
            target,
            block: b.id,
            is_final: false,
        })?;
    }
    let simd =
        prune_unprofitable_groups(&prep.kernel, &res.spec, target, sched, &mut blocks, check)?;
    for (b, dfg, groups) in &blocks {
        check(PassArtifact::Groups {
            dfg,
            groups,
            target,
            block: b.id,
            is_final: true,
        })?;
    }
    check(PassArtifact::Program {
        program: &simd,
        target,
        role: ProgramRole::Simd,
        sched,
    })?;
    let group_count = blocks.iter().map(|(_, _, g)| g.len()).sum();
    let scalar = lower_scalar(&prep.kernel, &res.spec, target);
    check(PassArtifact::Program {
        program: &scalar,
        target,
        role: ProgramRole::Scalar,
        sched,
    })?;
    let noise_db = prep.eval.noise_db(&res.spec);
    Ok(FlowResult {
        spec: res.spec,
        simd,
        scalar,
        group_count,
        noise_db,
        select: res.select,
    })
}

/// The baseline flow (`WLO-First`, fig. 5): Tabu WLO first, SLP second,
/// no accuracy awareness in the extraction and no scaling optimization.
pub fn wlo_first_flow(
    prep: &Prepared,
    target: &TargetModel,
    constraint_db: f64,
    tabu: &TabuOptions,
) -> FlowResult {
    wlo_first_flow_with(prep, target, constraint_db, tabu, BenefitKind::default())
}

/// [`wlo_first_flow`] with an explicit SLP benefit strategy (the frozen
/// Tabu specification is the word-length context of the cycle-priced
/// model).
pub fn wlo_first_flow_with(
    prep: &Prepared,
    target: &TargetModel,
    constraint_db: f64,
    tabu: &TabuOptions,
    benefit: BenefitKind,
) -> FlowResult {
    into_ok(wlo_first_flow_checked(
        prep,
        target,
        constraint_db,
        tabu,
        benefit,
        SchedKind::List,
        &mut unchecked,
    ))
}

/// [`wlo_first_flow_with`] with an explicit scheduler kind and a
/// pass-boundary callback; see [`wlo_slp_flow_checked`] for the
/// contract (including the two-leg portfolio under
/// [`BenefitKind::Optimal`]). The pre-Tabu seed specification is
/// reported with `is_final: false`.
pub fn wlo_first_flow_checked<E>(
    prep: &Prepared,
    target: &TargetModel,
    constraint_db: f64,
    tabu: &TabuOptions,
    benefit: BenefitKind,
    sched: SchedKind,
    check: &mut dyn FnMut(PassArtifact<'_>) -> Result<(), E>,
) -> Result<FlowResult, E> {
    let exact = wlo_first_flow_once(prep, target, constraint_db, tabu, benefit, sched, check)?;
    arbitrate_portfolio(exact, benefit, target, sched, &mut |kind| {
        wlo_first_flow_once(prep, target, constraint_db, tabu, kind, sched, check)
    })
}

fn wlo_first_flow_once<E>(
    prep: &Prepared,
    target: &TargetModel,
    constraint_db: f64,
    tabu: &TabuOptions,
    benefit: BenefitKind,
    sched: SchedKind,
    check: &mut dyn FnMut(PassArtifact<'_>) -> Result<(), E>,
) -> Result<FlowResult, E> {
    check(PassArtifact::Kernel {
        kernel: &prep.kernel,
    })?;
    let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, target.max_wl());
    check(PassArtifact::Spec {
        kernel: &prep.kernel,
        ranges: &prep.ranges,
        spec: &spec,
        is_final: false,
    })?;
    let eval = IncrementalEvaluator::new(&prep.eval);
    tabu_wlo(
        &prep.kernel,
        &mut spec,
        &eval,
        constraint_db,
        &target.scalar_wls,
        tabu,
    );
    check(PassArtifact::Spec {
        kernel: &prep.kernel,
        ranges: &prep.ranges,
        spec: &spec,
        is_final: true,
    })?;
    let mut select = SelectStats::default();
    let mut blocks =
        extract_on_spec_stats(&prep.kernel, &spec, target, benefit, sched, &mut select);
    for (b, dfg, groups) in &blocks {
        check(PassArtifact::Groups {
            dfg,
            groups,
            target,
            block: b.id,
            is_final: false,
        })?;
    }
    let simd = prune_unprofitable_groups(&prep.kernel, &spec, target, sched, &mut blocks, check)?;
    for (b, dfg, groups) in &blocks {
        check(PassArtifact::Groups {
            dfg,
            groups,
            target,
            block: b.id,
            is_final: true,
        })?;
    }
    check(PassArtifact::Program {
        program: &simd,
        target,
        role: ProgramRole::Simd,
        sched,
    })?;
    let group_count = blocks.iter().map(|(_, _, g)| g.len()).sum();
    let scalar = lower_scalar(&prep.kernel, &spec, target);
    check(PassArtifact::Program {
        program: &scalar,
        target,
        role: ProgramRole::Scalar,
        sched,
    })?;
    let noise_db = prep.eval.noise_db(&spec);
    Ok(FlowResult {
        spec,
        simd,
        scalar,
        group_count,
        noise_db,
        select,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::xentium;

    const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    #[test]
    fn both_flows_meet_the_constraint() {
        let prep = prepare(parse_kernel(FIR8).unwrap());
        let target = xentium();
        for db in [-20.0, -50.0, -80.0] {
            let a = wlo_slp_flow(&prep, &target, db);
            let b = wlo_first_flow(&prep, &target, db, &TabuOptions::default());
            assert!(a.noise_db <= db, "WLO-SLP at {db}: {}", a.noise_db);
            assert!(b.noise_db <= db, "WLO-First at {db}: {}", b.noise_db);
        }
    }

    #[test]
    fn wlo_slp_packs_where_it_pays_and_never_where_it_loses() {
        use crate::sched::cycles_per_activation;
        let prep = prepare(parse_kernel(FIR8).unwrap());
        // ST240's single memory port makes FIR's vector loads genuinely
        // profitable: the joint flow must find (and keep) groups there.
        let st = slpwlo_targets::st240();
        let a = wlo_slp_flow(&prep, &st, -40.0);
        assert!(
            a.group_count > 0,
            "joint flow must find groups on ST240 at -40 dB"
        );
        assert!(cycles_per_activation(&st, &a.simd) < cycles_per_activation(&st, &a.scalar));
        // On 12-issue XENTIUM this tiny kernel is latency-bound: packing
        // cannot pay, and the scheduler guard must leave the program no
        // slower than its own scalar lowering.
        let x = xentium();
        let b = wlo_slp_flow(&prep, &x, -40.0);
        assert!(
            cycles_per_activation(&x, &b.simd) <= cycles_per_activation(&x, &b.scalar),
            "the scheduler guard must never keep a losing pack"
        );
    }

    #[test]
    fn flows_are_deterministic() {
        let prep = prepare(parse_kernel(FIR8).unwrap());
        let target = xentium();
        let a1 = wlo_first_flow(&prep, &target, -45.0, &TabuOptions::default());
        let a2 = wlo_first_flow(&prep, &target, -45.0, &TabuOptions::default());
        assert_eq!(a1.group_count, a2.group_count);
        assert_eq!(a1.simd.ops_per_activation(), a2.simd.ops_per_activation());
    }
}
