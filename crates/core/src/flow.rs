//! End-to-end compilation flows: `WLO-SLP` (fig. 3) vs `WLO-First`
//! (fig. 5).
//!
//! Both flows share the front half of the paper's tool-chain — range
//! analysis, IWL determination, the analytical accuracy model — and the
//! back half — scaling insertion, lowering. They differ exactly where the
//! paper differs:
//!
//! * **`WLO-SLP`** (this paper): joint accuracy-aware SLP extraction and
//!   word-length optimization plus scaling optimization;
//! * **`WLO-First`** (baseline): Tabu-search WLO under the optimistic
//!   word-length-proportional cost model, followed by plain
//!   accuracy-unaware SLP extraction on the frozen specification.

use crate::lower::{lower_fixed, lower_scalar, MachineProgram};
use crate::nodes::value_wl;
use crate::tabu::{tabu_wlo, TabuOptions};
use crate::wlo_slp::wlo_slp;
use slpwlo_accuracy::{AccuracyEvaluator, AnalyticalEvaluator, EvalOptions, IncrementalEvaluator};
use slpwlo_fixedpoint::range::{determine_ranges, RangeOptions, Ranges};
use slpwlo_fixedpoint::FixedPointSpec;
use slpwlo_ir::blocks::collect_blocks;
use slpwlo_ir::dfg::Dfg;
use slpwlo_ir::Kernel;
use slpwlo_slp::extract_plain;
use slpwlo_targets::TargetModel;

/// A kernel with its once-per-kernel analyses (ranges, noise gains).
///
/// Constraint sweeps reuse one `Prepared` so the expensive gain
/// measurement runs once.
#[derive(Debug)]
pub struct Prepared {
    /// The kernel under optimization.
    pub kernel: Kernel,
    /// Value ranges of every node.
    pub ranges: Ranges,
    /// The analytical accuracy evaluator (`EVALACC`).
    pub eval: AnalyticalEvaluator,
}

/// Runs the shared front end: range analysis plus accuracy-model
/// construction.
pub fn prepare(kernel: Kernel) -> Prepared {
    let ranges = determine_ranges(&kernel, &RangeOptions::default());
    let eval = AnalyticalEvaluator::new(&kernel, &EvalOptions::default());
    Prepared {
        kernel,
        ranges,
        eval,
    }
}

/// Outcome of one flow on one kernel/target/constraint point.
#[derive(Debug)]
pub struct FlowResult {
    /// The final fixed-point specification.
    pub spec: FixedPointSpec,
    /// Lowered SIMD program.
    pub simd: MachineProgram,
    /// Lowered all-scalar program under the same specification.
    pub scalar: MachineProgram,
    /// Number of SIMD groups selected.
    pub group_count: usize,
    /// Predicted output noise power of the final spec (dB).
    pub noise_db: f64,
}

/// The paper's joint flow (`WLO-SLP`, fig. 3).
///
/// The search runs over an [`IncrementalEvaluator`] layered on the
/// prepared analytical model, so each accuracy trial re-walks only the
/// touched noise sources; final reporting still uses the full evaluator.
pub fn wlo_slp_flow(prep: &Prepared, target: &TargetModel, constraint_db: f64) -> FlowResult {
    let eval = IncrementalEvaluator::new(&prep.eval);
    let res = wlo_slp(&prep.kernel, target, &eval, constraint_db, &prep.ranges);
    let blocks: Vec<_> = res
        .blocks
        .into_iter()
        .map(|b| (b.block, b.dfg, b.groups))
        .collect();
    let group_count = blocks.iter().map(|(_, _, g)| g.len()).sum();
    let simd = lower_fixed(&prep.kernel, &res.spec, target, &blocks);
    let scalar = lower_scalar(&prep.kernel, &res.spec, target);
    let noise_db = prep.eval.noise_db(&res.spec);
    FlowResult {
        spec: res.spec,
        simd,
        scalar,
        group_count,
        noise_db,
    }
}

/// The baseline flow (`WLO-First`, fig. 5): Tabu WLO first, SLP second,
/// no accuracy awareness in the extraction and no scaling optimization.
pub fn wlo_first_flow(
    prep: &Prepared,
    target: &TargetModel,
    constraint_db: f64,
    tabu: &TabuOptions,
) -> FlowResult {
    let mut spec = FixedPointSpec::from_ranges(&prep.kernel, &prep.ranges, target.max_wl());
    let eval = IncrementalEvaluator::new(&prep.eval);
    tabu_wlo(
        &prep.kernel,
        &mut spec,
        &eval,
        constraint_db,
        &target.scalar_wls,
        tabu,
    );
    // Plain SLP on the frozen specification.
    let blocks: Vec<_> = collect_blocks(&prep.kernel)
        .into_iter()
        .map(|b| {
            let dfg = Dfg::from_block(&prep.kernel, &b);
            let groups = {
                let spec_ref = &spec;
                let dfg_ref = &dfg;
                extract_plain(&dfg, target, &move |n| value_wl(spec_ref, dfg_ref, n))
            };
            (b, dfg, groups)
        })
        .collect();
    let group_count = blocks.iter().map(|(_, _, g)| g.len()).sum();
    let simd = lower_fixed(&prep.kernel, &spec, target, &blocks);
    let scalar = lower_scalar(&prep.kernel, &spec, target);
    let noise_db = prep.eval.noise_db(&spec);
    FlowResult {
        spec,
        simd,
        scalar,
        group_count,
        noise_db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slpwlo_ir::parser::parse_kernel;
    use slpwlo_targets::xentium;

    const FIR8: &str = r#"
kernel fir8 {
    input x range [-1, 1];
    output y;
    param c[8] = { 0.11, -0.23, 0.31, 0.17, -0.05, 0.27, -0.13, 0.07 };
    array dl[8];
    var acc;
    shiftin dl <- x;
    acc = 0.0;
    for i in 0..8 unroll 4 {
        acc = acc + c[i] * dl[i];
    }
    y = acc;
}
"#;

    #[test]
    fn both_flows_meet_the_constraint() {
        let prep = prepare(parse_kernel(FIR8).unwrap());
        let target = xentium();
        for db in [-20.0, -50.0, -80.0] {
            let a = wlo_slp_flow(&prep, &target, db);
            let b = wlo_first_flow(&prep, &target, db, &TabuOptions::default());
            assert!(a.noise_db <= db, "WLO-SLP at {db}: {}", a.noise_db);
            assert!(b.noise_db <= db, "WLO-First at {db}: {}", b.noise_db);
        }
    }

    #[test]
    fn wlo_slp_packs_where_baseline_cannot_coordinate() {
        let prep = prepare(parse_kernel(FIR8).unwrap());
        let target = xentium();
        let a = wlo_slp_flow(&prep, &target, -40.0);
        assert!(a.group_count > 0, "joint flow must find groups at -40 dB");
    }

    #[test]
    fn flows_are_deterministic() {
        let prep = prepare(parse_kernel(FIR8).unwrap());
        let target = xentium();
        let a1 = wlo_first_flow(&prep, &target, -45.0, &TabuOptions::default());
        let a2 = wlo_first_flow(&prep, &target, -45.0, &TabuOptions::default());
        assert_eq!(a1.group_count, a2.group_count);
        assert_eq!(a1.simd.ops_per_activation(), a2.simd.ops_per_activation());
    }
}
