//! Embedded processor models.
//!
//! Describes the four evaluation targets of the paper — Recore **XENTIUM**
//! (12-issue ultra-low-power VLIW, 2x16 SIMD, no FPU), ST Microelectronics
//! **ST240** (4-issue media VLIW, 2x16 SIMD, single-precision FPU) and the
//! HP **VEX** architecture in 1- and 4-issue configurations (extended, as
//! in the paper, with 16-bit and 8-bit SIMD instructions) — as data:
//! issue width, functional-unit counts, instruction latencies/expansions,
//! SIMD configurations and pack/unpack/soft-float costs.
//!
//! The original evaluation ran vendor cycle-accurate simulators; these
//! models feed the `slpwlo-sim` VLIW list scheduler instead. Absolute
//! cycle counts are approximations, but the *relative* behaviour the paper
//! measures (SIMD benefit vs packing overhead, scalar multiply width
//! effects, soft-float penalty) is represented faithfully.

pub mod cache;
pub mod model;
pub mod presets;

pub use cache::CycleCache;
pub use model::{FuSet, OpClass, OpCost, OpQuery, SchedKind, SimdConfig, TargetModel};
pub use presets::{all_targets, st240, vex, xentium};
