//! The target description data model.

use std::fmt;

/// Functional-unit classes of the VLIW data-path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU (add/sub/logic/moves/packs).
    Alu,
    /// Multiplier.
    Mul,
    /// Memory port (loads/stores).
    Mem,
    /// Shifter.
    Shift,
    /// Floating-point unit (hardware-float targets only).
    Fpu,
}

/// Per-cycle issue capacity of each functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuSet {
    /// Number of ALU issues per cycle.
    pub alu: u32,
    /// Number of multiplier issues per cycle.
    pub mul: u32,
    /// Number of memory accesses per cycle.
    pub mem: u32,
    /// Number of shift issues per cycle.
    pub shift: u32,
    /// Number of FP issues per cycle (zero without an FPU).
    pub fpu: u32,
}

impl FuSet {
    /// Capacity for one class.
    pub fn of(&self, class: OpClass) -> u32 {
        match class {
            OpClass::Alu => self.alu,
            OpClass::Mul => self.mul,
            OpClass::Mem => self.mem,
            OpClass::Shift => self.shift,
            OpClass::Fpu => self.fpu,
        }
    }
}

/// One supported SIMD configuration (`lanes` sub-words of `elem_wl` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdConfig {
    /// Number of packed elements.
    pub lanes: u32,
    /// Element word length in bits.
    pub elem_wl: i32,
}

/// Which scheduler prices (and legalizes) machine blocks.
///
/// Lives next to the cost model rather than in `slpwlo-core` because
/// every layer that prices code — the SLP benefit model, the core
/// scheduler, the verifier, the driver — needs the type, and `slpwlo-slp`
/// cannot depend on `slpwlo-core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SchedKind {
    /// Sequential-issue resource-constrained list scheduling: iterations
    /// of a loop block execute back to back.
    #[default]
    List,
    /// Iterative modulo scheduling (software pipelining) for in-loop
    /// blocks: a branch-and-bound search overlaps iterations at the
    /// smallest initiation interval it can decide. `budget` caps the
    /// branch-and-bound placement trials per candidate II; an II whose
    /// search exhausts the budget is abandoned and the next II is tried,
    /// and when no II yields a placement the block falls back to its
    /// list schedule, so pricing is always defined. Blocks that are not
    /// in a loop (or not pipelinable) use the list schedule regardless.
    Modulo {
        /// Maximum branch-and-bound placement trials per block.
        budget: u32,
    },
}

impl SchedKind {
    /// Default branch-and-bound budget of [`SchedKind::modulo`]: ample
    /// for every kernel in the suite (which needs a few hundred trials)
    /// while still bounding adversarial generated blocks.
    pub const DEFAULT_BUDGET: u32 = 65_536;

    /// Modulo scheduling with the default trial budget.
    pub fn modulo() -> Self {
        SchedKind::Modulo {
            budget: Self::DEFAULT_BUDGET,
        }
    }
}

impl fmt::Display for SchedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedKind::List => "list",
            SchedKind::Modulo { .. } => "modulo",
        })
    }
}

/// Cost of issuing one (macro-)operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Functional unit consumed.
    pub class: OpClass,
    /// Cycles from issue to result availability.
    pub latency: u32,
    /// Number of unit issue slots consumed (macro-expansion for e.g.
    /// 32-bit multiplies on a 16x16 multiplier).
    pub slots: u32,
    /// When `true` the operation occupies the entire machine for
    /// `latency` cycles (soft-float library call — no ILP around calls).
    pub serialize: bool,
}

impl OpCost {
    fn unit(class: OpClass, latency: u32) -> Self {
        OpCost {
            class,
            latency,
            slots: 1,
            serialize: false,
        }
    }
}

/// Abstract machine operations whose cost a target can be asked for.
///
/// The lowered machine program of `slpwlo-core` maps onto these queries;
/// keeping them here avoids a dependency cycle between the target models
/// and the lowering. Queries are small `Copy` values and hash cheaply,
/// which is what lets [`crate::CycleCache`] memoize their prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpQuery {
    /// Scalar add/sub/neg at the given word length. Word lengths above
    /// the datapath split into a carry chain (add + add-with-carry).
    Add(i32),
    /// Scalar multiply at the given word length.
    Mul(i32),
    /// Scalar shift (scaling) at the given word length. Word lengths
    /// above the datapath need a multi-word shift (hi, lo, combine).
    Shift(i32),
    /// Scalar load of the given word length.
    Load(i32),
    /// Scalar store of the given word length.
    Store(i32),
    /// SIMD add/sub over `lanes` sub-words.
    VAdd(u32),
    /// SIMD multiply over `lanes` sub-words.
    VMul(u32),
    /// SIMD shift (same amount per lane) over `lanes` sub-words.
    VShift(u32),
    /// SIMD (contiguous, aligned) load of `lanes` sub-words.
    VLoad(u32),
    /// SIMD store of `lanes` sub-words.
    VStore(u32),
    /// SIMD load of `lanes` sub-words from a contiguous but misaligned
    /// address (the access plus the realign op lowering emits after it).
    VLoadU(u32),
    /// SIMD store of `lanes` sub-words to a misaligned address.
    VStoreU(u32),
    /// Non-contiguous vector load: `lanes` scalar loads feeding one
    /// register (the pack that completes the gather is ALU traffic,
    /// priced separately — see [`TargetModel::cycles`]).
    Gather(u32),
    /// Non-contiguous vector store: `lanes` scalar stores draining one
    /// register (the per-lane extracts are ALU traffic, priced
    /// separately — see [`TargetModel::cycles`]).
    Scatter(u32),
    /// Build one vector register from `lanes` scalar values.
    Pack(u32),
    /// Broadcast one scalar value into all `lanes`.
    Splat(u32),
    /// Extract one scalar from a vector register.
    Extract,
    /// Floating-point add (hardware or soft-float).
    FAdd,
    /// Floating-point multiply (hardware or soft-float).
    FMul,
    /// Float load.
    FLoad,
    /// Float store.
    FStore,
}

/// A complete processor description.
#[derive(Debug, Clone)]
pub struct TargetModel {
    /// Display name (e.g. `"XENTIUM"`).
    pub name: String,
    /// VLIW issue width (operations per cycle across all units).
    pub issue_width: u32,
    /// Scalar datapath width in bits (32 for all paper targets).
    pub datapath: i32,
    /// Natively supported scalar word lengths, descending.
    pub scalar_wls: Vec<i32>,
    /// Supported SIMD configurations.
    pub simd: Vec<SimdConfig>,
    /// Functional-unit capacities per cycle.
    pub units: FuSet,
    /// Latency of a native multiply (result width <= datapath).
    pub mul_latency: u32,
    /// Issue-slot expansion of a full-width (datapath-bit) multiply on
    /// targets whose multiplier is narrower (e.g. 16x16): number of
    /// multiplier slots consumed.
    pub wide_mul_slots: u32,
    /// Extra latency of a full-width multiply.
    pub wide_mul_latency: u32,
    /// Load-use latency.
    pub load_latency: u32,
    /// ALU ops needed to pack `lanes` scalars into one vector register is
    /// `pack_ops_per_lane * lanes`.
    pub pack_ops_per_lane: u32,
    /// ALU ops needed to extract one scalar from a vector register.
    pub unpack_ops: u32,
    /// `true` when a single-cycle barrel shifter is available (otherwise
    /// shifts cost one cycle per position — shift-register style).
    pub barrel_shifter: bool,
    /// Hardware floating point available.
    pub hw_float: bool,
    /// Latency of hardware FP add / serialized cost of soft-float add.
    pub fadd_cycles: u32,
    /// Latency of hardware FP mul / serialized cost of soft-float mul.
    pub fmul_cycles: u32,
    /// Per-iteration loop control overhead in issue slots (branch,
    /// induction update).
    pub loop_overhead_ops: u32,
}

impl TargetModel {
    /// Maximum natively supported scalar word length.
    pub fn max_wl(&self) -> i32 {
        self.scalar_wls
            .iter()
            .copied()
            .max()
            .unwrap_or(self.datapath)
    }

    /// Smallest natively supported scalar word length that can hold `wl`
    /// bits; `None` if `wl` exceeds the datapath.
    pub fn container_wl(&self, wl: i32) -> Option<i32> {
        self.scalar_wls.iter().copied().filter(|&c| c >= wl).min()
    }

    /// Equation (1) of the paper: the maximum supported element word
    /// length `m` such that `m * n_elem <= SIMD size`, restricted to the
    /// target's SIMD configurations. `None` when the target cannot
    /// execute groups of `n_elem` elements.
    pub fn simd_element_wl(&self, n_elem: u32) -> Option<i32> {
        self.simd
            .iter()
            .filter(|c| c.lanes == n_elem && c.elem_wl * n_elem as i32 <= self.datapath)
            .map(|c| c.elem_wl)
            .max()
    }

    /// All group sizes the target supports (ascending).
    pub fn group_sizes(&self) -> Vec<u32> {
        let mut sizes: Vec<u32> = self.simd.iter().map(|c| c.lanes).collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    }

    /// Cost of one abstract machine operation.
    ///
    /// # Panics
    ///
    /// Panics if a SIMD query names an unsupported lane count — callers
    /// must consult [`simd_element_wl`](Self::simd_element_wl) first.
    pub fn cost(&self, q: OpQuery) -> OpCost {
        match q {
            OpQuery::Add(wl) => {
                if wl > self.datapath {
                    // Carry-chain split: low-word add + add-with-carry.
                    OpCost {
                        class: OpClass::Alu,
                        latency: 2,
                        slots: 2,
                        serialize: false,
                    }
                } else {
                    OpCost::unit(OpClass::Alu, 1)
                }
            }
            OpQuery::Mul(wl) => {
                if wl > self.native_mul_wl() {
                    OpCost {
                        class: OpClass::Mul,
                        latency: self.wide_mul_latency,
                        slots: self.wide_mul_slots,
                        serialize: false,
                    }
                } else {
                    OpCost::unit(OpClass::Mul, self.mul_latency)
                }
            }
            OpQuery::Shift(wl) => {
                // Shift-register style (no barrel shifter) occupies the
                // unit for its amount; modelled as a 2-cycle average.
                let base = if self.barrel_shifter { 1 } else { 2 };
                if wl > self.datapath {
                    // Multi-word shift: shift hi, shift lo, combine.
                    OpCost {
                        class: OpClass::Shift,
                        latency: base + 1,
                        slots: 3,
                        serialize: false,
                    }
                } else {
                    OpCost::unit(OpClass::Shift, base)
                }
            }
            OpQuery::Load(_) | OpQuery::VLoad(_) | OpQuery::FLoad => {
                OpCost::unit(OpClass::Mem, self.load_latency)
            }
            OpQuery::Store(_) | OpQuery::VStore(_) | OpQuery::FStore => {
                OpCost::unit(OpClass::Mem, 1)
            }
            // Composite queries: `cost()` prices exactly the
            // memory-access component of the op sequence lowering emits
            // (the ALU traffic — realign, pack, extracts — is lowered as
            // separate `Add`/`Pack`/`Extract` ops the scheduler prices
            // individually); [`cycles`](Self::cycles) folds the full
            // sequence. Both views derive from the same primitives, so
            // they can never drift apart.
            OpQuery::VLoadU(l) => {
                self.assert_lanes(l);
                self.cost(OpQuery::VLoad(l))
            }
            OpQuery::VStoreU(l) => {
                self.assert_lanes(l);
                self.cost(OpQuery::VStore(l))
            }
            OpQuery::Gather(l) => {
                let load = self.cost(OpQuery::Load(self.datapath));
                OpCost {
                    class: load.class,
                    latency: load.latency,
                    slots: l * load.slots,
                    serialize: false,
                }
            }
            OpQuery::Scatter(l) => {
                let store = self.cost(OpQuery::Store(self.datapath));
                OpCost {
                    class: store.class,
                    latency: store.latency,
                    slots: l * store.slots,
                    serialize: false,
                }
            }
            OpQuery::VAdd(l) => {
                self.assert_lanes(l);
                OpCost::unit(OpClass::Alu, 1)
            }
            OpQuery::VMul(l) => {
                self.assert_lanes(l);
                OpCost::unit(OpClass::Mul, self.mul_latency)
            }
            OpQuery::VShift(l) => {
                self.assert_lanes(l);
                OpCost::unit(OpClass::Shift, if self.barrel_shifter { 1 } else { 2 })
            }
            OpQuery::Pack(l) => OpCost {
                class: OpClass::Alu,
                latency: 1,
                slots: self.pack_ops_per_lane * l,
                serialize: false,
            },
            OpQuery::Splat(_) => OpCost::unit(OpClass::Alu, 1),
            OpQuery::Extract => OpCost {
                class: OpClass::Alu,
                latency: 1,
                slots: self.unpack_ops,
                serialize: false,
            },
            OpQuery::FAdd => self.float_cost(self.fadd_cycles),
            OpQuery::FMul => self.float_cost(self.fmul_cycles),
        }
    }

    /// Throughput price of one abstract operation in cycles — the
    /// steady-state cost of issuing it once per loop iteration, derived
    /// from [`cost`](Self::cost): `slots / min(unit capacity, issue
    /// width)` for pipelined ops, the full latency for serializing ones.
    ///
    /// Composite queries fold over the same primitive [`cost`] calls the
    /// scheduler prices for the lowered program, so selection and
    /// scheduling can never disagree on a pack/unpack/gather price:
    ///
    /// * [`OpQuery::Gather`] = `lanes` scalar loads + one [`OpQuery::Pack`];
    /// * [`OpQuery::Scatter`] = `lanes` extracts + `lanes` scalar stores;
    /// * [`OpQuery::VLoadU`]/[`OpQuery::VStoreU`] = the aligned access +
    ///   the one-ALU-op realign lowering emits after/before it.
    ///
    /// This is the single cost source of the SLP benefit layer
    /// (`slpwlo-slp`'s `BenefitKind::Cycles`).
    pub fn cycles(&self, q: OpQuery) -> f64 {
        match q {
            OpQuery::Gather(l) => {
                l as f64 * self.cycles(OpQuery::Load(self.datapath)) + self.cycles(OpQuery::Pack(l))
            }
            OpQuery::Scatter(l) => {
                l as f64
                    * (self.cycles(OpQuery::Extract) + self.cycles(OpQuery::Store(self.datapath)))
            }
            OpQuery::VLoadU(l) => {
                self.cycles(OpQuery::VLoad(l)) + self.cycles(OpQuery::Add(self.datapath))
            }
            OpQuery::VStoreU(l) => {
                self.cycles(OpQuery::VStore(l)) + self.cycles(OpQuery::Add(self.datapath))
            }
            _ => {
                let c = self.cost(q);
                if c.serialize {
                    c.latency as f64
                } else {
                    let cap = self.units.of(c.class).min(self.issue_width).max(1);
                    c.slots as f64 / cap as f64
                }
            }
        }
    }

    /// Widest multiply executed natively in one multiplier slot.
    pub fn native_mul_wl(&self) -> i32 {
        if self.wide_mul_slots > 1 {
            16
        } else {
            self.datapath
        }
    }

    fn float_cost(&self, cycles: u32) -> OpCost {
        if self.hw_float {
            OpCost::unit(OpClass::Fpu, cycles)
        } else {
            // Soft-float library call: serializes the machine.
            OpCost {
                class: OpClass::Alu,
                latency: cycles,
                slots: 1,
                serialize: true,
            }
        }
    }

    fn assert_lanes(&self, lanes: u32) {
        assert!(
            self.simd.iter().any(|c| c.lanes == lanes),
            "target {} does not support {}-lane SIMD",
            self.name,
            lanes
        );
    }
}

impl fmt::Display for TargetModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}-issue", self.name, self.issue_width)?;
        for c in &self.simd {
            write!(f, ", {}x{}", c.lanes, c.elem_wl)?;
        }
        write!(
            f,
            "{})",
            if self.hw_float {
                ", hw-float"
            } else {
                ", soft-float"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{st240, vex, xentium};

    #[test]
    fn equation_one_on_2x16_targets() {
        let x = xentium();
        assert_eq!(x.simd_element_wl(2), Some(16));
        assert_eq!(x.simd_element_wl(4), None, "XENTIUM has no 4x8 SIMD");
        let v = vex(4);
        assert_eq!(v.simd_element_wl(2), Some(16));
        assert_eq!(v.simd_element_wl(4), Some(8));
    }

    #[test]
    fn container_wl_rounds_up() {
        let x = xentium();
        assert_eq!(x.container_wl(13), Some(16));
        assert_eq!(x.container_wl(16), Some(16));
        assert_eq!(x.container_wl(17), Some(32));
        assert_eq!(x.container_wl(33), None);
    }

    #[test]
    fn wide_mul_expands_on_xentium_but_not_st240() {
        let x = xentium();
        let wide = x.cost(OpQuery::Mul(32));
        let narrow = x.cost(OpQuery::Mul(16));
        assert!(
            wide.slots > narrow.slots,
            "32-bit mul must expand on a 16x16 multiplier"
        );
        let s = st240();
        assert_eq!(
            s.cost(OpQuery::Mul(32)).slots,
            1,
            "ST240 multiplies 32-bit natively"
        );
    }

    #[test]
    fn soft_float_serializes_only_without_fpu() {
        let x = xentium();
        assert!(x.cost(OpQuery::FAdd).serialize);
        assert!(x.cost(OpQuery::FAdd).latency >= 20);
        let s = st240();
        assert!(!s.cost(OpQuery::FAdd).serialize);
        assert_eq!(s.cost(OpQuery::FAdd).class, OpClass::Fpu);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_lanes_panic() {
        let x = xentium();
        let _ = x.cost(OpQuery::VMul(4));
    }

    #[test]
    fn wide_add_and_shift_split_above_the_datapath() {
        let x = xentium();
        assert_eq!(x.cost(OpQuery::Add(32)).slots, 1);
        assert_eq!(x.cost(OpQuery::Add(40)).slots, 2, "carry-chain split");
        assert_eq!(x.cost(OpQuery::Shift(32)).slots, 1);
        assert_eq!(x.cost(OpQuery::Shift(40)).slots, 3, "multi-word shift");
    }

    #[test]
    fn composite_cycles_fold_over_primitive_costs() {
        for t in [xentium(), st240(), vex(4), vex(1)] {
            let l = 2;
            let gather = t.cycles(OpQuery::Gather(l));
            let parts = l as f64 * t.cycles(OpQuery::Load(t.datapath)) + t.cycles(OpQuery::Pack(l));
            assert_eq!(gather, parts, "{}", t.name);
            let scatter = t.cycles(OpQuery::Scatter(l));
            assert_eq!(
                scatter,
                l as f64 * (t.cycles(OpQuery::Extract) + t.cycles(OpQuery::Store(t.datapath))),
                "{}",
                t.name
            );
            assert!(
                t.cycles(OpQuery::VLoadU(l)) > t.cycles(OpQuery::VLoad(l)),
                "{}: misalignment must cost",
                t.name
            );
        }
    }

    #[test]
    fn single_issue_prices_packing_at_full_cycles() {
        // The motivating case: on VEX-1 every pack insert is a whole
        // cycle, while on 12-issue XENTIUM four ALUs absorb them.
        let narrow = vex(1);
        let wide = xentium();
        assert_eq!(narrow.cycles(OpQuery::Pack(2)), 2.0);
        assert_eq!(wide.cycles(OpQuery::Pack(2)), 0.5);
        assert_eq!(narrow.cycles(OpQuery::Extract), 1.0);
    }

    #[test]
    fn wide_mul_cycles_reflect_macro_expansion() {
        let x = xentium(); // 16x16 multiplier, 2 units
        assert!(x.cycles(OpQuery::Mul(32)) > x.cycles(OpQuery::Mul(16)));
        assert_eq!(x.cycles(OpQuery::Mul(32)), 2.0, "4 slots over 2 units");
        let s = st240(); // native 32x32
        assert_eq!(s.cycles(OpQuery::Mul(32)), s.cycles(OpQuery::Mul(16)));
    }

    #[test]
    fn soft_float_cycles_are_the_serialized_latency() {
        let x = xentium();
        assert_eq!(x.cycles(OpQuery::FAdd), x.fadd_cycles as f64);
    }

    #[test]
    fn splat_is_one_broadcast_op() {
        for t in [xentium(), vex(1)] {
            assert_eq!(t.cost(OpQuery::Splat(2)).slots, 1, "{}", t.name);
            assert!(t.cycles(OpQuery::Splat(2)) < t.cycles(OpQuery::Pack(2)));
        }
    }

    #[test]
    fn display_format() {
        let x = xentium();
        let s = x.to_string();
        assert!(s.contains("XENTIUM") && s.contains("2x16") && s.contains("soft-float"));
    }

    #[test]
    fn group_sizes_sorted() {
        assert_eq!(vex(1).group_sizes(), vec![2, 4]);
        assert_eq!(st240().group_sizes(), vec![2]);
    }
}
