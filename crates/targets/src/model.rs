//! The target description data model.

use std::fmt;

/// Functional-unit classes of the VLIW data-path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU (add/sub/logic/moves/packs).
    Alu,
    /// Multiplier.
    Mul,
    /// Memory port (loads/stores).
    Mem,
    /// Shifter.
    Shift,
    /// Floating-point unit (hardware-float targets only).
    Fpu,
}

/// Per-cycle issue capacity of each functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuSet {
    /// Number of ALU issues per cycle.
    pub alu: u32,
    /// Number of multiplier issues per cycle.
    pub mul: u32,
    /// Number of memory accesses per cycle.
    pub mem: u32,
    /// Number of shift issues per cycle.
    pub shift: u32,
    /// Number of FP issues per cycle (zero without an FPU).
    pub fpu: u32,
}

impl FuSet {
    /// Capacity for one class.
    pub fn of(&self, class: OpClass) -> u32 {
        match class {
            OpClass::Alu => self.alu,
            OpClass::Mul => self.mul,
            OpClass::Mem => self.mem,
            OpClass::Shift => self.shift,
            OpClass::Fpu => self.fpu,
        }
    }
}

/// One supported SIMD configuration (`lanes` sub-words of `elem_wl` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdConfig {
    /// Number of packed elements.
    pub lanes: u32,
    /// Element word length in bits.
    pub elem_wl: i32,
}

/// Cost of issuing one (macro-)operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Functional unit consumed.
    pub class: OpClass,
    /// Cycles from issue to result availability.
    pub latency: u32,
    /// Number of unit issue slots consumed (macro-expansion for e.g.
    /// 32-bit multiplies on a 16x16 multiplier).
    pub slots: u32,
    /// When `true` the operation occupies the entire machine for
    /// `latency` cycles (soft-float library call — no ILP around calls).
    pub serialize: bool,
}

impl OpCost {
    fn unit(class: OpClass, latency: u32) -> Self {
        OpCost {
            class,
            latency,
            slots: 1,
            serialize: false,
        }
    }
}

/// Abstract machine operations whose cost a target can be asked for.
///
/// The lowered machine program of `slpwlo-core` maps onto these queries;
/// keeping them here avoids a dependency cycle between the target models
/// and the lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpQuery {
    /// Scalar add/sub/neg at the given word length.
    Add(i32),
    /// Scalar multiply at the given word length.
    Mul(i32),
    /// Scalar shift (scaling) at the given word length.
    Shift(i32),
    /// Scalar load of the given word length.
    Load(i32),
    /// Scalar store of the given word length.
    Store(i32),
    /// SIMD add/sub over `lanes` sub-words.
    VAdd(u32),
    /// SIMD multiply over `lanes` sub-words.
    VMul(u32),
    /// SIMD shift (same amount per lane) over `lanes` sub-words.
    VShift(u32),
    /// SIMD (contiguous, aligned) load of `lanes` sub-words.
    VLoad(u32),
    /// SIMD store of `lanes` sub-words.
    VStore(u32),
    /// Build one vector register from `lanes` scalar values.
    Pack(u32),
    /// Extract one scalar from a vector register.
    Unpack,
    /// Floating-point add (hardware or soft-float).
    FAdd,
    /// Floating-point multiply (hardware or soft-float).
    FMul,
    /// Float load.
    FLoad,
    /// Float store.
    FStore,
}

/// A complete processor description.
#[derive(Debug, Clone)]
pub struct TargetModel {
    /// Display name (e.g. `"XENTIUM"`).
    pub name: String,
    /// VLIW issue width (operations per cycle across all units).
    pub issue_width: u32,
    /// Scalar datapath width in bits (32 for all paper targets).
    pub datapath: i32,
    /// Natively supported scalar word lengths, descending.
    pub scalar_wls: Vec<i32>,
    /// Supported SIMD configurations.
    pub simd: Vec<SimdConfig>,
    /// Functional-unit capacities per cycle.
    pub units: FuSet,
    /// Latency of a native multiply (result width <= datapath).
    pub mul_latency: u32,
    /// Issue-slot expansion of a full-width (datapath-bit) multiply on
    /// targets whose multiplier is narrower (e.g. 16x16): number of
    /// multiplier slots consumed.
    pub wide_mul_slots: u32,
    /// Extra latency of a full-width multiply.
    pub wide_mul_latency: u32,
    /// Load-use latency.
    pub load_latency: u32,
    /// ALU ops needed to pack `lanes` scalars into one vector register is
    /// `pack_ops_per_lane * lanes`.
    pub pack_ops_per_lane: u32,
    /// ALU ops needed to extract one scalar from a vector register.
    pub unpack_ops: u32,
    /// `true` when a single-cycle barrel shifter is available (otherwise
    /// shifts cost one cycle per position — shift-register style).
    pub barrel_shifter: bool,
    /// Hardware floating point available.
    pub hw_float: bool,
    /// Latency of hardware FP add / serialized cost of soft-float add.
    pub fadd_cycles: u32,
    /// Latency of hardware FP mul / serialized cost of soft-float mul.
    pub fmul_cycles: u32,
    /// Per-iteration loop control overhead in issue slots (branch,
    /// induction update).
    pub loop_overhead_ops: u32,
}

impl TargetModel {
    /// Maximum natively supported scalar word length.
    pub fn max_wl(&self) -> i32 {
        self.scalar_wls
            .iter()
            .copied()
            .max()
            .unwrap_or(self.datapath)
    }

    /// Smallest natively supported scalar word length that can hold `wl`
    /// bits; `None` if `wl` exceeds the datapath.
    pub fn container_wl(&self, wl: i32) -> Option<i32> {
        self.scalar_wls.iter().copied().filter(|&c| c >= wl).min()
    }

    /// Equation (1) of the paper: the maximum supported element word
    /// length `m` such that `m * n_elem <= SIMD size`, restricted to the
    /// target's SIMD configurations. `None` when the target cannot
    /// execute groups of `n_elem` elements.
    pub fn simd_element_wl(&self, n_elem: u32) -> Option<i32> {
        self.simd
            .iter()
            .filter(|c| c.lanes == n_elem && c.elem_wl * n_elem as i32 <= self.datapath)
            .map(|c| c.elem_wl)
            .max()
    }

    /// All group sizes the target supports (ascending).
    pub fn group_sizes(&self) -> Vec<u32> {
        let mut sizes: Vec<u32> = self.simd.iter().map(|c| c.lanes).collect();
        sizes.sort_unstable();
        sizes.dedup();
        sizes
    }

    /// Cost of one abstract machine operation.
    ///
    /// # Panics
    ///
    /// Panics if a SIMD query names an unsupported lane count — callers
    /// must consult [`simd_element_wl`](Self::simd_element_wl) first.
    pub fn cost(&self, q: OpQuery) -> OpCost {
        match q {
            OpQuery::Add(_) => OpCost::unit(OpClass::Alu, 1),
            OpQuery::Mul(wl) => {
                if wl > self.native_mul_wl() {
                    OpCost {
                        class: OpClass::Mul,
                        latency: self.wide_mul_latency,
                        slots: self.wide_mul_slots,
                        serialize: false,
                    }
                } else {
                    OpCost::unit(OpClass::Mul, self.mul_latency)
                }
            }
            OpQuery::Shift(_) => {
                if self.barrel_shifter {
                    OpCost::unit(OpClass::Shift, 1)
                } else {
                    // Shift-register style: a shift occupies the unit for
                    // its amount; modelled as a 2-cycle average.
                    OpCost {
                        class: OpClass::Shift,
                        latency: 2,
                        slots: 1,
                        serialize: false,
                    }
                }
            }
            OpQuery::Load(_) | OpQuery::VLoad(_) | OpQuery::FLoad => {
                OpCost::unit(OpClass::Mem, self.load_latency)
            }
            OpQuery::Store(_) | OpQuery::VStore(_) | OpQuery::FStore => {
                OpCost::unit(OpClass::Mem, 1)
            }
            OpQuery::VAdd(l) => {
                self.assert_lanes(l);
                OpCost::unit(OpClass::Alu, 1)
            }
            OpQuery::VMul(l) => {
                self.assert_lanes(l);
                OpCost::unit(OpClass::Mul, self.mul_latency)
            }
            OpQuery::VShift(l) => {
                self.assert_lanes(l);
                OpCost::unit(OpClass::Shift, if self.barrel_shifter { 1 } else { 2 })
            }
            OpQuery::Pack(l) => OpCost {
                class: OpClass::Alu,
                latency: 1,
                slots: self.pack_ops_per_lane * l,
                serialize: false,
            },
            OpQuery::Unpack => OpCost {
                class: OpClass::Alu,
                latency: 1,
                slots: self.unpack_ops,
                serialize: false,
            },
            OpQuery::FAdd => self.float_cost(self.fadd_cycles),
            OpQuery::FMul => self.float_cost(self.fmul_cycles),
        }
    }

    /// Widest multiply executed natively in one multiplier slot.
    pub fn native_mul_wl(&self) -> i32 {
        if self.wide_mul_slots > 1 {
            16
        } else {
            self.datapath
        }
    }

    fn float_cost(&self, cycles: u32) -> OpCost {
        if self.hw_float {
            OpCost::unit(OpClass::Fpu, cycles)
        } else {
            // Soft-float library call: serializes the machine.
            OpCost {
                class: OpClass::Alu,
                latency: cycles,
                slots: 1,
                serialize: true,
            }
        }
    }

    fn assert_lanes(&self, lanes: u32) {
        assert!(
            self.simd.iter().any(|c| c.lanes == lanes),
            "target {} does not support {}-lane SIMD",
            self.name,
            lanes
        );
    }
}

impl fmt::Display for TargetModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}-issue", self.name, self.issue_width)?;
        for c in &self.simd {
            write!(f, ", {}x{}", c.lanes, c.elem_wl)?;
        }
        write!(
            f,
            "{})",
            if self.hw_float {
                ", hw-float"
            } else {
                ", soft-float"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{st240, vex, xentium};

    #[test]
    fn equation_one_on_2x16_targets() {
        let x = xentium();
        assert_eq!(x.simd_element_wl(2), Some(16));
        assert_eq!(x.simd_element_wl(4), None, "XENTIUM has no 4x8 SIMD");
        let v = vex(4);
        assert_eq!(v.simd_element_wl(2), Some(16));
        assert_eq!(v.simd_element_wl(4), Some(8));
    }

    #[test]
    fn container_wl_rounds_up() {
        let x = xentium();
        assert_eq!(x.container_wl(13), Some(16));
        assert_eq!(x.container_wl(16), Some(16));
        assert_eq!(x.container_wl(17), Some(32));
        assert_eq!(x.container_wl(33), None);
    }

    #[test]
    fn wide_mul_expands_on_xentium_but_not_st240() {
        let x = xentium();
        let wide = x.cost(OpQuery::Mul(32));
        let narrow = x.cost(OpQuery::Mul(16));
        assert!(
            wide.slots > narrow.slots,
            "32-bit mul must expand on a 16x16 multiplier"
        );
        let s = st240();
        assert_eq!(
            s.cost(OpQuery::Mul(32)).slots,
            1,
            "ST240 multiplies 32-bit natively"
        );
    }

    #[test]
    fn soft_float_serializes_only_without_fpu() {
        let x = xentium();
        assert!(x.cost(OpQuery::FAdd).serialize);
        assert!(x.cost(OpQuery::FAdd).latency >= 20);
        let s = st240();
        assert!(!s.cost(OpQuery::FAdd).serialize);
        assert_eq!(s.cost(OpQuery::FAdd).class, OpClass::Fpu);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_lanes_panic() {
        let x = xentium();
        let _ = x.cost(OpQuery::VMul(4));
    }

    #[test]
    fn display_format() {
        let x = xentium();
        let s = x.to_string();
        assert!(s.contains("XENTIUM") && s.contains("2x16") && s.contains("soft-float"));
    }

    #[test]
    fn group_sizes_sorted() {
        assert_eq!(vex(1).group_sizes(), vec![2, 4]);
        assert_eq!(st240().group_sizes(), vec![2]);
    }
}
