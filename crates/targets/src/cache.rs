//! Memoized op pricing.
//!
//! [`TargetModel::cycles`] folds composite queries (gathers, scatters,
//! unaligned accesses) over several primitive [`TargetModel::cost`]
//! calls, and both the SLP benefit model and the list scheduler ask the
//! same handful of `(op kind, word length)` queries thousands of times
//! per optimization run — once per candidate per selection iteration,
//! once per machine op per schedule. [`CycleCache`] memoizes both entry
//! points: queries with in-range parameters index a direct-mapped flat
//! table (one bounds-checked load), the rest fall back to a hash map.
//!
//! The cache is a pure memoization layer: every hit returns exactly the
//! value the uncached fold would, bit for bit (the entry *is* that fold's
//! result), so pricing through a cache can never change a selection or
//! scheduling decision.

use crate::model::{OpCost, OpQuery, TargetModel};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher for the tiny [`OpQuery`] key space.
///
/// The cache sits on the benefit model's innermost loop, where the
/// default SipHash costs as much as the fold it saves; op queries are a
/// discriminant plus at most one small integer, so a single 64-bit
/// multiply mixes them fine.
#[derive(Debug, Default)]
pub struct QueryHasher(u64);

impl Hasher for QueryHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        // The odd multiplier diffuses low-entropy inputs across the high
        // bits HashMap uses for bucketing (fibonacci hashing).
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    fn write_i32(&mut self, v: i32) {
        self.write_u64(v as u32 as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type QueryMap<V> = HashMap<OpQuery, V, BuildHasherDefault<QueryHasher>>;

/// Variant count of [`OpQuery`] (direct-mapped front table rows).
const VARIANTS: usize = 21;
/// Parameter slots per variant: word lengths stay within two datapath
/// words (≤ 64 bits) and lane counts are far smaller, so almost every
/// live query lands in the table; larger parameters fall back to the
/// hash map.
const PARAMS: usize = 65;

/// Flat index of a query in the direct-mapped table, `None` when its
/// parameter is out of the table's range.
fn slot(q: OpQuery) -> Option<usize> {
    use OpQuery::*;
    let (v, p) = match q {
        Add(w) => (0, i64::from(w)),
        Mul(w) => (1, i64::from(w)),
        Shift(w) => (2, i64::from(w)),
        Load(w) => (3, i64::from(w)),
        Store(w) => (4, i64::from(w)),
        VAdd(l) => (5, i64::from(l)),
        VMul(l) => (6, i64::from(l)),
        VShift(l) => (7, i64::from(l)),
        VLoad(l) => (8, i64::from(l)),
        VStore(l) => (9, i64::from(l)),
        VLoadU(l) => (10, i64::from(l)),
        VStoreU(l) => (11, i64::from(l)),
        Gather(l) => (12, i64::from(l)),
        Scatter(l) => (13, i64::from(l)),
        Pack(l) => (14, i64::from(l)),
        Splat(l) => (15, i64::from(l)),
        Extract => (16, 0),
        FAdd => (17, 0),
        FMul => (18, 0),
        FLoad => (19, 0),
        FStore => (20, 0),
    };
    usize::try_from(p)
        .ok()
        .filter(|&p| p < PARAMS)
        .map(|p| v * PARAMS + p)
}

/// A memoizing view of one target's op prices.
///
/// Create one per pricing scope (a selection pass, a scheduling run) and
/// route all [`cycles`](Self::cycles)/[`cost`](Self::cost) queries
/// through it. Interior mutability keeps the query methods `&self`, so a
/// cache threads through shared-reference call graphs exactly like the
/// bare [`TargetModel`] it wraps.
#[derive(Debug)]
pub struct CycleCache<'t> {
    target: &'t TargetModel,
    /// Direct-mapped entries for in-range parameters (the hot path: one
    /// bounds-checked load instead of a hash probe).
    flat_cycles: RefCell<Vec<Option<f64>>>,
    flat_costs: RefCell<Vec<Option<OpCost>>>,
    /// Fallback for parameters outside the flat table.
    cycles: RefCell<QueryMap<f64>>,
    costs: RefCell<QueryMap<OpCost>>,
}

impl<'t> CycleCache<'t> {
    /// An empty cache over `target`.
    pub fn new(target: &'t TargetModel) -> Self {
        CycleCache {
            target,
            flat_cycles: RefCell::new(vec![None; VARIANTS * PARAMS]),
            flat_costs: RefCell::new(vec![None; VARIANTS * PARAMS]),
            cycles: RefCell::new(QueryMap::default()),
            costs: RefCell::new(QueryMap::default()),
        }
    }

    /// The wrapped target.
    pub fn target(&self) -> &'t TargetModel {
        self.target
    }

    /// Memoized [`TargetModel::cycles`].
    ///
    /// # Panics
    ///
    /// Panics exactly when the uncached query would (unsupported SIMD
    /// lane counts); a panicking query is never cached.
    pub fn cycles(&self, q: OpQuery) -> f64 {
        if let Some(s) = slot(q) {
            if let Some(v) = self.flat_cycles.borrow()[s] {
                return v;
            }
            let v = self.target.cycles(q);
            self.flat_cycles.borrow_mut()[s] = Some(v);
            return v;
        }
        if let Some(&v) = self.cycles.borrow().get(&q) {
            return v;
        }
        let v = self.target.cycles(q);
        self.cycles.borrow_mut().insert(q, v);
        v
    }

    /// Memoized [`TargetModel::cost`].
    ///
    /// # Panics
    ///
    /// Panics exactly when the uncached query would (unsupported SIMD
    /// lane counts); a panicking query is never cached.
    pub fn cost(&self, q: OpQuery) -> OpCost {
        if let Some(s) = slot(q) {
            if let Some(c) = self.flat_costs.borrow()[s] {
                return c;
            }
            let c = self.target.cost(q);
            self.flat_costs.borrow_mut()[s] = Some(c);
            return c;
        }
        if let Some(&c) = self.costs.borrow().get(&q) {
            return c;
        }
        let c = self.target.cost(q);
        self.costs.borrow_mut().insert(q, c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::all_targets;

    /// Every query shape the pipeline exercises, over the word lengths
    /// and lane counts the suite's targets support.
    fn query_space(t: &TargetModel) -> Vec<OpQuery> {
        let mut qs = Vec::new();
        // 65 and 100 land past the direct-mapped table, exercising the
        // hash-map fallback path.
        for wl in [1, 8, 13, 16, 17, 24, 32, 40, 65, 100] {
            qs.extend([
                OpQuery::Add(wl),
                OpQuery::Mul(wl),
                OpQuery::Shift(wl),
                OpQuery::Load(wl),
                OpQuery::Store(wl),
            ]);
        }
        for l in t.group_sizes() {
            qs.extend([
                OpQuery::VAdd(l),
                OpQuery::VMul(l),
                OpQuery::VShift(l),
                OpQuery::VLoad(l),
                OpQuery::VStore(l),
                OpQuery::VLoadU(l),
                OpQuery::VStoreU(l),
                OpQuery::Gather(l),
                OpQuery::Scatter(l),
                OpQuery::Pack(l),
                OpQuery::Splat(l),
            ]);
        }
        qs.extend([
            OpQuery::Extract,
            OpQuery::FAdd,
            OpQuery::FMul,
            OpQuery::FLoad,
            OpQuery::FStore,
        ]);
        qs
    }

    #[test]
    fn cache_is_bitwise_identical_to_the_uncached_fold() {
        for t in all_targets() {
            let cache = CycleCache::new(&t);
            for q in query_space(&t) {
                // Twice: the first call populates, the second hits.
                for _ in 0..2 {
                    assert_eq!(
                        cache.cycles(q).to_bits(),
                        t.cycles(q).to_bits(),
                        "{}: cycles({q:?})",
                        t.name
                    );
                    assert_eq!(cache.cost(q), t.cost(q), "{}: cost({q:?})", t.name);
                }
            }
        }
    }

    #[test]
    fn unsupported_lanes_still_panic_through_the_cache() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let t = crate::presets::xentium();
        let cache = CycleCache::new(&t);
        // No RefCell borrow is held while the underlying query runs, so
        // the panic unwinds cleanly and nothing is cached for the query.
        assert!(catch_unwind(AssertUnwindSafe(|| cache.cycles(OpQuery::VMul(4)))).is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| cache.cycles(OpQuery::VMul(4)))).is_err());
    }
}
