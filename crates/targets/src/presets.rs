//! The paper's four evaluation targets.

use crate::model::{FuSet, SimdConfig, TargetModel};

/// Recore XENTIUM: ultra-low-power 32-bit 12-issue VLIW DSP core.
///
/// No hardware floating point (the paper reports 15–45x speedups over
/// soft-emulated float); supports 2x16-bit SIMD. The multiplier array is
/// 16x16, so full 32-bit multiplies macro-expand.
pub fn xentium() -> TargetModel {
    TargetModel {
        name: "XENTIUM".into(),
        issue_width: 12,
        datapath: 32,
        scalar_wls: vec![32, 16, 8],
        simd: vec![SimdConfig {
            lanes: 2,
            elem_wl: 16,
        }],
        units: FuSet {
            alu: 4,
            mul: 2,
            mem: 2,
            shift: 2,
            fpu: 0,
        },
        mul_latency: 2,
        wide_mul_slots: 4,
        wide_mul_latency: 6,
        load_latency: 2,
        pack_ops_per_lane: 1,
        unpack_ops: 1,
        barrel_shifter: true,
        hw_float: false,
        fadd_cycles: 38,
        fmul_cycles: 32,
        loop_overhead_ops: 2,
    }
}

/// ST Microelectronics ST240: 32-bit 4-issue media VLIW (ST200 family).
///
/// Native 32x32 multiplier, single-precision hardware floating point,
/// 2x16-bit integer SIMD.
pub fn st240() -> TargetModel {
    TargetModel {
        name: "ST240".into(),
        issue_width: 4,
        datapath: 32,
        scalar_wls: vec![32, 16, 8],
        simd: vec![SimdConfig {
            lanes: 2,
            elem_wl: 16,
        }],
        units: FuSet {
            alu: 4,
            mul: 2,
            mem: 1,
            shift: 2,
            fpu: 1,
        },
        mul_latency: 3,
        wide_mul_slots: 1,
        wide_mul_latency: 3,
        load_latency: 3,
        pack_ops_per_lane: 1,
        unpack_ops: 1,
        barrel_shifter: true,
        hw_float: true,
        fadd_cycles: 3,
        fmul_cycles: 3,
        loop_overhead_ops: 2,
    }
}

/// HP VEX VLIW with the paper's 16-bit and 8-bit SIMD instruction
/// extensions, in a configurable issue width (the paper uses 1 and 4).
///
/// VEX has no FPU; floating point is soft-emulated. The default VEX
/// multiplier is 16x32, so full 32-bit multiplies expand.
///
/// # Panics
///
/// Panics if `issue_width` is zero.
pub fn vex(issue_width: u32) -> TargetModel {
    assert!(issue_width > 0, "issue width must be positive");
    TargetModel {
        name: format!("VEX-{issue_width}"),
        issue_width,
        datapath: 32,
        scalar_wls: vec![32, 16, 8],
        simd: vec![
            SimdConfig {
                lanes: 2,
                elem_wl: 16,
            },
            SimdConfig {
                lanes: 4,
                elem_wl: 8,
            },
        ],
        units: FuSet {
            alu: issue_width.max(1),
            mul: (issue_width / 2).max(1),
            mem: (issue_width / 4).max(1),
            shift: issue_width.max(1),
            fpu: 0,
        },
        mul_latency: 2,
        wide_mul_slots: 2,
        wide_mul_latency: 4,
        load_latency: 3,
        pack_ops_per_lane: 1,
        unpack_ops: 1,
        barrel_shifter: true,
        hw_float: false,
        fadd_cycles: 35,
        fmul_cycles: 30,
        loop_overhead_ops: if issue_width == 1 { 3 } else { 2 },
    }
}

/// The four targets of the paper's evaluation, in figure order:
/// XENTIUM, ST240, VEX-4, VEX-1.
pub fn all_targets() -> Vec<TargetModel> {
    vec![xentium(), st240(), vex(4), vex(1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_targets_in_paper_order() {
        let t = all_targets();
        let names: Vec<&str> = t.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["XENTIUM", "ST240", "VEX-4", "VEX-1"]);
    }

    #[test]
    fn only_st240_has_hw_float() {
        for t in all_targets() {
            assert_eq!(t.hw_float, t.name == "ST240", "{}", t.name);
        }
    }

    #[test]
    fn vex_scales_units_with_issue_width() {
        let narrow = vex(1);
        let wide = vex(4);
        assert!(narrow.units.alu < wide.units.alu);
        assert_eq!(narrow.issue_width, 1);
        assert!(narrow.loop_overhead_ops > wide.loop_overhead_ops);
    }

    #[test]
    fn all_targets_support_2x16() {
        for t in all_targets() {
            assert_eq!(t.simd_element_wl(2), Some(16), "{}", t.name);
        }
    }

    #[test]
    fn only_vex_supports_4x8() {
        for t in all_targets() {
            let has = t.simd_element_wl(4).is_some();
            assert_eq!(has, t.name.starts_with("VEX"), "{}", t.name);
        }
    }
}
