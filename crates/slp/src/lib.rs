//! Superword level parallelism (SLP) extraction substrate.
//!
//! Implements the structural machinery of the Liu et al. (PLDI 2012)-style
//! SLP extraction the paper builds on:
//!
//! * SIMD group **candidates**: pairs of isomorphic, independent items
//!   (scalar operations in the first round, previously selected groups in
//!   extension rounds — "the group selection is repeated ... as long as
//!   groups size is supported");
//! * **conflicts**: two candidates sharing an operation or linked by a
//!   cyclic dependency can never both be realised;
//! * **benefit** estimation: superword reuse enabled by a candidate versus
//!   the packing/unpacking cost it incurs;
//! * the iterative **selection loop** with pluggable hooks, through which
//!   `slpwlo-core` injects the paper's accuracy-awareness (candidate
//!   validation, accuracy conflicts, `SETMAXWL` on selection);
//! * an **exact per-round selector** ([`BenefitKind::Optimal`], module
//!   [`optimal`]): branch-and-bound over the cycle prices with a greedy
//!   incumbent and deterministic budget fallback;
//! * a plain accuracy-*unaware* extraction ([`select::extract_plain`]) used
//!   by the `WLO-First` baseline flow.

pub mod benefit;
pub mod candidate;
pub mod conflict;
pub mod group;
pub mod optimal;
pub mod select;

pub use benefit::{BenefitKind, BenefitModel, CostedBenefit};
pub use candidate::{Candidate, CandidateView, Round};
pub use conflict::structural_conflicts;
pub use group::{
    closes_cycle, effective_users, fully_independent, group_reaches, mem_status, resolve_producer,
    resolved_operands, MemStatus, SimdGroup,
};
pub use optimal::{exhaustive_best, set_value, SelectStats};
pub use select::{
    absorb_selected, extract_plain, extract_plain_with, extract_rounds, extract_rounds_stats,
    extract_rounds_with, run_selection, run_selection_stats, run_selection_with, NoHooks,
    SelectHooks,
};
